"""Performance harness: ``python -m repro bench`` (DESIGN.md §9)."""

from repro.bench.harness import (ARMS, BenchConfig, check, run_bench,
                                 run_bulk_arm, run_e1_arm, run_e6_sentinel,
                                 run_e8_sentinel, run_recovery,
                                 run_recovery_arm)

__all__ = ["ARMS", "BenchConfig", "check", "run_bench", "run_bulk_arm",
           "run_e1_arm", "run_e6_sentinel", "run_e8_sentinel",
           "run_recovery", "run_recovery_arm"]

"""Performance harness for the fast paths (DESIGN.md §9).

Measures the two optimisations this repo carries behind config flags —
RPC batching with prepare piggyback (``HostConfig.batch_datalinks``) and
WAL group commit (``DBConfig.group_commit_window``) — and records the
trajectory in ``BENCH_PERF.json``:

* a bulk link/unlink microbenchmark run over four arms (baseline /
  batched / group_commit / fast) reporting host↔DLFM RPC envelopes,
  physical WAL forces, and simulated per-transaction latency
  percentiles;
* an E1-style multi-client workload with the flags off, on (fixed
  window), and with the self-tuning ``"auto"`` window — the fixed
  window's p95 latency tax at low concurrency is the trade-off auto
  exists to remove;
* a 100-client commit burst (no window vs auto) proving auto keeps the
  fixed window's forces-saved win where it matters;
* a ≥10k-file LOAD with per-row index maintenance vs the deferred
  sorted bottom-up bulk build (DB2's LOAD build phase);
* a shard sweep — the same per-client link workload over fleets of
  1 through 32 DLFM shards (decision piggybacking + bounded fan-out
  pool on), whose commit-throughput scaling from one shard to the
  largest fleet ``--check`` gates at ≥ 2x: the shards keep the strict
  RR/next-key local-DB defaults, under which one shard convoys every
  link on its ``dfm_file`` index tail (the E3 pathology) while N
  shards are N independent tails;
* a headline mixed-workload arm — bursty link transactions racing a
  concurrent LOAD — run under fixed+cold and auto+bulk, whose
  sustained ``headline_ops_per_sec`` is gated by ``--check`` against
  this label's previous run;
* an RR-vs-SI isolation arm — a 100-client half-readers/half-writers
  mix over a hot table, run once under strict RR/next-key locking
  (opposed lock orders → reader↔writer deadlocks and lock-wait
  convoys, the E2/E7 pathology) and once under SI snapshot reads
  (readers lock-free, writer conflicts first-writer-wins), whose
  deadlock+timeout counts and p95 ``--check`` gates strictly lower
  under SI;
* a time-to-first-commit-after-crash arm: the same ≥500-committed-txn
  WAL is recovered once with classic full-replay ARIES restart
  (``DBConfig.instant_recovery=False``) and once with the instant
  REDO-only restart (per-page log chains + lazy on-demand replay,
  DESIGN.md §11), measuring the simulated latency of the first link
  transaction committed after the crash;
* two sentinels proving the paper-faithful outcomes survive: the E6
  distributed deadlock still reproduces with the default (flags-off)
  configuration, and the E8 log-full/batched-local-commit contrast holds
  even with the fast paths enabled.

Everything except ``wall_clock_s`` is simulated and therefore
deterministic for a given seed: same seed → byte-identical JSON
(after dropping that one key).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.dlfm.config import DLFMConfig
from repro.errors import TransactionAborted
from repro.host import DatalinkSpec, HostConfig, build_url
from repro.kernel.sim import Timeout
from repro.minidb.config import DBConfig, TimingModel
from repro.system import System


@dataclass
class BenchConfig:
    seed: int = 42
    #: Links per transaction in the bulk microbenchmark (the acceptance
    #: ratios are quoted at 100).
    links: int = 100
    #: Concurrent clients in the bulk microbenchmark.
    clients: int = 8
    #: Link transactions per client (each client also runs one bulk
    #: DELETE transaction that unlinks everything it inserted).
    txns: int = 2
    #: Group-commit window used by the group_commit/fast arms (seconds).
    #: Wide enough that a leader's window covers clients whose commits
    #: arrive pipelined ~16 ms apart (serialized on the shared dfm_file
    #: candidate slot under strict 2PL).
    group_commit_window: float = 0.05
    e1_clients: int = 16
    e1_duration: float = 300.0
    #: Archive backlog size for the daemon drain arm (the acceptance
    #: gate is quoted at ≥200 files).
    drain_files: int = 200
    #: Copy workers in the pooled drain arm (vs 1 in the serial arm).
    drain_workers: int = 4
    #: Concurrent restore callers in the restore-storm arm.
    storm_restores: int = 64
    #: Retrieve workers in the pooled storm arm (vs 1 serial).
    storm_workers: int = 4
    #: Concurrent clients in the multi-server commit arm.
    ms_clients: int = 6
    #: Commit transactions per client in the multi-server arm.
    ms_txns: int = 3
    #: Participant counts swept by the multi-server arm (the acceptance
    #: gate is quoted at the largest).
    ms_server_counts: tuple = (1, 2, 4)
    #: Committed link transactions seeded before the crash in the
    #: recovery arm (the acceptance gate is quoted at ≥500).
    recovery_txns: int = 500
    #: Fraction of the seed load after which the DLFM local DB takes its
    #: last checkpoint, so restart sees a realistic tail of post-
    #: checkpoint work in both arms.
    recovery_checkpoint_frac: float = 0.9
    #: Clients in the commit-burst arm (the adaptive-window acceptance
    #: gate is quoted at a 100-client burst).
    burst_clients: int = 100
    #: Commit transactions per burst client.
    burst_txns: int = 2
    #: Files ingested by the LOAD arm (the acceptance gate is quoted at
    #: ≥10k files).
    load_files: int = 10_000
    #: Rows per LOAD piece (one host transaction + CommitPiece each).
    load_piece: int = 500
    #: Per-entry index maintenance cost the LOAD and headline arms opt
    #: into (half a page IO — an index-leaf write). The engine default
    #: keeps ``TimingModel.index_entry`` at 0.0 so the historical
    #: calibration is untouched; these arms exist to expose the bulk
    #: build's win, so they charge the cost.
    load_index_entry: float = 0.002
    #: Concurrent clients in the shard-sweep arm (each owns its own host
    #: table, so its file group lands on ``grp_id % shards``).
    shard_clients: int = 12
    #: Commit transactions per shard-sweep client.
    shard_txns: int = 3
    #: Links per shard-sweep transaction.
    shard_links: int = 4
    #: Fleet sizes swept (the acceptance gate is quoted 1 → largest).
    shard_counts: tuple = (1, 2, 4, 8, 16, 32)
    #: Clients in the RR-vs-SI isolation arm (half readers, half
    #: writers; the acceptance gate is quoted at a 100-client mix).
    rr_si_clients: int = 100
    #: Transactions per RR-vs-SI client.
    rr_si_txns: int = 3
    #: Rows in the RR-vs-SI hot table (small on purpose: the readers'
    #: ascending S-locks and the writers' descending X-locks must
    #: actually collide under RR).
    rr_si_rows: int = 16
    #: Lock timeout for the RR-vs-SI arm (seconds): short enough that
    #: RR's convoyed waiters show up as timeouts, long enough that the
    #: deadlock detector usually fires first.
    rr_si_lock_timeout: float = 5.0
    #: Clients in the headline mixed-workload arm.
    headline_clients: int = 24
    #: Link transactions per headline client.
    headline_txns: int = 4
    #: Links per headline client transaction.
    headline_links: int = 3
    #: Files the headline arm's concurrent LOAD ingests.
    headline_load_files: int = 1_000
    #: Linked files in the MetaCat catalog arm (the prepared-statement
    #: acceptance gate is quoted on a 1M-file catalog; quick runs 100k).
    metacat_files: int = 1_000_000
    #: Metadata point queries per MetaCat phase (the same seeded mix
    #: runs once interpolated, once prepared).
    metacat_queries: int = 4_000
    #: Compile cost the MetaCat arm opts into. The engine default keeps
    #: ``TimingModel.compile_cpu`` at 0.0 (historical calibration); this
    #: arm exists to expose the per-execution compile tax of
    #: interpolated SQL, so it charges one.
    metacat_compile_cpu: float = 0.004
    quick: bool = False

    @classmethod
    def quick_config(cls, seed: int = 42) -> "BenchConfig":
        """CI-scale: the bulk and daemon arms are already cheap (<1 s
        wall each), so keep them at full scale and shrink only the E1
        workload and the MetaCat catalog."""
        return cls(seed=seed, e1_clients=6, e1_duration=60.0,
                   shard_counts=(1, 4, 8), metacat_files=100_000,
                   metacat_queries=2_000, quick=True)


#: arm name → (batch_datalinks, group_commit_window multiplier)
ARMS = ("baseline", "batched", "group_commit", "fast")


def _arm_flags(cfg: BenchConfig, arm: str) -> tuple[bool, float]:
    batch = arm in ("batched", "fast")
    window = cfg.group_commit_window if arm in ("group_commit",
                                                "fast") else 0.0
    return batch, window


def _build_system(seed: int, batch: bool, window: float) -> System:
    timing = TimingModel.calibrated()
    dlfm_config = DLFMConfig.tuned(timing=timing)
    dlfm_config.local_db.group_commit_window = window
    host_config = HostConfig(batch_datalinks=batch)
    host_config.db.timing = timing
    host_config.db.group_commit_window = window
    # The bench host DB gets the same DBA treatment the paper applies to
    # the DLFM local DB: with the RR/next-key-locking defaults, inserts
    # into ``dlk_indoubt`` next-key-lock the decision-row tail and
    # serialize concurrent commits (the E3 pathology, host edition),
    # which keeps committers out of each other's group-commit window.
    host_config.db.next_key_locking = False
    host_config.db.isolation = "CS"
    return System(seed=seed, dlfm_config=dlfm_config,
                  host_config=host_config)


def _percentile(values: list, pct: float):
    """Nearest-rank percentile (same rule as WorkloadReport)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return round(ordered[rank - 1], 6)


def _wal_snapshot(system: System) -> dict:
    keys = ("forces", "forces_saved", "group_commits", "auto_immediate",
            "auto_batched")
    out = dict.fromkeys(keys, 0)
    dbs = [system.host.db] + [d.db for d in system.dlfms.values()]
    for db in dbs:
        for key in keys:
            out[key] += getattr(db.wal.metrics, key)
    return out


# --------------------------------------------------------------------- bulk

def run_bulk_arm(cfg: BenchConfig, arm: str) -> dict:
    """N clients × (txns link-transactions of ``links`` inserts, then one
    bulk DELETE unlinking everything) against one DLFM."""
    batch, window = _arm_flags(cfg, arm)
    system = _build_system(cfg.seed, batch, window)

    def setup():
        yield from system.host.create_datalink_table(
            "bulk", [("id", "INT"), ("owner", "TEXT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=False)})

    system.run(setup())

    latencies: list[float] = []

    def client(cid: int):
        session = system.session()
        for t in range(cfg.txns):
            started = system.sim.now
            for k in range(cfg.links):
                row_id = (cid * 1_000 + t) * 1_000 + k
                path = f"/bulk/c{cid}/t{t}/f{k:04d}"
                system.create_user_file("fs1", path, owner=f"c{cid}")
                yield from session.execute(
                    "INSERT INTO bulk (id, owner, doc) VALUES (?, ?, ?)",
                    (row_id, f"c{cid}", build_url("fs1", path)))
            yield from session.commit()
            latencies.append(system.sim.now - started)
        # Bulk unlink: ONE statement unlinks every row this client made.
        started = system.sim.now
        yield from session.execute(
            "DELETE FROM bulk WHERE owner = ?", (f"c{cid}",))
        yield from session.commit()
        latencies.append(system.sim.now - started)

    def root():
        procs = [system.sim.spawn(client(i), f"bulk-client-{i}")
                 for i in range(cfg.clients)]
        for proc in procs:
            yield from proc.join()

    system.run(root())

    dlfm = system.dlfms["fs1"]
    total_txns = cfg.clients * (cfg.txns + 1)
    wal = _wal_snapshot(system)
    return {
        "rpcs": dlfm.metrics.rpcs,
        "rpcs_per_txn": round(dlfm.metrics.rpcs / total_txns, 2),
        "batches": dlfm.metrics.batches,
        "batched_ops": dlfm.metrics.batched_ops,
        "wal_forces": wal["forces"],
        "wal_forces_saved": wal["forces_saved"],
        "wal_group_commits": wal["group_commits"],
        "txns": total_txns,
        "links": dlfm.metrics.links,
        "unlinks": dlfm.metrics.unlinks,
        "p50_txn_s": _percentile(latencies, 50),
        "p95_txn_s": _percentile(latencies, 95),
        "p99_txn_s": _percentile(latencies, 99),
        "sim_seconds": round(system.sim.now, 6),
    }


# --------------------------------------------------------------------- E1

def run_e1_arm(cfg: BenchConfig, mode: str) -> dict:
    """The E1-style workload at reduced scale.

    ``mode``: ``"off"`` = flags off (baseline), ``"on"`` = RPC batching +
    the fixed group-commit window (the historical fast arm), ``"auto"`` =
    RPC batching + the self-tuning window. The E1 client count is LOW
    concurrency for group commit — the fixed window taxes every commit's
    p95 here (the §9 trade-off), which is exactly what auto must avoid.
    """
    from repro.workloads.runner import SystemTestConfig, run_system_test

    batch = mode != "off"
    window: object = {"off": 0.0, "on": cfg.group_commit_window,
                      "auto": "auto"}[mode]
    timing = TimingModel.calibrated()
    dlfm_config = DLFMConfig.tuned(timing=timing)
    dlfm_config.local_db.group_commit_window = window
    host_config = HostConfig(batch_datalinks=batch)
    host_config.db.group_commit_window = window
    report = run_system_test(SystemTestConfig(
        clients=cfg.e1_clients, duration=cfg.e1_duration, seed=cfg.seed,
        dlfm_config=dlfm_config, host_config=host_config))
    system = report.system
    dlfm = system.dlfms["fs1"]
    wal = _wal_snapshot(system)
    return {
        "inserts_per_min": round(report.inserts_per_minute, 1),
        "updates_per_min": round(report.updates_per_minute, 1),
        "aborts": report.total_aborts,
        "rpcs": dlfm.metrics.rpcs,
        "wal_forces": wal["forces"],
        "wal_forces_saved": wal["forces_saved"],
        "auto_immediate": wal["auto_immediate"],
        "auto_batched": wal["auto_batched"],
        "p50_latency_s": report.latency_percentile(50),
        "p95_latency_s": report.latency_percentile(95),
        "p99_latency_s": report.latency_percentile(99),
    }


# --------------------------------------------------------------------- burst

def run_burst_arm(cfg: BenchConfig, window) -> dict:
    """``burst_clients`` committers released at once against ONE minidb
    WAL — the regime where group commit pays. Auto must keep the fixed
    window's forces-saved win here (its EWMA sees the dense arrivals and
    opens batching windows)."""
    from repro.kernel.sim import Simulator
    from repro.minidb import Database, DBConfig as MiniDBConfig

    sim = Simulator(seed=cfg.seed)
    db = Database(sim, "burst", MiniDBConfig(
        group_commit_window=window, next_key_locking=False,
        isolation="CS", timing=TimingModel.calibrated()))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (k INT, v TEXT)")
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        for k in range(cfg.burst_clients):
            yield from session.execute(
                "INSERT INTO t (k, v) VALUES (?, ?)", (k, "init"))
        yield from session.commit()
        db.set_table_stats("t", card=1_000_000, colcard={"k": 1_000_000})

    sim.run_process(setup())
    forces_before = db.wal.metrics.forces
    latencies: list[float] = []

    def committer(k: int):
        session = db.session()
        for t in range(cfg.burst_txns):
            started = sim.now
            yield from session.execute(
                "UPDATE t SET v = ? WHERE k = ?", (f"v{t}", k))
            yield from session.commit()
            latencies.append(sim.now - started)

    def root():
        procs = [sim.spawn(committer(k), f"burst-{k}")
                 for k in range(cfg.burst_clients)]
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    metrics = db.wal.metrics
    return {
        "window": window,
        "clients": cfg.burst_clients,
        "txns": cfg.burst_clients * cfg.burst_txns,
        "wal_forces": metrics.forces - forces_before,
        "wal_forces_saved": metrics.forces_saved,
        "wal_group_commits": metrics.group_commits,
        "auto_immediate": metrics.auto_immediate,
        "auto_batched": metrics.auto_batched,
        "p50_commit_s": _percentile(latencies, 50),
        "p95_commit_s": _percentile(latencies, 95),
    }


def run_burst(cfg: BenchConfig) -> dict:
    """No-window vs auto under the 100-client burst."""
    off = run_burst_arm(cfg, 0.0)
    auto = run_burst_arm(cfg, "auto")
    return {
        "off": off,
        "auto": auto,
        "force_reduction": round(
            off["wal_forces"] / max(auto["wal_forces"], 1), 2),
    }


# ------------------------------------------------------------------- metacat

def run_metacat(cfg: BenchConfig) -> dict:
    """The MetaCat catalog arm: interpolated vs prepared statement
    throughput over a 100k/1M-file catalog, plus the auto-RUNSTATS
    vs cold-statistics plan proof (no ``set_stats`` anywhere)."""
    from repro.workloads.metacat import (MetaCatConfig, cold_stats_probe,
                                         run_metacat as run_workload)

    mc = MetaCatConfig(seed=cfg.seed, files=cfg.metacat_files,
                       queries=cfg.metacat_queries,
                       compile_cpu=cfg.metacat_compile_cpu)
    doc = run_workload(mc)
    doc["cold"] = cold_stats_probe(mc)
    return doc


# ------------------------------------------------------------------- rr-vs-si

def run_rr_vs_si_arm(cfg: BenchConfig, isolation: str) -> dict:
    """``rr_si_clients`` mixed readers/writers against ONE minidb under
    ``isolation``. Readers scan two rows in ascending key order; writers
    update two rows in DESCENDING order — under RR (strict 2PL, next-key
    locking) the opposed lock orders build reader↔writer deadlock cycles
    and queue-time blowups (the E2/E7 pathology); under SI the readers
    take no locks at all, so the only conflicts left are writer↔writer,
    and those all lock descending → no cycles. First-writer-wins aborts
    surface as TransactionAborted and are retried like deadlock victims.
    """
    from repro.kernel.sim import Simulator
    from repro.minidb import Database, DBConfig as MiniDBConfig

    sim = Simulator(seed=cfg.seed)
    db = Database(sim, "rrsi", MiniDBConfig(
        isolation=isolation, next_key_locking=True,
        lock_timeout=cfg.rr_si_lock_timeout, deadlock_check_interval=1.0,
        timing=TimingModel.calibrated()))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (k INT, v TEXT)")
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        for k in range(cfg.rr_si_rows):
            yield from session.execute(
                "INSERT INTO t (k, v) VALUES (?, ?)", (k, "init"))
        yield from session.commit()
        db.set_table_stats("t", card=1_000_000, colcard={"k": 1_000_000})

    sim.run_process(setup())
    latencies: list[float] = []
    aborts = [0]
    rng = sim.stream("rr-vs-si")

    def reader(cid: int):
        session = db.session()
        for t in range(cfg.rr_si_txns):
            a = rng.randrange(cfg.rr_si_rows - 1)
            b = rng.randrange(a + 1, cfg.rr_si_rows)
            started = sim.now
            while True:
                try:
                    yield from session.execute(
                        "SELECT v FROM t WHERE k = ?", (a,))
                    yield from session.execute(
                        "SELECT v FROM t WHERE k = ?", (b,))
                    yield from session.commit()
                    break
                except TransactionAborted:
                    aborts[0] += 1
                    yield from session.rollback()
                    yield Timeout(0.01)
            latencies.append(sim.now - started)

    def writer(cid: int):
        session = db.session()
        for t in range(cfg.rr_si_txns):
            a = rng.randrange(cfg.rr_si_rows - 1)
            b = rng.randrange(a + 1, cfg.rr_si_rows)
            started = sim.now
            while True:
                try:
                    # Descending: opposed to the readers' ascending order
                    # under RR, but a consistent global order among the
                    # writers themselves.
                    yield from session.execute(
                        "UPDATE t SET v = ? WHERE k = ?", (f"w{cid}.{t}", b))
                    yield from session.execute(
                        "UPDATE t SET v = ? WHERE k = ?", (f"w{cid}.{t}", a))
                    yield from session.commit()
                    break
                except TransactionAborted:
                    aborts[0] += 1
                    yield from session.rollback()
                    yield Timeout(0.01)
            latencies.append(sim.now - started)

    def root():
        procs = []
        for i in range(cfg.rr_si_clients):
            body = writer if i % 2 else reader
            procs.append(sim.spawn(body(i), f"rrsi-{isolation}-{i}"))
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    merged = db.merge_versions() if db.config.mvcc else 0
    metrics = db.locks.metrics
    return {
        "isolation": isolation,
        "clients": cfg.rr_si_clients,
        "txns": cfg.rr_si_clients * cfg.rr_si_txns,
        "deadlocks": metrics.deadlocks,
        "timeouts": metrics.timeouts,
        "escalations": metrics.escalations,
        "lock_waits": metrics.waits,
        "aborts": aborts[0],
        "versions_merged": merged,
        "live_chains": db.live_chains(),
        "p50_txn_s": _percentile(latencies, 50),
        "p95_txn_s": _percentile(latencies, 95),
        "sim_seconds": round(sim.now, 6),
    }


def run_rr_vs_si(cfg: BenchConfig) -> dict:
    """RR vs SI over the identical reader/writer mix (same seed, same
    key draws)."""
    rr = run_rr_vs_si_arm(cfg, "RR")
    si = run_rr_vs_si_arm(cfg, "SI")
    return {
        "rr": rr,
        "si": si,
        "p95_improvement": round(
            (rr["p95_txn_s"] or 0) / max(si["p95_txn_s"] or 1e-9, 1e-9), 2),
    }


# ---------------------------------------------------------------------- load

def _load_timing(cfg: BenchConfig) -> TimingModel:
    timing = TimingModel.calibrated()
    timing.index_entry = cfg.load_index_entry
    return timing


def run_load_arm(cfg: BenchConfig, bulk: bool, files: int,
                 seed_offset: int = 0) -> dict:
    """One LOAD of ``files`` files into an indexed datalink table, with
    per-row index maintenance (cold) or the deferred sorted bottom-up
    build (bulk). The host DB charges ``load_index_entry`` per index
    entry so the maintenance strategy is visible in simulated time."""
    from repro.host.load import LoadUtility

    dlfm_config = DLFMConfig.tuned(timing=TimingModel.calibrated())
    host_config = HostConfig(batch_datalinks=True)
    host_config.db.timing = _load_timing(cfg)
    host_config.db.next_key_locking = False
    host_config.db.isolation = "CS"
    system = System(seed=cfg.seed + seed_offset, dlfm_config=dlfm_config,
                    host_config=host_config)
    host = system.host

    def setup():
        yield from host.create_datalink_table(
            "assets", [("id", "INT"), ("name", "TEXT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=False)})
        session = host.db.session()
        yield from session.execute("CREATE INDEX assets_id ON assets (id)")
        yield from session.execute(
            "CREATE INDEX assets_doc ON assets (doc)")
        yield from session.commit()

    system.run(setup())
    host.db.set_table_stats("assets", card=1_000_000,
                            colcard={"id": 1_000_000, "doc": 1_000_000})
    entries = []
    for i in range(files):
        path = f"/load/f{i:05d}"
        system.create_user_file("fs1", path, owner="load")
        entries.append(({"id": i, "name": f"n{i}"},
                        build_url("fs1", path)))
    utility = LoadUtility(host, "assets", "doc", entries,
                          piece_size=cfg.load_piece, bulk=bulk)
    started = system.sim.now
    stats = system.run(utility.run(), "load")
    return {
        "mode": "bulk" if bulk else "cold",
        "files": files,
        "rows": stats.rows_inserted,
        "linked": stats.linked,
        "pieces": stats.pieces,
        "bulk_merged": stats.bulk_merged,
        "load_sim_s": round(system.sim.now - started, 6),
    }


def run_load(cfg: BenchConfig) -> dict:
    """Cold vs bulk index maintenance over the identical LOAD."""
    cold = run_load_arm(cfg, bulk=False, files=cfg.load_files)
    bulk = run_load_arm(cfg, bulk=True, files=cfg.load_files)
    return {
        "cold": cold,
        "bulk": bulk,
        "speedup": round(cold["load_sim_s"]
                         / max(bulk["load_sim_s"], 1e-9), 2),
    }


# ------------------------------------------------------------------ headline

def run_headline_arm(cfg: BenchConfig, adaptive: bool) -> dict:
    """The raw-speed headline: a sustained mixed workload — bursty link
    transactions from ``headline_clients`` clients racing a concurrent
    LOAD — under the OLD commit path (fixed group-commit window + cold
    per-row LOAD index maintenance) or the NEW one (auto window + bulk
    build). Reports sustained operations per simulated second."""
    from repro.host.load import LoadUtility

    window: object = "auto" if adaptive else cfg.group_commit_window
    dlfm_config = DLFMConfig.tuned(timing=TimingModel.calibrated())
    dlfm_config.local_db.group_commit_window = window
    host_config = HostConfig(batch_datalinks=True,
                             bulk_load_indexes=adaptive)
    host_config.db.timing = _load_timing(cfg)
    host_config.db.group_commit_window = window
    host_config.db.next_key_locking = False
    host_config.db.isolation = "CS"
    system = System(seed=cfg.seed, dlfm_config=dlfm_config,
                    host_config=host_config)
    host = system.host

    def setup():
        yield from host.create_datalink_table(
            "media", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=False)})
        session = host.db.session()
        yield from session.execute("CREATE INDEX media_id ON media (id)")
        yield from session.execute("CREATE INDEX media_doc ON media (doc)")
        yield from session.commit()

    system.run(setup())
    host.db.set_table_stats("media", card=1_000_000,
                            colcard={"id": 1_000_000, "doc": 1_000_000})
    entries = []
    for i in range(cfg.headline_load_files):
        path = f"/hl/load/f{i:05d}"
        system.create_user_file("fs1", path, owner="load")
        entries.append(({"id": 1_000_000 + i}, build_url("fs1", path)))
    ops = {"count": 0}

    def loader():
        utility = LoadUtility(host, "media", "doc", entries,
                              piece_size=cfg.load_piece)
        stats = yield from utility.run()
        ops["count"] += stats.rows_inserted

    def client(cid: int):
        session = system.session()
        for t in range(cfg.headline_txns):
            for k in range(cfg.headline_links):
                row_id = (cid * 1_000 + t) * 100 + k
                path = f"/hl/c{cid}/t{t}/f{k}"
                system.create_user_file("fs1", path, owner=f"c{cid}")
                yield from session.execute(
                    "INSERT INTO media (id, doc) VALUES (?, ?)",
                    (row_id, build_url("fs1", path)))
                ops["count"] += 1
            yield from session.commit()
            ops["count"] += 1

    started = system.sim.now

    def root():
        procs = [system.sim.spawn(loader(), "hl-loader")]
        procs += [system.sim.spawn(client(i), f"hl-client-{i}")
                  for i in range(cfg.headline_clients)]
        for proc in procs:
            yield from proc.join()

    system.run(root())
    elapsed = system.sim.now - started
    wal = _wal_snapshot(system)
    return {
        "mode": "adaptive" if adaptive else "fixed",
        "ops": ops["count"],
        "sim_seconds": round(elapsed, 6),
        "ops_per_sec": round(ops["count"] / max(elapsed, 1e-9), 1),
        "wal_forces": wal["forces"],
        "wal_forces_saved": wal["forces_saved"],
        "auto_immediate": wal["auto_immediate"],
        "auto_batched": wal["auto_batched"],
    }


def run_headline(cfg: BenchConfig) -> dict:
    """Fixed+cold vs auto+bulk over the identical mixed workload."""
    fixed = run_headline_arm(cfg, adaptive=False)
    adaptive = run_headline_arm(cfg, adaptive=True)
    return {
        "fixed": fixed,
        "adaptive": adaptive,
        "headline_ops_per_sec": adaptive["ops_per_sec"],
        "speedup": round(adaptive["ops_per_sec"]
                         / max(fixed["ops_per_sec"], 1e-9), 2),
    }


# --------------------------------------------------------------------- daemons

def run_archive_drain_arm(cfg: BenchConfig, workers: int) -> dict:
    """A backlog of ``drain_files`` recovery=yes links drained by ONE
    Copy-daemon sweep. The archive server charges simulated transfer
    time, so the sweep's duration measures how well the claimed batch
    pipelines across the worker pool (serial: backlog × per-file cost)."""
    dlfm_config = DLFMConfig.tuned()
    dlfm_config.copy_workers = workers
    # Keep the periodic sweeper out of the measured window; the arm
    # drives the sweep directly.
    dlfm_config.copy_period = 1e6
    system = System(seed=cfg.seed, dlfm_config=dlfm_config,
                    archive_charge_time=True)

    def setup():
        yield from system.host.create_datalink_table(
            "docs", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=True)})
        session = system.session()
        for i in range(cfg.drain_files):
            path = f"/docs/f{i:05d}"
            system.create_user_file("fs1", path, owner="load",
                                    content="x" * 500)
            yield from session.execute(
                "INSERT INTO docs (id, doc) VALUES (?, ?)",
                (i, build_url("fs1", path)))
            if (i + 1) % 50 == 0:
                yield from session.commit()
        yield from session.commit()

    system.run(setup())
    dlfm = system.dlfms["fs1"]
    started = system.sim.now
    archived = system.run(dlfm.copyd.sweep(), "drain")
    return {
        "workers": workers,
        "backlog": cfg.drain_files,
        "archived": archived,
        "drain_sim_s": round(system.sim.now - started, 6),
        "claimed": dlfm.copyd.claimed,
        "queue_max_depth": dlfm.copyd.pool.metrics.max_depth,
    }


def run_restore_storm_arm(cfg: BenchConfig, workers: int) -> dict:
    """``storm_restores`` concurrent restore() callers against a
    pre-seeded archive (the post-PIT-restore storm of §3.5); each
    restore pays an archive fetch plus a Chown handoff, so workers
    pipeline fetches that a serial daemon serves one at a time."""
    dlfm_config = DLFMConfig.tuned()
    dlfm_config.retrieve_workers = workers
    system = System(seed=cfg.seed, dlfm_config=dlfm_config,
                    archive_charge_time=True)
    dlfm = system.dlfms["fs1"]

    def seed_archive():
        for i in range(cfg.storm_restores):
            yield from dlfm.archive.store(
                "fs1", f"/lost/f{i:05d}", f"rid{i:05d}", "y" * 500,
                owner="alice", group="users", mode=0o640)

    system.run(seed_archive())
    started = system.sim.now
    latencies: list[float] = []

    def one_restore(i: int):
        t0 = system.sim.now
        yield from dlfm.retrieved.restore(f"/lost/f{i:05d}", f"rid{i:05d}")
        latencies.append(system.sim.now - t0)

    def storm():
        procs = [system.sim.spawn(one_restore(i), f"restore-{i}")
                 for i in range(cfg.storm_restores)]
        for proc in procs:
            yield from proc.join()

    system.run(storm())
    return {
        "workers": workers,
        "restores": cfg.storm_restores,
        "restored": dlfm.retrieved.restored,
        "drain_sim_s": round(system.sim.now - started, 6),
        "p50_restore_s": _percentile(latencies, 50),
        "p95_restore_s": _percentile(latencies, 95),
    }


def run_daemon_arms(cfg: BenchConfig) -> dict:
    """Serial-vs-pooled arms for the parallel daemon work."""
    drain = {"serial": run_archive_drain_arm(cfg, 1),
             "pooled": run_archive_drain_arm(cfg, cfg.drain_workers)}
    drain["speedup"] = round(
        drain["serial"]["drain_sim_s"]
        / max(drain["pooled"]["drain_sim_s"], 1e-9), 2)
    storm = {"serial": run_restore_storm_arm(cfg, 1),
             "pooled": run_restore_storm_arm(cfg, cfg.storm_workers)}
    storm["speedup"] = round(
        storm["serial"]["drain_sim_s"]
        / max(storm["pooled"]["drain_sim_s"], 1e-9), 2)
    return {"archive_drain": drain, "restore_storm": storm}


# ------------------------------------------------------------------- recovery

def run_recovery_arm(cfg: BenchConfig, instant: bool) -> dict:
    """Seed ``recovery_txns`` committed link transactions (checkpointing
    the DLFM local DB at ``recovery_checkpoint_frac`` of the load), crash
    the DLFM, restart it, and measure the simulated time until the FIRST
    new link transaction commits.

    With classic recovery the first commit pays the full-log REDO scan,
    every touched page's read, and the full-heap index rebuilds (all
    parked in ``unbilled_io`` by restart). With instant recovery it pays
    only the post-checkpoint tail scan, the checkpoint index images, and
    the one page the new insert actually touches — the rest drains in the
    background replayer while the commit is already done.
    """
    timing = TimingModel.calibrated()
    dlfm_config = DLFMConfig.tuned(timing=timing)
    dlfm_config.local_db.instant_recovery = instant
    host_config = HostConfig(batch_datalinks=True)
    host_config.db.timing = timing
    host_config.db.next_key_locking = False
    host_config.db.isolation = "CS"
    system = System(seed=cfg.seed, dlfm_config=dlfm_config,
                    host_config=host_config)
    dlfm = system.dlfms["fs1"]
    checkpoint_at = max(1, int(cfg.recovery_txns
                               * cfg.recovery_checkpoint_frac))

    def seed_load():
        yield from system.host.create_datalink_table(
            "docs", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=False)})
        session = system.session()
        for i in range(cfg.recovery_txns):
            path = f"/docs/f{i:05d}"
            system.create_user_file("fs1", path, owner="load")
            yield from session.execute(
                "INSERT INTO docs (id, doc) VALUES (?, ?)",
                (i, build_url("fs1", path)))
            yield from session.commit()
            if i + 1 == checkpoint_at:
                dlfm.db.checkpoint()

    system.run(seed_load())
    log_records = len(dlfm.db.wal.records)
    dlfm.crash()
    started = system.sim.now
    summary = dlfm.restart()

    def first_commit():
        session = system.session()
        path = "/docs/after-crash"
        system.create_user_file("fs1", path, owner="probe")
        yield from session.execute(
            "INSERT INTO docs (id, doc) VALUES (?, ?)",
            (cfg.recovery_txns, build_url("fs1", path)))
        yield from session.commit()

    system.run(first_commit())
    return {
        "mode": "instant" if instant else "classic",
        "seed_txns": cfg.recovery_txns,
        "log_records": log_records,
        "redone": summary["redone"],
        "undone": summary["undone"],
        "first_commit_s": round(system.sim.now - started, 6),
        "pages_replayed": dlfm.db.metrics.pages_replayed,
        "pages_replayed_bg": dlfm.metrics.pages_replayed_bg,
    }


def run_recovery(cfg: BenchConfig) -> dict:
    """Classic-vs-instant restart over the identical WAL."""
    classic = run_recovery_arm(cfg, instant=False)
    instant = run_recovery_arm(cfg, instant=True)
    return {
        "classic": classic,
        "instant": instant,
        "speedup": round(classic["first_commit_s"]
                         / max(instant["first_commit_s"], 1e-9), 2),
    }


# --------------------------------------------------------------- multi-server

def run_multi_server_arm(cfg: BenchConfig, n_servers: int,
                         scatter: bool) -> dict:
    """K clients, each transaction linking one file on EVERY server, so
    commit fans 2PC out to ``n_servers`` participants. The historical
    serial coordinator pays each participant's prepare and phase-2
    commit cost sequentially; scatter-gather overlaps them, so commit
    latency approaches the slowest single participant instead of the
    sum."""
    servers = tuple(f"fs{i + 1}" for i in range(n_servers))
    timing = TimingModel.calibrated()
    dlfm_config = DLFMConfig.tuned(timing=timing)
    host_config = HostConfig(batch_datalinks=True, sync_commit=True,
                             scatter_gather=scatter)
    host_config.db.timing = timing
    host_config.db.next_key_locking = False
    host_config.db.isolation = "CS"
    system = System(seed=cfg.seed, servers=servers,
                    dlfm_config=dlfm_config, host_config=host_config)

    def setup():
        yield from system.host.create_datalink_table(
            "ms", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=False)})

    system.run(setup())
    commit_latencies: list[float] = []

    def client(cid: int):
        session = system.session()
        for t in range(cfg.ms_txns):
            for s, server in enumerate(servers):
                row_id = (cid * 1_000 + t) * 10 + s
                path = f"/ms/c{cid}/t{t}/s{s}"
                system.create_user_file(server, path, owner=f"c{cid}")
                yield from session.execute(
                    "INSERT INTO ms (id, doc) VALUES (?, ?)",
                    (row_id, build_url(server, path)))
            started = system.sim.now
            yield from session.commit()
            commit_latencies.append(system.sim.now - started)

    def root():
        procs = [system.sim.spawn(client(i), f"ms-client-{i}")
                 for i in range(cfg.ms_clients)]
        for proc in procs:
            yield from proc.join()

    system.run(root())
    return {
        "servers": n_servers,
        "mode": "scatter" if scatter else "serial",
        "txns": cfg.ms_clients * cfg.ms_txns,
        "p50_commit_s": _percentile(commit_latencies, 50),
        "p95_commit_s": _percentile(commit_latencies, 95),
        "sim_seconds": round(system.sim.now, 6),
    }


def run_multi_server(cfg: BenchConfig) -> dict:
    """Serial-vs-scatter 2PC commit latency at 1/2/4 participants."""
    out = {}
    for n in cfg.ms_server_counts:
        serial = run_multi_server_arm(cfg, n, scatter=False)
        fanned = run_multi_server_arm(cfg, n, scatter=True)
        out[str(n)] = {
            "serial": serial,
            "scatter": fanned,
            "p95_speedup": round(
                serial["p95_commit_s"]
                / max(fanned["p95_commit_s"], 1e-9), 2),
        }
    return out


# --------------------------------------------------------------- shard sweep

def run_shard_sweep_arm(cfg: BenchConfig, n_shards: int) -> dict:
    """K clients, each linking into its OWN host table, over an N-shard
    fleet with decision piggybacking and the bounded fan-out pool on.

    The shards run their local DBs at the ENGINE DEFAULTS — RR with
    next-key locking, the strict DB2 configuration the paper started
    from. Under it every link INSERT X-locks the ``dfm_file`` index tail
    to phase 2 (ARIES/KVL next-key), so one shard convoys the whole
    fleet's link traffic and feeds the E3 deadlock storm; the paper's
    single-node answer was weakening the config (``tuned()`` drops
    next-key locking). Sharding is the scale-out answer that KEEPS the
    strict config: N shards are N independent index tails, so groups
    spread over them stop contending. Clients retry deadlock victims
    with a linear backoff, as real DB2 applications do — throughput
    counts each transaction once, when it finally commits."""
    from repro.shard import ShardedSystem

    timing = TimingModel.calibrated()
    dlfm_config = DLFMConfig(local_db=DBConfig(timing=timing))
    host_config = HostConfig(batch_datalinks=True, sync_commit=True,
                             decision_piggyback=True, fanout_workers=8)
    host_config.db.timing = timing
    host_config.db.next_key_locking = False
    host_config.db.isolation = "CS"
    system = ShardedSystem(seed=cfg.seed, shards=n_shards,
                           dlfm_config=dlfm_config,
                           host_config=host_config)

    def setup():
        # One table (hence one file group) per client: host-side inserts
        # hit distinct heaps, so the only convoy left is the shard's.
        for cid in range(cfg.shard_clients):
            yield from system.host.create_datalink_table(
                f"sw{cid}", [("id", "INT"), ("doc", "TEXT")],
                {"doc": DatalinkSpec(recovery=False)})

    system.run(setup())
    commit_latencies: list[float] = []
    retries = [0]

    def client(cid: int):
        session = system.session()
        for t in range(cfg.shard_txns):
            for k in range(cfg.shard_links):
                system.create_user_file(system.fs_name,
                                        f"/sw/c{cid}/t{t}/k{k}",
                                        owner=f"c{cid}")
            attempt = 0
            while True:
                started = system.sim.now
                try:
                    for k in range(cfg.shard_links):
                        path = f"/sw/c{cid}/t{t}/k{k}"
                        yield from session.execute(
                            f"INSERT INTO sw{cid} (id, doc) VALUES (?, ?)",
                            (t * cfg.shard_links + k,
                             build_url(system.fs_name, path)))
                    yield from session.commit()
                    commit_latencies.append(system.sim.now - started)
                    break
                except TransactionAborted:
                    yield from session.rollback()
                    retries[0] += 1
                    attempt += 1
                    yield Timeout(0.005 * attempt)
        session.close()

    begun = system.sim.now

    def root():
        procs = [system.sim.spawn(client(i), f"sw-client-{i}")
                 for i in range(cfg.shard_clients)]
        for proc in procs:
            yield from proc.join()

    system.run(root())
    elapsed = system.sim.now - begun
    txns = cfg.shard_clients * cfg.shard_txns
    deadlocks = sum(d.db.locks.metrics.deadlocks
                    for d in system.dlfms.values())
    lock_waits = sum(d.db.locks.metrics.waits
                     for d in system.dlfms.values())
    return {
        "shards": n_shards,
        "txns": txns,
        "txns_per_sec": round(txns / max(elapsed, 1e-9), 2),
        "p50_commit_s": _percentile(commit_latencies, 50),
        "p95_commit_s": _percentile(commit_latencies, 95),
        "deadlocks": deadlocks,
        "lock_waits": lock_waits,
        "retries": retries[0],
        "sim_seconds": round(elapsed, 6),
    }


def run_shard_sweep(cfg: BenchConfig) -> dict:
    """Commit throughput across fleet sizes; scaling is quoted largest
    over single-shard."""
    out = {}
    for n in cfg.shard_counts:
        out[str(n)] = run_shard_sweep_arm(cfg, n)
    lo = out[str(min(cfg.shard_counts))]
    hi = out[str(max(cfg.shard_counts))]
    out["scaling"] = round(
        hi["txns_per_sec"] / max(lo["txns_per_sec"], 1e-9), 2)
    return out


# --------------------------------------------------------------------- sentinels

def run_e6_sentinel(horizon: float = 300.0) -> dict:
    """Mini-E6 with the DEFAULT (flags-off) configuration: asynchronous
    phase-2 commit must still distributed-deadlock, synchronous must
    complete — the fast paths are opt-in and must not perturb this."""

    def scenario(sync_commit: bool) -> dict:
        dlfm_config = DLFMConfig.tuned()
        dlfm_config.local_db.isolation = "RR"
        dlfm_config.local_db.next_key_locking = True
        dlfm_config.local_db.lock_timeout = 60.0
        host_config = HostConfig(sync_commit=sync_commit)
        host_config.db.lock_timeout = 1e9
        system = System(seed=5, dlfm_config=dlfm_config,
                        host_config=host_config)
        done = {"T1": None, "T11": None, "T2": None}

        def setup():
            yield from system.host.create_datalink_table(
                "t", [("id", "INT"), ("f", "TEXT")], {"f": DatalinkSpec()})
            for name in ("a", "b", "c"):
                system.create_user_file("fs1", f"/d/{name}", owner="u")
            session = system.host.db.session()
            yield from session.execute("CREATE TABLE hot (id INT, v INT)")
            yield from session.execute(
                "INSERT INTO hot (id, v) VALUES (1, 0)")
            yield from session.commit()
            system.host.db.set_table_stats("hot", card=1_000_000,
                                           colcard={"id": 1_000_000})

        system.run(setup())

        def application_a():
            session = system.session()
            yield from session.execute(
                "INSERT INTO t (id, f) VALUES (?, ?)",
                (1, build_url("fs1", "/d/a")))
            yield Timeout(0.5)
            yield from session.commit()
            done["T1"] = system.sim.now
            try:
                yield from session.execute(
                    "UPDATE hot SET v = 1 WHERE id = 1")
                yield from session.execute(
                    "INSERT INTO t (id, f) VALUES (?, ?)",
                    (2, build_url("fs1", "/d/b")))
                yield from session.commit()
                done["T11"] = system.sim.now
            except TransactionAborted:
                yield from session.rollback()

        def application_b():
            session = system.session()
            yield Timeout(0.1)
            try:
                yield from session.execute(
                    "INSERT INTO t (id, f) VALUES (?, ?)",
                    (3, build_url("fs1", "/d/c")))
                yield Timeout(2.0)
                yield from session.execute(
                    "UPDATE hot SET v = 2 WHERE id = 1")
                yield from session.commit()
                done["T2"] = system.sim.now
            except TransactionAborted:
                yield from session.rollback()

        def root():
            system.sim.spawn(application_a(), "app-a")
            system.sim.spawn(application_b(), "app-b")
            yield Timeout(horizon)

        system.run(root(), until=horizon)
        dlfm = system.dlfms["fs1"]
        return {
            "completed": sum(1 for v in done.values() if v is not None),
            "commit_retries": dlfm.metrics.commit_retries,
        }

    async_mode = scenario(sync_commit=False)
    sync_mode = scenario(sync_commit=True)
    preserved = (async_mode["completed"] < 3
                 and async_mode["commit_retries"] >= 2
                 and sync_mode["completed"] == 3)
    return {
        "async_completed": async_mode["completed"],
        "async_commit_retries": async_mode["commit_retries"],
        "sync_completed": sync_mode["completed"],
        "preserved": preserved,
    }


def run_e8_sentinel(cfg: BenchConfig, files: int = 200,
                    wal_capacity: int = 120,
                    horizon: float = 300.0) -> dict:
    """Mini-E8 WITH the fast paths on: the delete-group daemon's
    log-full/batched-local-commit contrast is orthogonal to RPC batching
    and group commit and must survive them."""

    def arm(batch_n: int) -> dict:
        dlfm_config = DLFMConfig.tuned()
        dlfm_config.local_db.wal_capacity = wal_capacity
        dlfm_config.local_db.group_commit_window = cfg.group_commit_window
        dlfm_config.batch_commit_n = batch_n
        dlfm_config.commit_retry_delay = 5.0
        host_config = HostConfig(batch_datalinks=True)
        host_config.db.group_commit_window = cfg.group_commit_window
        system = System(seed=2, dlfm_config=dlfm_config,
                        host_config=host_config)
        dlfm = system.dlfms["fs1"]

        def setup():
            yield from system.host.create_datalink_table(
                "bulk", [("id", "INT"), ("doc", "TEXT")],
                {"doc": DatalinkSpec(recovery=False)})
            session = system.session()
            for i in range(files):
                path = f"/bulk/f{i:06d}"
                system.create_user_file("fs1", path, owner="load")
                yield from session.execute(
                    "INSERT INTO bulk (id, doc) VALUES (?, ?)",
                    (i, build_url("fs1", path)))
                if (i + 1) % 50 == 0:
                    yield from session.commit()
            yield from session.commit()

        system.run(setup())

        def drop_and_wait():
            session = system.session()
            yield from session.drop_table("bulk")
            yield from session.commit()
            yield Timeout(horizon)

        system.run(drop_and_wait(), until=horizon + 60)
        return {
            "log_fulls": dlfm.db.wal.metrics.log_fulls,
            "completed": dlfm.linked_count() == 0,
        }

    unbatched = arm(files * 10)
    batched = arm(50)
    preserved = (unbatched["log_fulls"] > 0
                 and not unbatched["completed"]
                 and batched["completed"]
                 and batched["log_fulls"] == 0)
    return {
        "unbatched_log_fulls": unbatched["log_fulls"],
        "unbatched_completed": unbatched["completed"],
        "batched_log_fulls": batched["log_fulls"],
        "batched_completed": batched["completed"],
        "preserved": preserved,
    }


# --------------------------------------------------------------------- driver

#: The history row this tree's harness writes. Bump per PR so the
#: BENCH_PERF.json ``history`` grows one row per PR (re-running the same
#: tree only refreshes its own row).
HISTORY_LABEL = "pr10-prepared-statements"


def update_history(history: list | None, entry: dict) -> list:
    """Append ``entry`` to the trajectory, replacing (in place in the
    ordering) an existing row with the same label. Rows from other PRs
    are preserved — the whole point of the trajectory."""
    updated = []
    replaced = False
    for row in history or []:
        if row.get("label") == entry["label"]:
            updated.append(entry)
            replaced = True
        else:
            updated.append(row)
    if not replaced:
        updated.append(entry)
    return updated


def run_bench(cfg: BenchConfig, history: list | None = None) -> dict:
    """Run the whole harness and return the BENCH_PERF document."""
    started = time.monotonic()
    arms = {arm: run_bulk_arm(cfg, arm) for arm in ARMS}
    base, fast = arms["baseline"], arms["fast"]
    ratios = {
        "rpc_reduction": round(base["rpcs"] / max(fast["rpcs"], 1), 2),
        "wal_force_reduction": round(
            base["wal_forces"] / max(fast["wal_forces"], 1), 2),
    }
    daemons = run_daemon_arms(cfg)
    multi_server = run_multi_server(cfg)
    shard_sweep = run_shard_sweep(cfg)
    recovery = run_recovery(cfg)
    top = str(max(cfg.ms_server_counts))
    e1 = {"off": run_e1_arm(cfg, "off"),
          "on": run_e1_arm(cfg, "on"),
          "auto": run_e1_arm(cfg, "auto")}
    burst = run_burst(cfg)
    rr_vs_si = run_rr_vs_si(cfg)
    load = run_load(cfg)
    metacat = run_metacat(cfg)
    headline_arm = run_headline(cfg)
    sentinels = {"e6": run_e6_sentinel(),
                 "e8": run_e8_sentinel(cfg)}
    top_shards = max(cfg.shard_counts)
    headline = (
        f"sharded fleet scales commit throughput {shard_sweep['scaling']}x "
        f"from 1 to {top_shards} shards (decision piggybacking + pooled "
        f"fan-out); adaptive commit path "
        f"{headline_arm['headline_ops_per_sec']} ops/s sustained; bulk "
        f"LOAD {load['speedup']}x at {cfg.load_files} files; "
        f"{burst['force_reduction']}x fewer WAL forces under a "
        f"{cfg.burst_clients}-client burst with auto; SI snapshot reads "
        f"cut the {cfg.rr_si_clients}-client mixed arm's "
        f"deadlocks+timeouts "
        f"{rr_vs_si['rr']['deadlocks'] + rr_vs_si['rr']['timeouts']}→"
        f"{rr_vs_si['si']['deadlocks'] + rr_vs_si['si']['timeouts']} and "
        f"p95 {rr_vs_si['p95_improvement']}x vs RR; prepared statements "
        f"{metacat['prepared_speedup']}x over interpolated SQL on the "
        f"{cfg.metacat_files}-file MetaCat catalog with auto-RUNSTATS "
        f"index plans ({metacat['auto_probe_plan']})")
    # The headline gate compares against THIS label's previous run (the
    # row about to be replaced), so a regression in the commit path fails
    # --check even before the trajectory is rewritten.
    prior = next((row for row in history or []
                  if row.get("label") == HISTORY_LABEL), None)
    headline_ref = (prior or {}).get("headline_ops_per_sec")
    entry = {
        "label": HISTORY_LABEL,
        "headline": headline,
        "rpc_reduction": ratios["rpc_reduction"],
        "wal_force_reduction": ratios["wal_force_reduction"],
        "archive_drain_speedup": daemons["archive_drain"]["speedup"],
        "restore_storm_speedup": daemons["restore_storm"]["speedup"],
        "multi_server_p95_speedup": multi_server[top]["p95_speedup"],
        "shard_scaling": shard_sweep["scaling"],
        "shard_top_txns_per_sec":
            shard_sweep[str(top_shards)]["txns_per_sec"],
        "recovery_speedup": recovery["speedup"],
        "recovery_first_commit_instant_s":
            recovery["instant"]["first_commit_s"],
        "recovery_first_commit_classic_s":
            recovery["classic"]["first_commit_s"],
        "e1_p95_on_s": e1["on"]["p95_latency_s"],
        "e1_p95_off_s": e1["off"]["p95_latency_s"],
        "e1_p95_auto_s": e1["auto"]["p95_latency_s"],
        "burst_force_reduction": burst["force_reduction"],
        "load_speedup": load["speedup"],
        "headline_ops_per_sec": headline_arm["headline_ops_per_sec"],
        "rr_si_deadlocks_rr": rr_vs_si["rr"]["deadlocks"],
        "rr_si_deadlocks_si": rr_vs_si["si"]["deadlocks"],
        "rr_si_timeouts_rr": rr_vs_si["rr"]["timeouts"],
        "rr_si_timeouts_si": rr_vs_si["si"]["timeouts"],
        "rr_si_p95_rr_s": rr_vs_si["rr"]["p95_txn_s"],
        "rr_si_p95_si_s": rr_vs_si["si"]["p95_txn_s"],
        "rr_si_p95_improvement": rr_vs_si["p95_improvement"],
        "metacat_prepared_speedup": metacat["prepared_speedup"],
        "metacat_prepared_stmts_per_s":
            metacat["prepared"]["stmts_per_s"],
        "metacat_interpolated_stmts_per_s":
            metacat["interpolated"]["stmts_per_s"],
        "metacat_auto_probe_plan": metacat["auto_probe_plan"],
        "metacat_auto_runstats_runs":
            metacat["ingest"]["auto_runstats_runs"],
    }
    history = update_history(history, entry)
    return {
        "schema": 1,
        "seed": cfg.seed,
        "config": {
            "links": cfg.links,
            "clients": cfg.clients,
            "txns": cfg.txns,
            "group_commit_window": cfg.group_commit_window,
            "e1_clients": cfg.e1_clients,
            "e1_duration": cfg.e1_duration,
            "drain_files": cfg.drain_files,
            "drain_workers": cfg.drain_workers,
            "storm_restores": cfg.storm_restores,
            "storm_workers": cfg.storm_workers,
            "ms_clients": cfg.ms_clients,
            "ms_txns": cfg.ms_txns,
            "ms_server_counts": list(cfg.ms_server_counts),
            "shard_clients": cfg.shard_clients,
            "shard_txns": cfg.shard_txns,
            "shard_links": cfg.shard_links,
            "shard_counts": list(cfg.shard_counts),
            "recovery_txns": cfg.recovery_txns,
            "recovery_checkpoint_frac": cfg.recovery_checkpoint_frac,
            "burst_clients": cfg.burst_clients,
            "burst_txns": cfg.burst_txns,
            "rr_si_clients": cfg.rr_si_clients,
            "rr_si_txns": cfg.rr_si_txns,
            "rr_si_rows": cfg.rr_si_rows,
            "rr_si_lock_timeout": cfg.rr_si_lock_timeout,
            "load_files": cfg.load_files,
            "load_piece": cfg.load_piece,
            "load_index_entry": cfg.load_index_entry,
            "headline_clients": cfg.headline_clients,
            "headline_txns": cfg.headline_txns,
            "headline_links": cfg.headline_links,
            "headline_load_files": cfg.headline_load_files,
            "metacat_files": cfg.metacat_files,
            "metacat_queries": cfg.metacat_queries,
            "metacat_compile_cpu": cfg.metacat_compile_cpu,
            "quick": cfg.quick,
        },
        "bulk": {"arms": arms, "ratios": ratios},
        "daemons": daemons,
        "multi_server": multi_server,
        "shard_sweep": shard_sweep,
        "recovery": recovery,
        "e1": e1,
        "burst": burst,
        "rr_vs_si": rr_vs_si,
        "load": load,
        "metacat": metacat,
        "headline_arm": headline_arm,
        "headline_ops_per_sec": headline_arm["headline_ops_per_sec"],
        "headline_ops_per_sec_ref": headline_ref,
        "sentinels": sentinels,
        "history": history,
        "headline": headline,
        "wall_clock_s": round(time.monotonic() - started, 3),
    }


def check(doc: dict) -> list[str]:
    """Acceptance gates; returns a list of failure strings (empty = pass)."""
    failures = []
    ratios = doc["bulk"]["ratios"]
    if ratios["rpc_reduction"] < 10:
        failures.append(
            f"rpc_reduction {ratios['rpc_reduction']} < 10x")
    if ratios["wal_force_reduction"] < 2:
        failures.append(
            f"wal_force_reduction {ratios['wal_force_reduction']} < 2x")
    daemons = doc.get("daemons", {})
    drain = daemons.get("archive_drain", {})
    if drain.get("speedup", 0) < 3:
        failures.append(
            f"archive_drain speedup {drain.get('speedup')} < 3x with "
            f"{drain.get('pooled', {}).get('workers')} copy workers")
    storm = daemons.get("restore_storm", {})
    if storm.get("speedup", 0) < 2:
        failures.append(
            f"restore_storm speedup {storm.get('speedup')} < 2x with "
            f"{storm.get('pooled', {}).get('workers')} retrieve workers")
    four = doc.get("multi_server", {}).get("4", {})
    if four.get("p95_speedup", 0) < 2.5:
        failures.append(
            f"multi_server p95 commit speedup {four.get('p95_speedup')} "
            f"< 2.5x at 4 participants")
    sweep = doc.get("shard_sweep", {})
    if sweep and sweep.get("scaling", 0) < 2:
        counts = doc.get("config", {}).get("shard_counts", [])
        failures.append(
            f"shard-sweep commit-throughput scaling {sweep.get('scaling')} "
            f"< 2x from 1 to {max(counts) if counts else '?'} shards")
    recovery = doc.get("recovery", {})
    if recovery.get("speedup", 0) < 3:
        failures.append(
            f"instant-recovery first-commit speedup "
            f"{recovery.get('speedup')} < 3x")
    if recovery.get("classic", {}).get("seed_txns", 0) < 500:
        failures.append(
            f"recovery arm seeded only "
            f"{recovery.get('classic', {}).get('seed_txns')} committed "
            f"txns (< 500)")
    e1 = doc.get("e1", {})
    if "auto" in e1:
        off_p95 = e1["off"]["p95_latency_s"] or 0
        auto_p95 = e1["auto"]["p95_latency_s"] or 0
        if auto_p95 > 2 * off_p95:
            failures.append(
                f"E1 auto-window p95 {auto_p95}s > 2x the no-window "
                f"baseline {off_p95}s at low concurrency")
    burst = doc.get("burst", {})
    if burst and burst.get("force_reduction", 0) < 2:
        failures.append(
            f"burst force_reduction {burst.get('force_reduction')} < 2x "
            f"under the {burst.get('off', {}).get('clients')}-client "
            f"burst with auto")
    rr_si = doc.get("rr_vs_si", {})
    if rr_si:
        rr, si = rr_si["rr"], rr_si["si"]
        rr_stuck = rr["deadlocks"] + rr["timeouts"]
        si_stuck = si["deadlocks"] + si["timeouts"]
        if not rr_stuck:
            failures.append(
                "rr-vs-si arm built no contention under RR (0 deadlocks "
                "+ timeouts) — the comparison is vacuous")
        if si_stuck >= rr_stuck:
            failures.append(
                f"SI deadlocks+timeouts ({si_stuck}) not strictly below "
                f"RR ({rr_stuck}) in the rr-vs-si arm")
        if (si["p95_txn_s"] or 0) >= (rr["p95_txn_s"] or 0):
            failures.append(
                f"SI p95 {si['p95_txn_s']}s not below RR p95 "
                f"{rr['p95_txn_s']}s in the rr-vs-si arm")
    load = doc.get("load", {})
    if load:
        if load.get("cold", {}).get("files", 0) < 10_000:
            failures.append(
                f"LOAD arm ingested only "
                f"{load.get('cold', {}).get('files')} files (< 10k)")
        if load.get("speedup", 0) < 2:
            failures.append(
                f"bulk LOAD speedup {load.get('speedup')} < 2x")
    metacat = doc.get("metacat", {})
    if metacat:
        speedup = metacat.get("prepared_speedup") or 0
        if speedup < 5:
            failures.append(
                f"metacat prepared-statement speedup {speedup} < 5x over "
                f"interpolated SQL (compile_cpu="
                f"{doc.get('config', {}).get('metacat_compile_cpu')})")
        if metacat.get("auto_probe_plan") != "index_scan":
            failures.append(
                f"metacat probe plan {metacat.get('auto_probe_plan')!r} "
                f"did not flip to index_scan under auto-RUNSTATS")
        if metacat.get("auto_stats", {}).get("manual"):
            failures.append(
                "metacat auto arm has MANUAL statistics — the flip must "
                "come from auto-RUNSTATS, not set_stats pinning")
        if metacat.get("ingest", {}).get("auto_runstats_runs", 0) < 1:
            failures.append(
                "metacat ingest triggered zero auto-RUNSTATS refreshes")
        if metacat.get("cold", {}).get("probe_plan") != "table_scan":
            failures.append(
                f"metacat cold-statistics control plan "
                f"{metacat.get('cold', {}).get('probe_plan')!r} is not "
                f"table_scan — the comparison is vacuous")
    ops = doc.get("headline_ops_per_sec")
    if ops is not None and ops <= 0:
        failures.append(f"headline_ops_per_sec {ops} <= 0")
    ref = doc.get("headline_ops_per_sec_ref")
    if ops is not None and ref and ops < 0.9 * ref:
        failures.append(
            f"headline_ops_per_sec {ops} is more than 10% below this "
            f"label's previous run ({ref})")
    for name, sentinel in doc["sentinels"].items():
        if not sentinel["preserved"]:
            failures.append(f"sentinel {name} outcome NOT preserved")
    return failures

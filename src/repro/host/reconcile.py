"""The Reconcile utility (paper §3.4).

After a point-in-time restore the host database's datalink values and a
DLFM's metadata can disagree. Reconcile walks every datalink column on
the host side, ships the authoritative (filename, recovery id) list to
each DLFM (which loads it into a temp table and EXCEPTs it against its
File table), and fixes both sides: missing links are re-established,
orphaned links released, and host rows whose files no longer exist have
their datalink value nulled.
"""

from __future__ import annotations

from collections import defaultdict

from repro.dlfm import api
from repro.host.datalink import parse_url, shadow_column
from repro.kernel import rpc


def reconcile(host):
    """Generator: run the utility; returns a per-server summary."""
    # 1. Collect the host's authoritative references per server.
    per_server = defaultdict(list)
    locations = defaultdict(list)  # (server, path) → (table, col, where-rid)
    session = host.db.session()
    for table, columns in sorted(host.datalink_columns.items()):
        for column, spec in sorted(columns.items()):
            rows = yield from session.execute(
                f"SELECT {column}, {shadow_column(column)} FROM {table}")
            grp_id = host.group_ids[(table, column)]
            for url, recovery_id in rows:
                if url is None:
                    continue
                server, path = parse_url(url)
                per_server[server].append(
                    (path, recovery_id, grp_id, spec.access_control,
                     spec.recovery_flag))
                locations[(server, path)].append((table, column, url))
    yield from session.commit()

    # 2. Each DLFM reconciles against its authoritative slice.
    summary = {}
    for server in sorted(host.dlfms):
        dlfm = host.dlfms[server]
        chan = dlfm.connect()
        try:
            result = yield from rpc.call(
                host.sim, chan, api.ReconcileFiles(
                    host.dbid, tuple(per_server.get(server, ()))))
        finally:
            chan.close()
        # 3. Dangling host references (file gone everywhere): null the
        #    datalink value so the database stops referencing a ghost.
        #    One session and one prepared UPDATE per (table, column)
        #    shape — the per-row commits stay, the per-row re-prepare
        #    does not.
        nulled = 0
        session = host.db.session()
        fixers: dict = {}
        for path in result["dangling"]:
            for table, column, url in locations.get((server, path), ()):
                fixer = fixers.get((table, column))
                if fixer is None:
                    fixer = yield from session.prepare(
                        f"UPDATE {table} SET {column} = NULL, "
                        f"{shadow_column(column)} = NULL "
                        f"WHERE {column} = ?")
                    fixers[(table, column)] = fixer
                yield from fixer.execute((url,))
                yield from session.commit()
                nulled += 1
        result["nulled"] = nulled
        summary[server] = result
    return summary

"""XA (global/distributed) transactions at the host database (§3.3).

"In the case of an XA transaction, the host database also generates a
local transaction id that is different from the global XA transaction
id. ... [the local] id is passed to the DLFM in each of the API
invocation."

Here the host is itself a *participant* of an external transaction
manager while remaining the *coordinator* of its DLFMs:

* :func:`xa_prepare` — durably registers the gtrid → (local txn id,
  participant servers) mapping, prepares every DLFM sub-transaction, and
  prepares the host's own local transaction (PREPARE log record, locks
  kept). From then on the outcome belongs to the TM.
* :func:`xa_commit` / :func:`xa_rollback` — the TM's verdict. Commit
  makes the local commit record the durable decision, then drives
  phase 2 at the DLFMs; a crash in between is repaired by
  :func:`xa_recover` + :func:`xa_finish_pending`.

Note what the DLFMs see: only the LOCAL transaction id — monotonically
increasing per host database — never the gtrid. That is the paper's
design point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dlfm import api
from repro.errors import DataLinkError, ReproError, TransactionAborted
from repro.kernel import rpc


@dataclass(frozen=True)
class XAPrepareResult:
    """Phase-1 outcome the external TM sees for this host branch.

    ``vote == "commit"``: the branch is indoubt and the TM must call
    :func:`xa_commit` or :func:`xa_rollback`. ``vote == "read-only"``
    (XA_RDONLY): the whole branch — every DLFM participant and the
    host's own local transaction — read without writing, so it was
    released at phase 1: no PREPARE record, no ``xa_pending`` rows, and
    the TM must NOT drive phase 2 for it. ``readonly_servers`` lists
    the participants individually released by their read-only vote
    (phase 2 skips them even when the branch as a whole votes commit).
    """

    txn_id: int
    vote: str
    readonly_servers: tuple = ()


def _bootstrap(host) -> None:
    if "xa_pending" not in host.db.catalog.tables:
        from repro.sql.parser import parse as parse_sql
        host.db.ddl(parse_sql(
            "CREATE TABLE xa_pending (gtrid TEXT, txn_id INT, server TEXT)"))
        host.db.ddl(parse_sql(
            "CREATE INDEX xa_pending_g ON xa_pending (gtrid)"))
        host.db.set_table_stats("xa_pending", card=100_000,
                                colcard={"gtrid": 100_000})


def xa_prepare(session, gtrid: str):
    """Generator: phase 1 of the global transaction for this host branch.

    Returns an :class:`XAPrepareResult` carrying the LOCAL transaction
    id (distinct from ``gtrid``) and this branch's vote.
    """
    host = session.host
    _bootstrap(host)
    if session.session.txn is None and not session.participants:
        raise DataLinkError(f"nothing to prepare for gtrid {gtrid!r}")
    txn_id = session._ensure_txn()

    # 1. Durable registration BEFORE voting yes anywhere.
    reg = host.db.session()
    yield from reg.execute(
        "INSERT INTO xa_pending (gtrid, txn_id, server) VALUES (?, ?, ?)",
        (gtrid, txn_id, "*"))
    for server in sorted(session.participants):
        yield from reg.execute(
            "INSERT INTO xa_pending (gtrid, txn_id, server) "
            "VALUES (?, ?, ?)", (gtrid, txn_id, server))
    yield from reg.commit()

    # 2. Prepare the DLFM sub-transactions (they see the local txn id) —
    # fanned out under scatter-gather. Read-only voters are released at
    # end of phase 1 and pruned from the pending registration so the
    # TM's eventual commit skips them in phase 2.
    servers = sorted(session.participants)
    try:
        if host.config.scatter_gather:
            replies = yield from rpc.scatter(
                host.sim,
                [(session._channel(server), api.Prepare(host.dbid, txn_id))
                 for server in servers],
                name=f"xa-prepare-{txn_id}")
        else:
            replies = []
            for server in servers:
                replies.append((yield from session._send_control(
                    server, api.Prepare(host.dbid, txn_id))))
    except ReproError as error:
        yield from xa_rollback(host, gtrid, session=session)
        raise TransactionAborted(
            f"gtrid {gtrid!r}: participant failed prepare: {error}",
            reason="prepare") from error
    readonly = [server for server, reply in zip(servers, replies)
                if (reply or {}).get("vote") == "read-only"]
    if readonly:
        prune = host.db.session()
        for server in readonly:
            session.participants.discard(server)
            host.metrics.readonly_votes += 1
            yield from prune.execute(
                "DELETE FROM xa_pending WHERE gtrid = ? AND server = ?",
                (gtrid, server))
        yield from prune.commit()

    local_txn = session.session.txn
    if not session.participants and (local_txn is None
                                     or local_txn.last_lsn is None):
        # 3a. Read-only fast path: every participant voted read-only and
        # the local transaction wrote nothing — release the whole branch
        # at phase 1 (XA_RDONLY). Read locks drop now, no PREPARE record
        # is forced, the registration is erased, and the TM never drives
        # phase 2 for this gtrid.
        if local_txn is not None:
            yield from host.db.commit(local_txn)
        session.session.txn = None
        yield from _forget(host, gtrid)
        host.metrics.readonly_branches += 1
        result = XAPrepareResult(txn_id, "read-only", tuple(readonly))
        host.xa_votes[gtrid] = result
        return result

    # 3. Prepare the host's own local transaction.
    yield from host.db.prepare(local_txn)
    session.session.txn = None  # the session must not touch it any more
    result = XAPrepareResult(txn_id, "commit", tuple(readonly))
    host.xa_votes[gtrid] = result
    return result


def _pending_rows(host, gtrid: str):
    reader = host.db.session()
    rows = yield from reader.execute(
        "SELECT txn_id, server FROM xa_pending WHERE gtrid = ?", (gtrid,))
    yield from reader.commit()
    if not rows.rows:
        raise DataLinkError(f"unknown gtrid {gtrid!r}")
    txn_id = rows.rows[0][0]
    servers = sorted(s for _, s in rows.rows if s != "*")
    return txn_id, servers


def xa_commit(host, gtrid: str):
    """Generator: the TM decided commit for this branch.

    Returns ``{"txn_id", "servers", "readonly"}`` — the participants
    phase 2 was driven to, and those already released at phase 1 by
    their read-only vote (no phase-2 message goes to them).
    """
    txn_id, servers = yield from _pending_rows(host, gtrid)
    txn = host.db.find_prepared(txn_id)
    # The local COMMIT record (forced) is the branch's durable decision.
    yield from host.db.commit(txn)
    yield from _drive_phase2(host, gtrid, txn_id, servers)
    vote = host.xa_votes.pop(gtrid, None)
    return {"txn_id": txn_id, "servers": tuple(servers),
            "readonly": vote.readonly_servers if vote is not None else ()}


def xa_rollback(host, gtrid: str, session=None):
    """Generator: the TM decided rollback for this branch."""
    txn_id, servers = yield from _pending_rows(host, gtrid)
    chans = []
    for server in servers:
        try:
            chans.append(host.dlfms[server].connect())
        except ReproError:
            pass  # participant down; presumed abort mops up on restart
    try:
        # Fan the Aborts out; a down participant's error is swallowed
        # (presumed abort will mop up when it comes back).
        yield from rpc.scatter(
            host.sim,
            [(chan, api.Abort(host.dbid, txn_id)) for chan in chans],
            name=f"xa-abort-{txn_id}", return_exceptions=True)
    finally:
        for chan in chans:
            chan.close()
    try:
        txn = host.db.find_prepared(txn_id)
    except ReproError:
        txn = None  # never reached local prepare (prepare-phase failure)
    if txn is not None:
        yield from host.db.rollback(txn)
    elif session is not None:
        yield from session.session.rollback()
    yield from _forget(host, gtrid)
    host.xa_votes.pop(gtrid, None)
    return txn_id


def _drive_phase2(host, gtrid: str, txn_id: int, servers):
    chans = [host.dlfms[server].connect() for server in servers]
    try:
        if host.config.scatter_gather:
            yield from rpc.scatter(
                host.sim,
                [(chan, api.Commit(host.dbid, txn_id)) for chan in chans],
                name=f"xa-phase2-{txn_id}")
        else:
            for chan in chans:
                yield from rpc.call(host.sim, chan,
                                    api.Commit(host.dbid, txn_id))
    finally:
        for chan in chans:
            chan.close()
    yield from _forget(host, gtrid)


def _forget(host, gtrid: str):
    cleaner = host.db.session()
    yield from cleaner.execute("DELETE FROM xa_pending WHERE gtrid = ?",
                               (gtrid,))
    yield from cleaner.commit()


def xa_recover(host):
    """Generator: classify surviving branches (after a host restart too).

    Returns ``{gtrid: {"state", "txn_id", "readonly"}}``:

    * ``state == "indoubt"`` — the local transaction is still prepared;
      the TM must call :func:`xa_commit` or :func:`xa_rollback`.
    * ``state == "commit-pending"`` — the local commit happened but
      phase 2 never finished; :func:`xa_finish_pending` re-drives it.

    ``readonly`` lists participants released at phase 1 by a read-only
    vote (best effort: the vote record is volatile, so after a restart
    it is empty — correctly so, since those participants were already
    pruned from the durable registration and need no phase 2). Branches
    that voted read-only as a whole never appear here: they finished at
    phase 1 and left no ``xa_pending`` rows behind.
    """
    if "xa_pending" not in host.db.catalog.tables:
        return {}
    reader = host.db.session()
    rows = yield from reader.execute(
        "SELECT gtrid, txn_id FROM xa_pending WHERE server = ?", ("*",))
    yield from reader.commit()
    prepared_ids = {t.id for t in host.db.indoubt_transactions()}
    status = {}
    for gtrid, txn_id in rows.rows:
        vote = host.xa_votes.get(gtrid)
        status[gtrid] = {
            "state": ("indoubt" if txn_id in prepared_ids
                      else "commit-pending"),
            "txn_id": txn_id,
            "readonly": vote.readonly_servers if vote is not None else ()}
    return status


def xa_finish_pending(host):
    """Generator: re-drive phase 2 for every committed-but-unfinished
    branch (idempotent at the DLFMs)."""
    status = yield from xa_recover(host)
    finished = []
    for gtrid, info in sorted(status.items()):
        if info["state"] != "commit-pending":
            continue
        txn_id, servers = yield from _pending_rows(host, gtrid)
        yield from _drive_phase2(host, gtrid, txn_id, servers)
        finished.append(gtrid)
    return finished

"""The DATALINK column type: URL values plus per-column behaviour."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DataLinkError

URL_SCHEME = "dlfs://"


@dataclass(frozen=True)
class DatalinkSpec:
    """Behaviour of one DATALINK column (paper §2/§3: the column
    definition's constraints for integrity, access control, recovery)."""

    #: "full": DLFM takes ownership, file is read-only, reads need tokens.
    #: "partial": file keeps its owner; DLFF upcalls guard delete/rename.
    access_control: str = "full"
    #: Archive linked files for coordinated point-in-time recovery?
    recovery: bool = True

    def __post_init__(self):
        if self.access_control not in ("full", "partial"):
            raise DataLinkError(
                f"bad access_control {self.access_control!r}")

    @property
    def recovery_flag(self) -> str:
        return "yes" if self.recovery else "no"


def build_url(server: str, path: str) -> str:
    if not path.startswith("/"):
        raise DataLinkError(f"path must be absolute: {path!r}")
    return f"{URL_SCHEME}{server}{path}"


def parse_url(url: str) -> tuple[str, str]:
    """Split ``dlfs://server/path`` → (server, path)."""
    if not url.startswith(URL_SCHEME):
        raise DataLinkError(f"not a DATALINK URL: {url!r}")
    rest = url[len(URL_SCHEME):]
    slash = rest.find("/")
    if slash <= 0:
        raise DataLinkError(f"malformed DATALINK URL: {url!r}")
    return rest[:slash], rest[slash:]


def shadow_column(column: str) -> str:
    """The engine-maintained column holding the link's recovery id."""
    return f"{column}__recid"

"""Indoubt-transaction resolution (paper §3.3).

"If DLFM fails after prepare then that transaction remains in an indoubt
state. It is the host database's responsibility for resolving the
indoubt transactions with the DLFM. Either host database restart
processing does it, or, if DLFM is unavailable at restart, host database
spawns a daemon whose sole purpose is to poll the DLFM periodically and
resolve the indoubts when the DLFM is up."
"""

from __future__ import annotations

from repro.dlfm import api
from repro.errors import ReproError
from repro.kernel import rpc
from repro.kernel.sim import Timeout


def _resolver_session(host):
    """The host's cached resolver session: keeps the poll SELECT and the
    per-transaction forget DELETE on cached plans across poller passes
    instead of re-preparing them on a fresh session every time."""
    session = host._indoubt_session
    if session is None:
        if host.config.read_isolation == "SI":
            session = host.db.session("SI")
        else:
            session = host.db.session()
        host._indoubt_session = session
    return session


def resolve_indoubts(host):
    """Generator: one full resolution pass. Returns a summary dict.

    Presumed abort: first, re-drive phase 2 for every transaction with a
    durable commit decision — ``dlk_indoubt`` rows and piggybacked
    COMMIT-payload decisions alike; then every transaction a DLFM still
    reports as prepared has no decision and is aborted. The re-drive
    fans out across all (transaction, server) pairs at once
    (scatter-gather): after a crash mid-fan-out many transactions are in
    doubt together, and re-driving them serially would stretch recovery
    by a round-trip per pair. A transaction is forgotten — ONE
    ``DELETE ... WHERE txn_id = ?`` covering all its decision rows, one
    FORGET record for a piggybacked decision — only when every one of
    its participants acknowledged; partially-acked transactions keep
    their decision intact and the poller re-drives the idempotent
    Commits on the next pass.
    """
    committed = aborted = 0

    # 1. Collect every live decision: durable table rows ∪ piggybacked.
    session = _resolver_session(host)
    try:
        rows = yield from session.execute(
            "SELECT txn_id, server FROM dlk_indoubt")
        yield from session.commit()
    except ReproError:
        host._indoubt_session = None  # do not reuse a poisoned session
        raise
    decisions: dict[int, set] = {}
    table_txns = set()
    for txn_id, server in rows.rows:
        decisions.setdefault(txn_id, set()).add(server)
        table_txns.add(txn_id)
    for txn_id, servers in host.pending_decisions().items():
        decisions.setdefault(txn_id, set()).update(servers)

    # 2. Re-drive phase 2, all (txn, server) pairs at once.
    pending = sorted((txn_id, server)
                     for txn_id, servers in decisions.items()
                     for server in servers)
    first_error = None
    if pending:
        acked: dict[int, set] = {}
        chans = [host.dlfms[server].connect() for _, server in pending]
        try:
            outcomes = yield from rpc.scatter(
                host.sim,
                [(chan, api.Commit(host.dbid, txn_id))
                 for chan, (txn_id, _) in zip(chans, pending)],
                name="indoubt-commit", return_exceptions=True)
        finally:
            for chan in chans:
                chan.close()
        for (txn_id, server), outcome in zip(pending, outcomes):
            if isinstance(outcome, BaseException):
                if first_error is None:
                    first_error = outcome
                continue
            acked.setdefault(txn_id, set()).add(server)
            committed += 1
            host.metrics.indoubt_commits += 1
        # 3. Forget fully-acknowledged transactions — one prepared
        #    DELETE executed per transaction.
        try:
            forget = yield from session.prepare(
                "DELETE FROM dlk_indoubt WHERE txn_id = ?")
            for txn_id in sorted(acked):
                if acked[txn_id] != decisions[txn_id]:
                    continue  # partial ack: keep the decision, retry later
                if txn_id in table_txns:
                    yield from forget.execute((txn_id,))
                host.forget_decision(txn_id)
            yield from session.commit()
        except ReproError:
            host._indoubt_session = None
            raise
    if first_error is not None:
        raise first_error

    # 4. Anything still prepared at a DLFM has no decision → abort.
    counts = yield from rpc.gather_all(
        host.sim,
        [_sweep_server(host, server) for server in sorted(host.dlfms)],
        name="indoubt-sweep")
    aborted = sum(counts)
    return {"committed": committed, "aborted": aborted}


def _sweep_server(host, server: str):
    """Generator: abort one server's decision-less prepared txns."""
    chan = host.dlfms[server].connect()
    aborted = 0
    try:
        indoubt = yield from rpc.call(host.sim, chan,
                                      api.ListIndoubt(host.dbid))
        for txn_id in indoubt:
            yield from rpc.call(host.sim, chan,
                                api.Abort(host.dbid, txn_id))
            aborted += 1
            host.metrics.indoubt_aborts += 1
    finally:
        chan.close()
    return aborted


def indoubt_poller(host, server: str):
    """Generator (daemon): poll an unavailable DLFM until it comes back,
    then resolve. Spawn with ``sim.spawn(indoubt_poller(host, name))``."""
    while True:
        try:
            result = yield from resolve_indoubts(host)
            return result
        except ReproError:
            yield Timeout(host.config.indoubt_poll_period)

"""Indoubt-transaction resolution (paper §3.3).

"If DLFM fails after prepare then that transaction remains in an indoubt
state. It is the host database's responsibility for resolving the
indoubt transactions with the DLFM. Either host database restart
processing does it, or, if DLFM is unavailable at restart, host database
spawns a daemon whose sole purpose is to poll the DLFM periodically and
resolve the indoubts when the DLFM is up."
"""

from __future__ import annotations

from repro.dlfm import api
from repro.errors import ReproError
from repro.kernel import rpc
from repro.kernel.sim import Timeout


def resolve_indoubts(host):
    """Generator: one full resolution pass. Returns a summary dict.

    Presumed abort: first, re-drive phase 2 for every transaction with a
    durable commit-decision row; then every transaction a DLFM still
    reports as prepared has no decision row and is aborted.
    """
    committed = aborted = 0

    # 1. Re-drive forgotten phase-2 commits.
    session = host.db.session()
    rows = yield from session.execute(
        "SELECT txn_id, server FROM dlk_indoubt")
    yield from session.commit()
    for txn_id, server in sorted(rows.rows):
        dlfm = host.dlfms[server]
        chan = dlfm.connect()
        try:
            yield from rpc.call(host.sim, chan,
                                api.Commit(host.dbid, txn_id))
        finally:
            chan.close()
        session = host.db.session()
        yield from session.execute(
            "DELETE FROM dlk_indoubt WHERE txn_id = ? AND server = ?",
            (txn_id, server))
        yield from session.commit()
        committed += 1
        host.metrics.indoubt_commits += 1

    # 2. Anything still prepared at a DLFM has no decision row → abort.
    for server in sorted(host.dlfms):
        dlfm = host.dlfms[server]
        chan = dlfm.connect()
        try:
            indoubt = yield from rpc.call(host.sim, chan,
                                          api.ListIndoubt(host.dbid))
            for txn_id in indoubt:
                yield from rpc.call(host.sim, chan,
                                    api.Abort(host.dbid, txn_id))
                aborted += 1
                host.metrics.indoubt_aborts += 1
        finally:
            chan.close()
    return {"committed": committed, "aborted": aborted}


def indoubt_poller(host, server: str):
    """Generator (daemon): poll an unavailable DLFM until it comes back,
    then resolve. Spawn with ``sim.spawn(indoubt_poller(host, name))``."""
    while True:
        try:
            result = yield from resolve_indoubts(host)
            return result
        except ReproError:
            yield Timeout(host.config.indoubt_poll_period)

"""Indoubt-transaction resolution (paper §3.3).

"If DLFM fails after prepare then that transaction remains in an indoubt
state. It is the host database's responsibility for resolving the
indoubt transactions with the DLFM. Either host database restart
processing does it, or, if DLFM is unavailable at restart, host database
spawns a daemon whose sole purpose is to poll the DLFM periodically and
resolve the indoubts when the DLFM is up."
"""

from __future__ import annotations

from repro.dlfm import api
from repro.errors import ReproError
from repro.kernel import rpc
from repro.kernel.sim import Timeout


def resolve_indoubts(host):
    """Generator: one full resolution pass. Returns a summary dict.

    Presumed abort: first, re-drive phase 2 for every transaction with a
    durable commit-decision row; then every transaction a DLFM still
    reports as prepared has no decision row and is aborted. Both steps
    fan out across the decision rows / servers (scatter-gather): after a
    crash mid-fan-out many transactions are in doubt at once, and
    re-driving them serially would stretch recovery by a round-trip per
    row. Partial progress survives a failure — rows whose re-drive
    succeeded are forgotten before the first error is re-raised (the
    poller retries the remainder).
    """
    committed = aborted = 0

    # 1. Re-drive forgotten phase-2 commits, all rows at once.
    session = host.db.session()
    rows = yield from session.execute(
        "SELECT txn_id, server FROM dlk_indoubt")
    yield from session.commit()
    pending = sorted(rows.rows)
    first_error = None
    if pending:
        chans = [host.dlfms[server].connect() for _, server in pending]
        try:
            outcomes = yield from rpc.scatter(
                host.sim,
                [(chan, api.Commit(host.dbid, txn_id))
                 for chan, (txn_id, _) in zip(chans, pending)],
                name="indoubt-commit", return_exceptions=True)
        finally:
            for chan in chans:
                chan.close()
        cleaner = host.db.session()
        for (txn_id, server), outcome in zip(pending, outcomes):
            if isinstance(outcome, BaseException):
                if first_error is None:
                    first_error = outcome
                continue
            yield from cleaner.execute(
                "DELETE FROM dlk_indoubt WHERE txn_id = ? AND server = ?",
                (txn_id, server))
            committed += 1
            host.metrics.indoubt_commits += 1
        yield from cleaner.commit()
    if first_error is not None:
        raise first_error

    # 2. Anything still prepared at a DLFM has no decision row → abort.
    counts = yield from rpc.gather_all(
        host.sim,
        [_sweep_server(host, server) for server in sorted(host.dlfms)],
        name="indoubt-sweep")
    aborted = sum(counts)
    return {"committed": committed, "aborted": aborted}


def _sweep_server(host, server: str):
    """Generator: abort one server's decision-less prepared txns."""
    chan = host.dlfms[server].connect()
    aborted = 0
    try:
        indoubt = yield from rpc.call(host.sim, chan,
                                      api.ListIndoubt(host.dbid))
        for txn_id in indoubt:
            yield from rpc.call(host.sim, chan,
                                api.Abort(host.dbid, txn_id))
            aborted += 1
            host.metrics.indoubt_aborts += 1
    finally:
        chan.close()
    return aborted


def indoubt_poller(host, server: str):
    """Generator (daemon): poll an unavailable DLFM until it comes back,
    then resolve. Spawn with ``sim.spawn(indoubt_poller(host, name))``."""
    while True:
        try:
            result = yield from resolve_indoubts(host)
            return result
        except ReproError:
            yield Timeout(host.config.indoubt_poll_period)

"""Application sessions on the host database, with the datalink engine.

``HostSession.execute`` accepts ordinary SQL. For tables with DATALINK
columns the datalink engine intercepts DML exactly as in the paper (§2):

* INSERT — each non-NULL datalink value triggers a LinkFile to the DLFM
  named in the URL, in the same transaction;
* DELETE — the engine pre-reads the affected rows' datalink values (FOR
  UPDATE) and sends UnlinkFile for each;
* UPDATE of a datalink column — UnlinkFile(old) + LinkFile(new), the
  same-transaction unlink/relink the paper calls an important customer
  requirement.

Statement failures are compensated with in_backout requests plus a host
savepoint rollback; severe errors (deadlock at either side) roll back the
full transaction. COMMIT runs the 2PC coordinator: Prepare to every
participant, durable decision row, then phase-2 Commit — synchronously by
default (lesson §4), asynchronously only for experiment E6.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Optional

from repro.dlfm import api
from repro.errors import (DataLinkError, ReproError, StaleRouteError,
                          TransactionAborted)
from repro.host.datalink import parse_url, shadow_column
from repro.host.render import count_params, render_expr
from repro.kernel import rpc
from repro.kernel.sim import Timeout
from repro.sql import ast
from repro.sql.parser import parse as parse_sql


class HostSession:
    _ids = itertools.count(1)

    def __init__(self, host):
        self.host = host
        self.sim = host.sim
        self.session = host.db.session()
        self.id = next(HostSession._ids)
        self._chans: dict[str, object] = {}   # server → DLFM child channel
        self.participants: set[str] = set()
        self.txn_id: Optional[int] = None
        self.pending_drops: list[str] = []
        #: RPC-batching fast path (config.batch_datalinks): ordered
        #: per-server op buffers, shipped as one api.Batch per server at
        #: commit with Prepare piggybacked on the final envelope.
        self._buffered: dict[str, list] = {}
        self._stmt_seq = itertools.count(1)
        self._parse_cache: dict[str, ast.Statement] = {}
        #: Cached session for phase-2 decision forgetting (sync mode):
        #: opening a fresh host session per committed transaction was
        #: pure overhead. Lazily created, dropped on error.
        self._decision_session = None
        #: Set once the 2PC commit decision is durable (decision rows +
        #: local commit). From then on the transaction IS committed:
        #: phase-2 failures are resolved by in-doubt re-drive, never by
        #: sending Abort to the participants.
        self._decided = False

    # ------------------------------------------------------------------ txn plumbing

    def _ensure_txn(self) -> int:
        txn = self.session._require_txn()
        self.txn_id = txn.id
        return txn.id

    def txn_id_for(self, server: str) -> int:
        return self._ensure_txn()

    def _channel(self, server: str):
        chan = self._chans.get(server)
        if chan is None or chan.closed:
            dlfm = self.host.dlfms.get(server)
            if dlfm is None:
                raise DataLinkError(f"unknown file server {server!r}")
            chan = dlfm.connect()
            self._chans[server] = chan
        return chan

    def dlfm_call(self, server: str, req):
        """Generator: send a transactional op, opening the sub-transaction
        on first contact (BeginTxn carries the host transaction id)."""
        txn_id = self._ensure_txn()
        chan = self._channel(server)
        if server not in self.participants:
            yield from rpc.call(self.sim, chan,
                                api.BeginTxn(self.host.dbid, txn_id))
            self.participants.add(server)
        result = yield from rpc.call(self.sim, chan, req)
        return result

    def _send_control(self, server: str, req):
        """Generator: 2PC verbs — no BeginTxn, no participant tracking."""
        chan = self._channel(server)
        result = yield from rpc.call(self.sim, chan, req)
        return result

    # ------------------------------------------------------------------ shard routing

    def _route(self, grp_id: int, server: str):
        """Resolve a datalink op's target: (server, route_epoch).

        Unsharded hosts address the DLFM named in the URL (epoch 0 =
        no validation); sharded hosts resolve the file group through
        the shard-map cache and fence the op with the cached epoch.
        """
        shard_map = self.host.shard_map
        if shard_map is None:
            return server, 0
        return shard_map.resolve(grp_id)

    def _routed_call(self, server: str, req):
        """Generator: dlfm_call with stale-route retry.

        When a shard answers StaleRouteError (its group epoch disagrees
        with the route we cached — a move_group committed under us), the
        map is reloaded from the catalog and the op re-resolved. Returns
        the final ``(server, req)`` actually applied, which is what a
        statement backout must compensate.
        """
        shard_map = self.host.shard_map
        if shard_map is None:
            yield from self.dlfm_call(server, req)
            return server, req
        for attempt in range(5):
            try:
                yield from self.dlfm_call(server, req)
                return server, req
            except StaleRouteError:
                if attempt == 4:
                    raise
                # A mid-move group stays *moving* from the source's
                # prepare until phase 2 lands on both shards; back off a
                # little so the retries span that window instead of
                # burning out against the same moving state.
                yield Timeout(0.05 * (attempt + 1))
                shard_map.reload()
                server, epoch = shard_map.resolve(req.grp_id)
                req = replace(req, route_epoch=epoch)
        raise AssertionError("unreachable")

    def _send_batch(self, server: str, txn_id: int, ops, prepare=False):
        """Generator: ship buffered ops as ONE api.Batch rendezvous. The
        batch opens the sub-transaction implicitly — no BeginTxn trip."""
        chan = self._channel(server)
        # Register the participant BEFORE the call, like the classic
        # path does at BeginTxn: even a failed Batch leaves an implicit
        # local transaction on the server that our Abort must roll back
        # (presumed abort makes this harmless if the batch never arrived).
        self.participants.add(server)
        result = yield from rpc.call(self.sim, chan, api.Batch(
            self.host.dbid, txn_id, tuple(ops), prepare=prepare))
        self.host.metrics.batches_sent += 1
        self.host.metrics.batched_ops_sent += len(ops)
        for op in ops:
            if isinstance(op, api.UnlinkFile):
                self.host.metrics.unlinks_sent += 1
            elif isinstance(op, api.LinkFile):
                self.host.metrics.links_sent += 1
        return result

    def flush_datalinks(self):
        """Generator: ship all buffered datalink ops now (one Batch per
        server) without waiting for commit — a mid-transaction sync
        point. Errors follow batch semantics: the failing server's local
        transaction is as if the batch never arrived, and the caller
        decides whether to abort."""
        txn_id = self._ensure_txn()
        for server in sorted(self._buffered):
            ops = self._buffered.pop(server)
            if ops:
                yield from self._send_batch(server, txn_id, ops)

    # ------------------------------------------------------------------ execute

    def execute(self, sql: str, params: tuple = ()):
        """Generator: run one SQL statement with datalink interception."""
        stmt = self._parse_cache.get(sql)
        if stmt is None:
            stmt = parse_sql(sql)
            self._parse_cache[sql] = stmt
        specs = None
        table = getattr(stmt, "table", None)
        if isinstance(table, str):
            specs = self.host.datalink_columns.get(table)
        if specs:
            if isinstance(stmt, ast.Insert):
                return (yield from self._insert_datalink(stmt, params, specs))
            if isinstance(stmt, ast.Delete):
                return (yield from self._delete_datalink(stmt, sql, params,
                                                         specs))
            if isinstance(stmt, ast.Update):
                touched = [c for c, _ in stmt.assignments if c in specs]
                if touched:
                    return (yield from self._update_datalink(stmt, params,
                                                             specs))
        result = yield from self.session.execute(sql, params)
        return result

    def query_one(self, sql: str, params: tuple = ()):
        row = yield from self.session.query_one(sql, params)
        return row

    def fetch_with_tokens(self, sql: str, params: tuple = ()):
        """Generator: SELECT returning (ResultSet, {url: AccessToken}).

        The paper's application flow (Fig. 3): the database hands the
        application URLs plus the tokens needed to open the files.
        """
        result = yield from self.session.execute(sql, params)
        tokens = {}
        for row in result.rows:
            for value in row:
                if isinstance(value, str) and value.startswith("dlfs://"):
                    tokens[value] = self.host.issue_token(value)
        return result, tokens

    # ------------------------------------------------------------------ datalink DML

    @staticmethod
    def _eval_value(expr: ast.Expr, params: tuple):
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Param):
            return params[expr.index]
        raise DataLinkError(
            "datalink column values must be literals or parameters")

    def _insert_datalink(self, stmt: ast.Insert, params: tuple, specs):
        if stmt.more_rows:
            raise DataLinkError(
                "multi-row INSERT is not supported for DATALINK tables")
        txn_id = self._ensure_txn()
        links = []   # (LinkFile request, server)
        extra_cols, extra_params = [], []
        for col, spec in specs.items():
            if col not in stmt.columns:
                continue
            value = self._eval_value(
                stmt.values[stmt.columns.index(col)], params)
            if value is None:
                continue
            server, path = parse_url(value)
            recovery_id = self.host.recovery_ids.next()
            grp_id = self.host.group_ids[(stmt.table, col)]
            server, epoch = self._route(grp_id, server)
            links.append((server, api.LinkFile(
                self.host.dbid, txn_id, path, grp_id, recovery_id,
                access_ctl=spec.access_control,
                recovery=spec.recovery_flag, route_epoch=epoch)))
            extra_cols.append(shadow_column(col))
            extra_params.append(recovery_id)

        # The shadow recovery-id values travel as parameters, never as
        # interpolated literals: the rebuilt text depends only on the
        # statement's SHAPE, so every datalink INSERT of the same shape
        # shares one bound plan. The original VALUES exprs re-render with
        # their ``?`` markers intact (in order), so appending markers at
        # the end keeps the original parameter indexes stable.
        columns = ", ".join(list(stmt.columns) + extra_cols)
        values = ", ".join([render_expr(v) for v in stmt.values]
                           + ["?"] * len(extra_params))
        new_sql = f"INSERT INTO {stmt.table} ({columns}) VALUES ({values})"
        return (yield from self._run_with_backout(
            new_sql, tuple(params) + tuple(extra_params), links,
            unlinks=[]))

    def _delete_datalink(self, stmt: ast.Delete, sql: str, params: tuple,
                         specs):
        txn_id = self._ensure_txn()
        where_text = (f" WHERE {render_expr(stmt.where)}"
                      if stmt.where is not None else "")
        sel_cols = []
        for col in specs:
            sel_cols += [col, shadow_column(col)]
        pre = yield from self.session.execute(
            f"SELECT {', '.join(sel_cols)} FROM {stmt.table}{where_text} "
            "FOR UPDATE", params)
        unlinks = []
        for row in pre.rows:
            for i, col in enumerate(specs):
                url = row[2 * i]
                if url is None:
                    continue
                server, path = parse_url(url)
                grp_id = self.host.group_ids[(stmt.table, col)]
                server, epoch = self._route(grp_id, server)
                unlinks.append((server, api.UnlinkFile(
                    self.host.dbid, txn_id, path,
                    self.host.recovery_ids.next(), grp_id=grp_id,
                    route_epoch=epoch)))
        return (yield from self._run_with_backout(
            sql, params, links=[], unlinks=unlinks))

    def _update_datalink(self, stmt: ast.Update, params: tuple, specs):
        txn_id = self._ensure_txn()
        dl_assignments = {c: e for c, e in stmt.assignments if c in specs}
        n_set_params = sum(count_params(e) for _, e in stmt.assignments)
        where_params = params[n_set_params:]
        where_text = (f" WHERE {render_expr(stmt.where)}"
                      if stmt.where is not None else "")

        sel_cols = []
        for col in dl_assignments:
            sel_cols += [col, shadow_column(col)]
        pre = yield from self.session.execute(
            f"SELECT {', '.join(sel_cols)} FROM {stmt.table}{where_text} "
            "FOR UPDATE", where_params)

        unlinks, links = [], []
        sets = [f"{c} = {render_expr(e)}" for c, e in stmt.assignments]
        shadow_params = []
        for col, expr in dl_assignments.items():
            new_url = self._eval_value(expr, params)
            new_recid = None
            if new_url is not None:
                server, path = parse_url(new_url)
                new_recid = self.host.recovery_ids.next()
                grp_id = self.host.group_ids[(stmt.table, col)]
                server, epoch = self._route(grp_id, server)
                # one link per qualifying row — linking the same file for
                # several rows fails, as it must (a file has one link)
                for _ in pre.rows:
                    links.append((server, api.LinkFile(
                        self.host.dbid, txn_id, path, grp_id, new_recid,
                        access_ctl=specs[col].access_control,
                        recovery=specs[col].recovery_flag,
                        route_epoch=epoch)))
            # Parameter marker, not a spliced literal (NULL included):
            # the rebuilt text is one shared, cacheable shape per
            # statement template instead of one plan per recovery id.
            sets.append(f"{shadow_column(col)} = ?")
            shadow_params.append(new_recid)
        for row in pre.rows:
            for i, col in enumerate(dl_assignments):
                old_url = row[2 * i]
                if old_url is None:
                    continue
                server, path = parse_url(old_url)
                grp_id = self.host.group_ids[(stmt.table, col)]
                server, epoch = self._route(grp_id, server)
                unlinks.append((server, api.UnlinkFile(
                    self.host.dbid, txn_id, path,
                    self.host.recovery_ids.next(), grp_id=grp_id,
                    route_epoch=epoch)))

        # Marker order in the rebuilt text: original SET markers, then
        # the shadow-column markers, then the WHERE markers — the shadow
        # parameters slot in between the two halves of ``params``.
        new_sql = (f"UPDATE {stmt.table} SET {', '.join(sets)}{where_text}")
        new_params = (tuple(params[:n_set_params]) + tuple(shadow_params)
                      + tuple(where_params))
        return (yield from self._run_with_backout(
            new_sql, new_params, links, unlinks))

    def _run_with_backout(self, sql: str, params: tuple, links, unlinks):
        """Execute the host statement + its datalink ops atomically at
        statement level: on failure, compensate completed DLFM ops with
        in_backout requests and roll the host statement back (§3.2)."""
        if self.host.config.batch_datalinks:
            return (yield from self._run_buffered(sql, params, links,
                                                  unlinks))
        savepoint = f"dlstmt-{next(self._stmt_seq)}"
        self.session.savepoint(savepoint)
        done = []
        try:
            count = yield from self.session.execute(sql, params)
            # Unlink before link: the same-file unlink+relink case needs
            # the linked slot freed first.
            for server, req in unlinks:
                server, req = yield from self._routed_call(server, req)
                self.host.metrics.unlinks_sent += 1
                done.append((server, req))
            for server, req in links:
                server, req = yield from self._routed_call(server, req)
                self.host.metrics.links_sent += 1
                done.append((server, req))
            return count
        except TransactionAborted:
            # Severe failure (deadlock/timeout at host or DLFM): the whole
            # transaction dies on both sides (§3.2).
            yield from self._abort_everything()
            raise
        except ReproError:
            yield from self._statement_backout(savepoint, done)
            raise

    def _run_buffered(self, sql: str, params: tuple, links, unlinks):
        """Batching fast path: the statement's datalink ops are buffered
        per server (unlinks before links, preserving the unlink+relink
        order) only AFTER the host statement succeeds, so a failing
        statement has nothing to compensate — no ops were sent yet. The
        buffers travel at commit (or flush_datalinks) as one Batch per
        server."""
        try:
            count = yield from self.session.execute(sql, params)
        except TransactionAborted:
            yield from self._abort_everything()
            raise
        for server, req in unlinks:
            self._buffered.setdefault(server, []).append(req)
        for server, req in links:
            self._buffered.setdefault(server, []).append(req)
        return count

    def _statement_backout(self, savepoint: str, done):
        self.host.metrics.statement_backouts += 1
        try:
            for server, req in reversed(done):
                yield from self.dlfm_call(server,
                                          replace(req, in_backout=True))
            self.session.rollback_to_savepoint(savepoint)
        except ReproError:
            # "It is not possible to rollback a rollback": any error while
            # backing out forces a full transaction rollback (§3.2).
            yield from self._abort_everything()
            raise

    def _abort_everything(self):
        if self._decided:
            # The commit decision is durable and the local transaction is
            # already committed: there is nothing to abort. A phase-2
            # failure lands here when the application reacts to the error
            # with ROLLBACK — sending Abort now would undo links of a
            # COMMITTED transaction on a live DLFM. The dlk_indoubt rows
            # re-drive phase 2 instead.
            self._reset()
            return
        if self.host.db.crashed:
            # The host database died under us, possibly inside the very
            # commit force that hardens the decision — whether this
            # transaction committed is unknowable here. Restart recovery
            # owns the outcome (re-drive from dlk_indoubt, presumed abort
            # for the rest); sending Abort now could undo the links of a
            # transaction whose decision IS in the durable log.
            self._reset()
            return
        txn_id = self.txn_id
        self._buffered.clear()   # unflushed ops never reached any DLFM
        calls = []
        for server in sorted(self.participants):
            try:
                calls.append((self._channel(server),
                              api.Abort(self.host.dbid, txn_id)))
            except ReproError:
                pass  # participant down; presumed abort resolves it later
        if self.host.config.scatter_gather and len(calls) > 1:
            # Fan the Aborts out; a down participant's error is ignored
            # (presumed abort resolves it later), so drain every reply.
            yield from rpc.scatter(self.sim, calls, name=f"abort-{txn_id}",
                                   return_exceptions=True)
        else:
            for chan, payload in calls:
                try:
                    yield from rpc.call(self.sim, chan, payload)
                except ReproError:
                    pass  # participant down; presumed abort resolves it
        yield from self.session.rollback()
        self._reset()
        self.host.metrics.rollbacks += 1

    def _reset(self) -> None:
        self.participants = set()
        self.txn_id = None
        self.pending_drops = []
        self._buffered = {}
        self._decided = False

    # ------------------------------------------------------------------ DDL with datalinks

    def drop_table(self, name: str):
        """Generator: transactional DROP of a datalink table — groups are
        marked deleted now; files unlink asynchronously after commit."""
        specs = self.host.datalink_columns.get(name)
        if not specs:
            self.host.db.ddl(parse_sql(f"DROP TABLE {name}"))
            return
        txn_id = self._ensure_txn()
        for col in specs:
            grp_id = self.host.group_ids[(name, col)]
            if self.host.shard_map is not None:
                # Sharded fleet: the group lives on one shard; retire its
                # catalog row in the same transaction.
                target, epoch = self._route(grp_id, None)
                targets = [target]
                yield from self.session.execute(
                    "DELETE FROM dlk_shardmap WHERE grp_id = ?", (grp_id,))
            else:
                targets, epoch = sorted(self.host.dlfms), 0
            for server in targets:
                req = api.DeleteGroup(self.host.dbid, txn_id, grp_id,
                                      route_epoch=epoch)
                if self.host.config.batch_datalinks:
                    self._buffered.setdefault(server, []).append(req)
                else:
                    yield from self.dlfm_call(server, req)
        self.pending_drops.append(name)

    # ------------------------------------------------------------------ commit / rollback

    def commit(self):
        """Generator: application COMMIT — the 2PC coordinator."""
        if (self.session.txn is None and not self.participants
                and not self._buffered):
            return
        txn_id = self.txn_id
        phase1 = sorted(set(self.participants) | set(self._buffered))
        if not phase1:
            yield from self.session.commit()
            for name in self.pending_drops:
                self.host.apply_drop(name)
            self._reset()
            self.host.metrics.commits += 1
            return

        # ---- phase 1: prepare every participant — concurrently under
        # scatter-gather, serially with the historical coordinator; with
        # batching on, a server's buffered ops ride in one Batch with
        # Prepare piggybacked. One no-vote aborts everyone, including
        # those already prepared (§3.3).
        mode = "scatter" if self.host.config.scatter_gather else "serial"
        with self.sim.tracer.span("prepare.fanout", n=len(phase1),
                                  mode=mode):
            prepared = yield from self._phase1(txn_id, phase1)
        # ``prepared`` pairs each reply with the server that actually
        # prepared — a stale batched route may have landed on a different
        # shard than the one the op was buffered under.
        for server, reply in prepared:
            if (reply or {}).get("vote", "commit") == "read-only":
                # Read-only participant optimization: the server hardened
                # nothing and was released at end of phase 1 — it gets no
                # dlk_indoubt decision row and no phase-2 Commit.
                self.participants.discard(server)
                self.host.metrics.readonly_votes += 1

        # ---- decision: durable with the local commit ------------------
        participants = sorted(self.participants)
        if participants and self.host.config.decision_piggyback:
            # Piggybacked decision: the participant list rides on the
            # local COMMIT record itself — one WAL force carries both,
            # no logged INSERTs on the commit critical path.
            yield from self.session.commit(
                payload={"indoubt": list(participants)})
            self.host.record_decision(txn_id, participants)
        else:
            # Classic decision table: ONE multi-row INSERT covers every
            # write participant.
            if participants:
                marks = ", ".join(["(?, ?)"] * len(participants))
                args = tuple(v for server in participants
                             for v in (txn_id, server))
                yield from self.session.execute(
                    f"INSERT INTO dlk_indoubt (txn_id, server) "
                    f"VALUES {marks}", args)
            yield from self.session.commit()
        self._decided = True
        for name in self.pending_drops:
            self.host.apply_drop(name)
        self.host.metrics.commits += 1

        # ---- phase 2 (read-only voters already released) ----------------
        if not participants:
            pass  # everyone voted read-only: nothing is in doubt
        elif self.host.config.sync_commit:
            with self.sim.tracer.span("phase2.fanout", n=len(participants),
                                      mode=mode):
                yield from self._phase2_commit(txn_id, participants)
        else:
            # E6 mode: every Commit verb is SENT (each child agent has
            # received it and started processing), but the application
            # regains control without waiting for the replies — so its
            # next transaction's sends queue behind the still-running
            # commit processing. Scatter-gather overlaps the N sends;
            # each send still blocks on its rendezvous.
            calls = [(self._channel(server),
                      api.Commit(self.host.dbid, txn_id))
                     for server in participants]
            with self.sim.tracer.span("phase2.fanout", n=len(participants),
                                      mode=mode):
                if self.host.config.scatter_gather:
                    replies = yield from rpc.scatter_cast(
                        self.sim, calls, name=f"phase2-cast-{txn_id}",
                        fault_point="twopc.fanout:phase2",
                        fault_node=self.host.db.name)
                else:
                    replies = []
                    for chan, payload in calls:
                        reply = yield from rpc.cast(self.sim, chan, payload)
                        replies.append(reply)
            self.sim.spawn(self._phase2_finish(txn_id, replies),
                           f"async-phase2-{txn_id}")
        self._reset()

    def _prepare_one(self, server: str, txn_id: int):
        """Generator: phase-1 prepare of one participant; returns the
        ``(server, reply)`` pair that actually prepared.

        With batching on, a stale route is only discovered HERE — the
        ops were buffered under whatever shard the cache named and the
        true owner first speaks up when the Batch applies. A failed
        Batch leaves the wrong shard's sub-transaction as if it never
        arrived, so it can be retried: abort the wrong shard, reload the
        map, and re-send the whole bucket (Prepare still piggybacked) to
        the new owner. A bucket whose groups re-resolve to several
        shards, or to a shard this transaction is already preparing
        concurrently, cannot be re-bucketed mid phase 1 — the stale
        error propagates and aborts the transaction instead.
        """
        ops = self._buffered.pop(server, None)
        if not ops:
            reply = yield from self._send_control(
                server, api.Prepare(self.host.dbid, txn_id))
            return server, reply
        shard_map = self.host.shard_map
        for attempt in range(5):
            try:
                reply = yield from self._send_batch(server, txn_id, ops,
                                                    prepare=True)
                return server, (reply.get("prepare") or {})
            except StaleRouteError:
                if shard_map is None or attempt == 4:
                    raise
                yield Timeout(0.05 * (attempt + 1))
                shard_map.reload()
                routes = {shard_map.resolve(op.grp_id) for op in ops
                          if getattr(op, "grp_id", None) is not None}
                if len(routes) != 1:
                    raise  # groups split across new owners: cannot re-bucket
                (new_server, epoch), = routes
                if new_server != server:
                    if new_server in self._phase1_targets:
                        raise  # already preparing there concurrently
                    # The wrong shard holds an untouched open sub-txn
                    # (the Batch compensated itself): close it out.
                    yield from self._send_control(
                        server, api.Abort(self.host.dbid, txn_id))
                    self.participants.discard(server)
                    self._phase1_targets.add(new_server)
                ops = [replace(op, route_epoch=epoch) for op in ops]
                server = new_server
        raise AssertionError("unreachable")

    def _pooled_gather(self, gens, *, name: str, fault_point: str):
        """Generator: bounded coordinator fan-out over a WorkerPool.

        Runs ``gens`` through ``config.fanout_workers`` pool workers —
        a 32-participant commit occupies at most that many concurrent
        coordinator processes — and returns outcomes in ``gens`` order
        with exceptions captured in place (gather_all's
        ``return_exceptions=True`` contract). The same chaos window as
        the unbounded scatter fires between hand-out and drain.
        """
        from repro.kernel.pool import WorkerPool
        outcomes = [None] * len(gens)

        def handle(item):
            index, gen = item
            try:
                outcomes[index] = yield from gen
            except Exception as error:  # incl. CrashedError: captured,
                outcomes[index] = error  # never kills the pool worker
        pool = WorkerPool(self.sim, name, handle,
                          workers=min(self.host.config.fanout_workers,
                                      len(gens)))
        pool.start()
        try:
            for i, gen in enumerate(gens):
                yield from pool.submit((i, gen))
            if self.sim.injector.enabled:
                yield from rpc._fanout_faults(self.sim, fault_point,
                                              self.host.db.name)
            yield from pool.drain()
        finally:
            pool.stop()
        return outcomes

    def _phase1(self, txn_id: int, phase1: list[str]):
        """Generator: run phase 1; returns ``(server, reply)`` pairs in
        ``phase1`` order (the server is the one that actually prepared
        after any stale-route re-bucketing)."""
        self._phase1_targets = set(phase1)
        gens = [self._prepare_one(server, txn_id) for server in phase1]
        if not self.host.config.scatter_gather:
            replies = []
            for server, gen in zip(phase1, gens):
                try:
                    replies.append((yield from gen))
                except ReproError as error:
                    abort = yield from self._phase1_failed(server, error)
                    raise abort from error
            return replies
        try:
            if self.host.config.fanout_workers > 0:
                outcomes = yield from self._pooled_gather(
                    gens, name=f"prepare-{txn_id}",
                    fault_point="twopc.fanout:prepare")
            else:
                outcomes = yield from rpc.gather_all(
                    self.sim, gens, name=f"prepare-{txn_id}",
                    return_exceptions=True,
                    fault_point="twopc.fanout:prepare",
                    fault_node=self.host.db.name)
        except ReproError as error:
            # The coordinator itself died in the scatter→gather window;
            # outstanding prepares drain detached, participants resolve
            # by presumed abort / in-doubt re-drive after restart.
            abort = yield from self._phase1_failed("(coordinator)", error)
            raise abort from error
        for server, outcome in zip(phase1, outcomes):
            if isinstance(outcome, ReproError):
                abort = yield from self._phase1_failed(server, outcome)
                raise abort from outcome
            if isinstance(outcome, BaseException):
                raise outcome  # non-protocol error: a bug, surface it
        return outcomes

    def _phase1_failed(self, server: str, error: ReproError):
        """Generator: back out of a failed phase 1, build the abort."""
        self.host.metrics.prepare_failures += 1
        yield from self._abort_everything()
        return TransactionAborted(
            f"participant {server} failed to prepare: {error}",
            reason="prepare")

    def _phase2_commit(self, txn_id: int, servers: list[str]):
        calls = [(self._channel(server), api.Commit(self.host.dbid, txn_id))
                 for server in servers]
        if (self.host.config.scatter_gather
                and self.host.config.fanout_workers > 0):
            gens = [rpc.call(self.sim, chan, payload)
                    for chan, payload in calls]
            outcomes = yield from self._pooled_gather(
                gens, name=f"phase2-{txn_id}",
                fault_point="twopc.fanout:phase2")
            for outcome in outcomes:
                if isinstance(outcome, BaseException):
                    raise outcome
        elif self.host.config.scatter_gather:
            yield from rpc.scatter(
                self.sim, calls, name=f"phase2-{txn_id}",
                fault_point="twopc.fanout:phase2",
                fault_node=self.host.db.name)
        else:
            for chan, payload in calls:
                yield from rpc.call(self.sim, chan, payload)
        yield from self._forget_decision(txn_id)

    def _phase2_finish(self, txn_id: int, replies: list):
        for reply in replies:
            yield from rpc.wait_reply(reply)
        yield from self._forget_decision(txn_id, reuse=False)

    def _forget_decision(self, txn_id: int, reuse: bool = True):
        if txn_id in self.host._decisions:
            # Piggybacked decision: forgetting is an unforced FORGET
            # record, not a logged DELETE + force.
            self.host.forget_decision(txn_id)
            return
        # Synchronous commits on a HostSession are serial, so they share
        # one cached session; the E6 async finishers run concurrently
        # with later transactions and must take their own.
        if reuse:
            session = self._decision_session
            if session is None:
                session = self._decision_session = self.host.db.session()
        else:
            session = self.host.db.session()
        try:
            yield from session.execute(
                "DELETE FROM dlk_indoubt WHERE txn_id = ?", (txn_id,))
            yield from session.commit()
        except ReproError:
            self._decision_session = None  # do not reuse a poisoned session
            raise

    def rollback(self):
        """Generator: application ROLLBACK."""
        if (self.session.txn is None and not self.participants
                and not self._buffered):
            return
        yield from self._abort_everything()

    def close(self) -> None:
        for chan in self._chans.values():
            chan.close()
        self._chans = {}

"""The LOAD utility: bulk-link many files with periodic local commits.

The paper (§4): "Load and reconcile utilities tend to run for a long
time and involve large number of link/unlink operations. Like any other
long running transactions, there is potential for running out of system
resources such as log file or lock table entry. Since very long running
transactions are always triggered by database utilities that can be
broken into pieces (undo of completed piece is not needed in case of the
utility failure), we put intelligence in DLFM to recognize such
transactions and to do local commit after finishing processing of each
piece."

:class:`LoadUtility` ingests (row, url) pairs in pieces: each piece
inserts rows into the host table in its own host transaction and links
the files under ONE long utility transaction id at the DLFM, followed by
a :class:`~repro.dlfm.api.CommitPiece`. A crash mid-load is *resumed*
(already-linked files are skipped), not undone. The final
prepare/commit flips the DLFM's ``in-flight`` transaction entry to
``prepared`` and then commits it, whereupon takeover/archiving run for
every piece's files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dlfm import api
from repro.errors import DataLinkError, LinkError
from repro.host.datalink import parse_url, shadow_column
from repro.kernel import rpc


@dataclass
class LoadStats:
    linked: int = 0
    skipped: int = 0
    rows_inserted: int = 0
    pieces: int = 0
    batches: int = 0
    #: Index entries folded in by the end-of-load bulk build (0 when
    #: per-row maintenance ran, i.e. ``bulk`` was off).
    bulk_merged: int = 0
    resumed: bool = False


class LoadUtility:
    """One bulk ingest into one datalink table."""

    def __init__(self, host, table: str, column: str,
                 entries: list[tuple[dict, str]], piece_size: int = 100,
                 bulk: Optional[bool] = None):
        """``entries``: list of (column-values dict, url) pairs.

        ``bulk`` defers the target table's index maintenance to one
        sorted bottom-up build at end of load (DB2's LOAD build phase);
        defaults to ``HostConfig.bulk_load_indexes``.
        """
        self.host = host
        self.table = table
        self.column = column
        self.entries = list(entries)
        self.piece_size = piece_size
        self.bulk = host.config.bulk_load_indexes if bulk is None else bulk
        self.stats = LoadStats()
        spec = host.datalink_columns.get(table, {}).get(column)
        if spec is None:
            raise DataLinkError(
                f"{table}.{column} is not a DATALINK column")
        self.spec = spec
        # One utility transaction id for the whole load: allocated up
        # front and kept open so it stays monotone w.r.t. regular txns.
        self._utility_txn = host.db.begin()
        self._position = 0
        self._chans: dict[str, object] = {}
        self._begun: set[str] = set()
        #: Prepared statements for the current piece's session (the
        #: upsert trio executes once per file — the canonical
        #: prepare-once / execute-many site).
        self._piece_session = None
        self._prepared: dict[str, object] = {}

    # -- plumbing ---------------------------------------------------------------

    def _channel(self, server: str):
        chan = self._chans.get(server)
        if chan is None or chan.closed:
            chan = self.host.dlfms[server].connect()
            self._chans[server] = chan
            self._begun.discard(server)  # fresh agent needs a BeginTxn
        return chan

    def _call(self, server: str, req):
        chan = self._channel(server)
        if server not in self._begun:
            yield from rpc.call(self.host.sim, chan, api.BeginTxn(
                self.host.dbid, self._utility_txn.id))
            self._begun.add(server)
        result = yield from rpc.call(self.host.sim, chan, req)
        return result

    # -- execution -----------------------------------------------------------------

    def run(self):
        """Generator: ingest everything, then prepare+commit the utility
        transaction. Returns LoadStats."""
        if self.bulk:
            self.host.db.begin_bulk_load(self.table)
        try:
            while self._position < len(self.entries):
                yield from self._load_piece()
        finally:
            # Merge even on failure: earlier pieces are committed and
            # their rows must become index-visible (resume semantics —
            # only the failing piece's host transaction rolled back, and
            # undo already dropped its deferred entries).
            if self.bulk:
                self.stats.bulk_merged = yield from (
                    self.host.db.end_bulk_load(self.table))
        yield from self._finish()
        return self.stats

    def resume(self):
        """Generator: continue after a crash. Already-linked files are
        skipped; completed pieces were never undone."""
        self.stats.resumed = True
        # Reconnect with the SAME utility transaction id.
        self._chans = {}
        self._begun = set()
        result = yield from self.run()
        return result

    def _load_piece(self):
        session = self.host.db.session()
        try:
            yield from self._load_piece_inner(session)
        except Exception:
            # Abandoning an open host transaction would leak its locks;
            # the DLFM side keeps its committed pieces (resume semantics).
            yield from session.rollback()
            raise

    def _load_piece_inner(self, session):
        piece = self.entries[self._position:
                             self._position + self.piece_size]
        grp_id = self.host.group_ids[(self.table, self.column)]
        if self.host.config.batch_datalinks:
            touched = yield from self._link_piece_batched(session, piece,
                                                          grp_id)
        else:
            touched = yield from self._link_piece(session, piece, grp_id)
        yield from session.commit()  # host-side piece is durable
        for server in sorted(touched):
            yield from self._call(server, api.CommitPiece(
                self.host.dbid, self._utility_txn.id))
        self.stats.pieces += 1
        self._position += len(piece)

    def _link_piece(self, session, piece, grp_id):
        touched_servers = set()
        for values, url in piece:
            server, path = parse_url(url)
            recovery_id = self.host.recovery_ids.next()
            try:
                yield from self._call(server, api.LinkFile(
                    self.host.dbid, self._utility_txn.id, path, grp_id,
                    recovery_id, access_ctl=self.spec.access_control,
                    recovery=self.spec.recovery_flag))
                self.stats.linked += 1
                touched_servers.add(server)
            except LinkError:
                # Already linked by a piece committed before a crash —
                # resume semantics: the surviving link keeps its ORIGINAL
                # recovery id and the host row from the same pre-crash
                # piece already carries it. Nothing to redo.
                self.stats.skipped += 1
                continue
            yield from self._upsert_row(session, values, url, recovery_id)
        return touched_servers

    def _link_piece_batched(self, session, piece, grp_id):
        """Fast path: the piece's links travel as ONE api.Batch per
        server instead of one rendezvous per file. The host piece commit
        still precedes CommitPiece, so the crash-consistency ordering of
        recovery ids is unchanged."""
        per_server: dict[str, list] = {}
        for values, url in piece:
            server, path = parse_url(url)
            recovery_id = self.host.recovery_ids.next()
            req = api.LinkFile(
                self.host.dbid, self._utility_txn.id, path, grp_id,
                recovery_id, access_ctl=self.spec.access_control,
                recovery=self.spec.recovery_flag)
            per_server.setdefault(server, []).append(
                (req, values, url, recovery_id))
        touched_servers = set()
        for server in sorted(per_server):
            entries = per_server[server]
            chan = self._channel(server)
            self._begun.add(server)  # a Batch begins the txn implicitly
            try:
                yield from rpc.call(self.host.sim, chan, api.Batch(
                    self.host.dbid, self._utility_txn.id,
                    tuple(req for req, _, _, _ in entries)))
                self.stats.linked += len(entries)
                self.stats.batches += 1
                linked = entries
            except LinkError:
                # Resume case: some file of the batch is already linked
                # by a pre-crash piece. The agent compensated the batch
                # whole; redo this server's links one at a time so skips
                # are counted exactly as on the slow path.
                linked = []
                for entry in entries:
                    try:
                        yield from self._call(server, entry[0])
                        self.stats.linked += 1
                        linked.append(entry)
                    except LinkError:
                        self.stats.skipped += 1
            if linked:
                touched_servers.add(server)
            for _, values, url, recovery_id in linked:
                yield from self._upsert_row(session, values, url,
                                            recovery_id)
        return touched_servers

    def _statement(self, session, sql: str):
        """Generator: a prepared statement cached for the piece session."""
        if self._piece_session is not session:
            self._piece_session = session
            self._prepared = {}
        stmt = self._prepared.get(sql)
        if stmt is None:
            stmt = yield from session.prepare(sql)
            self._prepared[sql] = stmt
        return stmt

    def _upsert_row(self, session, values, url, recovery_id):
        # Idempotent host insert: a crash between the host piece commit
        # and the DLFM piece commit leaves the row behind while the link
        # was redone with a fresh recovery id — keep the shadow column in
        # sync either way.
        probe = yield from self._statement(
            session,
            f"SELECT COUNT(*) FROM {self.table} WHERE {self.column} = ?")
        existing = yield from probe.execute((url,))
        if existing.scalar() == 0:
            columns = list(values) + [self.column,
                                      shadow_column(self.column)]
            placeholders = ", ".join("?" for _ in columns)
            insert = yield from self._statement(
                session,
                f"INSERT INTO {self.table} ({', '.join(columns)}) "
                f"VALUES ({placeholders})")
            yield from insert.execute(
                tuple(values.values()) + (url, recovery_id))
            self.stats.rows_inserted += 1
        else:
            update = yield from self._statement(
                session,
                f"UPDATE {self.table} SET "
                f"{shadow_column(self.column)} = ? WHERE "
                f"{self.column} = ?")
            yield from update.execute((recovery_id, url))

    def _finish(self):
        for server in sorted(getattr(self, "_begun", set())):
            yield from self._call(server, api.Prepare(
                self.host.dbid, self._utility_txn.id))
        for server in sorted(getattr(self, "_begun", set())):
            yield from self._call(server, api.Commit(
                self.host.dbid, self._utility_txn.id))
        # release the (empty) reserved host transaction
        yield from self.host.db.commit(self._utility_txn)
        for chan in self._chans.values():
            chan.close()

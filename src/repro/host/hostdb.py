"""The host database node (the paper's "host DB2").

Owns the user tables (on minidb), the DATALINK column registry, group
ids, recovery-id generation, access-token issuing, and the durable 2PC
decision table ``dlk_indoubt`` (presumed abort: a decision row exists iff
the transaction committed and phase 2 has not been fully acknowledged).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.dlff.filter import AccessToken
from repro.dlfm import api
from repro.errors import DataLinkError
from repro.host.datalink import DatalinkSpec, parse_url, shadow_column
from repro.host.ids import RecoveryIdGenerator
from repro.kernel.sim import Simulator
from repro.minidb import Database, DBConfig
from repro.minidb import wal as walmod
from repro.sql.parser import parse as parse_sql


@dataclass
class HostConfig:
    db: DBConfig = field(default_factory=DBConfig)
    #: Phase-2 commit synchronous w.r.t. the application's SQL commit.
    #: The paper's lesson says this MUST be True; False reproduces the
    #: distributed deadlock of experiment E6.
    sync_commit: bool = True
    #: RPC batching fast path: buffer the transaction's link/unlink/
    #: delete-group requests per server and ship them as ordered
    #: :class:`~repro.dlfm.api.Batch` envelopes, flushed at COMMIT with
    #: phase-1 Prepare piggybacked on the final batch. Cuts an N-link
    #: transaction from N+3 host↔DLFM messages to 2. Off by default: the
    #: paper-faithful experiments count (and block on) individual
    #: messages, and with batching ON a DLFM statement error surfaces at
    #: the commit-time flush (aborting the transaction) instead of at the
    #: originating statement (statement-level backout). See DESIGN.md §9.
    batch_datalinks: bool = False
    #: Scatter-gather 2PC fan-out: prepare all participants concurrently
    #: in phase 1 and send the phase-2 Commit/Abort verbs concurrently,
    #: so an N-server transaction pays ~1 round-trip per phase instead
    #: of N. False reproduces the historical serial coordinator (the
    #: bench's baseline arm). Protocol outcomes are identical either
    #: way — a no-vote still aborts everyone, including participants
    #: that already prepared (§3.3).
    scatter_gather: bool = True
    #: LOAD utility: defer per-row index maintenance on the target table
    #: and fold the run into each B+tree with one sorted bottom-up build
    #: at the end (DB2's LOAD "build phase"). Loaded rows are invisible
    #: to index scans until the build, mirroring DB2's load-pending
    #: state; a crash discards the deferral and restart rebuilds the
    #: indexes from durable state.
    bulk_load_indexes: bool = False
    token_expiry: float = 600.0
    indoubt_poll_period: float = 5.0
    #: Isolation level for the host's own internal readers (today: the
    #: in-doubt resolver's cached session). ``"default"`` keeps the host
    #: engine's configured level; ``"SI"`` makes the poll SELECT a
    #: lock-free snapshot read so resolution passes never queue behind
    #: application transactions writing ``dlk_indoubt``.
    read_isolation: str = "default"
    #: Decision piggybacking: record the 2PC commit decision as a payload
    #: on the host transaction's own COMMIT log record instead of logged
    #: INSERTs into ``dlk_indoubt`` — one WAL force carries both the
    #: commit and the decision, taking the decision write off the commit
    #: critical path. Forgetting appends an unforced FORGET record (a
    #: lost FORGET merely re-drives an idempotent phase-2 Commit after
    #: restart). Off by default: the paper-faithful experiments (and the
    #: seed tests) observe the decision table directly.
    decision_piggyback: bool = False
    #: Bounded coordinator fan-out: >0 runs 2PC phase-1/phase-2 fan-out
    #: through a WorkerPool of this many workers instead of spawning one
    #: process per participant — a 32-shard commit no longer spawns 32
    #: concurrent coordinator processes. 0 keeps the unbounded scatter.
    fanout_workers: int = 0


@dataclass
class HostMetrics:
    commits: int = 0
    rollbacks: int = 0
    links_sent: int = 0
    unlinks_sent: int = 0
    batches_sent: int = 0
    batched_ops_sent: int = 0
    statement_backouts: int = 0
    prepare_failures: int = 0
    #: Participants that answered phase 1 with the read-only vote and
    #: were released without a decision row or a phase-2 Commit.
    readonly_votes: int = 0
    #: XA branches released whole at phase 1 (XA_RDONLY): every
    #: participant voted read-only and the local transaction wrote
    #: nothing, so the TM skips phase 2 for the entire branch.
    readonly_branches: int = 0
    indoubt_commits: int = 0
    indoubt_aborts: int = 0
    tokens_issued: int = 0


class HostDB:
    def __init__(self, sim: Simulator, dbid: str, dlfms: dict,
                 config: Optional[HostConfig] = None):
        self.sim = sim
        self.dbid = dbid
        self.dlfms = dict(dlfms)  # server name → DLFM
        self.config = config or HostConfig()
        self.db = Database(sim, f"host-{dbid}", self.config.db)
        self.recovery_ids = RecoveryIdGenerator(sim, dbid)
        self.metrics = HostMetrics()
        #: table → column → DatalinkSpec (the datalink engine's registry).
        self.datalink_columns: dict[str, dict[str, DatalinkSpec]] = {}
        self.group_ids: dict[tuple[str, str], int] = {}
        self._grp_counter = itertools.count(1)
        self._backup_counter = itertools.count(1)
        self.backups: dict[int, dict] = {}
        #: gtrid → XAPrepareResult for branches this incarnation
        #: prepared (volatile; xa_recover degrades gracefully without it).
        self.xa_votes: dict[str, object] = {}
        #: Piggybacked 2PC decisions not yet forgotten: txn_id → tuple of
        #: participant servers. In-memory mirror of the COMMIT-payload
        #: decisions in the WAL; rebuilt from the log at restart.
        self._decisions: dict[int, tuple] = {}
        #: Shard router (``repro.shard.ShardMap``) — None on an unsharded
        #: host, where datalink ops address DLFMs by file-server name.
        self.shard_map = None
        #: Reused in-doubt resolver session (keeps the poll SELECT and
        #: per-txn forget DELETE on cached plans across poller passes).
        self._indoubt_session = None
        self._bootstrap_schema()

    def _bootstrap_schema(self) -> None:
        self.db.ddl(parse_sql(
            "CREATE TABLE dlk_indoubt (txn_id INT, server TEXT)"))
        self.db.ddl(parse_sql(
            "CREATE INDEX dlk_indoubt_txn ON dlk_indoubt (txn_id)"))
        # The coordinator's decision table is tiny but hot: without
        # hand-crafted statistics the optimizer table-scans it on every
        # phase-2 delete and concurrent committers deadlock — the paper's
        # E4 lesson applies to the host side too.
        self.db.set_table_stats("dlk_indoubt", card=100_000,
                                colcard={"txn_id": 100_000})
        # Shard-map catalog (repro.shard): file group → owning shard,
        # with a fencing epoch bumped by every rebalance. Present (and
        # empty) even on unsharded hosts so the schema is uniform.
        self.db.ddl(parse_sql(
            "CREATE TABLE dlk_shardmap (grp_id INT, shard TEXT, "
            "epoch INT)"))
        self.db.ddl(parse_sql(
            "CREATE UNIQUE INDEX dlk_shardmap_grp ON dlk_shardmap "
            "(grp_id)"))
        self.db.set_table_stats("dlk_shardmap", card=100_000,
                                colcard={"grp_id": 100_000})

    # ------------------------------------------------------------------ decisions

    def record_decision(self, txn_id: int, servers) -> None:
        """Note a piggybacked commit decision (already durable: it rode
        on the host transaction's COMMIT record)."""
        self._decisions[txn_id] = tuple(servers)

    def forget_decision(self, txn_id: int) -> None:
        """Forget a piggybacked decision after phase 2 fully acked.

        Appends an *unforced* FORGET record — losing it in a crash only
        re-drives an idempotent phase-2 Commit at restart.
        """
        if txn_id in self._decisions:
            self.db.wal.append(walmod.FORGET, None,
                               payload={"txn": txn_id})
            del self._decisions[txn_id]

    def pending_decisions(self) -> dict:
        """txn_id → tuple(servers) for piggybacked, unforgotten decisions."""
        return dict(self._decisions)

    def decision_rows(self):
        """Every live commit decision as (txn_id, server) pairs — the
        union of the durable ``dlk_indoubt`` table and the piggybacked
        COMMIT-payload decisions."""
        rows = [tuple(row) for row in self.db.table_rows("dlk_indoubt")]
        for txn_id, servers in sorted(self._decisions.items()):
            rows.extend((txn_id, server) for server in servers)
        return rows

    def _rescan_decisions(self) -> None:
        """Rebuild the piggybacked-decision map from the durable log."""
        pending: dict[int, tuple] = {}
        for record in self.db.wal.records:
            payload = record.payload
            if not isinstance(payload, dict):
                continue
            if record.kind == walmod.COMMIT and payload.get("indoubt"):
                pending[record.txn_id] = tuple(payload["indoubt"])
            elif record.kind == walmod.FORGET:
                pending.pop(payload.get("txn"), None)
        self._decisions = pending

    # ------------------------------------------------------------------ sessions

    def session(self):
        from repro.host.session import HostSession
        return HostSession(self)

    # ------------------------------------------------------------------ DDL

    def create_datalink_table(self, name: str,
                              columns: list[tuple[str, str]],
                              datalink: dict[str, DatalinkSpec],
                              session=None):
        """Generator: CREATE TABLE with DATALINK columns.

        Datalink columns are stored as TEXT URLs plus an engine-maintained
        shadow column carrying the link's recovery id (real DB2 embeds
        this inside the DATALINK value). File groups — one per datalink
        column — are registered on every DLFM under 2PC.

        With an explicit ``session`` the group registrations join that
        session's transaction and the CALLER commits (or rolls back) —
        used by callers that need to recover from mid-DDL failures.
        """
        column_names = {n for n, _ in columns}
        for col in datalink:
            if col not in column_names:
                raise DataLinkError(f"datalink column {col!r} not in table")
        parts = [f"{n} {t}" for n, t in columns]
        parts += [f"{shadow_column(c)} TEXT" for c in datalink]
        self.db.ddl(parse_sql(f"CREATE TABLE {name} ({', '.join(parts)})"))
        self.datalink_columns[name] = dict(datalink)
        for col in datalink:
            self.group_ids[(name, col)] = next(self._grp_counter)

        own_session = session is None
        if own_session:
            session = self.session()
        for col in datalink:
            grp_id = self.group_ids[(name, col)]
            if self.shard_map is not None:
                # Sharded fleet: the group lives on exactly one shard
                # (hash-assigned); the catalog row and the registration
                # commit in the same host transaction.
                shard = self.shard_map.assign(grp_id)
                yield from self.shard_map.insert(session, grp_id, shard)
                yield from session.dlfm_call(shard, api.RegisterGroup(
                    self.dbid, session.txn_id_for(shard), grp_id, name,
                    col, epoch=1))
            else:
                for server in sorted(self.dlfms):
                    yield from session.dlfm_call(server, api.RegisterGroup(
                        self.dbid, session.txn_id_for(server), grp_id,
                        name, col))
        if own_session:
            yield from session.commit()

    def apply_drop(self, name: str) -> None:
        """Finalize a datalink table drop at commit time."""
        self.db.ddl(parse_sql(f"DROP TABLE {name}"))
        for col in self.datalink_columns.pop(name, {}):
            grp_id = self.group_ids.pop((name, col), None)
            if grp_id is not None and self.shard_map is not None:
                self.shard_map.forget(grp_id)

    # ------------------------------------------------------------------ tokens

    def issue_token(self, url: str) -> AccessToken:
        """Mint the access token an application needs to read a file
        linked under full access control (paper Fig. 3 flow)."""
        server, path = parse_url(url)
        dlfm = self.dlfms.get(server)
        if dlfm is None and self.shard_map is not None:
            # Sharded fleet: the URL names the (shared) file server, not
            # a shard; every shard's filter shares one token secret.
            dlfm = self.shard_map.any_shard()
        if dlfm is None:
            raise DataLinkError(f"unknown file server {server!r}")
        self.metrics.tokens_issued += 1
        return AccessToken.sign(dlfm.filter.token_secret, path,
                                self.sim.now + self.config.token_expiry)

    # ------------------------------------------------------------------ crash / restart

    def crash(self) -> None:
        self.db.crash()
        self.xa_votes.clear()
        self._decisions.clear()
        self._indoubt_session = None

    def restart(self):
        """Generator: restart + distributed recovery (paper §3.3).

        Replays forgotten phase-2 commits from the decision log — the
        ``dlk_indoubt`` table plus piggybacked COMMIT-payload decisions
        rescanned from the WAL — then resolves every DLFM's remaining
        prepared transactions to abort (presumed abort: no decision →
        the host never committed).
        """
        from repro.host.indoubt import resolve_indoubts
        self.db.restart()
        self._indoubt_session = None
        self._rescan_decisions()
        if self.shard_map is not None:
            self.shard_map.reload()
        result = yield from resolve_indoubts(self)
        return result

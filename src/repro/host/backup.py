"""Coordinated backup and restore utilities (paper §3.4).

Backup: take a recovery-id watermark, make every DLFM finish its pending
asynchronous archive copies (high priority) and record the backup cycle,
then snapshot the host database. The backup image remembers the watermark
and the involved file servers, as the paper describes.

Restore: put the host database back to the chosen image, then tell every
involved DLFM to reconcile its metadata against the watermark — files
linked before the backup and unlinked after come back to linked state
(retrieved from the archive server if missing on disk); files linked
after the backup are released.
"""

from __future__ import annotations

from repro.dlfm import api
from repro.kernel import rpc


def backup_database(host):
    """Generator: run a coordinated backup; returns the backup id."""
    backup_id = next(host._backup_counter)
    watermark = host.recovery_ids.watermark()
    archived = {}
    for server in sorted(host.dlfms):
        dlfm = host.dlfms[server]
        chan = dlfm.connect()
        try:
            result = yield from rpc.call(
                host.sim, chan, api.EnsureArchived(
                    host.dbid, backup_id, watermark))
            archived[server] = result["archived"]
        finally:
            chan.close()
    image = host.db.backup_image()
    host.backups[backup_id] = {
        "image": image,
        "watermark": watermark,
        "servers": sorted(host.dlfms),
        "taken_at": host.sim.now,
        "archived": archived,
        "datalink_columns": {t: dict(c)
                             for t, c in host.datalink_columns.items()},
        "group_ids": dict(host.group_ids),
    }
    return backup_id


def restore_database(host, backup_id: int):
    """Generator: point-in-time restore to ``backup_id``; returns stats."""
    backup = host.backups[backup_id]
    host.db.restore_image(backup["image"])
    host.datalink_columns = {t: dict(c)
                             for t, c in backup["datalink_columns"].items()}
    host.group_ids = dict(backup["group_ids"])
    results = {}
    for server in backup["servers"]:
        dlfm = host.dlfms[server]
        chan = dlfm.connect()
        try:
            results[server] = yield from rpc.call(
                host.sim, chan, api.RestoreToBackup(
                    host.dbid, backup["watermark"]))
        finally:
            chan.close()
    return results

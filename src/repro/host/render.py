"""Render parsed SQL expressions back to text.

The datalink engine rewrites application DML (shadow recovery-id columns,
pre-image SELECTs sharing the original WHERE clause); since plans are
bound from SQL text, the engine needs to turn AST fragments back into
SQL. Parameters stay as ``?`` so the original parameter tuple is reused.
"""

from __future__ import annotations

from repro.errors import DataLinkError
from repro.sql import ast


def render_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Literal):
        return render_literal(expr.value)
    if isinstance(expr, ast.Param):
        return "?"
    if isinstance(expr, ast.ColumnRef):
        return expr.display()
    if isinstance(expr, ast.Comparison):
        return (f"({render_expr(expr.left)} {expr.op} "
                f"{render_expr(expr.right)})")
    if isinstance(expr, ast.And):
        return "(" + " AND ".join(render_expr(i) for i in expr.items) + ")"
    if isinstance(expr, ast.Or):
        return "(" + " OR ".join(render_expr(i) for i in expr.items) + ")"
    if isinstance(expr, ast.Not):
        return f"(NOT {render_expr(expr.item)})"
    if isinstance(expr, ast.IsNull):
        suffix = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({render_expr(expr.item)} {suffix})"
    if isinstance(expr, ast.InList):
        options = ", ".join(render_expr(o) for o in expr.options)
        return f"({render_expr(expr.item)} IN ({options}))"
    if isinstance(expr, ast.Between):
        return (f"({render_expr(expr.item)} BETWEEN "
                f"{render_expr(expr.low)} AND {render_expr(expr.high)})")
    if isinstance(expr, ast.Arithmetic):
        return (f"({render_expr(expr.left)} {expr.op} "
                f"{render_expr(expr.right)})")
    raise DataLinkError(f"cannot render expression {expr!r}")


def render_literal(value) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


def count_params(expr: ast.Expr) -> int:
    """Number of ``?`` placeholders inside ``expr`` (for slicing the
    original parameter tuple when reusing a WHERE clause)."""
    count = 0

    def walk(node):
        nonlocal count
        if isinstance(node, ast.Param):
            count += 1
        elif isinstance(node, (ast.Comparison, ast.Arithmetic)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (ast.And, ast.Or)):
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Not):
            walk(node.item)
        elif isinstance(node, ast.IsNull):
            walk(node.item)
        elif isinstance(node, ast.InList):
            walk(node.item)
            for option in node.options:
                walk(option)
        elif isinstance(node, ast.Between):
            walk(node.item)
            walk(node.low)
            walk(node.high)

    walk(expr)
    return count

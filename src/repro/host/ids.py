"""Host-generated identifiers.

Recovery ids (§3) are "guaranteed to be globally unique and monotonically
increasing": dbid plus a zero-padded timestamp and sequence number, so
plain string comparison gives temporal order — which the restore and
garbage-collection logic rely on.
"""

from __future__ import annotations

import itertools


class RecoveryIdGenerator:
    def __init__(self, sim, dbid: str):
        self.sim = sim
        self.dbid = dbid
        self._seq = itertools.count(1)

    def next(self) -> str:
        return f"{self.dbid}-{self.sim.now:018.6f}-{next(self._seq):08d}"

    def watermark(self) -> str:
        """A value greater than every id issued so far and smaller than
        every id issued after now (used by the backup utility)."""
        return self.next()

"""Host database: the DB2 side of DataLinks.

* :mod:`hostdb` — the host database node: user tables on minidb, the
  DATALINK column registry, group management, crash/restart.
* :mod:`session` — application sessions with the datalink engine hooks
  (link on INSERT, unlink on DELETE, unlink+link on UPDATE) and the 2PC
  coordinator commit path.
* :mod:`indoubt` — indoubt-resolution after DLFM or host failures.
* :mod:`backup` / :mod:`reconcile` — the coordinated backup/restore and
  reconcile utilities.
"""

from repro.host.datalink import DatalinkSpec, build_url, parse_url
from repro.host.hostdb import HostConfig, HostDB

__all__ = ["DatalinkSpec", "HostConfig", "HostDB", "build_url", "parse_url"]

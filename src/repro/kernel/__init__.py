"""Deterministic discrete-event simulation kernel.

All concurrent actors in the reproduction (host database agents, DLFM child
agents, the six DLFM daemons, workload clients) are generator-based
processes scheduled on a virtual clock. This is what makes the paper's
"100 clients for 24 hours" system test runnable — and bit-for-bit
reproducible — inside a test suite.

Protocol
--------
A process is a Python generator. It suspends by yielding one of:

* ``Timeout(delay)`` — resume after ``delay`` simulated seconds.
* ``event.wait(timeout=None)`` — resume when the :class:`Event` triggers
  (receiving the trigger value) or, if ``timeout`` elapses first, with the
  :data:`TIMEOUT` sentinel.

Sub-operations that may block are ordinary generators composed with
``yield from``. Channels (:class:`Channel`) provide blocking rendezvous
message passing, which the paper's distributed-deadlock lesson (E6)
depends on.
"""

from repro.kernel.sim import (
    TIMEOUT,
    Event,
    Process,
    Simulator,
    Timeout,
    run_to_completion,
)
from repro.kernel.channel import Channel
from repro.kernel.pool import PoolMetrics, WorkerPool

__all__ = [
    "TIMEOUT",
    "Channel",
    "Event",
    "PoolMetrics",
    "Process",
    "Simulator",
    "Timeout",
    "WorkerPool",
    "run_to_completion",
]

"""Blocking message channels.

The default channel is a **rendezvous** (capacity 0): a sender suspends
until a receiver takes the message. This mirrors the paper's RPC transport,
where a host DB2 agent's message send blocks while the DLFM child agent is
still busy — the precondition of the distributed-deadlock scenario in the
"commit must be synchronous" lesson (experiment E6).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.chaos.faults import SEND_KINDS
from repro.errors import ChannelClosed, ChannelTimeout
from repro.kernel.sim import TIMEOUT, Event, Simulator, Timeout


@dataclass
class ChannelMetrics:
    """Message accounting for one channel.

    ``sends`` counts physical messages handed over (one per rendezvous or
    buffered slot) — with vectored envelopes many logical operations ride
    in one send, which is exactly what the batching fast path exploits.
    """

    sends: int = 0
    recvs: int = 0


class Channel:
    """FIFO channel with bounded buffering (``capacity=0`` → rendezvous)."""

    def __init__(self, sim: Simulator, capacity: int = 0, name: str = "chan"):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.closed = False
        self.metrics = ChannelMetrics()
        self._buffer: deque[Any] = deque()
        self._senders: deque[tuple[Any, Event]] = deque()
        self._receivers: deque[Event] = deque()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (f"<Channel {self.name} buf={len(self._buffer)} "
                f"senders={len(self._senders)} receivers={len(self._receivers)}>")

    def close(self) -> None:
        """Close the channel; blocked and future peers get ChannelClosed."""
        if self.closed:
            return
        self.closed = True
        for _, event in self._senders:
            event.trigger(ChannelClosed(self.name))
        self._senders.clear()
        for event in self._receivers:
            event.trigger(ChannelClosed(self.name))
        self._receivers.clear()

    # -- sending ---------------------------------------------------------------

    def send(self, message: Any, timeout: Optional[float] = None) -> Generator:
        """Generator: deliver ``message``, blocking until a peer/slot exists."""
        if self.closed:
            raise ChannelClosed(self.name)
        if self.sim.injector.enabled:
            rule = self.sim.injector.fire(f"channel.send:{self.name}",
                                          SEND_KINDS)
            if rule is not None:
                if rule.kind == "drop":
                    # A lost message surfaces at the sender as a transport
                    # timeout: on a rendezvous channel nobody ever took it.
                    raise ChannelTimeout(
                        f"send on {self.name} dropped by fault injection")
                yield Timeout(rule.delay)
                if self.closed:
                    raise ChannelClosed(self.name)
        receiver = self._pop_live_receiver()
        if receiver is not None:
            self.metrics.sends += 1
            receiver.trigger(message)
            return
        if len(self._buffer) < self.capacity:
            self.metrics.sends += 1
            self._buffer.append(message)
            return
        handoff = Event(self.sim, name=f"{self.name}.send")
        self._senders.append((message, handoff))
        with self.sim.tracer.span("channel.send", channel=self.name) as span:
            outcome = yield handoff.wait(timeout)
            if outcome is TIMEOUT:
                span.set(outcome="timeout")
                self._drop_sender(handoff)
                raise ChannelTimeout(f"send on {self.name} timed out")
            if isinstance(outcome, ChannelClosed):
                span.set(outcome="closed")
                raise outcome
            span.set(outcome="ok")
            self.metrics.sends += 1

    def _pop_live_receiver(self):
        """Next receiver event that still has a live waiting process.

        A process killed while blocked in recv (crash injection) leaves
        an event with no waiters; delivering to it would lose the message.
        """
        while self._receivers:
            event = self._receivers.popleft()
            if event._waiters:
                return event
        return None

    def _drop_sender(self, event: Event) -> None:
        for pending in list(self._senders):
            if pending[1] is event:
                self._senders.remove(pending)
                return

    # -- receiving --------------------------------------------------------------

    def recv(self, timeout: Optional[float] = None) -> Generator:
        """Generator: return the next message, blocking until one arrives."""
        if self._buffer:
            message = self._buffer.popleft()
            self._refill_from_senders()
            self.metrics.recvs += 1
            return message
        if self._senders:
            message, handoff = self._senders.popleft()
            handoff.trigger(None)
            self.metrics.recvs += 1
            return message
        if self.closed:
            raise ChannelClosed(self.name)
        arrival = Event(self.sim, name=f"{self.name}.recv")
        self._receivers.append(arrival)
        with self.sim.tracer.span("channel.recv", channel=self.name) as span:
            outcome = yield arrival.wait(timeout)
            if outcome is TIMEOUT:
                span.set(outcome="timeout")
                try:
                    self._receivers.remove(arrival)
                except ValueError:
                    pass
                raise ChannelTimeout(f"recv on {self.name} timed out")
            if isinstance(outcome, ChannelClosed):
                span.set(outcome="closed")
                raise outcome
            span.set(outcome="ok")
            self.metrics.recvs += 1
            return outcome

    def _refill_from_senders(self) -> None:
        while self._senders and len(self._buffer) < self.capacity:
            message, handoff = self._senders.popleft()
            self._buffer.append(message)
            handoff.trigger(None)

    # -- non-blocking inspection ---------------------------------------------------

    def try_recv(self) -> tuple[bool, Any]:
        """Non-blocking receive: ``(True, msg)`` or ``(False, None)``."""
        if self._buffer:
            message = self._buffer.popleft()
            self._refill_from_senders()
            self.metrics.recvs += 1
            return True, message
        if self._senders:
            message, handoff = self._senders.popleft()
            handoff.trigger(None)
            self.metrics.recvs += 1
            return True, message
        return False, None

    @property
    def pending(self) -> int:
        """Messages immediately receivable without blocking."""
        return len(self._buffer) + len(self._senders)

"""Bounded worker pools: N processes draining a shared channel.

The daemons the paper makes *asynchronous* (Copy, Retrieve,
Delete-Group, Fig. 5) were still strictly *serial* in this
reproduction. A :class:`WorkerPool` gives them real concurrency while
staying inside the deterministic kernel: ``workers`` generator
processes block on one work :class:`~repro.kernel.channel.Channel`
(``capacity=0`` → rendezvous handoff from the producer, ``capacity>0``
→ a bounded backlog), run a shared ``handler(item)`` generator per
item, and overlap wherever the handler yields (archive transfers, lock
waits, chown round-trips).

Lifecycle contract (what DLFM ``start``/``stop``/``crash`` rely on):

* :meth:`start` builds a FRESH channel and spawns fresh worker
  processes — work queued before a crash dies with the crash, exactly
  like the paper's daemons, and must be re-discovered from durable
  state (the Copy daemon's claim protocol, the Delete-Group restart
  rescan);
* :meth:`stop` kills the workers and releases anyone blocked in
  :meth:`drain` (a drain over a stopped pool cannot complete — the
  caller re-drives from durable state after restart);
* :meth:`drain` blocks until every submitted item has been handled,
  which is what keeps ``CopyDaemon.sweep`` synchronous for its callers
  even though the entries archive in parallel.

Fault injection: when a ``crash_point`` is configured, every item
pickup fires ``daemon.worker:<node>:<daemon>`` through the simulator's
injector *before* the handler runs — a worker crash therefore lands
between "work handed out" and "work done", the window the crash-safe
claim protocols must cover.

Handler failures that are not crashes (aborts, transient I/O) are
absorbed and counted (``metrics.errors``): a pool worker, like the
serial daemon loop it replaces, must outlive retriable trouble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.errors import ChannelClosed, CrashedError, ReproError, SimError
from repro.kernel.channel import Channel
from repro.kernel.sim import Event, Process, Simulator


@dataclass
class PoolMetrics:
    """Lifetime work accounting for one pool (survives restarts)."""

    #: Items handed to :meth:`WorkerPool.submit`.
    submitted: int = 0
    #: Items whose handler ran to completion (including absorbed errors).
    completed: int = 0
    #: Handler failures absorbed by the worker loop (non-crash).
    errors: int = 0
    #: High-water mark of the work queue depth observed at submit time.
    max_depth: int = 0
    #: Total simulated seconds workers spent inside the handler.
    busy_time: float = 0.0

    def snapshot(self, prefix: str = "pool") -> dict:
        """Flat integer counters for a metrics registry."""
        return {
            f"{prefix}_submitted": self.submitted,
            f"{prefix}_completed": self.completed,
            f"{prefix}_errors": self.errors,
            f"{prefix}_max_depth": self.max_depth,
            f"{prefix}_busy_ms": int(self.busy_time * 1000),
        }


class WorkerPool:
    """N simulator processes pulling work items off a shared channel."""

    def __init__(self, sim: Simulator, name: str,
                 handler: Callable[..., Generator], *, workers: int = 1,
                 capacity: int = 0, crash_point: Optional[str] = None,
                 crash_node: str = ""):
        if workers < 1:
            raise SimError(f"pool {name} needs at least one worker")
        self.sim = sim
        self.name = name
        self.handler = handler
        self.workers = workers
        self.capacity = capacity
        self.crash_point = crash_point
        self.crash_node = crash_node
        self.metrics = PoolMetrics()
        self.chan: Optional[Channel] = None
        #: Workers currently inside the handler (gauge).
        self.busy = 0
        self._procs: list[Process] = []
        self._outstanding = 0
        self._drainers: list[Event] = []

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (f"<WorkerPool {self.name} workers={len(self._procs)} "
                f"busy={self.busy} outstanding={self._outstanding}>")

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> list[Process]:
        """(Re)create the work queue and spawn the workers.

        Returns the worker processes so the owner can track them the way
        DLFM tracks its daemon processes. Items queued before a restart
        are dropped with the old channel (crash semantics).
        """
        self.stop()
        self.chan = Channel(self.sim, capacity=self.capacity,
                            name=f"{self.name}.q")
        self._outstanding = 0
        self.busy = 0
        self._procs = [self.sim.spawn(self._worker(), f"{self.name}-w{i}")
                       for i in range(self.workers)]
        return list(self._procs)

    def stop(self) -> None:
        """Kill the workers and release blocked drainers."""
        for proc in self._procs:
            if not proc.finished:
                proc.kill()
        self._procs = []
        self._wake_drainers()

    @property
    def alive(self) -> int:
        """Workers still able to pick up work."""
        return sum(1 for p in self._procs
                   if not p.finished and not p._killed)

    @property
    def depth(self) -> int:
        """Items queued and not yet picked up by a worker."""
        return self.chan.pending if self.chan is not None else 0

    # ------------------------------------------------------------------ producing

    def submit(self, item) -> Generator:
        """Generator: enqueue one item, blocking on backpressure."""
        if not self._procs:
            raise SimError(f"pool {self.name} is not started")
        self.metrics.submitted += 1
        self._outstanding += 1
        try:
            yield from self.chan.send(item)
        except BaseException:
            self._outstanding -= 1
            raise
        depth = self.chan.pending
        if depth > self.metrics.max_depth:
            self.metrics.max_depth = depth

    def drain(self) -> Generator:
        """Generator: wait until every submitted item has been handled.

        Returns immediately when nothing is outstanding; returns early
        (work incomplete) if the pool is stopped or crashes — the caller
        recovers through durable state, not through this gate.
        """
        while self._outstanding and self._procs:
            gate = Event(self.sim, name=f"{self.name}.drain")
            self._drainers.append(gate)
            yield gate.wait()

    def _wake_drainers(self) -> None:
        drainers, self._drainers = self._drainers, []
        for gate in drainers:
            gate.trigger(None)

    # ------------------------------------------------------------------ workers

    def _worker(self) -> Generator:
        chan = self.chan
        while True:
            try:
                item = yield from chan.recv()
            except ChannelClosed:
                return
            if self.sim.injector.enabled and self.crash_point is not None:
                # The hazard window: the item left the queue but the
                # handler has not run. Crash-safe daemons must make work
                # re-discoverable from durable state at this point.
                self.sim.injector.maybe_crash(self.crash_point,
                                              self.crash_node)
            self.busy += 1
            started = self.sim.now
            try:
                yield from self.handler(item)
            except CrashedError:
                raise  # node crash mid-item: the worker dies with it
            except ReproError:
                self.metrics.errors += 1
            finally:
                self.busy -= 1
                self.metrics.busy_time += self.sim.now - started
            self.metrics.completed += 1
            self._outstanding -= 1
            if self._outstanding == 0:
                self._wake_drainers()

"""Capped exponential backoff with seeded jitter.

Retry loops (phase-2 commit/abort, the delete-group daemon) used to
sleep a fixed interval between attempts; under contention that
synchronizes the retries of independent resources into convoys. This
helper grows the delay geometrically up to a cap and spreads it with a
deterministic jitter drawn from a named simulator RNG stream, so runs
stay reproducible.
"""

from __future__ import annotations

import random
from typing import Optional


class Backoff:
    """Delay sequence ``base * factor**n`` capped at ``cap``, jittered.

    ``jitter`` is the relative half-width: a value of 0.1 scales each
    delay by a uniform factor in [0.9, 1.1]. Pass ``jitter=0`` or no RNG
    for the exact deterministic sequence.
    """

    def __init__(self, base: float, factor: float = 2.0,
                 cap: Optional[float] = None, jitter: float = 0.0,
                 rng: Optional[random.Random] = None):
        self.base = max(0.0, base)
        self.factor = max(1.0, factor)
        self.cap = cap
        self.jitter = jitter if rng is not None else 0.0
        self.rng = rng
        self.attempts = 0

    def next(self) -> float:
        """The delay before the next retry; advances the sequence."""
        delay = self.base * (self.factor ** self.attempts)
        self.attempts += 1
        if self.cap is not None:
            delay = min(self.cap, delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        # Re-clamp: the cap is a hard bound, so upward jitter truncates
        # at it — while downward jitter still spreads capped delays
        # below it (a saturated sequence must not re-synchronize).
        if self.cap is not None:
            delay = min(self.cap, delay)
        return delay

    def reset(self) -> None:
        self.attempts = 0

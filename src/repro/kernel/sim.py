"""Core of the discrete-event kernel: clock, processes, events, timers."""

from __future__ import annotations

import hashlib
import heapq
import itertools
import random
from typing import Any, Callable, Generator, Iterable, Optional

from repro.chaos.faults import NULL_INJECTOR
from repro.errors import SimError
from repro.obs.trace import NULL_TRACER


class _Sentinel:
    """Named singleton used for out-of-band resume values."""

    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{self._name}>"


#: Resume value delivered to a waiter whose ``wait(timeout=...)`` expired.
TIMEOUT = _Sentinel("TIMEOUT")

#: Internal marker distinguishing "never triggered" from "triggered with None".
_UNSET = _Sentinel("UNSET")


class Timeout:
    """Yield this to sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimError(f"negative delay {delay!r}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Timeout({self.delay})"


class _Wait:
    """Descriptor produced by :meth:`Event.wait`; handled by the kernel."""

    __slots__ = ("event", "timeout")

    def __init__(self, event: "Event", timeout: Optional[float]):
        self.event = event
        self.timeout = timeout


class Timer:
    """Cancelable one-shot timer entry on the simulator heap."""

    __slots__ = ("fn", "cancelled", "when")

    def __init__(self, fn: Callable[[], None], when: float):
        self.fn = fn
        self.when = when
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def fire(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self.fn()


class Event:
    """Broadcast wakeup primitive.

    ``trigger(value)`` wakes every process currently waiting and, for a
    *latched* event, remembers the value so later waiters return
    immediately (used for process-join and RPC replies).
    """

    __slots__ = ("sim", "latch", "_value", "_waiters", "name")

    def __init__(self, sim: "Simulator", latch: bool = False, name: str = ""):
        self.sim = sim
        self.latch = latch
        self.name = name
        self._value: Any = _UNSET
        self._waiters: list["_Waiter"] = []

    @property
    def triggered(self) -> bool:
        return self._value is not _UNSET

    @property
    def value(self) -> Any:
        if self._value is _UNSET:
            raise SimError(f"event {self.name!r} not triggered")
        return self._value

    def wait(self, timeout: Optional[float] = None) -> _Wait:
        """Return a descriptor to ``yield``; resumes with the trigger value."""
        return _Wait(self, timeout)

    def trigger(self, value: Any = None) -> None:
        if self.latch:
            if self._value is not _UNSET:
                raise SimError(f"latched event {self.name!r} triggered twice")
            self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.wake(value)

    def _add_waiter(self, waiter: "_Waiter") -> None:
        if self.latch and self._value is not _UNSET:
            waiter.wake(self._value)
        else:
            self._waiters.append(waiter)

    def _remove_waiter(self, waiter: "_Waiter") -> None:
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass


class _Waiter:
    """Bookkeeping for one process blocked on one event (with timeout)."""

    __slots__ = ("proc", "event", "timer", "done")

    def __init__(self, proc: "Process", event: Event, timeout: Optional[float]):
        self.proc = proc
        self.event = event
        self.done = False
        self.timer: Optional[Timer] = None
        if timeout is not None:
            self.timer = proc.sim.after(timeout, self._expire)
        proc._pending_waiter = self
        event._add_waiter(self)

    def wake(self, value: Any) -> None:
        if self.done:
            return
        self.done = True
        if self.timer is not None:
            self.timer.cancel()
        if self.proc._pending_waiter is self:
            self.proc._pending_waiter = None
        self.proc.sim._schedule_now(lambda: self.proc._step(value))

    def _expire(self) -> None:
        if self.done:
            return
        self.done = True
        self.event._remove_waiter(self)
        if self.proc._pending_waiter is self:
            self.proc._pending_waiter = None
        self.proc._step(TIMEOUT)

    def cancel(self) -> None:
        """Detach from the event without resuming the process (kill)."""
        if self.done:
            return
        self.done = True
        if self.timer is not None:
            self.timer.cancel()
        self.event._remove_waiter(self)


class Process:
    """A generator driven by the simulator.

    ``proc.done`` is a latched event triggered with ``("ok", result)`` or
    ``("err", exception)``. :meth:`join` re-raises failures in the joiner.
    """

    _ids = itertools.count(1)

    def __init__(self, sim: "Simulator", gen: Generator, name: str):
        self.sim = sim
        self.gen = gen
        self.pid = next(Process._ids)
        self.name = name or f"proc-{self.pid}"
        self.done = Event(sim, latch=True, name=f"{self.name}.done")
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._killed = False
        self._pending_waiter: Optional["_Waiter"] = None
        sim._schedule_now(lambda: self._step(None))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = "done" if self.finished else "live"
        return f"<Process {self.name} {state}>"

    def kill(self) -> None:
        """Terminate the process without running its remaining code.

        Used by crash injection: a killed daemon simply stops being
        scheduled, exactly like a process that dies in a machine crash.
        Any pending event wait is detached so queues (channels, locks)
        don't deliver to a corpse.
        """
        self._killed = True
        if self._pending_waiter is not None:
            self._pending_waiter.cancel()
            self._pending_waiter = None
        if self.sim._current_proc is not self:
            # Closing the generator of the *currently executing* process
            # would throw GeneratorExit into a running frame (crash
            # injection crashes the node from inside one of its own
            # processes). Marking it killed is enough: it never steps
            # again.
            self.gen.close()

    def join(self, timeout: Optional[float] = None) -> Generator:
        """Wait for completion; returns the result or re-raises its error."""
        outcome = yield self.done.wait(timeout)
        if outcome is TIMEOUT:
            return TIMEOUT
        kind, payload = outcome
        if kind == "err":
            # The joiner consumes (and re-raises) the failure, so it is
            # handled even when the process finished before this join
            # registered a waiter (e.g. a scatter-gather straggler).
            self.sim.absolve(self)
            raise payload
        return payload

    def throw(self, exc: BaseException) -> None:
        """Inject an exception at the process's current suspension point."""
        if self.finished or self._killed:
            raise SimError(f"cannot throw into finished process {self.name}")
        self._step(None, exc=exc)

    # -- kernel-side stepping ------------------------------------------------

    def _step(self, value: Any, exc: Optional[BaseException] = None) -> None:
        if self.finished or self._killed:
            return
        prev = self.sim._current_proc
        self.sim._current_proc = self
        try:
            try:
                if exc is not None:
                    item = self.gen.throw(exc)
                else:
                    item = self.gen.send(value)
            except StopIteration as stop:
                self._finish("ok", stop.value)
                return
            except BaseException as error:
                self._finish("err", error)
                return
            self._dispatch(item)
        finally:
            self.sim._current_proc = prev

    def _finish(self, kind: str, payload: Any) -> None:
        self.finished = True
        if kind == "ok":
            self.result = payload
        else:
            self.error = payload
            if not self.done._waiters:
                # Nobody is joining this process: surface the error through
                # Simulator.run() instead of letting it vanish.
                self.sim._record_failure(self, payload)
        self.done.trigger((kind, payload))

    def _dispatch(self, item: Any) -> None:
        if isinstance(item, Timeout):
            self.sim.after(item.delay, lambda: self._step(None))
        elif isinstance(item, _Wait):
            _Waiter(self, item.event, item.timeout)
        else:
            self._step(
                None,
                exc=SimError(
                    f"process {self.name} yielded {item!r}; expected "
                    "Timeout or Event.wait()"
                ),
            )


class Simulator:
    """Virtual clock plus the pending-callback heap."""

    def __init__(self, seed: int = 0, tracer=None, injector=None):
        self.now = 0.0
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind(self)
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.injector.bind(self)
        self._current_proc: Optional[Process] = None
        self._heap: list[tuple[float, int, Timer]] = []
        self._seq = itertools.count()
        self._failures: list[tuple[Process, BaseException]] = []
        self._rng_cache: dict[str, random.Random] = {}

    @property
    def process_name(self) -> str:
        """Name of the process currently being stepped ("kernel" if none)."""
        proc = self._current_proc
        return proc.name if proc is not None else "kernel"

    # -- scheduling -----------------------------------------------------------

    def after(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn`` after ``delay`` simulated seconds; returns a Timer."""
        if delay < 0:
            raise SimError(f"negative delay {delay!r}")
        timer = Timer(fn, self.now + delay)
        heapq.heappush(self._heap, (timer.when, next(self._seq), timer))
        return timer

    def _schedule_now(self, fn: Callable[[], None]) -> Timer:
        return self.after(0.0, fn)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Register ``gen`` as a process; it starts at the current time."""
        return Process(self, gen, name)

    # -- execution ------------------------------------------------------------

    def run(self, until: Optional[float] = None, *, raise_failures: bool = True,
            stop_when: Optional[Callable[[], bool]] = None) -> None:
        """Drain the event heap, optionally stopping the clock at ``until``.

        ``stop_when`` halts the loop as soon as the predicate turns true
        (checked after each fired timer) — used to stop when a root
        process completes even though daemons keep re-arming timers.
        Unhandled process exceptions are collected and re-raised here (the
        first one) so tests fail loudly; pass ``raise_failures=False`` for
        experiments that deliberately crash processes.
        """
        if stop_when is not None and stop_when():
            return
        while self._heap:
            when, _, timer = self._heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self.now = when
            timer.fn()
            if raise_failures and self._failures:
                proc, error = self._failures[0]
                raise SimError(f"process {proc.name} failed") from error
            if stop_when is not None and stop_when():
                return
        if until is not None and self.now < until:
            self.now = until

    def run_process(self, gen: Generator, name: str = "",
                    until: Optional[float] = None) -> Any:
        """Spawn ``gen``, run the simulation, and return its result.

        The root process's own exception propagates as-is; failures of
        other unjoined processes surface as SimError.
        """
        proc = self.spawn(gen, name or "main")
        self.run(until=until, raise_failures=False,
                 stop_when=lambda: proc.finished)
        if proc.error is not None:
            self._failures = [f for f in self._failures if f[0] is not proc]
            raise proc.error
        if self._failures:
            other, error = self._failures[0]
            raise SimError(f"process {other.name} failed") from error
        if not proc.finished:
            raise SimError(f"process {proc.name} did not finish by t={self.now}")
        return proc.result

    # -- failure bookkeeping ----------------------------------------------------

    def _record_failure(self, proc: Process, error: BaseException) -> None:
        self._failures.append((proc, error))

    def absolve(self, proc: Process) -> None:
        """Forget a recorded unhandled failure of ``proc``.

        A process that fails before anyone waits on its ``done`` event is
        recorded as unhandled at finalize time; a consumer that later
        reads the outcome off the latched event (join, scatter-gather)
        calls this so the handled error does not also fail the run.
        """
        self._failures = [f for f in self._failures if f[0] is not proc]

    def consume_failures(self) -> list[tuple[Process, BaseException]]:
        """Return and clear unhandled process failures (for crash tests)."""
        failures, self._failures = self._failures, []
        return failures

    # -- deterministic randomness -------------------------------------------------

    def stream(self, name: str) -> random.Random:
        """A named RNG stream, stable across runs for a given (seed, name)."""
        rng = self._rng_cache.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._rng_cache[name] = rng
        return rng

    # -- convenience ---------------------------------------------------------------

    def gather(self, gens: Iterable[Generator], name: str = "gather") -> Generator:
        """Generator: run ``gens`` concurrently, return their results in order."""
        procs = [self.spawn(gen, f"{name}-{i}") for i, gen in enumerate(gens)]
        results = []
        for proc in procs:
            results.append((yield from proc.join()))
        return results


def run_to_completion(gen_factory: Callable[[Simulator], Generator],
                      seed: int = 0) -> Any:
    """One-shot helper: build a simulator, run one root process, return result."""
    sim = Simulator(seed=seed)
    return sim.run_process(gen_factory(sim), "root")

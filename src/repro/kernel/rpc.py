"""Request/reply messaging over channels.

``call`` is the synchronous RPC the DataLinks components use: send the
request (blocking until the peer's agent is ready to receive — faithful
to the paper, where a host agent's message send blocks while the DLFM
child agent is still busy) and wait for the reply. ``cast`` sends
without waiting for completion and returns the reply event — the
*asynchronous commit* mode whose distributed deadlock is experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.chaos.faults import DUP_KINDS
from repro.errors import ReproError, SimError
from repro.kernel.channel import Channel
from repro.kernel.sim import TIMEOUT, Event, Simulator, Timeout

#: 2PC verbs that are protocol-idempotent (the receiver answers
#: "already finished" on redelivery) and therefore legal targets for
#: duplicate-delivery injection.
IDEMPOTENT_VERBS = frozenset({"Commit", "Abort", "ListIndoubt"})


@dataclass
class Envelope:
    payload: Any
    reply: Event

    @property
    def nops(self) -> int:
        """Logical operations riding in this one physical message.

        A vectored payload (anything exposing an ``ops`` sequence, such
        as :class:`repro.dlfm.api.Batch`) counts each carried operation;
        a plain request counts 1. This is what the batching fast path
        optimises: many ops, one rendezvous.
        """
        ops = getattr(self.payload, "ops", None)
        return len(ops) if ops is not None else 1


def call(sim: Simulator, chan: Channel, payload: Any,
         timeout: Optional[float] = None):
    """Generator: synchronous RPC; re-raises the remote exception."""
    with sim.tracer.span("rpc.call", channel=chan.name,
                         request=type(payload).__name__,
                         nops=_payload_nops(payload)):
        reply = yield from cast(sim, chan, payload)
        return (yield from wait_reply(reply, timeout))


def cast(sim: Simulator, chan: Channel, payload: Any):
    """Generator: send the request; return the reply event immediately.

    The *send itself* still blocks until the peer agent issues a receive
    (rendezvous), which is exactly the hazard of asynchronous commit.
    A vectored payload changes nothing here: a Batch is still ONE
    blocking rendezvous, so the E6 deadlock preconditions are preserved.
    """
    reply = Event(sim, latch=True, name="rpc-reply")
    yield from chan.send(Envelope(payload, reply))
    verb = type(payload).__name__
    if sim.injector.enabled and verb in IDEMPOTENT_VERBS:
        rule = sim.injector.fire(f"rpc.dup:{verb}", DUP_KINDS)
        if rule is not None:
            # At-least-once transport: deliver the request a second time.
            # The duplicate carries its own reply event (a latched event
            # must not trigger twice); its outcome is discarded.
            shadow = Event(sim, latch=True, name="rpc-reply-dup")
            try:
                yield from chan.send(Envelope(payload, shadow))
            except ReproError:
                pass
    return reply


def _payload_nops(payload: Any) -> int:
    ops = getattr(payload, "ops", None)
    return len(ops) if ops is not None else 1


def _absorb(proc):
    """Generator: join ``proc`` swallowing its error (reply drained)."""
    try:
        yield from proc.join()
    except ReproError:
        pass


def _fanout_faults(sim: Simulator, fault_point: str,
                   fault_node: Optional[str]):
    """Generator: fire the scatter→gather chaos window at ``fault_point``.

    A ``delay`` rule stalls the gatherer while the scattered requests are
    in flight; a ``crash`` rule takes ``fault_node`` down mid-fan-out —
    the coordinator dies *between* scatter and gather, the window where
    parallel prepare leaves every participant in doubt at once.
    """
    rule = sim.injector.fire(fault_point, ("delay",))
    if rule is not None:
        yield Timeout(rule.delay)
    if fault_node is not None:
        sim.injector.maybe_crash(fault_point, fault_node)


def gather_all(sim: Simulator, gens, *, name: str = "gather",
               return_exceptions: bool = False,
               fault_point: Optional[str] = None,
               fault_node: Optional[str] = None):
    """Generator: run ``gens`` concurrently and drain EVERY outcome.

    Unlike :meth:`Simulator.gather` (which re-raises at the first failed
    join, leaving later processes unjoined), this always consumes every
    process's outcome before returning — no orphaned reply events, no
    unjoined-failure noise. With ``return_exceptions=False`` the first
    error (in ``gens`` order) is re-raised *after* the drain; with True
    the returned list carries the exception objects in place of results.

    If a crash fault fires inside the scatter→gather window, the still
    outstanding processes are handed to detached absorbers so their
    replies are consumed even though the gatherer is gone.
    """
    procs = [sim.spawn(gen, f"{name}-{i}") for i, gen in enumerate(gens)]
    if fault_point is not None and sim.injector.enabled:
        try:
            yield from _fanout_faults(sim, fault_point, fault_node)
        except ReproError:
            for proc in procs:
                sim.spawn(_absorb(proc), f"{name}-drain")
            raise
    results = []
    first_error: Optional[BaseException] = None
    for proc in procs:
        outcome = yield proc.done.wait()
        kind, value = outcome
        if kind == "err":
            sim.absolve(proc)  # consumed here, not an unhandled failure
            if first_error is None:
                first_error = value
        results.append(value)
    if first_error is not None and not return_exceptions:
        raise first_error
    return results


def scatter(sim: Simulator, calls, *, name: str = "scatter",
            return_exceptions: bool = False,
            fault_point: Optional[str] = None,
            fault_node: Optional[str] = None):
    """Generator: fan one RPC out per ``(channel, payload)`` pair.

    All requests are cast concurrently (each in its own process, so one
    slow participant no longer serializes the rest), then every reply is
    gathered. First-error semantics: the remaining replies are still
    drained before the first error (in ``calls`` order) is re-raised —
    or returned in-place with ``return_exceptions=True``, which 2PC
    phase 1 uses to learn *which* participant voted no.

    ``fault_point``/``fault_node`` open a chaos window between the
    scatter and the gather (kinds ``delay`` and ``crash``).
    """
    calls = list(calls)
    gens = (call(sim, chan, payload) for chan, payload in calls)
    result = yield from gather_all(
        sim, gens, name=name, return_exceptions=return_exceptions,
        fault_point=fault_point, fault_node=fault_node)
    return result


def scatter_cast(sim: Simulator, calls, *, name: str = "scatter-cast",
                 fault_point: Optional[str] = None,
                 fault_node: Optional[str] = None):
    """Generator: fan out the *sends* only; return the reply events.

    The asynchronous-commit (E6) analogue of :func:`scatter`: every
    payload is cast concurrently, and control returns once every send
    has completed its rendezvous — i.e. every peer agent has RECEIVED
    its request and started processing — without waiting for any reply.
    The per-send blocking that makes asynchronous commit hazardous is
    preserved exactly; only the N sends overlap each other.
    """
    calls = list(calls)
    gens = (cast(sim, chan, payload) for chan, payload in calls)
    replies = yield from gather_all(
        sim, gens, name=name, fault_point=fault_point,
        fault_node=fault_node)
    return replies


def wait_reply(reply: Event, timeout: Optional[float] = None):
    """Generator: await a reply event from ``cast``."""
    outcome = yield reply.wait(timeout)
    if outcome is TIMEOUT:
        raise SimError("rpc reply timed out")
    kind, value = outcome
    if kind == "err":
        raise value
    return value


def serve_loop(chan: Channel, dispatch):
    """Generator: agent main loop — receive, dispatch, reply, repeat.

    ``dispatch`` is a generator callable(payload) → result. The loop ends
    when the channel closes. While a request is being processed the agent
    is NOT receiving, so further senders block (rendezvous) — the paper's
    message-send blocking behaviour.
    """
    from repro.chaos.faults import REPLY_KINDS
    from repro.errors import ChannelClosed, ReproError
    while True:
        try:
            envelope = yield from chan.recv()
        except ChannelClosed:
            return
        try:
            result = yield from dispatch(envelope.payload)
        except ReproError as error:
            outcome = ("err", error)
        else:
            outcome = ("ok", result)
        sim = chan.sim
        if sim.injector.enabled and sim.injector.fire(
                f"rpc.reply:{chan.name}", REPLY_KINDS) is not None:
            # Partition/heal: the request was delivered and fully
            # processed, but the reply is lost on the way back. The
            # caller is left hanging exactly as a healed network
            # partition would leave it — its state must be resolved by
            # re-drive (idempotent verbs) or the in-doubt poller.
            continue
        envelope.reply.trigger(outcome)

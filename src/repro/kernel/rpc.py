"""Request/reply messaging over channels.

``call`` is the synchronous RPC the DataLinks components use: send the
request (blocking until the peer's agent is ready to receive — faithful
to the paper, where a host agent's message send blocks while the DLFM
child agent is still busy) and wait for the reply. ``cast`` sends
without waiting for completion and returns the reply event — the
*asynchronous commit* mode whose distributed deadlock is experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.chaos.faults import DUP_KINDS
from repro.errors import ReproError, SimError
from repro.kernel.channel import Channel
from repro.kernel.sim import TIMEOUT, Event, Simulator

#: 2PC verbs that are protocol-idempotent (the receiver answers
#: "already finished" on redelivery) and therefore legal targets for
#: duplicate-delivery injection.
IDEMPOTENT_VERBS = frozenset({"Commit", "Abort", "ListIndoubt"})


@dataclass
class Envelope:
    payload: Any
    reply: Event

    @property
    def nops(self) -> int:
        """Logical operations riding in this one physical message.

        A vectored payload (anything exposing an ``ops`` sequence, such
        as :class:`repro.dlfm.api.Batch`) counts each carried operation;
        a plain request counts 1. This is what the batching fast path
        optimises: many ops, one rendezvous.
        """
        ops = getattr(self.payload, "ops", None)
        return len(ops) if ops is not None else 1


def call(sim: Simulator, chan: Channel, payload: Any,
         timeout: Optional[float] = None):
    """Generator: synchronous RPC; re-raises the remote exception."""
    with sim.tracer.span("rpc.call", channel=chan.name,
                         request=type(payload).__name__,
                         nops=_payload_nops(payload)):
        reply = yield from cast(sim, chan, payload)
        return (yield from wait_reply(reply, timeout))


def cast(sim: Simulator, chan: Channel, payload: Any):
    """Generator: send the request; return the reply event immediately.

    The *send itself* still blocks until the peer agent issues a receive
    (rendezvous), which is exactly the hazard of asynchronous commit.
    A vectored payload changes nothing here: a Batch is still ONE
    blocking rendezvous, so the E6 deadlock preconditions are preserved.
    """
    reply = Event(sim, latch=True, name="rpc-reply")
    yield from chan.send(Envelope(payload, reply))
    verb = type(payload).__name__
    if sim.injector.enabled and verb in IDEMPOTENT_VERBS:
        rule = sim.injector.fire(f"rpc.dup:{verb}", DUP_KINDS)
        if rule is not None:
            # At-least-once transport: deliver the request a second time.
            # The duplicate carries its own reply event (a latched event
            # must not trigger twice); its outcome is discarded.
            shadow = Event(sim, latch=True, name="rpc-reply-dup")
            try:
                yield from chan.send(Envelope(payload, shadow))
            except ReproError:
                pass
    return reply


def _payload_nops(payload: Any) -> int:
    ops = getattr(payload, "ops", None)
    return len(ops) if ops is not None else 1


def wait_reply(reply: Event, timeout: Optional[float] = None):
    """Generator: await a reply event from ``cast``."""
    outcome = yield reply.wait(timeout)
    if outcome is TIMEOUT:
        raise SimError("rpc reply timed out")
    kind, value = outcome
    if kind == "err":
        raise value
    return value


def serve_loop(chan: Channel, dispatch):
    """Generator: agent main loop — receive, dispatch, reply, repeat.

    ``dispatch`` is a generator callable(payload) → result. The loop ends
    when the channel closes. While a request is being processed the agent
    is NOT receiving, so further senders block (rendezvous) — the paper's
    message-send blocking behaviour.
    """
    from repro.errors import ChannelClosed, ReproError
    while True:
        try:
            envelope = yield from chan.recv()
        except ChannelClosed:
            return
        try:
            result = yield from dispatch(envelope.payload)
        except ReproError as error:
            envelope.reply.trigger(("err", error))
        else:
            envelope.reply.trigger(("ok", result))

"""Reproduction of "DLFM: A Transactional Resource Manager" (SIGMOD 2000).

Layer map (bottom-up):

* :mod:`repro.kernel` -- deterministic discrete-event simulation kernel.
* :mod:`repro.minidb` + :mod:`repro.sql` -- the embedded RDBMS playing
  DB2's role (DLFM's local store and the host database engine).
* :mod:`repro.fs`, :mod:`repro.dlff`, :mod:`repro.archive` -- file server,
  file-system filter, and ADSM-like archive server.
* :mod:`repro.dlfm` -- the paper's contribution: the DataLinks File
  Manager (child agents, link/unlink, 2PC participant, daemons).
* :mod:`repro.host` -- host database with the datalink engine, the 2PC
  coordinator, and the backup/restore/reconcile utilities.
* :mod:`repro.system` -- one-call wiring of a whole DataLinks deployment.
"""

__version__ = "1.0.0"

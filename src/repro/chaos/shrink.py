"""Greedy fault-schedule shrinking.

Given a failing repro document (a campaign that ended with violations),
:func:`shrink_doc` searches for a smaller campaign that still fails with
(at least one of) the same violation codes, by greedily trying:

* halving the operation count,
* removing whole fault rules,
* reducing a rule's ``max_fires`` (unbounded → 1).

Every trial is a full deterministic re-run, so an accepted reduction is
*proven* to still reproduce. Rule ids are derived from rule shape, not
list position (see :meth:`FaultPlan.with_ids`), so removing one rule
leaves the RNG streams of the survivors untouched — the usual reason
naive schedule shrinking diverges.
"""

from __future__ import annotations

from dataclasses import replace

from repro.chaos.campaign import CampaignConfig, config_from_doc, \
    run_campaign
from repro.chaos.faults import FaultPlan


def _still_fails(config: CampaignConfig, codes: set) -> bool:
    result = run_campaign(config)
    return any(v.code in codes for v in result.violations)


def shrink_config(config: CampaignConfig, codes: set,
                  max_trials: int = 40) -> tuple:
    """Greedy shrink; returns (smaller_config, trials_used).

    The returned config is always ≤ the input (ops and rule count never
    grow) and still fails with one of ``codes``.
    """
    trials = 0
    improved = True
    while improved and trials < max_trials:
        improved = False

        # 1. Fewer operations.
        if config.ops > 20 and trials < max_trials:
            trial = replace(config, ops=max(20, config.ops // 2))
            trials += 1
            if _still_fails(trial, codes):
                config = trial
                improved = True
                continue

        # 2. Drop whole rules, one at a time.
        plan = config.plan
        for i in range(len(plan.rules)):
            if trials >= max_trials:
                break
            rules = list(plan.rules)
            removed = rules.pop(i)
            trial = replace(config, plan=FaultPlan(rules=rules,
                                                   name=plan.name))
            trials += 1
            if _still_fails(trial, codes):
                config = trial
                plan = trial.plan
                improved = True
                break  # restart the scan over the smaller plan

        if improved:
            continue

        # 3. Tighten unbounded rules to a single firing.
        for i, rule in enumerate(plan.rules):
            if trials >= max_trials:
                break
            if rule.max_fires is not None and rule.max_fires <= 1:
                continue
            rules = list(plan.rules)
            rules[i] = replace(rule, max_fires=1)
            trial = replace(config, plan=FaultPlan(rules=rules,
                                                   name=plan.name))
            trials += 1
            if _still_fails(trial, codes):
                config = trial
                plan = trial.plan
                improved = True
                break
    return config, trials


def shrink_doc(doc: dict, max_trials: int = 40) -> dict:
    """Shrink a failing repro document; returns the (re-run) smaller doc.

    The result is the repro document of the final shrunken run, so its
    violations/op_trace/fired fields describe the minimized failure.
    """
    codes = {v["code"] for v in doc.get("violations", [])}
    if not codes:
        return doc
    config = config_from_doc(doc)
    config = replace(config, plan=config.plan.with_ids())
    smaller, _ = shrink_config(config, codes, max_trials=max_trials)
    result = run_campaign(smaller)
    out = result.repro_doc()
    out["shrunk_from"] = {"ops": doc["ops"],
                          "rules": len(doc["plan"]["rules"])}
    return out

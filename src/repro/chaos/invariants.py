"""Cross-layer invariant checking (chaos oracle).

After a campaign round has quiesced — every node restarted and
recovered, all daemons drained, no in-flight transactions — the whole
deployment must be in a *clean* state: the host's DATALINK columns, each
DLFM's metadata tables, the file servers' namespace/ownership bits and
the archive contents all agree. :func:`check_invariants` cross-checks
them and returns the violations found.

The checker is an out-of-band oracle: it reads engine state directly
(``Database.table_rows``, ``FileSystem._files``) rather than going
through sessions, so it can never deadlock with the system under test
and never perturbs its RNG streams.

Violation codes (also documented in DESIGN.md §10):

==========================  ====================================================
``node-down``               a database is still crashed at check time
``dangling-host-ref``       DATALINK value with no ST_LINKED DLFM entry
``linked-file-missing``     ST_LINKED entry but the file is gone
``linked-not-protected``    linked file missing takeover ownership/read-only
``orphan-linked-entry``     ST_LINKED entry no host row references
``linked-in-dead-group``    ST_LINKED entry in a deleted/unknown group
``stale-write-protection``  file owned by the DLFM admin with no linked entry
``unresolved-delayed-update`` ST_UNLINKING row survived quiesce
``orphan-indoubt-txn``      prepared dfm_txn row with no host decision row
``unfinished-commit-work``  committed/in-flight dfm_txn row after quiesce
``stale-decision-row``      dlk_indoubt row with no prepared DLFM txn
``unresolved-deleted-group`` group still in state 'deleted' after quiesce
``unarchived-pending``      dfm_archive row survived quiesce
``missing-archive-copy``    archived=1 entry with no archive copy
``leaked-txn``              active (never-prepared) transaction after quiesce
``leaked-locks``            lock table non-empty with no transactions
``lost-committed-version``  MVCC: newest committed version state disagrees
                            with the base rows (a fold lost or invented data)
``stale-merge``             MVCC: a merge ran with a watermark above the
                            oldest live snapshot
``unresolved-moving-group`` group still moving-out/moving-in after quiesce
``ambiguous-group-ownership`` sharded: group active on several shards, on the
                            wrong shard, or at an epoch the catalog disagrees
                            with
``unrouted-group``          sharded: catalog row with no active group behind
                            it, or an active group no catalog row routes to
==========================  ====================================================

Decision bookkeeping (``stale-decision-row``, ``orphan-indoubt-txn``)
covers BOTH decision stores: classic ``dlk_indoubt`` rows and decisions
piggybacked on the host's COMMIT records (``host.decision_rows()`` is
their union). Shards of a sharded fleet share one file server, so the
host-ref ↔ linked-entry and write-protection cross-checks run per file
server against the union of its DLFMs' metadata.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.dlff.filter import DLFM_ADMIN
from repro.dlfm import schema
from repro.errors import DataLinkError
from repro.fs.filesystem import READ_ONLY
from repro.host.datalink import parse_url, shadow_column
from repro.minidb.txn import TxnState


@dataclass(frozen=True)
class Violation:
    code: str     # stable identifier, see module docstring
    node: str     # node the evidence lives on ("host", "fs1", ...)
    detail: str   # human-readable specifics

    def to_doc(self) -> dict:
        return {"code": self.code, "node": self.node, "detail": self.detail}

    @classmethod
    def from_doc(cls, doc: dict) -> "Violation":
        return cls(doc["code"], doc["node"], doc["detail"])


def _rows(db, table: str) -> list[dict]:
    """Whole table as column-name dicts (robust to column reordering)."""
    names = db.catalog.tables[table].column_names
    return [dict(zip(names, row)) for row in db.table_rows(table)]


def check_invariants(system) -> list["Violation"]:
    """Cross-check host ↔ DLFMs ↔ file servers ↔ archive; return violations."""
    out: list[Violation] = []

    downs = _check_nodes_up(system, out)
    host_refs = _collect_host_refs(system, out)
    for name in sorted(system.dlfms):
        if name in downs or system.host.db.crashed:
            continue  # can't cross-check against a crashed side
        _check_dlfm(system, name, host_refs, out)
    _check_fs_crosslinks(system, downs, host_refs, out)
    if not system.host.db.crashed:
        _check_host(system, downs, out)
        if getattr(system.host, "shard_map", None) is not None:
            _check_shard_catalog(system, downs, out)
    return out


# ---------------------------------------------------------------- node state

def _check_nodes_up(system, out: list) -> set:
    downs = set()
    if system.host.db.crashed:
        out.append(Violation("node-down", "host",
                             f"host database {system.host.dbid} still down"))
    for name, dlfm in sorted(system.dlfms.items()):
        if dlfm.db.crashed:
            downs.add(name)
            out.append(Violation("node-down", name,
                                 f"DLFM database on {name} still down"))
    return downs


# ---------------------------------------------------------------- host side

def _collect_host_refs(system, out: list):
    """Every live DATALINK value: (server, path) → (recid, table, column).

    Returns None when the host is down (cross-checks are skipped then).
    """
    host = system.host
    if host.db.crashed:
        return None
    refs: dict[tuple, tuple] = {}
    for table, dl_columns in sorted(host.datalink_columns.items()):
        tdef = host.db.catalog.tables.get(table)
        if tdef is None:
            continue  # dropped table with a stale registry entry
        rows = host.db.table_rows(table)
        for column in sorted(dl_columns):
            pos = tdef.position(column)
            shadow = tdef.position(shadow_column(column))
            for row in rows:
                url = row[pos]
                if url is None:
                    continue
                try:
                    server, path = parse_url(url)
                except DataLinkError:
                    out.append(Violation(
                        "dangling-host-ref", "host",
                        f"{table}.{column} holds malformed URL {url!r}"))
                    continue
                refs[(server, path)] = (row[shadow], table, column)
    return refs


def _check_host(system, downs: set, out: list) -> None:
    host = system.host
    # Presumed abort bookkeeping: a decision (dlk_indoubt row or
    # piggybacked COMMIT-payload entry) survives quiesce only if phase 2
    # never finished — but then the DLFM must still hold a prepared
    # transaction for it (else the decision is garbage that will
    # re-drive phase 2 forever).
    for txn_id, server in sorted(host.decision_rows()):
        dlfm = system.dlfms.get(server)
        if dlfm is None or server in downs:
            continue
        prepared = any(
            r["txn_id"] == txn_id and r["state"] == schema.TXN_PREPARED
            for r in _rows(dlfm.db, "dfm_txn") if r["dbid"] == host.dbid)
        if not prepared:
            out.append(Violation(
                "stale-decision-row", "host",
                f"decision ({txn_id}, {server}) but {server} has no "
                f"prepared txn {txn_id}"))
    _check_engine_residue(host.db, "host", out)


# ---------------------------------------------------------------- DLFM side

def _check_dlfm(system, name: str, host_refs, out: list) -> None:
    dlfm = system.dlfms[name]
    host = system.host
    fs = dlfm.server.fs
    files = _rows(dlfm.db, "dfm_file")
    groups = {r["grp_id"]: r for r in _rows(dlfm.db, "dfm_group")
              if r["dbid"] == host.dbid}

    for row in files:
        path, state = row["filename"], row["state"]
        if state == schema.ST_LINKED:
            _check_linked_file(system, name, fs, row, groups, host_refs, out)
        elif state == schema.ST_UNLINKING:
            out.append(Violation(
                "unresolved-delayed-update", name,
                f"{path} still ST_UNLINKING (txn {row['unlink_txn']}) "
                f"after quiesce"))
        if (row["archived"] and not system.archive.has_copy(
                dlfm.server.name, path, row["recovery_id"])):
            out.append(Violation(
                "missing-archive-copy", name,
                f"{path}@{row['recovery_id']} marked archived but the "
                f"archive has no copy"))

    _check_dlfm_txns(system, name, dlfm, out)
    for row in sorted(groups.values(), key=lambda r: r["grp_id"]):
        if row["state"] == schema.GRP_DELETED:
            out.append(Violation(
                "unresolved-deleted-group", name,
                f"group {row['grp_id']} ({row['table_name']}."
                f"{row['column_name']}) still 'deleted' after quiesce"))
        elif row["state"] in (schema.GRP_MOVING_OUT, schema.GRP_MOVING_IN):
            out.append(Violation(
                "unresolved-moving-group", name,
                f"group {row['grp_id']} ({row['table_name']}."
                f"{row['column_name']}) still {row['state']!r} after "
                f"quiesce"))
    for row in _rows(dlfm.db, "dfm_archive"):
        out.append(Violation(
            "unarchived-pending", name,
            f"{row['filename']}@{row['recovery_id']} still pending "
            f"archive after quiesce"))
    _check_engine_residue(dlfm.db, name, out)


def _check_linked_file(system, name, fs, row, groups, host_refs, out) -> None:
    path = row["filename"]
    node = fs._files.get(path)
    if node is None:
        out.append(Violation(
            "linked-file-missing", name,
            f"{path} is ST_LINKED but missing from the file system"))
    else:
        full = row["access_ctl"] == "full"
        want_ro = full or row["recovery"] == "yes"
        if full and node.owner != DLFM_ADMIN:
            out.append(Violation(
                "linked-not-protected", name,
                f"{path} linked under full control but owned by "
                f"{node.owner!r}"))
        if want_ro and node.mode != READ_ONLY:
            out.append(Violation(
                "linked-not-protected", name,
                f"{path} must be read-only but has mode {oct(node.mode)}"))
    group = groups.get(row["grp_id"])
    if group is None or group["state"] != schema.GRP_ACTIVE:
        state = "missing" if group is None else repr(group["state"])
        out.append(Violation(
            "linked-in-dead-group", name,
            f"{path} is ST_LINKED in group {row['grp_id']} ({state})"))
        return  # a dead group has no host rows to cross-check against
    fs_name = system.dlfms[name].server.name
    if host_refs is not None and (fs_name, path) not in host_refs:
        out.append(Violation(
            "orphan-linked-entry", name,
            f"{path} is ST_LINKED (group {row['grp_id']}, "
            f"{group['table_name']}.{group['column_name']}) but no host "
            f"row references it"))


def _check_dlfm_txns(system, name, dlfm, out) -> None:
    host = system.host
    decisions = set()
    if not host.db.crashed:
        decisions = {txn_id for txn_id, server in host.decision_rows()
                     if server == name}
    for row in _rows(dlfm.db, "dfm_txn"):
        txn_id, state = row["txn_id"], row["state"]
        if state == schema.TXN_PREPARED:
            if not host.db.crashed and txn_id not in decisions:
                out.append(Violation(
                    "orphan-indoubt-txn", name,
                    f"txn {txn_id} prepared but the host holds no "
                    f"decision row (presumed abort should have fired)"))
        else:
            out.append(Violation(
                "unfinished-commit-work", name,
                f"txn {txn_id} still {state!r} after quiesce"))


# ---------------------------------------------------------------- file-server side

def _check_fs_crosslinks(system, downs: set, host_refs, out: list) -> None:
    """Per-FILE-SERVER cross-checks: host refs must have an ST_LINKED
    entry behind them, and takeover ownership must be backed by one.

    These run against the union of all DLFMs mounted on a server: in a
    sharded fleet every shard shares one file server and any shard may
    own the entry, so judging a single shard's table would cry wolf.
    """
    if host_refs is None:
        return
    fleets: dict[str, list] = {}
    for name, dlfm in sorted(system.dlfms.items()):
        fleets.setdefault(dlfm.server.name, []).append(name)
    for fs_name, members in sorted(fleets.items()):
        if any(m in downs for m in members):
            continue  # partial view of the linked set: skip this server
        fs = system.dlfms[members[0]].server.fs
        linked: dict[str, list] = {}
        for member in members:
            for row in _rows(system.dlfms[member].db, "dfm_file"):
                if row["state"] == schema.ST_LINKED:
                    linked.setdefault(row["filename"], []).append(row)
        for (server, path), (recid, table, column) in sorted(
                host_refs.items()):
            if server != fs_name:
                continue
            match = linked.get(path, [])
            if not match:
                out.append(Violation(
                    "dangling-host-ref", fs_name,
                    f"{table}.{column} -> {path} has no ST_LINKED entry"))
            elif recid is not None and all(
                    r["recovery_id"] != recid for r in match):
                out.append(Violation(
                    "dangling-host-ref", fs_name,
                    f"{table}.{column} -> {path} recovery id {recid} "
                    f"matches no ST_LINKED entry"))
        # Takeover bits with no linked entry = protection leaked by a
        # half-done unlink (the release never ran and never will).
        for path, node in sorted(fs._files.items()):
            if node.owner == DLFM_ADMIN and path not in linked:
                out.append(Violation(
                    "stale-write-protection", fs_name,
                    f"{path} owned by {DLFM_ADMIN} with no ST_LINKED "
                    f"entry"))


# ---------------------------------------------------------------- shard catalog

def _check_shard_catalog(system, downs: set, out: list) -> None:
    """Sharded fleet: every group has exactly one active owner and the
    durable ``dlk_shardmap`` catalog routes to it at the same epoch."""
    if downs:
        return  # a down shard hides ownership; node-down already reported
    host = system.host
    catalog = {r["grp_id"]: (r["shard"], r["epoch"])
               for r in _rows(host.db, "dlk_shardmap")}
    owners: dict[int, list] = {}
    for name in sorted(system.dlfms):
        for row in _rows(system.dlfms[name].db, "dfm_group"):
            if row["dbid"] != host.dbid:
                continue
            if row["state"] not in (schema.GRP_ACTIVE, schema.GRP_MOVING_OUT,
                                    schema.GRP_MOVING_IN):
                continue  # deleted/emptied: dropped group awaiting GC
            owners.setdefault(row["grp_id"], []).append(
                (name, row["state"], row["epoch"]))
    for grp_id, (shard, epoch) in sorted(catalog.items()):
        entries = owners.get(grp_id, [])
        if any(s in (schema.GRP_MOVING_OUT, schema.GRP_MOVING_IN)
               for _, s, _ in entries):
            continue  # already reported as unresolved-moving-group
        active = [(n, e) for n, s, e in entries if s == schema.GRP_ACTIVE]
        if not active:
            out.append(Violation(
                "unrouted-group", "host",
                f"catalog routes group {grp_id} to {shard} (epoch "
                f"{epoch}) but no shard has it active"))
        elif len(active) > 1:
            out.append(Violation(
                "ambiguous-group-ownership", "host",
                f"group {grp_id} active on "
                f"{', '.join(n for n, _ in active)}"))
        else:
            (owner, gepoch), = active
            if owner != shard or gepoch != epoch:
                out.append(Violation(
                    "ambiguous-group-ownership", "host",
                    f"catalog routes group {grp_id} to {shard}@{epoch} "
                    f"but it is active on {owner}@{gepoch}"))
    for grp_id in sorted(set(owners) - set(catalog)):
        names = ", ".join(n for n, _, _ in owners[grp_id])
        out.append(Violation(
            "unrouted-group", "host",
            f"group {grp_id} lives on {names} but no catalog row "
            f"routes to it"))


# ---------------------------------------------------------------- engine residue

def _check_engine_residue(db, node: str, out: list) -> None:
    """Leaked transactions and locks inside one minidb engine."""
    active = db.txns.active
    stray = [t for t in active if t.state is not TxnState.PREPARED]
    for txn in stray:
        out.append(Violation(
            "leaked-txn", node,
            f"transaction {txn.id} still {txn.state.value} after quiesce"))
    if not active and db.locks.total_locks:
        out.append(Violation(
            "leaked-locks", node,
            f"{db.locks.total_locks} locks held with no live transactions"))
    _check_version_state(db, node, out)


def _check_version_state(db, node: str, out: list) -> None:
    """MVCC residue inside one engine.

    ``stale-merge``: the engine records every merge pass whose watermark
    exceeded the oldest live snapshot (a daemon bug would tear rows out
    from under a reader); the record survives until checked.

    ``lost-committed-version``: with no transaction in flight, a fresh
    snapshot at the WAL tail must see exactly the base rows — a multiset
    comparison per table (row tuples may contain None, so no sorting).
    Skipped while any transaction is live: a prepared transaction's
    uncommitted slot data legitimately differs from its seed versions.
    """
    for detail in db.version_violations:
        out.append(Violation("stale-merge", node, detail))
    if not db.config.mvcc or db.txns.active:
        return
    for table in sorted(db.catalog.tables):
        base = Counter(db.table_rows(table))
        visible = Counter(db.snapshot_table_rows(table))
        if base != visible:
            lost = sum((base - visible).values())
            extra = sum((visible - base).values())
            out.append(Violation(
                "lost-committed-version", node,
                f"{table}: snapshot at the WAL tail disagrees with base "
                f"rows ({lost} missing from the snapshot, {extra} extra)"))

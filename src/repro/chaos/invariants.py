"""Cross-layer invariant checking (chaos oracle).

After a campaign round has quiesced — every node restarted and
recovered, all daemons drained, no in-flight transactions — the whole
deployment must be in a *clean* state: the host's DATALINK columns, each
DLFM's metadata tables, the file servers' namespace/ownership bits and
the archive contents all agree. :func:`check_invariants` cross-checks
them and returns the violations found.

The checker is an out-of-band oracle: it reads engine state directly
(``Database.table_rows``, ``FileSystem._files``) rather than going
through sessions, so it can never deadlock with the system under test
and never perturbs its RNG streams.

Violation codes (also documented in DESIGN.md §10):

==========================  ====================================================
``node-down``               a database is still crashed at check time
``dangling-host-ref``       DATALINK value with no ST_LINKED DLFM entry
``linked-file-missing``     ST_LINKED entry but the file is gone
``linked-not-protected``    linked file missing takeover ownership/read-only
``orphan-linked-entry``     ST_LINKED entry no host row references
``linked-in-dead-group``    ST_LINKED entry in a deleted/unknown group
``stale-write-protection``  file owned by the DLFM admin with no linked entry
``unresolved-delayed-update`` ST_UNLINKING row survived quiesce
``orphan-indoubt-txn``      prepared dfm_txn row with no host decision row
``unfinished-commit-work``  committed/in-flight dfm_txn row after quiesce
``stale-decision-row``      dlk_indoubt row with no prepared DLFM txn
``unresolved-deleted-group`` group still in state 'deleted' after quiesce
``unarchived-pending``      dfm_archive row survived quiesce
``missing-archive-copy``    archived=1 entry with no archive copy
``leaked-txn``              active (never-prepared) transaction after quiesce
``leaked-locks``            lock table non-empty with no transactions
==========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dlff.filter import DLFM_ADMIN
from repro.dlfm import schema
from repro.errors import DataLinkError
from repro.fs.filesystem import READ_ONLY
from repro.host.datalink import parse_url, shadow_column
from repro.minidb.txn import TxnState


@dataclass(frozen=True)
class Violation:
    code: str     # stable identifier, see module docstring
    node: str     # node the evidence lives on ("host", "fs1", ...)
    detail: str   # human-readable specifics

    def to_doc(self) -> dict:
        return {"code": self.code, "node": self.node, "detail": self.detail}

    @classmethod
    def from_doc(cls, doc: dict) -> "Violation":
        return cls(doc["code"], doc["node"], doc["detail"])


def _rows(db, table: str) -> list[dict]:
    """Whole table as column-name dicts (robust to column reordering)."""
    names = db.catalog.tables[table].column_names
    return [dict(zip(names, row)) for row in db.table_rows(table)]


def check_invariants(system) -> list["Violation"]:
    """Cross-check host ↔ DLFMs ↔ file servers ↔ archive; return violations."""
    out: list[Violation] = []

    downs = _check_nodes_up(system, out)
    host_refs = _collect_host_refs(system, out)
    for name in sorted(system.dlfms):
        if name in downs or system.host.db.crashed:
            continue  # can't cross-check against a crashed side
        _check_dlfm(system, name, host_refs, out)
    if not system.host.db.crashed:
        _check_host(system, downs, out)
    return out


# ---------------------------------------------------------------- node state

def _check_nodes_up(system, out: list) -> set:
    downs = set()
    if system.host.db.crashed:
        out.append(Violation("node-down", "host",
                             f"host database {system.host.dbid} still down"))
    for name, dlfm in sorted(system.dlfms.items()):
        if dlfm.db.crashed:
            downs.add(name)
            out.append(Violation("node-down", name,
                                 f"DLFM database on {name} still down"))
    return downs


# ---------------------------------------------------------------- host side

def _collect_host_refs(system, out: list):
    """Every live DATALINK value: (server, path) → (recid, table, column).

    Returns None when the host is down (cross-checks are skipped then).
    """
    host = system.host
    if host.db.crashed:
        return None
    refs: dict[tuple, tuple] = {}
    for table, dl_columns in sorted(host.datalink_columns.items()):
        tdef = host.db.catalog.tables.get(table)
        if tdef is None:
            continue  # dropped table with a stale registry entry
        rows = host.db.table_rows(table)
        for column in sorted(dl_columns):
            pos = tdef.position(column)
            shadow = tdef.position(shadow_column(column))
            for row in rows:
                url = row[pos]
                if url is None:
                    continue
                try:
                    server, path = parse_url(url)
                except DataLinkError:
                    out.append(Violation(
                        "dangling-host-ref", "host",
                        f"{table}.{column} holds malformed URL {url!r}"))
                    continue
                refs[(server, path)] = (row[shadow], table, column)
    return refs


def _check_host(system, downs: set, out: list) -> None:
    host = system.host
    # Presumed abort bookkeeping: a decision row survives quiesce only if
    # phase 2 never finished — but then the DLFM must still hold a
    # prepared transaction for it (else the row is garbage that will
    # re-drive phase 2 forever).
    for row in _rows(host.db, "dlk_indoubt"):
        txn_id, server = row["txn_id"], row["server"]
        dlfm = system.dlfms.get(server)
        if dlfm is None or server in downs:
            continue
        prepared = any(
            r["txn_id"] == txn_id and r["state"] == schema.TXN_PREPARED
            for r in _rows(dlfm.db, "dfm_txn") if r["dbid"] == host.dbid)
        if not prepared:
            out.append(Violation(
                "stale-decision-row", "host",
                f"dlk_indoubt({txn_id}, {server}) but {server} has no "
                f"prepared txn {txn_id}"))
    _check_engine_residue(host.db, "host", out)


# ---------------------------------------------------------------- DLFM side

def _check_dlfm(system, name: str, host_refs, out: list) -> None:
    dlfm = system.dlfms[name]
    host = system.host
    fs = dlfm.server.fs
    files = _rows(dlfm.db, "dfm_file")
    groups = {r["grp_id"]: r for r in _rows(dlfm.db, "dfm_group")
              if r["dbid"] == host.dbid}

    linked_paths = set()
    for row in files:
        path, state = row["filename"], row["state"]
        if state == schema.ST_LINKED:
            linked_paths.add(path)
            _check_linked_file(system, name, fs, row, groups, host_refs, out)
        elif state == schema.ST_UNLINKING:
            out.append(Violation(
                "unresolved-delayed-update", name,
                f"{path} still ST_UNLINKING (txn {row['unlink_txn']}) "
                f"after quiesce"))
        if (row["archived"] and not system.archive.has_copy(
                name, path, row["recovery_id"])):
            out.append(Violation(
                "missing-archive-copy", name,
                f"{path}@{row['recovery_id']} marked archived but the "
                f"archive has no copy"))

    # Host refs pointing here must have a linked entry behind them.
    if host_refs is not None:
        for (server, path), (recid, table, column) in sorted(
                host_refs.items()):
            if server != name:
                continue
            match = [r for r in files if r["filename"] == path
                     and r["state"] == schema.ST_LINKED]
            if not match:
                out.append(Violation(
                    "dangling-host-ref", name,
                    f"{table}.{column} -> {path} has no ST_LINKED entry"))
            elif recid is not None and all(
                    r["recovery_id"] != recid for r in match):
                out.append(Violation(
                    "dangling-host-ref", name,
                    f"{table}.{column} -> {path} recovery id {recid} "
                    f"matches no ST_LINKED entry"))

    # Takeover bits with no linked entry = protection leaked by a
    # half-done unlink (the release never ran and never will).
    for path, node in sorted(fs._files.items()):
        if node.owner == DLFM_ADMIN and path not in linked_paths:
            out.append(Violation(
                "stale-write-protection", name,
                f"{path} owned by {DLFM_ADMIN} with no ST_LINKED entry"))

    _check_dlfm_txns(system, name, dlfm, out)
    for row in sorted(groups.values(), key=lambda r: r["grp_id"]):
        if row["state"] == schema.GRP_DELETED:
            out.append(Violation(
                "unresolved-deleted-group", name,
                f"group {row['grp_id']} ({row['table_name']}."
                f"{row['column_name']}) still 'deleted' after quiesce"))
    for row in _rows(dlfm.db, "dfm_archive"):
        out.append(Violation(
            "unarchived-pending", name,
            f"{row['filename']}@{row['recovery_id']} still pending "
            f"archive after quiesce"))
    _check_engine_residue(dlfm.db, name, out)


def _check_linked_file(system, name, fs, row, groups, host_refs, out) -> None:
    path = row["filename"]
    node = fs._files.get(path)
    if node is None:
        out.append(Violation(
            "linked-file-missing", name,
            f"{path} is ST_LINKED but missing from the file system"))
    else:
        full = row["access_ctl"] == "full"
        want_ro = full or row["recovery"] == "yes"
        if full and node.owner != DLFM_ADMIN:
            out.append(Violation(
                "linked-not-protected", name,
                f"{path} linked under full control but owned by "
                f"{node.owner!r}"))
        if want_ro and node.mode != READ_ONLY:
            out.append(Violation(
                "linked-not-protected", name,
                f"{path} must be read-only but has mode {oct(node.mode)}"))
    group = groups.get(row["grp_id"])
    if group is None or group["state"] != schema.GRP_ACTIVE:
        state = "missing" if group is None else repr(group["state"])
        out.append(Violation(
            "linked-in-dead-group", name,
            f"{path} is ST_LINKED in group {row['grp_id']} ({state})"))
        return  # a dead group has no host rows to cross-check against
    if host_refs is not None and (name, path) not in host_refs:
        out.append(Violation(
            "orphan-linked-entry", name,
            f"{path} is ST_LINKED (group {row['grp_id']}, "
            f"{group['table_name']}.{group['column_name']}) but no host "
            f"row references it"))


def _check_dlfm_txns(system, name, dlfm, out) -> None:
    host = system.host
    decisions = set()
    if not host.db.crashed:
        decisions = {r["txn_id"] for r in _rows(host.db, "dlk_indoubt")
                     if r["server"] == name}
    for row in _rows(dlfm.db, "dfm_txn"):
        txn_id, state = row["txn_id"], row["state"]
        if state == schema.TXN_PREPARED:
            if not host.db.crashed and txn_id not in decisions:
                out.append(Violation(
                    "orphan-indoubt-txn", name,
                    f"txn {txn_id} prepared but the host holds no "
                    f"decision row (presumed abort should have fired)"))
        else:
            out.append(Violation(
                "unfinished-commit-work", name,
                f"txn {txn_id} still {state!r} after quiesce"))


# ---------------------------------------------------------------- engine residue

def _check_engine_residue(db, node: str, out: list) -> None:
    """Leaked transactions and locks inside one minidb engine."""
    active = db.txns.active
    stray = [t for t in active if t.state is not TxnState.PREPARED]
    for txn in stray:
        out.append(Violation(
            "leaked-txn", node,
            f"transaction {txn.id} still {txn.state.value} after quiesce"))
    if not active and db.locks.total_locks:
        out.append(Violation(
            "leaked-locks", node,
            f"{db.locks.total_locks} locks held with no live transactions"))

"""Declarative, deterministic fault injection.

A :class:`FaultPlan` is a JSON-serializable list of :class:`FaultRule`
entries. Each rule names an **injection point** (fnmatch glob), a fault
*kind*, and firing discipline (skip the first N matches, fire at most M
times, fire with probability p). The injection points wired into the
stack:

========================== ========================= =====================
point                      kinds                     wired into
========================== ========================= =====================
``channel.send:<chan>``    drop, delay               kernel channel send
``rpc.dup:<Verb>``         dup                       idempotent 2PC verbs
``fs.<op>:<server>``       io_error                  create/read/write/
                                                     delete/rename/stat
``wal.force.before:<db>``  crash                     record appended, not
                                                     yet durable
``wal.force.after:<db>``   crash                     durable, ack lost
``wal.group:leader:<db>``  crash                     group-commit leader
                                                     between window expiry
                                                     and the shared force:
                                                     every member's record
                                                     is in the unforced
                                                     tail, none may ack
``lock.acquire:<db>``      lock_timeout,             forced victim at
                           lock_deadlock             lock-manager entry
``daemon.pass:<node>:<d>`` crash                     daemon pass entry
                                                     (copyd, gcd, delgrpd)
``daemon.worker:<node>:<d>`` crash                   pool-worker item
                                                     pickup (copyd,
                                                     retrieved, delgrpd):
                                                     after the claim/
                                                     dispatch, before the
                                                     work; for ``merged``,
                                                     after a merge pass
                                                     folded version chains
                                                     (all in memory,
                                                     nothing durable —
                                                     recovery must rebuild
                                                     the chains from WAL)
``rpc.reply:<chan>``       partition                 agent serve loop:
                                                     request delivered and
                                                     processed, REPLY
                                                     dropped (network
                                                     partition healing
                                                     after the work) —
                                                     the caller must
                                                     re-drive or resolve
                                                     via the in-doubt
                                                     poller
``twopc.fanout:<phase>``   delay, crash              2PC coordinator
                                                     scatter→gather window
                                                     (phase ``prepare`` or
                                                     ``phase2``): requests
                                                     in flight to every
                                                     participant, replies
                                                     not yet gathered;
                                                     crash node is the
                                                     host database
``shard.move:<step>``      crash                     online rebalancing
                                                     (repro.shard): after
                                                     ``exported`` (source
                                                     marked moving-out),
                                                     ``imported`` (both
                                                     sides staged) and
                                                     ``mapped`` (catalog
                                                     row flipped, decision
                                                     not yet durable);
                                                     crash node is the
                                                     host database
========================== ========================= =====================

Determinism: every probabilistic decision draws from a per-rule RNG
stream ``sim.stream("chaos:<rule_id>")``, so removing one rule from a
plan (shrinking) does not perturb the draws of the remaining rules.

Zero cost when disabled: the simulator carries :data:`NULL_INJECTOR`
(class attribute ``enabled = False``) by default and every call site
guards with ``if sim.injector.enabled:`` — the same pattern as
``NullTracer``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from typing import Optional

from repro.errors import CrashedError, ReproError, TransientIOError

#: Every fault kind a rule may carry.
KINDS = ("drop", "delay", "dup", "io_error", "lock_timeout",
         "lock_deadlock", "crash", "partition")

#: Kind groups the call sites ask for.
IO_KINDS = ("io_error",)
LOCK_KINDS = ("lock_timeout", "lock_deadlock")
CRASH_KINDS = ("crash",)
SEND_KINDS = ("drop", "delay")
DUP_KINDS = ("dup",)
#: Partition/heal: the request got through, the reply does not.
REPLY_KINDS = ("partition",)


class FaultPlanError(ReproError):
    """A fault plan failed validation or (de)serialization."""


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault: where, what, and how often.

    ``skip`` counts *matching arrivals* before the rule becomes eligible;
    ``max_fires`` bounds actual firings (None → unbounded); ``prob``
    gates each eligible arrival through the rule's RNG stream. ``delay``
    is only meaningful for kind ``delay`` (seconds of added latency).
    """

    point: str
    kind: str
    prob: float = 1.0
    max_fires: Optional[int] = 1
    skip: int = 0
    delay: float = 0.0
    rule_id: str = ""

    def __post_init__(self):
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if not self.point:
            raise FaultPlanError("fault rule needs a non-empty point")
        if not 0.0 <= self.prob <= 1.0:
            raise FaultPlanError(f"prob {self.prob!r} outside [0, 1]")
        if self.skip < 0:
            raise FaultPlanError(f"negative skip {self.skip!r}")
        if self.delay < 0:
            raise FaultPlanError(f"negative delay {self.delay!r}")
        if self.max_fires is not None and self.max_fires < 0:
            raise FaultPlanError(f"negative max_fires {self.max_fires!r}")

    def matches(self, point: str) -> bool:
        return self.point == point or fnmatchcase(point, self.point)

    def to_doc(self) -> dict:
        return {"point": self.point, "kind": self.kind, "prob": self.prob,
                "max_fires": self.max_fires, "skip": self.skip,
                "delay": self.delay, "rule_id": self.rule_id}

    @classmethod
    def from_doc(cls, doc: dict) -> "FaultRule":
        try:
            return cls(point=doc["point"], kind=doc["kind"],
                       prob=float(doc.get("prob", 1.0)),
                       max_fires=doc.get("max_fires", 1),
                       skip=int(doc.get("skip", 0)),
                       delay=float(doc.get("delay", 0.0)),
                       rule_id=str(doc.get("rule_id", "")))
        except (KeyError, TypeError, ValueError) as error:
            raise FaultPlanError(f"bad fault rule {doc!r}: {error}")


@dataclass
class FaultPlan:
    """An ordered collection of fault rules (first matching rule wins)."""

    rules: list[FaultRule] = field(default_factory=list)
    name: str = "plan"

    def with_ids(self) -> "FaultPlan":
        """A copy where every rule has a stable, unique ``rule_id``.

        Default ids are derived from (kind, point) plus a disambiguating
        ordinal among same-shaped rules — NOT from list position, so
        dropping an unrelated rule during shrinking leaves the ids (and
        therefore the RNG streams) of the survivors untouched.
        """
        used: dict[str, int] = {}
        rules = []
        for rule in self.rules:
            rid = rule.rule_id
            if not rid:
                base = f"{rule.kind}@{rule.point}"
                ordinal = used.get(base, 0)
                used[base] = ordinal + 1
                rid = base if ordinal == 0 else f"{base}#{ordinal + 1}"
            if rid in {r.rule_id for r in rules}:
                raise FaultPlanError(f"duplicate rule_id {rid!r}")
            rules.append(replace(rule, rule_id=rid))
        return FaultPlan(rules=rules, name=self.name)

    def to_doc(self) -> dict:
        return {"name": self.name,
                "rules": [rule.to_doc() for rule in self.rules]}

    @classmethod
    def from_doc(cls, doc: dict) -> "FaultPlan":
        if not isinstance(doc, dict) or "rules" not in doc:
            raise FaultPlanError(f"fault plan document needs 'rules': {doc!r}")
        return cls(rules=[FaultRule.from_doc(r) for r in doc["rules"]],
                   name=str(doc.get("name", "plan")))

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            doc = json.loads(text)
        except ValueError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}")
        return cls.from_doc(doc)


class NullInjector:
    """Do-nothing injector installed on every simulator by default.

    ``enabled`` is False as a *class* attribute, so the guard
    ``if sim.injector.enabled:`` at each call site costs two attribute
    loads and nothing else — the NullTracer discipline.
    """

    enabled = False

    def bind(self, sim) -> None:
        pass

    def register_crash(self, node: str, crash_fn) -> None:
        pass

    def fire(self, point: str, kinds) -> Optional[FaultRule]:
        return None

    def fs_check(self, point: str, path: str = "") -> None:
        pass

    def maybe_crash(self, point: str, node: str) -> None:
        pass


NULL_INJECTOR = NullInjector()


class FaultInjector(NullInjector):
    """Evaluates a :class:`FaultPlan` at the wired injection points.

    The campaign flips :attr:`enabled` off around setup, recovery,
    quiesce, and invariant checking so an unbounded probabilistic rule
    cannot starve the very recovery it is meant to exercise.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan.with_ids()
        self.enabled = True          # instance attr shadows the class's False
        self.fired: list[dict] = []  # deterministic schedule of firings
        self.crashes: list[dict] = []
        self._sim = None
        self._crash_fns: dict[str, object] = {}
        self._seen: dict[str, int] = {}
        self._fires: dict[str, int] = {}

    def bind(self, sim) -> None:
        self._sim = sim

    def register_crash(self, node: str, crash_fn) -> None:
        """Register the callable that crashes ``node`` (a db name)."""
        self._crash_fns[node] = crash_fn

    # -- the hot path ---------------------------------------------------------

    def fire(self, point: str, kinds) -> Optional[FaultRule]:
        """First rule of a matching kind that decides to fire, else None."""
        for rule in self.plan.rules:
            if rule.kind not in kinds or not rule.matches(point):
                continue
            rid = rule.rule_id
            fires = self._fires.get(rid, 0)
            if rule.max_fires is not None and fires >= rule.max_fires:
                continue
            seen = self._seen.get(rid, 0)
            self._seen[rid] = seen + 1
            if seen < rule.skip:
                continue
            if rule.prob < 1.0:
                rng = self._sim.stream(f"chaos:{rid}")
                if rng.random() >= rule.prob:
                    continue
            self._fires[rid] = fires + 1
            self.fired.append({"t": round(self._sim.now, 9), "point": point,
                               "kind": rule.kind, "rule": rid})
            self._sim.tracer.event("chaos.fault", point=point,
                                   kind=rule.kind, rule=rid)
            return rule
        return None

    # -- call-site helpers ----------------------------------------------------

    def fs_check(self, point: str, path: str = "") -> None:
        """Raise a transient I/O error if a rule fires at ``point``."""
        if self.fire(point, IO_KINDS) is not None:
            raise TransientIOError(f"injected I/O error at {point} ({path})")

    def maybe_crash(self, point: str, node: str) -> None:
        """Crash ``node`` (whole-process crash semantics) if a rule fires."""
        rule = self.fire(point, CRASH_KINDS)
        if rule is None:
            return
        self.crashes.append({"t": round(self._sim.now, 9), "node": node,
                             "point": point})
        crash_fn = self._crash_fns.get(node)
        if crash_fn is not None:
            crash_fn()
        raise CrashedError(f"injected crash of {node} at {point}")


def default_plan(seed: int = 0) -> FaultPlan:
    """The stock campaign plan: a little of everything, probabilistic.

    Rates are low enough that most operations succeed (so the workload
    makes progress and quiesce converges) but high enough that every
    injection-point family fires over a few hundred operations.
    """
    return FaultPlan(name=f"default-{seed}", rules=[
        FaultRule("channel.send:dlfm-agent", "drop", prob=0.02,
                  max_fires=None),
        FaultRule("channel.send:chownd", "drop", prob=0.01, max_fires=None),
        FaultRule("channel.send:dlfm-agent", "delay", prob=0.05,
                  max_fires=None, delay=0.25),
        FaultRule("rpc.dup:Commit", "dup", prob=0.05, max_fires=None),
        FaultRule("rpc.dup:Abort", "dup", prob=0.05, max_fires=None),
        # Partition/heal: the DLFM agent processes a request but its
        # reply is lost. The caller wedges until the round budget kills
        # it; quiesce's in-doubt poller then re-drives the idempotent
        # outcome against the healed (possibly restarted) shard.
        FaultRule("rpc.reply:dlfm-agent", "partition", prob=0.01,
                  max_fires=2),
        FaultRule("fs.create:*", "io_error", prob=0.01, max_fires=None),
        FaultRule("fs.stat:*", "io_error", prob=0.01, max_fires=None),
        FaultRule("lock.acquire:dlfm-*", "lock_timeout", prob=0.01,
                  max_fires=None),
        FaultRule("lock.acquire:dlfm-*", "lock_deadlock", prob=0.005,
                  max_fires=None),
        FaultRule("wal.force.before:dlfm-*", "crash", prob=0.002,
                  max_fires=2),
        FaultRule("wal.force.after:dlfm-*", "crash", prob=0.002,
                  max_fires=2),
        # Group-commit leader window (the campaign runs the local
        # databases with group_commit_window="auto", so leaders exist):
        # crash after the window expires but before the shared force —
        # the never-ack contract must fail every member of the group.
        FaultRule("wal.group:leader:dlfm-*", "crash", prob=0.02,
                  max_fires=2),
        FaultRule("wal.force.after:host-*", "crash", prob=0.001,
                  max_fires=1),
        FaultRule("daemon.pass:*:copyd", "crash", prob=0.01, max_fires=1),
        FaultRule("daemon.pass:*:delgrpd", "crash", prob=0.01, max_fires=1),
        # Pool-worker crashes land between claim/dispatch and the work —
        # the window the copyd claim protocol and the delgrpd restart
        # rescan must cover. (retrieved is left out: crashing a restore
        # worker strands its synchronous caller by design.)
        FaultRule("daemon.worker:*:copyd", "crash", prob=0.01, max_fires=1),
        FaultRule("daemon.worker:*:delgrpd", "crash", prob=0.01,
                  max_fires=1),
        # Version-merge daemon: crash right after a pass folded chains.
        # The fold is volatile bookkeeping, so restart recovery must
        # rebuild every chain a live snapshot could still need from the
        # WAL (the lost-committed-version invariant checks the result).
        FaultRule("daemon.worker:*:merged", "crash", prob=0.01,
                  max_fires=1),
        # 2PC fan-out windows: stall the coordinator while every
        # participant's request is in flight, and crash it there once per
        # phase — prepare-window crashes resolve by presumed abort, the
        # phase-2 window by dlk_indoubt re-drive at restart.
        FaultRule("twopc.fanout:prepare", "delay", prob=0.05,
                  max_fires=None, delay=0.25),
        FaultRule("twopc.fanout:prepare", "crash", prob=0.01, max_fires=1),
        FaultRule("twopc.fanout:phase2", "delay", prob=0.05,
                  max_fires=None, delay=0.25),
        FaultRule("twopc.fanout:phase2", "crash", prob=0.01, max_fires=1),
        # Rebalance crash points (sharded campaigns only — the points
        # are never reached unsharded, so the rule's RNG stream is never
        # created and existing seeds keep their schedules byte-for-byte).
        # A crash mid-move must never strand a group: before the
        # decision is durable presumed abort restores the source, after
        # it the in-doubt re-drive finishes the flip.
        FaultRule("shard.move:*", "crash", prob=0.25, max_fires=2),
    ])

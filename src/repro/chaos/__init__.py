"""repro.chaos — deterministic fault injection + cross-layer invariants.

Only the fault-plan/injector core is imported eagerly: it depends on
nothing but ``repro.errors``, so the kernel can import it without
cycles. The heavier pieces live in submodules:

* :mod:`repro.chaos.invariants` — post-quiesce cross-layer checker;
* :mod:`repro.chaos.campaign` — the seeded fault campaign runner;
* :mod:`repro.chaos.shrink` — greedy failing-plan minimizer.
"""

from repro.chaos.faults import (FaultInjector, FaultPlan, FaultRule,
                                NULL_INJECTOR, NullInjector, default_plan)

__all__ = ["FaultInjector", "FaultPlan", "FaultRule", "NULL_INJECTOR",
           "NullInjector", "default_plan"]

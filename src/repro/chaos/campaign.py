"""Seeded chaos campaign: workload × faults × crashes × recoveries.

A campaign builds a full :class:`repro.system.System` with a
:class:`~repro.chaos.faults.FaultInjector`, then alternates:

1. **round** — a client runs a batch of datalink operations (insert /
   update / delete on a media table, plus create+drop of short-lived
   datalink tables) with fault injection ENABLED;
2. **recover** — injection off, every crashed node is restarted (ARIES
   recovery + distributed in-doubt resolution);
3. **quiesce** — virtual time advances until the deployment is clean (no
   in-flight transactions, no pending delayed updates, empty archive
   queue, no decision rows) or a budget expires;
4. **check** — :func:`repro.chaos.invariants.check_invariants` cross-
   checks host ↔ DLFM ↔ file system ↔ archive.

Everything is deterministic given (seed, plan): the workload draws from
``sim.stream("chaos:workload")`` and faults from per-rule streams, so a
violation's :func:`repro_doc` replays to the same violation with
:func:`replay`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.chaos.faults import FaultInjector, FaultPlan, default_plan
from repro.chaos.invariants import Violation, check_invariants
from repro.dlfm.config import DLFMConfig
from repro.errors import ReproError, TransactionAborted
from repro.host import DatalinkSpec, build_url
from repro.host.indoubt import resolve_indoubts
from repro.kernel.sim import Timeout
from repro.system import System

#: Virtual seconds a single round may take before the client is killed.
ROUND_BUDGET = 900.0
#: Quiesce loop: up to QUIESCE_ROUNDS × QUIESCE_STEP virtual seconds.
QUIESCE_STEP = 30.0
QUIESCE_ROUNDS = 60


@dataclass
class CampaignConfig:
    seed: int = 0
    ops: int = 200
    plan: Optional[FaultPlan] = None          # None → default_plan(seed)
    servers: tuple = ("fs1", "fs2")
    round_ops: int = 25
    #: 0 → the classic unsharded deployment (one DLFM per file server).
    #: N > 0 → a :class:`~repro.shard.ShardedSystem` fleet of N shards
    #: over one shared file server; the workload gains ``move_group``
    #: ops and the checker enforces the shard-catalog invariants.
    shards: int = 0
    #: Isolation for DLFM internal reads/forward lookups: ``"default"``
    #: replays the paper's locking levels; ``"SI"`` runs the campaign
    #: with MVCC snapshot reads (the chaos-smoke SI arm).
    read_isolation: str = "default"
    #: Named seeded corruptions (keys of :data:`CORRUPTIONS`) applied
    #: right before the final invariant check. Unlike ``corrupt_hook``
    #: these are serialized into the repro document, so a deliberately
    #: broken invariant replays to the same violation.
    corruptions: tuple = ()
    #: Test hook: corrupt the system right before the final invariant
    #: check (used to prove the checker catches seeded corruptions).
    corrupt_hook: Optional[Callable] = None


@dataclass
class CampaignResult:
    config: CampaignConfig
    plan: FaultPlan
    violations: list = field(default_factory=list)
    op_trace: list = field(default_factory=list)
    fired: list = field(default_factory=list)
    crashes: list = field(default_factory=list)
    rounds: int = 0
    recoveries: int = 0
    checks: int = 0
    stuck_rounds: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def repro_doc(self) -> dict:
        """JSON-serializable replay document (see :func:`replay`)."""
        return {
            "version": 1,
            "seed": self.config.seed,
            "ops": self.config.ops,
            "round_ops": self.config.round_ops,
            "servers": list(self.config.servers),
            "plan": self.plan.to_doc(),
            "violations": [v.to_doc() for v in self.violations],
            "op_trace": self.op_trace,
            "fired": self.fired,
            "crashes": self.crashes,
            "rounds": self.rounds,
            "recoveries": self.recoveries,
            "corruptions": list(self.config.corruptions),
            "shards": self.config.shards,
            "read_isolation": self.config.read_isolation,
        }

    def to_json(self) -> str:
        return json.dumps(self.repro_doc(), sort_keys=True,
                          separators=(",", ":"), indent=None)


def config_from_doc(doc: dict) -> CampaignConfig:
    """The campaign configuration a repro document encodes."""
    return CampaignConfig(
        seed=doc["seed"], ops=doc["ops"],
        plan=FaultPlan.from_doc(doc["plan"]),
        servers=tuple(doc["servers"]), round_ops=doc["round_ops"],
        corruptions=tuple(doc.get("corruptions", ())),
        shards=doc.get("shards", 0),
        read_isolation=doc.get("read_isolation", "default"))


def replay(doc: dict) -> CampaignResult:
    """Re-run the campaign a repro document describes."""
    return run_campaign(config_from_doc(doc))


def run_campaign(config: CampaignConfig) -> CampaignResult:
    return _Campaign(config).run()


# -------------------------------------------------------------- seeded corruptions
#
# Deliberate metadata damage the invariant checker must catch. Each
# function corrupts the first applicable site and returns True, or False
# when the campaign left nothing to corrupt (surfaced as its own
# violation). They are *named* so a repro document can carry them.

def _corrupt_dangling_link_row(system) -> bool:
    """Delete an ST_LINKED dfm_file row out from under a host reference."""
    from repro.dlfm import schema
    for name in sorted(system.dlfms):
        db = system.dlfms[name].db
        pos = db.catalog.tables["dfm_file"].position("state")
        for rid, row in sorted(db.heaps["dfm_file"].scan()):
            if row[pos] == schema.ST_LINKED:
                db.heaps["dfm_file"].delete(rid)
                return True
    return False


def _corrupt_leaked_lock(system) -> bool:
    """Grant a lock to a transaction the engine has no record of."""
    from repro.minidb.locks import LockMode
    from repro.minidb.txn import Transaction
    name = sorted(system.dlfms)[0]
    db = system.dlfms[name].db
    ghost = Transaction(999_999, "RR", 0.0)
    db.locks.force_grant(ghost, ("row", "dfm_file", (0, 0)), LockMode.X)
    return True


def _corrupt_deleted_group_marker(system) -> bool:
    """Flip an active group to 'deleted' as if delgrpd never finished."""
    from repro.dlfm import schema
    for name in sorted(system.dlfms):
        db = system.dlfms[name].db
        pos = db.catalog.tables["dfm_group"].position("state")
        for rid, row in sorted(db.heaps["dfm_group"].scan()):
            if row[pos] == schema.GRP_ACTIVE:
                changed = list(row)
                changed[pos] = schema.GRP_DELETED
                db.heaps["dfm_group"].delete(rid)
                db.heaps["dfm_group"].insert(tuple(changed), rid=rid)
                return True
    return False


def _corrupt_lost_version(system) -> bool:
    """Clobber a linked row's version chain with a bogus delete marker.

    The chain then claims the newest committed state of the row is
    "deleted" while the base slot still holds it — exactly the damage a
    buggy merge fold would do — so the freshest snapshot disagrees with
    the base rows and ``lost-committed-version`` must fire."""
    for name in sorted(system.dlfms):
        db = system.dlfms[name].db
        if not db.config.mvcc:
            continue
        heap = db.heaps["dfm_file"]
        for rid, _row in sorted(heap.scan()):
            heap._versions[rid] = [(db.wal.tail_lsn, None)]
            return True
    return False


def _corrupt_stale_merge(system) -> bool:
    """Force a merge pass with a watermark above every live snapshot."""
    for name in sorted(system.dlfms):
        db = system.dlfms[name].db
        if db.config.mvcc:
            db.merge_versions(watermark=db.wal.tail_lsn + 1)
            return True
    return False


CORRUPTIONS = {
    "dangling-link-row": _corrupt_dangling_link_row,
    "leaked-lock": _corrupt_leaked_lock,
    "deleted-group-marker": _corrupt_deleted_group_marker,
    "lost-committed-version": _corrupt_lost_version,
    "stale-merge": _corrupt_stale_merge,
}


class _Campaign:
    def __init__(self, config: CampaignConfig):
        self.config = config
        self.plan = (config.plan if config.plan is not None
                     else default_plan(config.seed))
        self.injector = FaultInjector(self.plan)
        self.injector.enabled = False  # setup runs clean
        # Adaptive group commit on the local databases, with the batching
        # cut-off widened to the campaign's (virtual-time) commit gaps so
        # leaders actually form and ``wal.group:leader`` is exercised.
        dlfm_config = DLFMConfig.tuned()
        dlfm_config.local_db = dlfm_config.local_db.with_changes(
            group_commit_window="auto", group_commit_max_window=2.0)
        dlfm_config.read_isolation = config.read_isolation
        self.sharded = config.shards > 0
        if self.sharded:
            from repro.shard import ShardedSystem
            self.system = ShardedSystem(seed=config.seed,
                                        shards=config.shards,
                                        dlfm_config=dlfm_config,
                                        injector=self.injector)
        else:
            self.system = System(seed=config.seed, servers=config.servers,
                                 dlfm_config=dlfm_config,
                                 injector=self.injector)
        #: File-server names client files rotate over (the DLFM names in
        #: the classic deployment, the one shared server when sharded).
        self.file_servers = tuple(sorted(self.system.servers))
        self.rng = self.system.sim.stream("chaos:workload")
        self.result = CampaignResult(config, self.plan)
        self.rows: list = []        # (row_id, server, path) live media rows
        self.batch_tables: list = []  # short-lived tables awaiting drop
        self._row_seq = 0
        self._file_seq = 0
        self._batch_seq = 0

    # ------------------------------------------------------------------ driving

    def run(self) -> CampaignResult:
        sim = self.system.sim
        self._run_clean(self._setup(), "chaos-setup")
        max_rounds = 2 * (self.config.ops // max(1, self.config.round_ops)
                          + 1) + 8
        while (len(self.result.op_trace) < self.config.ops
               and self.result.rounds < max_rounds):
            self.result.rounds += 1
            self._round(self.result.rounds)
            self._recover()
            self._quiesce()
            self.result.checks += 1
            violations = check_invariants(self.system)
            if violations:
                self.result.violations.extend(violations)
                break
        if (not self.result.violations
                and len(self.result.op_trace) < self.config.ops):
            self.result.violations.append(Violation(
                "campaign-stalled", "campaign",
                f"only {len(self.result.op_trace)}/{self.config.ops} ops "
                f"ran in {self.result.rounds} rounds"))
        if self.config.corruptions or self.config.corrupt_hook is not None:
            for name in self.config.corruptions:
                if not CORRUPTIONS[name](self.system):
                    self.result.violations.append(Violation(
                        "corruption-inapplicable", "campaign",
                        f"corruption {name!r} found nothing to corrupt"))
            if self.config.corrupt_hook is not None:
                self.config.corrupt_hook(self.system)
            self.result.checks += 1
            self.result.violations.extend(check_invariants(self.system))
        self.result.fired = list(self.injector.fired)
        self.result.crashes = list(self.injector.crashes)
        return self.result

    def _run_clean(self, gen, name: str):
        """Run one generator to completion with injection disabled."""
        sim = self.system.sim
        enabled = self.injector.enabled
        self.injector.enabled = False
        try:
            proc = sim.spawn(gen, name)
            sim.run(raise_failures=False, stop_when=lambda: proc.finished)
            sim.consume_failures()
            if proc.error is not None:
                raise proc.error
            return proc.result
        finally:
            self.injector.enabled = enabled

    def _setup(self):
        host = self.system.host
        yield from host.create_datalink_table(
            "media", [("id", "INT"), ("attr", "TEXT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(access_control="full", recovery=True)})
        plain = host.db.session()
        yield from plain.execute(
            "CREATE UNIQUE INDEX media_id ON media (id)")
        yield from plain.commit()
        host.db.set_table_stats("media", card=100_000,
                                colcard={"id": 100_000})

    # ------------------------------------------------------------------ rounds

    def _round(self, number: int) -> None:
        sim = self.system.sim
        budget = min(self.config.round_ops,
                     self.config.ops - len(self.result.op_trace))
        holder: dict = {}
        self.injector.enabled = True
        proc = sim.spawn(self._client(budget, holder),
                         f"chaos-client-{number}")
        sim.run(until=sim.now + ROUND_BUDGET, raise_failures=False,
                stop_when=lambda: proc.finished)
        self.injector.enabled = False
        sim.consume_failures()  # crashed daemons/agents surface here
        session = holder.get("session")
        if not proc.finished:
            # The round wedged (e.g. a request queued to a daemon that
            # died before replying). Kill the client and clean up its
            # transactions so a stuck round is not misread as a leak.
            proc.kill()
            self.result.stuck_rounds += 1
            self.result.op_trace.append(
                {"kind": "round", "target": f"round-{number}",
                 "outcome": "stuck"})
        if session is not None:
            session.close()  # agents presume abort on disconnect
            if session.session.txn is not None:
                self._run_clean(self._discard(session), "chaos-cleanup")

    def _discard(self, session):
        try:
            yield from session.rollback()
        except ReproError:
            pass

    def _client(self, budget: int, holder: dict):
        session = self.system.session()
        holder["session"] = session
        for _ in range(budget):
            if self.system.host.db.crashed:
                break  # round over; recovery brings the host back
            kind = self._pick_kind()
            record = {"kind": kind, "target": "", "outcome": "ok"}
            try:
                yield from self._one_op(kind, session, record)
            except TransactionAborted as error:
                record["outcome"] = f"aborted:{error.reason or 'unknown'}"
                yield from self._discard(session)
            except ReproError as error:
                record["outcome"] = f"error:{type(error).__name__}"
                yield from self._discard(session)
            self.result.op_trace.append(record)
        yield from self._discard(session)
        session.close()
        holder["session"] = None

    def _pick_kind(self) -> str:
        roll = self.rng.random()
        if roll < 0.40 or not self.rows:
            return "insert"
        if roll < 0.65:
            return "update"
        if roll < 0.85:
            return "delete"
        if self.batch_tables and roll < 0.93:
            return "drop_table"
        # The move draw exists only in sharded mode, carved out of the
        # create_table tail so the unsharded kind sequence for a given
        # seed is untouched.
        if self.sharded and roll >= 0.96:
            return "move_group"
        return "create_table"

    def _one_op(self, kind: str, session, record: dict):
        if kind == "insert":
            yield from self._op_insert(session, record)
        elif kind == "update":
            yield from self._op_update(session, record)
        elif kind == "delete":
            yield from self._op_delete(session, record)
        elif kind == "create_table":
            yield from self._op_create_table(session, record)
        elif kind == "move_group":
            yield from self._op_move_group(record)
        else:
            yield from self._op_drop_table(session, record)

    def _new_file(self) -> tuple:
        self._file_seq += 1
        server = self.file_servers[self._file_seq
                                   % len(self.file_servers)]
        path = f"/data/chaos-{self._file_seq:07d}.obj"
        # fs.create faults surface here, synchronously, as a failed op.
        self.system.create_user_file(server, path, owner="chaos",
                                     content=f"payload-{self._file_seq}")
        return server, path

    def _op_insert(self, session, record: dict):
        self._row_seq += 1
        row_id = self._row_seq
        server, path = self._new_file()
        record["target"] = f"media#{row_id}"
        yield from session.execute(
            "INSERT INTO media (id, attr, doc) VALUES (?, ?, ?)",
            (row_id, "new", build_url(server, path)))
        yield from session.commit()
        self.rows.append((row_id, server, path))

    def _op_update(self, session, record: dict):
        index = self.rng.randrange(len(self.rows))
        row_id, _, _ = self.rows[index]
        server, path = self._new_file()
        record["target"] = f"media#{row_id}"
        yield from session.execute(
            "UPDATE media SET doc = ?, attr = 'moved' WHERE id = ?",
            (build_url(server, path), row_id))
        yield from session.commit()
        self.rows[index] = (row_id, server, path)

    def _op_delete(self, session, record: dict):
        index = self.rng.randrange(len(self.rows))
        row_id, _, _ = self.rows[index]
        record["target"] = f"media#{row_id}"
        yield from session.execute(
            "DELETE FROM media WHERE id = ?", (row_id,))
        yield from session.commit()
        self.rows.pop(index)

    def _op_create_table(self, session, record: dict):
        self._batch_seq += 1
        name = f"batch_{self._batch_seq}"
        record["target"] = name
        yield from self.system.host.create_datalink_table(
            name, [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(access_control="full", recovery=False)},
            session=session)
        self._row_seq += 1
        server, path = self._new_file()
        yield from session.execute(
            f"INSERT INTO {name} (id, doc) VALUES (?, ?)",
            (self._row_seq, build_url(server, path)))
        yield from session.commit()
        self.batch_tables.append(name)

    def _op_drop_table(self, session, record: dict):
        name = self.batch_tables[self.rng.randrange(len(self.batch_tables))]
        record["target"] = name
        yield from session.drop_table(name)
        yield from session.commit()
        self.batch_tables.remove(name)

    def _op_move_group(self, record: dict):
        """Sharded mode only: rebalance a random group to a random shard
        (its own 2PC transaction on a dedicated session). Refusals
        (pending work on the group) and mid-move crashes surface like
        any other failed op; the invariant checker proves no outcome
        strands the group."""
        from repro.shard import move_group
        host = self.system.host
        groups = sorted(host.group_ids.values())
        grp_id = groups[self.rng.randrange(len(groups))]
        shards = sorted(self.system.dlfms)
        dst = shards[self.rng.randrange(len(shards))]
        record["target"] = f"grp{grp_id}->{dst}"
        result = yield from move_group(host, grp_id, dst)
        if not result["moved"]:
            record["outcome"] = "noop"

    # ------------------------------------------------------------------ recovery

    def _recover(self) -> None:
        restarted = False
        for name in sorted(self.system.dlfms):
            dlfm = self.system.dlfms[name]
            if dlfm.db.crashed:
                dlfm.restart()
                restarted = True
        host = self.system.host
        if host.db.crashed:
            self._run_clean(host.restart(), "chaos-host-restart")
            restarted = True
        if restarted:
            self.result.recoveries += 1

    # ------------------------------------------------------------------ quiesce

    def _quiesce(self) -> None:
        done = self._run_clean(self._quiesce_gen(), "chaos-quiesce")
        if not done:
            self.result.violations.append(Violation(
                "quiesce-failed", "campaign",
                f"still dirty after {QUIESCE_ROUNDS * QUIESCE_STEP:.0f}s: "
                f"{self._dirty()}"))

    def _quiesce_gen(self):
        for _ in range(QUIESCE_ROUNDS):
            reason = self._dirty()
            if reason is None:
                return True
            try:
                # Targeted drives for states only a restart rescan or the
                # host's in-doubt logic resolves (e.g. a dropped phase-2
                # notify, a decision row whose Commit reply was lost, a
                # prepared transaction whose coordinator never crashed —
                # the paper's in-doubt poller, §3.3).
                if (self._host_has_decisions()
                        or any(self._has_txn_rows(d)
                               for d in self.system.dlfms.values())):
                    yield from resolve_indoubts(self.system.host)
                for name in sorted(self.system.dlfms):
                    dlfm = self.system.dlfms[name]
                    if self._has_committed_txns(dlfm):
                        yield from dlfm.delete_groupd._rescan_committed()
            except ReproError:
                pass  # contention with a daemon; the next lap retries
            yield Timeout(QUIESCE_STEP)
        return self._dirty() is None

    def _host_has_decisions(self) -> bool:
        host = self.system.host
        return (not host.db.crashed
                and bool(host.db.table_rows("dlk_indoubt")
                         or host.pending_decisions()))

    def _has_committed_txns(self, dlfm) -> bool:
        if dlfm.db.crashed:
            return False
        state = dlfm.db.catalog.tables["dfm_txn"].position("state")
        from repro.dlfm import schema
        return any(row[state] == schema.TXN_COMMITTED
                   for row in dlfm.db.table_rows("dfm_txn"))

    def _has_txn_rows(self, dlfm) -> bool:
        return (not dlfm.db.crashed
                and bool(dlfm.db.table_rows("dfm_txn")))

    def _dirty(self) -> Optional[str]:
        """Why the deployment is not yet quiesced (None when clean)."""
        from repro.dlfm import schema
        host = self.system.host
        if host.db.crashed:
            return "host down"
        if host.db.table_rows("dlk_indoubt"):
            return "dlk_indoubt rows"
        if host.pending_decisions():
            return "piggybacked decisions pending"
        if any(t for t in host.db.txns.active):
            return "active host transactions"
        for name in sorted(self.system.dlfms):
            dlfm = self.system.dlfms[name]
            if dlfm.db.crashed:
                return f"{name} down"
            if dlfm.db.table_rows("dfm_txn"):
                return f"{name}: dfm_txn rows"
            if dlfm.db.table_rows("dfm_archive"):
                return f"{name}: pending archive entries"
            cat = dlfm.db.catalog.tables
            fstate = cat["dfm_file"].position("state")
            if any(r[fstate] == schema.ST_UNLINKING
                   for r in dlfm.db.table_rows("dfm_file")):
                return f"{name}: delayed updates unresolved"
            gstate = cat["dfm_group"].position("state")
            if any(r[gstate] == schema.GRP_DELETED
                   for r in dlfm.db.table_rows("dfm_group")):
                return f"{name}: deleted groups pending"
            if any(r[gstate] in (schema.GRP_MOVING_OUT,
                                 schema.GRP_MOVING_IN)
                   for r in dlfm.db.table_rows("dfm_group")):
                return f"{name}: moving groups unresolved"
            if any(t for t in dlfm.db.txns.active):
                return f"{name}: active transactions"
        return None

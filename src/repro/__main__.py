"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``systemtest`` — run the paper's system test (E1) at chosen scale and
  print the summary (add ``--untuned`` to see the pathological arm).
* ``trace`` — run a traced scenario, print the observability report
  (lock hotspots, phase-2 retries, latency percentiles); ``--json`` dumps
  the raw span events (deterministic: same seed → identical bytes).
* ``bench`` — run the performance harness (RPC batching, WAL group
  commit, daemon pools, scatter-gather 2PC, instant-vs-classic crash
  restart) and write ``BENCH_PERF.json``; ``--check`` enforces the
  acceptance gates, ``--quick`` is the CI scale.
* ``chaos`` — run a seeded fault-injection campaign (crashes, RPC
  delays/duplicates, reply-dropping partitions) with cross-layer
  invariant checking; on violation writes a replayable
  ``chaos_repro.json`` (``--replay FILE`` re-runs it) plus a greedily
  shrunken fault schedule.
* ``experiments`` — list every experiment and the command regenerating it.
* ``paper`` — one-paragraph description of what this reproduces.
"""

from __future__ import annotations

import argparse
import sys

EXPERIMENTS = [
    ("E1", "100-client system test: ~300 ins/min + ~150 upd/min",
     "pytest benchmarks/bench_e1_system_test.py --benchmark-only -s"),
    ("E2", "Fig 4: commit processing acquires locks; retries",
     "pytest benchmarks/bench_e2_commit_locks.py --benchmark-only -s"),
    ("E3", "next-key locking deadlocks",
     "pytest benchmarks/bench_e3_next_key_locking.py --benchmark-only -s"),
    ("E4", "optimizer statistics: table-scan havoc + RUNSTATS guard",
     "pytest benchmarks/bench_e4_optimizer_stats.py --benchmark-only -s"),
    ("E5", "lock escalation brings the system to its knees",
     "pytest benchmarks/bench_e5_lock_escalation.py --benchmark-only -s"),
    ("E6", "async commit → distributed deadlock",
     "pytest benchmarks/bench_e6_sync_commit.py --benchmark-only -s"),
    ("E7", "lock-timeout sweep (the 60 s choice)",
     "pytest benchmarks/bench_e7_timeout_sweep.py --benchmark-only -s"),
    ("E8", "log-full vs batched local commits",
     "pytest benchmarks/bench_e8_batched_commit.py --benchmark-only -s"),
    ("E9", "check-flag unique-index link race",
     "pytest benchmarks/bench_e9_link_race.py --benchmark-only -s"),
    ("E10", "crash/recovery matrix",
     "pytest benchmarks/bench_e10_recovery.py --benchmark-only -s"),
]

PAPER = """\
Reproduction of: Hsiao & Narang, "DLFM: A Transactional Resource
Manager" (IBM Almaden, SIGMOD 2000) — the DataLinks File Manager of DB2
UDB 5.2, which links external files to database transactions: 2PC
between host database and file-server resource managers, a local RDBMS
used as a black-box persistent store, referential integrity via a file
system filter, coordinated backup/restore, and the operational lessons
(next-key locking, optimizer statistics, lock escalation, synchronous
commit, lock timeouts, batched commits) that made it work.
See DESIGN.md and EXPERIMENTS.md."""


def cmd_systemtest(args) -> int:
    from repro.dlfm.config import DLFMConfig
    from repro.minidb.config import TimingModel
    from repro.workloads import SystemTestConfig, run_system_test

    dlfm_config = None
    if args.untuned:
        dlfm_config = DLFMConfig.untuned(timing=TimingModel.calibrated())
    report = run_system_test(SystemTestConfig(
        clients=args.clients, duration=args.minutes * 60.0,
        seed=args.seed, dlfm_config=dlfm_config))
    label = "untuned" if args.untuned else "tuned"
    print(f"system test ({label}, {args.clients} clients, "
          f"{args.minutes} virtual minutes):")
    for key, value in report.summary().items():
        print(f"  {key:<18} {value}")
    return 0


def cmd_trace(args) -> int:
    from repro.obs.report import render_report
    from repro.obs.scenarios import SCENARIOS

    scenario = SCENARIOS.get(args.scenario)
    if scenario is None:
        print(f"unknown scenario {args.scenario!r}; "
              f"choose from: {', '.join(sorted(SCENARIOS))}", file=sys.stderr)
        return 2
    tracer, registry, meta = scenario(seed=args.seed)
    if args.json:
        try:
            with open(args.json, "w") as out:
                out.write(tracer.to_json(**meta))
        except OSError as error:
            print(f"cannot write {args.json}: {error}", file=sys.stderr)
            return 2
        print(f"wrote {len(tracer.events)} events to {args.json}")
    for key, value in sorted(meta.items()):
        print(f"  {key:<16} {value}")
    print()
    print(render_report(tracer, registry), end="")
    return 0


def cmd_bench(args) -> int:
    import json
    import os

    from repro.bench import BenchConfig, check, run_bench

    if args.quick:
        cfg = BenchConfig.quick_config(seed=args.seed)
    else:
        cfg = BenchConfig(seed=args.seed)
    if args.links is not None:
        cfg.links = args.links
    if args.clients is not None:
        cfg.clients = args.clients
    if args.txns is not None:
        cfg.txns = args.txns

    # Carry the trajectory forward: each PR's entry is keyed by label, so
    # re-running replaces this PR's point but keeps earlier ones.
    history = None
    if os.path.exists(args.out):
        try:
            with open(args.out) as prev:
                history = json.load(prev).get("history")
        except (OSError, ValueError):
            history = None

    doc = run_bench(cfg, history=history)
    with open(args.out, "w") as out:
        json.dump(doc, out, indent=2, sort_keys=True)
        out.write("\n")

    print(f"wrote {args.out}")
    print(f"headline: {doc['headline']}")
    for arm, stats in doc["bulk"]["arms"].items():
        print(f"  {arm:<13} rpcs={stats['rpcs']:<6} "
              f"wal_forces={stats['wal_forces']:<4} "
              f"p95_txn={stats['p95_txn_s']}s")
    recovery = doc["recovery"]
    print(f"  restart       classic={recovery['classic']['first_commit_s']}s "
          f"instant={recovery['instant']['first_commit_s']}s "
          f"first-commit speedup={recovery['speedup']}x")
    e1 = doc["e1"]
    print(f"  e1 p95        off={e1['off']['p95_latency_s']}s "
          f"fixed={e1['on']['p95_latency_s']}s "
          f"auto={e1['auto']['p95_latency_s']}s")
    burst = doc["burst"]
    print(f"  burst         forces off={burst['off']['wal_forces']} "
          f"auto={burst['auto']['wal_forces']} "
          f"reduction={burst['force_reduction']}x")
    rr_si = doc["rr_vs_si"]
    print(f"  rr-vs-si      RR deadlocks={rr_si['rr']['deadlocks']} "
          f"timeouts={rr_si['rr']['timeouts']} "
          f"p95={rr_si['rr']['p95_txn_s']}s | "
          f"SI deadlocks={rr_si['si']['deadlocks']} "
          f"timeouts={rr_si['si']['timeouts']} "
          f"p95={rr_si['si']['p95_txn_s']}s "
          f"({rr_si['p95_improvement']}x)")
    load = doc["load"]
    print(f"  load          cold={load['cold']['load_sim_s']}s "
          f"bulk={load['bulk']['load_sim_s']}s "
          f"speedup={load['speedup']}x")
    metacat = doc["metacat"]
    print(f"  metacat       interpolated="
          f"{metacat['interpolated']['stmts_per_s']} stmt/s "
          f"prepared={metacat['prepared']['stmts_per_s']} stmt/s "
          f"({metacat['prepared_speedup']}x); plans "
          f"auto={metacat['auto_probe_plan']} "
          f"cold={metacat['cold']['probe_plan']} "
          f"(runstats runs={metacat['ingest']['auto_runstats_runs']})")
    headline_arm = doc["headline_arm"]
    print(f"  headline      fixed={headline_arm['fixed']['ops_per_sec']} "
          f"auto+bulk={headline_arm['adaptive']['ops_per_sec']} ops/s "
          f"(speedup {headline_arm['speedup']}x)")
    sweep = doc["shard_sweep"]
    counts = doc["config"]["shard_counts"]
    lo, hi = str(min(counts)), str(max(counts))
    print(f"  shards        {lo}={sweep[lo]['txns_per_sec']} txn/s "
          f"{hi}={sweep[hi]['txns_per_sec']} txn/s "
          f"(scaling {sweep['scaling']}x)")
    failures = check(doc)
    for failure in failures:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


def cmd_chaos(args) -> int:
    import json

    from repro.chaos.campaign import (CORRUPTIONS, CampaignConfig, replay,
                                      run_campaign)
    from repro.chaos.faults import FaultPlan, FaultPlanError
    from repro.chaos.shrink import shrink_doc

    if args.replay:
        try:
            with open(args.replay) as handle:
                doc = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"cannot read {args.replay}: {error}", file=sys.stderr)
            return 2
        result = replay(doc)
    else:
        plan = None
        if args.plan:
            try:
                with open(args.plan) as handle:
                    plan = FaultPlan.from_json(handle.read())
            except (OSError, FaultPlanError) as error:
                print(f"cannot load plan {args.plan}: {error}",
                      file=sys.stderr)
                return 2
        corruptions = tuple(args.corrupt or ())
        for name in corruptions:
            if name not in CORRUPTIONS:
                print(f"unknown corruption {name!r}; choose from: "
                      f"{', '.join(sorted(CORRUPTIONS))}", file=sys.stderr)
                return 2
        result = run_campaign(CampaignConfig(
            seed=args.seed, ops=args.ops, plan=plan,
            corruptions=corruptions, shards=args.shards,
            read_isolation=args.read_isolation))

    doc = result.repro_doc()
    if args.json:
        print(result.to_json())
    else:
        print(f"chaos campaign: seed={doc['seed']} ops={doc['ops']} "
              f"shards={doc.get('shards', 0)} "
              f"reads={doc.get('read_isolation', 'default')} "
              f"plan={result.plan.name}")
        print(f"  ops run       {len(doc['op_trace'])}")
        print(f"  rounds        {doc['rounds']} "
              f"({result.stuck_rounds} stuck)")
        print(f"  recoveries    {doc['recoveries']}")
        print(f"  faults fired  {len(doc['fired'])}")
        print(f"  crashes       {len(doc['crashes'])}")
        print(f"  violations    {len(doc['violations'])}")
        for violation in result.violations:
            print(f"    [{violation.code}] {violation.node}: "
                  f"{violation.detail}")
    if result.ok:
        return 0

    if args.shrink and not args.replay:
        doc = shrink_doc(doc, max_trials=args.shrink_trials)
        print(f"shrunk to ops={doc['ops']} "
              f"rules={len(doc['plan']['rules'])} "
              f"(from ops={doc['shrunk_from']['ops']} "
              f"rules={doc['shrunk_from']['rules']})")
    try:
        with open(args.out, "w") as out:
            json.dump(doc, out, indent=2, sort_keys=True)
            out.write("\n")
    except OSError as error:
        print(f"cannot write {args.out}: {error}", file=sys.stderr)
        return 2
    print(f"wrote replayable failure to {args.out} "
          f"(python -m repro chaos --replay {args.out})")
    return 1


def cmd_experiments(_args) -> int:
    width = max(len(desc) for _, desc, _ in EXPERIMENTS)
    for exp_id, desc, cmd in EXPERIMENTS:
        print(f"{exp_id:<4} {desc:<{width}}  {cmd}")
    return 0


def cmd_paper(_args) -> int:
    print(PAPER)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    st = sub.add_parser("systemtest", help="run the E1 system test")
    st.add_argument("--clients", type=int, default=100)
    st.add_argument("--minutes", type=float, default=30.0,
                    help="virtual duration (paper: 1440)")
    st.add_argument("--seed", type=int, default=42)
    st.add_argument("--untuned", action="store_true",
                    help="use the pathological pre-lessons configuration")
    st.set_defaults(fn=cmd_systemtest)

    tr = sub.add_parser("trace", help="run a traced scenario and report")
    tr.add_argument("scenario", nargs="?", default="commit-retry",
                    help="commit-retry (default), workload, or sharded")
    tr.add_argument("--seed", type=int, default=7)
    tr.add_argument("--json", metavar="PATH",
                    help="also dump the raw trace events as JSON")
    tr.set_defaults(fn=cmd_trace)

    bench = sub.add_parser("bench", help="run the perf harness "
                           "(fast paths, daemons, 2PC fan-out, restart)")
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument("--links", type=int, default=None,
                       help="links per transaction (default 100)")
    bench.add_argument("--clients", type=int, default=None,
                       help="concurrent bulk clients (default 8)")
    bench.add_argument("--txns", type=int, default=None,
                       help="link transactions per client (default 2)")
    bench.add_argument("--out", default="BENCH_PERF.json",
                       help="output document (history is carried forward)")
    bench.add_argument("--quick", action="store_true",
                       help="CI scale: shrink the E1 workload")
    bench.add_argument("--check", action="store_true",
                       help="exit nonzero if an acceptance gate fails")
    bench.set_defaults(fn=cmd_bench)

    chaos = sub.add_parser("chaos", help="seeded fault-injection campaign")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--ops", type=int, default=200,
                       help="workload operations to interleave with faults")
    chaos.add_argument("--shards", type=int, default=0,
                       help="run against a sharded fleet of N DLFM shards "
                            "(0 = the classic single-server system)")
    chaos.add_argument("--read-isolation", choices=("default", "SI"),
                       default="default",
                       help="isolation for DLFM internal reads: 'default' "
                            "replays the paper's locking levels, 'SI' runs "
                            "the campaign on MVCC snapshot reads")
    chaos.add_argument("--plan", metavar="FILE",
                       help="FaultPlan JSON (default: built-in default plan)")
    chaos.add_argument("--replay", metavar="FILE",
                       help="re-run a chaos_repro.json failure document")
    chaos.add_argument("--corrupt", metavar="NAME", action="append",
                       help="apply a named seeded corruption before the "
                            "final check (test-only; serialized for replay)")
    chaos.add_argument("--out", default="chaos_repro.json",
                       help="where to write the failure document")
    chaos.add_argument("--json", action="store_true",
                       help="print the full result document (deterministic)")
    chaos.add_argument("--no-shrink", dest="shrink", action="store_false",
                       help="skip fault-schedule shrinking on failure")
    chaos.add_argument("--shrink-trials", type=int, default=24,
                       help="max re-runs the shrinker may spend")
    chaos.set_defaults(fn=cmd_chaos)

    exps = sub.add_parser("experiments", help="list experiment harnesses")
    exps.set_defaults(fn=cmd_experiments)

    paper = sub.add_parser("paper", help="what this reproduces")
    paper.set_defaults(fn=cmd_paper)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

"""Histogram + metrics registry primitives for the observability layer.

The :class:`Histogram` uses fixed log-scale buckets so percentile math
is deterministic, bounded-memory and mergeable — the standard shape for
latency instrumentation (cf. HdrHistogram).  Percentiles use the
nearest-rank definition over bucket upper bounds, clamped by the true
observed maximum so ``p100 == max`` exactly.

A :class:`MetricsRegistry` is one queryable home for counters and
histograms from every layer; ``snapshot()`` yields a plain sorted dict
suitable for JSON dumps or report tables.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple


class Histogram:
    """Fixed log-scale bucket histogram with percentile queries.

    Buckets are powers of ``growth`` spanning ``[min_bound, max_bound]``;
    a value is counted in the first bucket whose upper bound is >= the
    value.  Values below ``min_bound`` land in the first bucket, values
    above ``max_bound`` in the overflow bucket.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min_value",
                 "max_value")

    def __init__(self, min_bound: float = 1e-6, max_bound: float = 1e7,
                 growth: float = 2.0):
        bounds: List[float] = []
        bound = min_bound
        while bound < max_bound:
            bounds.append(bound)
            bound *= growth
        bounds.append(max_bound)
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        self.counts[bisect_left(self.bounds, value)] += 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile estimated from bucket upper bounds.

        Returns the upper bound of the bucket holding the nearest-rank
        sample, clamped to the observed maximum (so the estimate never
        exceeds a value that was actually recorded).
        """
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(pct / 100.0 * self.count))
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                bound = (self.bounds[i] if i < len(self.bounds)
                         else self.max_value)
                return min(bound, self.max_value)
        return self.max_value  # pragma: no cover — rank <= count always hits

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max_value if self.max_value is not None else 0.0,
        }


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class MetricsRegistry:
    """One queryable home for counters and latency histograms."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def histogram(self, name: str, **kwargs) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(**kwargs)
        return hist

    def register_counters(self, prefix: str, values: Dict[str, int]) -> None:
        """Bulk-import plain counter values (e.g. a DLFMMetrics dump)."""
        for key, value in values.items():
            counter = self.counter(f"{prefix}.{key}")
            counter.value = int(value)

    def histograms(self) -> List[Tuple[str, Histogram]]:
        return sorted(self._histograms.items())

    def snapshot(self) -> Dict[str, object]:
        doc: Dict[str, object] = {}
        for name, counter in sorted(self._counters.items()):
            doc[name] = counter.value
        for name, hist in sorted(self._histograms.items()):
            doc[name] = {k: round(v, 9) if isinstance(v, float) else v
                         for k, v in hist.summary().items()}
        return doc

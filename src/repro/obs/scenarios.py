"""Traced scenarios for ``python -m repro trace``.

Each scenario builds a full :class:`~repro.system.System` with a
recording :class:`~repro.obs.Tracer` attached, drives a deterministic
workload that exercises every instrumented layer (kernel channels/RPC,
minidb lock waits, WAL forces, DLFM forward ops, phase-2 retries, at
least one daemon pass), and returns ``(tracer, registry, meta)``.

Because everything runs on the virtual clock with seeded RNG streams,
two runs with the same seed produce byte-identical traces.
"""

from __future__ import annotations

from repro.dlfm import api
from repro.host import DatalinkSpec, build_url
from repro.kernel import rpc
from repro.kernel.sim import Timeout
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.system import System


def commit_retry(seed: int = 7):
    """Phase-2 commit blocked by an interloper: retries, then success.

    The canonical Figure-4 situation: a prepared transaction's phase-2
    commit must take new locks on ``dfm_txn``; a blocker holds the row
    X-locked, so the commit deadlocks/times out and retries until the
    blocker lets go. The trailing sleep lets the Copy daemon archive the
    newly linked file, so the trace includes a daemon pass.
    """
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    system = System(seed=seed, tracer=tracer)
    dlfm = system.dlfms["fs1"]
    dlfm.db.config.lock_timeout = 2.0
    dlfm.config.commit_retry_delay = 1.0
    host = system.host

    def setup():
        for i in range(3):
            system.create_user_file("fs1", f"/v/clip{i}.mpg", owner="alice",
                                    content=f"VIDEO-{i}" * 20)
        yield from host.create_datalink_table(
            "clips", [("id", "INT"), ("title", "TEXT"), ("video", "TEXT")],
            {"video": DatalinkSpec(access_control="full", recovery=True)})

    system.run(setup())

    def prepared_txn():
        session = system.session()
        yield from session.execute(
            "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
            (0, "clip 0", build_url("fs1", "/v/clip0.mpg")))
        txn_id = session.txn_id
        yield from session._send_control("fs1",
                                         api.Prepare(host.dbid, txn_id))
        yield from session.session.commit()
        return txn_id

    txn_id = system.run(prepared_txn(), "prepare")

    def scenario():
        blocker = dlfm.db.session()
        yield from blocker.execute(
            "SELECT * FROM dfm_txn WHERE txn_id = ? FOR UPDATE", (txn_id,))
        chan = dlfm.connect()
        reply = yield from rpc.cast(
            system.sim, chan, api.Commit(host.dbid, txn_id))
        yield Timeout(10.0)          # several retry cycles while blocked
        yield from blocker.rollback()
        result = yield from rpc.wait_reply(reply)
        chan.close()
        # Let the Copy daemon sweep the archive entry of the linked file.
        yield Timeout(dlfm.config.copy_period + 2.0)
        return result

    result = system.run(scenario(), "scenario")
    meta = {
        "scenario": "commit-retry",
        "seed": seed,
        "outcome": result["outcome"],
        "commit_retries": dlfm.metrics.commit_retries,
        "files_archived": dlfm.metrics.files_archived,
    }
    _import_counters(registry, system)
    return tracer, registry, meta


def workload(seed: int = 42, clients: int = 8, duration: float = 120.0):
    """A short multi-client E1-style workload with tracing on."""
    from repro.workloads.runner import SystemTestConfig, run_system_test

    registry = MetricsRegistry()
    tracer = Tracer(registry)
    config = SystemTestConfig(clients=clients, duration=duration, seed=seed,
                              tracer=tracer)
    report = run_system_test(config)
    registry.histogram("workload.latency").extend(report.latencies)
    meta = {
        "scenario": "workload",
        "seed": seed,
        "clients": clients,
        "duration": duration,
        "inserts": report.inserts,
        "updates": report.updates,
        "deadlocks": report.deadlocks,
        "commit_retries": report.commit_retries,
    }
    _import_counters(registry, report.system)
    return tracer, registry, meta


def sharded(seed: int = 11, shards: int = 3):
    """A small sharded fleet under concurrent cross-shard traffic plus
    one online rebalance, so the trace carries per-shard spans and the
    report's lock hotspots / counter groups attribute work to a shard
    (``dlfm.shard2.*``, ``locks.shard3.*``, ...)."""
    from repro.shard import ShardedSystem, move_group

    registry = MetricsRegistry()
    tracer = Tracer(registry)
    system = ShardedSystem(seed=seed, shards=shards, tracer=tracer)
    host = system.host
    tables = 2 * shards

    def setup():
        for i in range(tables):
            yield from host.create_datalink_table(
                f"t{i}", [("id", "INT"), ("doc", "TEXT")],
                {"doc": DatalinkSpec(recovery=False)})

    system.run(setup())

    def client(i: int):
        session = system.session()
        for n in range(3):
            path = f"/sh/t{i}/f{n}"
            system.create_user_file(system.fs_name, path, owner=f"c{i}")
            yield from session.execute(
                f"INSERT INTO t{i} (id, doc) VALUES (?, ?)",
                (n, build_url(system.fs_name, path)))
        yield from session.commit()
        session.close()

    def scenario():
        procs = [system.sim.spawn(client(i), f"sh-client-{i}")
                 for i in range(tables)]
        for proc in procs:
            yield from proc.join()
        # Rebalance one group onto whichever shard does not own it.
        grp_id = min(host.group_ids.values())
        src = host.shard_map.resolve(grp_id)[0]
        dst = next(n for n in sorted(system.dlfms) if n != src)
        moved = yield from move_group(host, grp_id, dst)
        return moved

    moved = system.run(scenario(), "scenario")
    meta = {
        "scenario": "sharded",
        "seed": seed,
        "shards": shards,
        "moved_group": moved,
        "shardmap_reloads": host.shard_map.reloads,
        "rpcs": {name: system.dlfms[name].metrics.rpcs
                 for name in sorted(system.dlfms)},
    }
    _import_counters(registry, system)
    registry.register_counters("shardmap", {
        "reloads": host.shard_map.reloads,
        "entries": len(host.shard_map._cache),
    })
    return tracer, registry, meta


def _plan_cache_counters(db) -> dict:
    """The plan-cache group: how statement compilation is amortized."""
    m = db.metrics
    return {
        "hits": m.plan_hits,
        "binds": m.plan_binds,
        "invalidations": m.plan_invalidations,
        "evictions": m.plan_evictions,
        "auto_runstats": m.auto_runstats_runs,
    }


def _import_counters(registry, system) -> None:
    """Snapshot flat engine counters into the registry for the report."""
    for name, dlfm in sorted(system.dlfms.items()):
        registry.register_counters(f"dlfm.{name}",
                                   dict(dlfm.metrics.__dict__))
        registry.register_counters(f"daemon.{name}",
                                   dlfm.daemon_counters())
        registry.register_counters(f"locks.{name}",
                                   dlfm.db.locks.metrics.snapshot())
        registry.register_counters(f"wal.{name}",
                                   dict(dlfm.db.wal.metrics.__dict__))
        registry.register_counters(f"plancache.{name}",
                                   _plan_cache_counters(dlfm.db))
        if dlfm.db.wal.auto_windows:
            registry.histogram(f"wal.{name}.auto_window").extend(
                dlfm.db.wal.auto_windows)
    registry.register_counters("locks.host",
                               system.host.db.locks.metrics.snapshot())
    registry.register_counters("wal.host",
                               dict(system.host.db.wal.metrics.__dict__))
    registry.register_counters("plancache.host",
                               _plan_cache_counters(system.host.db))
    if system.host.db.wal.auto_windows:
        registry.histogram("wal.host.auto_window").extend(
            system.host.db.wal.auto_windows)
    registry.register_counters("host", dict(system.host.metrics.__dict__))


SCENARIOS = {
    "commit-retry": commit_retry,
    "workload": workload,
    "sharded": sharded,
}

"""Structured tracing over the simulation kernel's virtual clock.

A :class:`Tracer` is attached to a :class:`~repro.kernel.sim.Simulator`
and records typed span events from every layer of the stack: kernel
RPC/channel blocking, minidb lock waits and escalations, WAL forces,
DLFM forward operations, phase-1 prepare, each phase-2 attempt (with its
``TransactionAborted`` cause on failure) and daemon passes.

Design rules:

* **Zero cost when disabled.** The default tracer on every simulator is
  :data:`NULL_TRACER`; its ``span``/``event`` calls allocate nothing and
  record nothing, so instrumented hot paths (lock manager, channels) pay
  only a method call.
* **Deterministic.** Events carry *virtual* timestamps and process
  names; span ids come from a per-tracer counter. The same seed produces
  a byte-identical JSON dump (:meth:`Tracer.to_json`).
* **Self-contained.** This module imports nothing from the kernel — the
  simulator *binds itself* to the tracer (``tracer.bind(sim)``), which
  keeps ``repro.kernel.sim`` free to import us.

Span taxonomy (see DESIGN.md §Observability):

========================  ====================================================
``rpc.call``              one synchronous RPC (request type, channel)
``channel.send``/``recv`` time blocked on a rendezvous/bounded channel
``lock.wait``             time a lock request spent queued (resource, mode,
                          outcome: granted | deadlock | timeout)
``wal.force``             a physical log force (db, flushed lsn)
``dlfm.<Request>``        one DLFM child-agent request, end to end
``dlfm.phase2``           one phase-2 commit/abort attempt (verb, attempt
                          number, outcome, abort cause)
``daemon.*``              one pass of a service daemon
========================  ====================================================
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Optional


def _jsonable(value: Any):
    """Coerce an attribute value into something JSON-stable."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class _NullSpan:
    """Shared do-nothing span used by the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every call is a no-op (the default everywhere)."""

    enabled = False

    def bind(self, sim) -> None:  # pragma: no cover - trivial
        pass

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def count(self, name: str, key: Optional[str] = None,
              amount: int = 1) -> None:
        pass


#: Shared disabled tracer; ``Simulator`` uses it unless given a real one.
NULL_TRACER = NullTracer()


class _Span:
    """Context manager recording one ``span_start``/``span_end`` pair.

    Works naturally around ``yield from`` in kernel generators: the
    virtual clock only advances while the body is suspended, so the
    timestamps at ``__enter__``/``__exit__`` bracket the traced work.
    """

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "process", "start_ts")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach/overwrite attributes; they land on the end event."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self.tracer._start(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None and "error" not in self.attrs:
            self.attrs["error"] = type(exc).__name__
        self.tracer._end(self)
        return False


class Tracer(NullTracer):
    """Recording tracer. Attach via ``Simulator(seed, tracer=Tracer())``.

    ``registry`` (optional) is a
    :class:`~repro.obs.metrics.MetricsRegistry`; every finished span's
    duration is recorded into the registry histogram ``span.<name>``, so
    per-operation latency percentiles come for free.
    """

    enabled = True

    def __init__(self, registry=None):
        self.events: list[dict] = []
        self.registry = registry
        self._ids = itertools.count(1)
        self._stacks: dict[str, list[int]] = {}
        self._sim = None

    # ------------------------------------------------------------------ binding

    def bind(self, sim) -> None:
        """Called by the simulator that owns this tracer."""
        self._sim = sim

    def _clock(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    def _proc_name(self) -> str:
        return self._sim.process_name if self._sim is not None else "kernel"

    # ------------------------------------------------------------------ recording

    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous event (no duration)."""
        self._record("event", name, next(self._ids), None,
                     self._proc_name(), attrs)

    def count(self, name: str, key: Optional[str] = None,
              amount: int = 1) -> None:
        """Bump the registry counter ``<name>.<key>`` (e.g. per-resource
        ``retries.fs1.commit``); a no-op without a registry."""
        if self.registry is not None:
            full = f"{name}.{key}" if key else name
            self.registry.counter(full).inc(amount)

    def _start(self, span: _Span) -> None:
        process = self._proc_name()
        stack = self._stacks.setdefault(process, [])
        span.span_id = next(self._ids)
        span.parent_id = stack[-1] if stack else None
        span.process = process
        span.start_ts = self._clock()
        stack.append(span.span_id)
        self._record("span_start", span.name, span.span_id, span.parent_id,
                     process, span.attrs)

    def _end(self, span: _Span) -> None:
        stack = self._stacks.get(span.process, [])
        if stack and stack[-1] == span.span_id:
            stack.pop()
        else:  # out-of-order exit (exception unwinding through spans)
            try:
                stack.remove(span.span_id)
            except ValueError:
                pass
        duration = self._clock() - span.start_ts
        attrs = dict(span.attrs)
        attrs["duration"] = round(duration, 9)
        self._record("span_end", span.name, span.span_id, span.parent_id,
                     span.process, attrs)
        if self.registry is not None:
            self.registry.histogram(f"span.{span.name}").record(duration)

    def _record(self, kind: str, name: str, span_id: int,
                parent_id: Optional[int], process: str, attrs: dict) -> None:
        self.events.append({
            "kind": kind,
            "ts": round(self._clock(), 9),
            "span": span_id,
            "parent": parent_id,
            "name": name,
            "process": process,
            "attrs": {k: _jsonable(v) for k, v in sorted(attrs.items())},
        })

    # ------------------------------------------------------------------ queries

    def completed_spans(self) -> list[dict]:
        """Pair up start/end events → one dict per finished span.

        Each dict has ``name``, ``process``, ``span``, ``parent``,
        ``start``, ``end``, ``duration`` and the merged ``attrs``.
        """
        starts: dict[int, dict] = {}
        spans: list[dict] = []
        for ev in self.events:
            if ev["kind"] == "span_start":
                starts[ev["span"]] = ev
            elif ev["kind"] == "span_end":
                start = starts.pop(ev["span"], None)
                if start is None:
                    continue
                attrs = dict(start["attrs"])
                attrs.update(ev["attrs"])
                spans.append({
                    "name": ev["name"],
                    "process": ev["process"],
                    "span": ev["span"],
                    "parent": ev["parent"],
                    "start": start["ts"],
                    "end": ev["ts"],
                    "duration": attrs.pop("duration", ev["ts"] - start["ts"]),
                    "attrs": attrs,
                })
        return spans

    # ------------------------------------------------------------------ export

    def to_json(self, **meta) -> str:
        """Serialize the whole trace; byte-identical for identical runs."""
        doc = {
            "meta": {k: _jsonable(v) for k, v in sorted(meta.items())},
            "events": self.events,
        }
        return json.dumps(doc, separators=(",", ":"), sort_keys=True)

"""Compact text reports over a recorded trace.

``render_report(tracer, registry)`` returns the human-readable summary
printed by ``python -m repro trace``: top lock hotspots (total virtual
time spent waiting per resource), the phase-2 retry breakdown (attempts,
outcomes, abort causes) and a per-operation latency table with
p50/p95/p99/max drawn from the registry's span histograms.
"""

from __future__ import annotations

from collections import defaultdict
from typing import List


def _fmt(value: float) -> str:
    return f"{value:.6f}"


def _table(title: str, columns: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(columns)))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    lines.append("")
    return lines


#: Requested lock modes that make the waiter a READER; everything else
#: (X/IX/SIX/U) intends to write. The split answers the §13 question
#: "would SI snapshot reads dissolve this hotspot?" — reader waits
#: vanish under SI, writer waits do not.
READER_MODES = frozenset({"S", "IS"})


def lock_hotspots(spans: List[dict], top: int = 10) -> List[dict]:
    """Aggregate ``lock.wait`` spans by (database, resource); sorted by
    total wait. Keeping the database in the key matters for sharded
    fleets: every shard has a ``dfm_file`` heap, and a hotspot report
    that merged them could not say WHICH shard is convoying. Each row
    also splits the waits reader-vs-writer by the requested mode."""
    agg: dict = {}
    for span in spans:
        if span["name"] != "lock.wait":
            continue
        resource = str(span["attrs"].get("resource", "?"))
        db = str(span["attrs"].get("db", "?"))
        entry = agg.setdefault((db, resource), {
            "db": db, "resource": resource, "waits": 0, "total_wait": 0.0,
            "max_wait": 0.0, "deadlocks": 0, "timeouts": 0,
            "reader_waits": 0, "reader_wait": 0.0,
            "writer_waits": 0, "writer_wait": 0.0,
        })
        entry["waits"] += 1
        entry["total_wait"] += span["duration"]
        entry["max_wait"] = max(entry["max_wait"], span["duration"])
        side = ("reader" if span["attrs"].get("mode") in READER_MODES
                else "writer")
        entry[f"{side}_waits"] += 1
        entry[f"{side}_wait"] += span["duration"]
        outcome = span["attrs"].get("outcome")
        if outcome == "deadlock":
            entry["deadlocks"] += 1
        elif outcome == "timeout":
            entry["timeouts"] += 1
    ranked = sorted(agg.values(),
                    key=lambda e: (-e["total_wait"], e["db"], e["resource"]))
    return ranked[:top]


def phase2_breakdown(spans: List[dict]) -> dict:
    """Summarize ``dlfm.phase2`` attempt spans per verb."""
    verbs: dict = defaultdict(lambda: {
        "attempts": 0, "succeeded": 0, "retried": 0,
        "max_attempt": 0, "causes": defaultdict(int),
    })
    for span in spans:
        if span["name"] != "dlfm.phase2":
            continue
        attrs = span["attrs"]
        entry = verbs[str(attrs.get("verb", "?"))]
        entry["attempts"] += 1
        entry["max_attempt"] = max(entry["max_attempt"],
                                   int(attrs.get("attempt", 1)))
        if attrs.get("outcome") == "ok":
            entry["succeeded"] += 1
        else:
            entry["retried"] += 1
            entry["causes"][str(attrs.get("cause", "?"))] += 1
    return {verb: {**entry, "causes": dict(entry["causes"])}
            for verb, entry in sorted(verbs.items())}


def render_report(tracer, registry) -> str:
    """Render the full text report for a finished traced run."""
    spans = tracer.completed_spans()
    lines: List[str] = []

    counts: dict = defaultdict(int)
    for span in spans:
        counts[span["name"]] += 1
    lines += _table(
        "Span volume",
        ["span", "count"],
        [[name, str(n)] for name, n in sorted(counts.items())])

    hotspots = lock_hotspots(spans)
    if hotspots:
        lines += _table(
            "Top lock hotspots (by total wait, virtual seconds; "
            "rd=S/IS waiters, wr=X/IX/SIX/U)",
            ["db", "resource", "waits", "rd", "wr", "total_wait",
             "rd_wait", "wr_wait", "max_wait", "deadlock", "timeout"],
            [[e["db"], e["resource"], str(e["waits"]),
              str(e["reader_waits"]), str(e["writer_waits"]),
              _fmt(e["total_wait"]), _fmt(e["reader_wait"]),
              _fmt(e["writer_wait"]), _fmt(e["max_wait"]),
              str(e["deadlocks"]), str(e["timeouts"])]
             for e in hotspots])

    phase2 = phase2_breakdown(spans)
    if phase2:
        rows = []
        for verb, entry in phase2.items():
            causes = ",".join(f"{c}:{n}"
                              for c, n in sorted(entry["causes"].items()))
            rows.append([verb, str(entry["attempts"]),
                         str(entry["succeeded"]), str(entry["retried"]),
                         str(entry["max_attempt"]), causes or "-"])
        lines += _table(
            "Phase-2 retry breakdown",
            ["verb", "attempts", "ok", "aborted", "max_attempt", "causes"],
            rows)

    hist_rows = []
    for name, hist in registry.histograms():
        if hist.count == 0:
            continue
        summary = hist.summary()
        hist_rows.append([name, str(summary["count"]), _fmt(summary["mean"]),
                          _fmt(summary["p50"]), _fmt(summary["p95"]),
                          _fmt(summary["p99"]), _fmt(summary["max"])])
    if hist_rows:
        lines += _table(
            "Per-op latency (virtual seconds)",
            ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
            hist_rows)

    counter_rows = [[name, str(counter.value)]
                    for name, counter in sorted(registry._counters.items())
                    if counter.value]
    if counter_rows:
        lines += _table(
            "Counters (nonzero; per-node groups like dlfm.<shard>.<name>)",
            ["counter", "value"],
            counter_rows)

    return "\n".join(lines).rstrip() + "\n"

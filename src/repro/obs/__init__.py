"""Observability: structured tracing + latency histograms.

Import surface is deliberately dependency-free — ``repro.kernel.sim``
imports this package, so nothing here may import the kernel (scenario
helpers that need a full ``System`` live in ``repro.obs.scenarios`` and
are imported lazily by the CLI).
"""

from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "NULL_TRACER",
    "Tracer",
]

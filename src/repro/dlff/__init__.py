"""DataLinks File System Filter (DLFF).

Intercepts file-system commands on a file server and enforces the
constraints DLFM registered: linked files cannot be deleted, renamed or
moved; files linked with full access control (DB-owned, read-only) can
only be read with a valid host-issued access token.
"""

from repro.dlff.filter import AccessToken, Filter, FilteredFileSystem

__all__ = ["AccessToken", "Filter", "FilteredFileSystem"]

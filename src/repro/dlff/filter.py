"""The filter layer itself.

Enforcement paths (mirroring the paper §2/§3.5):

* **Full access control** — the file is owned by the DLFM administrative
  user and marked read-only; rename/delete/write are refused locally by
  ownership, and reads require an access token issued by the host
  database. No upcall is needed.
* **Partial access control** — ownership is unchanged, so the filter
  makes an **upcall** to the DLFM Upcall daemon asking "is this file
  linked?" before permitting delete/rename/move.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.errors import AccessTokenError, LinkedFileError
from repro.fs.filesystem import FileServer, FileSystem

#: The administrative user that owns files under full database control.
DLFM_ADMIN = "dlfmadm"


@dataclass(frozen=True)
class AccessToken:
    """Host-issued capability to read a file under full access control."""

    path: str
    expires_at: float
    signature: str

    @staticmethod
    def sign(secret: str, path: str, expires_at: float) -> "AccessToken":
        digest = hashlib.sha256(
            f"{secret}:{path}:{expires_at}".encode()).hexdigest()[:16]
        return AccessToken(path, expires_at, digest)

    def valid_for(self, secret: str, path: str, now: float) -> bool:
        if self.path != path or now > self.expires_at:
            return False
        expected = AccessToken.sign(secret, path, self.expires_at)
        return expected.signature == self.signature


class Filter:
    """Per-file-server DLFF instance."""

    def __init__(self, sim, token_secret: str):
        self.sim = sim
        self.token_secret = token_secret
        #: generator callable path → linked-info dict or None (Upcall daemon)
        self.upcall: Optional[Callable[[str], Generator]] = None
        self.upcalls_made = 0
        self.rejections = 0

    def mount(self, server: FileServer) -> "FilteredFileSystem":
        filtered = FilteredFileSystem(self.sim, server.fs, self)
        server.filtered = filtered
        return filtered

    def set_upcall(self, upcall: Callable[[str], Generator]) -> None:
        self.upcall = upcall

    # -- enforcement helpers ------------------------------------------------------

    def check_mutation_allowed(self, fs: FileSystem, path: str, user: str):
        """Generator: raise LinkedFileError if ``path`` is linked."""
        node = fs.stat(path)
        if node.owner == DLFM_ADMIN and user != DLFM_ADMIN:
            # Full access control: the database owns the file outright.
            self.rejections += 1
            raise LinkedFileError(
                f"{path} is under full database control")
        if self.upcall is not None and user != DLFM_ADMIN:
            self.upcalls_made += 1
            info = yield from self.upcall(path)
            if info is not None:
                self.rejections += 1
                raise LinkedFileError(
                    f"{path} is linked to database {info.get('dbid')}")

    def check_read_token(self, fs: FileSystem, path: str, user: str,
                         token: Optional[AccessToken]) -> bool:
        """True when the read must be performed with DB authority."""
        node = fs.stat(path)
        if node.owner != DLFM_ADMIN or user == DLFM_ADMIN:
            return False
        if token is None:
            raise AccessTokenError(
                f"{path} is under full database control; a read token "
                "from the host database is required")
        if not token.valid_for(self.token_secret, path, self.sim.now):
            raise AccessTokenError(f"invalid or expired token for {path}")
        return True


class FilteredFileSystem:
    """What ordinary applications see on a DataLinks-enabled file server."""

    def __init__(self, sim, fs: FileSystem, filt: Filter):
        self.sim = sim
        self.fs = fs
        self.filter = filt

    # -- reads ---------------------------------------------------------------------

    def read(self, path: str, user: str,
             token: Optional[AccessToken] = None) -> str:
        if self.filter.check_read_token(self.fs, path, user, token):
            return self.fs.read(path, DLFM_ADMIN)  # DB authority
        return self.fs.read(path, user)

    def stat(self, path: str):
        return self.fs.stat(path)

    def exists(self, path: str) -> bool:
        return self.fs.exists(path)

    # -- writes (generators: may upcall) ----------------------------------------------

    def create(self, path: str, user: str, content: str = ""):
        return self.fs.create(path, user, content)

    def write(self, path: str, user: str, content: str):
        """Generator: in-place write; refused for DB-controlled files."""
        node = self.fs.stat(path)
        if node.owner == DLFM_ADMIN and user != DLFM_ADMIN:
            self.filter.rejections += 1
            raise LinkedFileError(f"{path} is under full database control")
        self.fs.write(path, user, content)
        return
        yield  # pragma: no cover — uniform generator interface

    def delete(self, path: str, user: str):
        """Generator: delete; refused for linked files."""
        yield from self.filter.check_mutation_allowed(self.fs, path, user)
        self.fs.delete(path, user)

    def rename(self, old: str, new: str, user: str):
        """Generator: rename/move; refused for linked files."""
        yield from self.filter.check_mutation_allowed(self.fs, old, user)
        self.fs.rename(old, new, user)

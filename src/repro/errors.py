"""Exception hierarchy shared across the reproduction.

Every layer raises subclasses of :class:`ReproError` so callers can catch
failures from the whole stack with one except clause while still being able
to discriminate (e.g. a :class:`DeadlockError` is retried by DLFM's phase-2
logic, a :class:`LogFullError` aborts a long utility transaction).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# --------------------------------------------------------------------------
# Simulation kernel
# --------------------------------------------------------------------------

class SimError(ReproError):
    """Misuse of the simulation kernel (bad yield, dead process, ...)."""


class ChannelClosed(SimError):
    """Send or receive on a closed channel."""


class ChannelTimeout(SimError):
    """A channel send/receive timed out before a peer arrived."""


# --------------------------------------------------------------------------
# minidb — the embedded RDBMS used as DLFM's (and the host's) local store
# --------------------------------------------------------------------------

class DatabaseError(ReproError):
    """Base class for errors raised by the minidb engine."""


class TransactionAborted(DatabaseError):
    """The transaction was rolled back and must not issue further work.

    Carries ``reason`` so benchmarks can distinguish deadlock victims from
    timeout victims from user-initiated rollbacks.
    """

    def __init__(self, message: str, reason: str = "user"):
        super().__init__(message)
        self.reason = reason


class DeadlockError(TransactionAborted):
    """This transaction was chosen as a deadlock victim."""

    def __init__(self, message: str):
        super().__init__(message, reason="deadlock")


class LockTimeoutError(TransactionAborted):
    """A lock request waited longer than the configured lock timeout."""

    def __init__(self, message: str):
        super().__init__(message, reason="timeout")


class LogFullError(TransactionAborted):
    """The bounded write-ahead log ran out of space (DB2 'log full')."""

    def __init__(self, message: str):
        super().__init__(message, reason="logfull")


class LockEscalationError(DatabaseError):
    """Lock escalation failed (table lock unobtainable, locklist exhausted)."""


class DuplicateKeyError(DatabaseError):
    """Insert violated a unique index."""


class CatalogError(DatabaseError):
    """Unknown table/index/column, duplicate DDL, or invalid statistics."""


class SQLSyntaxError(DatabaseError):
    """The SQL text could not be lexed or parsed."""


class SQLTypeError(DatabaseError):
    """Expression/parameter typing error during planning or execution."""


class CrashedError(DatabaseError):
    """Operation attempted against a crashed (not yet restarted) database."""


# --------------------------------------------------------------------------
# File system / DLFF / archive
# --------------------------------------------------------------------------

class FileSystemError(ReproError):
    """Base class for simulated file-system failures."""


class TransientIOError(FileSystemError):
    """Injected transient I/O fault (repro.chaos); retrying may succeed."""


#: Failures a retry loop (phase-2, delete-group draining) recovers from
#: by retrying: local aborts plus transient transport and I/O faults.
#: Crashes are deliberately absent — a crashed node cannot be retried
#: into health; its work resumes after restart.
RETRIABLE_FAULTS = (TransactionAborted, TransientIOError, ChannelTimeout)


class FileNotFound(FileSystemError):
    pass


class FileExists(FileSystemError):
    pass


class PermissionDenied(FileSystemError):
    """Operation rejected: unix permission check or DLFF constraint."""


class LinkedFileError(PermissionDenied):
    """DLFF rejected rename/delete/move of a file linked to a database."""


class ArchiveError(ReproError):
    """Archive server failure (missing version, double delete, ...)."""


# --------------------------------------------------------------------------
# DataLinks (host engine + DLFM)
# --------------------------------------------------------------------------

class DataLinkError(ReproError):
    """Base class for datalink engine / DLFM protocol errors."""


class LinkError(DataLinkError):
    """LinkFile failed (already linked, file missing, group mismatch...)."""


class UnlinkError(DataLinkError):
    """UnlinkFile failed (not linked, wrong transaction, ...)."""


class StaleRouteError(DataLinkError):
    """A routed request reached a shard whose group epoch disagrees.

    Raised by a DLFM shard when a forwarded op carries a ``route_epoch``
    that does not match its ``dfm_group`` row (or the group is not here
    at all): the host's shard-map cache is stale — typically a
    ``move_group`` committed since the route was cached. The router
    reloads the map from the catalog and retries; the error never
    aborts the host transaction."""


class TwoPCProtocolError(DataLinkError):
    """Out-of-order or unknown-transaction 2PC verb."""


class ReconcileError(DataLinkError):
    """The reconcile utility could not bring both sides to a consistent state."""


class AccessTokenError(DataLinkError):
    """A file open under full access control carried a bad or missing token."""

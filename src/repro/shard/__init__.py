"""repro.shard — a multi-node DLFM fleet behind one host database.

The host becomes a router: file groups are hash-partitioned over N DLFM
shards through a durable catalog table (``dlk_shardmap``) mirrored in an
in-memory routing cache, every routed op is fenced with the cached epoch
(:class:`~repro.errors.StaleRouteError` → reload + retry), and groups
move between shards online with a 2PC ``move_group`` transaction.
"""

from repro.shard.catalog import ShardMap
from repro.shard.rebalance import move_group
from repro.shard.system import ShardedSystem

__all__ = ["ShardMap", "ShardedSystem", "move_group"]

"""Online rebalancing: move a file group between shards under 2PC.

``move_group`` is an ordinary host transaction with two participants:

1. **ExportGroup** to the source shard — locks the group, snapshots its
   ``dfm_file`` rows, marks the group *moving-out* under the move's
   transaction id (a delayed-update mark, like unlink's);
2. **ImportGroup** to the destination — inserts the group *moving-in*
   at the bumped epoch plus the file rows verbatim;
3. the ``dlk_shardmap`` catalog row flips to the destination at the new
   epoch **in the same host transaction**;
4. COMMIT runs the normal 2PC: phase 1 hardens both shards, the durable
   decision (piggybacked or ``dlk_indoubt`` rows) makes the move final,
   phase 2 deletes the moving-out copy and activates the moving-in one.

A crash anywhere leaves nothing stranded: before the decision is
durable, presumed abort restores the source and deletes the import;
after it, in-doubt re-drive finishes the flip on both shards — and the
catalog row, committed with the decision, already names the new owner,
so the resolver (and every rebooted cache) routes there. Concurrent
ops meanwhile bounce off the *moving* states with StaleRouteError and
retry until phase 2 resolves.

Chaos crash points (``shard.move:*``): ``exported`` (source marked,
nothing durable), ``imported`` (both sides staged), ``mapped`` (catalog
row written, decision not yet durable). All three must resolve to
"group active on exactly one shard, catalog agrees" — the campaign's
sharded invariants check exactly that.
"""

from __future__ import annotations

from repro.dlfm import api
from repro.errors import DataLinkError, ReproError


def move_group(host, grp_id: int, dst: str):
    """Generator: move ``grp_id`` to shard ``dst``; returns a summary.

    Raises :class:`~repro.errors.LinkError` when the group cannot move
    right now (deleted, already moving, or carrying pending archive
    work), :class:`~repro.errors.TransactionAborted` when the move
    transaction lost a lock fight — both leave the group untouched on
    the source. A no-op move (already on ``dst``) returns early.
    """
    shard_map = host.shard_map
    if shard_map is None:
        raise DataLinkError("move_group needs a sharded host")
    if dst not in shard_map.shards:
        raise DataLinkError(f"unknown destination shard {dst!r}")
    src, _epoch = shard_map.resolve(grp_id)
    if src == dst:
        return {"moved": False, "src": src, "dst": dst}

    # Export refuses groups with pending archive work (the copy daemon's
    # completion update must find its row on the source shard), so drain
    # the source's backlog up front instead of bouncing the caller.
    yield from shard_map.shards[src].copyd.sweep()

    injector = host.sim.injector
    session = host.session()
    try:
        export = yield from session.dlfm_call(src, api.ExportGroup(
            host.dbid, session.txn_id_for(src), grp_id))
        if injector.enabled:
            injector.maybe_crash("shard.move:exported", host.db.name)
        new_epoch = int(export["epoch"] or 0) + 1
        yield from session.dlfm_call(dst, api.ImportGroup(
            host.dbid, session.txn_id_for(dst), grp_id,
            export["group_row"], export["file_rows"], new_epoch))
        if injector.enabled:
            injector.maybe_crash("shard.move:imported", host.db.name)
        changed = yield from session.execute(
            "UPDATE dlk_shardmap SET shard = ?, epoch = ? WHERE grp_id = ?",
            (dst, new_epoch, grp_id))
        if changed != 1:
            raise DataLinkError(
                f"group {grp_id} has no shard-map row to flip")
        if injector.enabled:
            injector.maybe_crash("shard.move:mapped", host.db.name)
        yield from session.commit()
    except ReproError:
        # rollback() is a no-op when commit() already aborted everything
        # (or the host db crashed under us — restart recovery owns it).
        yield from session.rollback()
        raise
    finally:
        session.close()
    shard_map._cache[grp_id] = (dst, new_epoch)
    return {"moved": True, "src": src, "dst": dst, "epoch": new_epoch,
            "files": len(export["file_rows"])}

"""One-call wiring of a SHARDED DataLinks deployment.

A :class:`ShardedSystem` runs one shared file server (plus the archive)
and N DLFM *shards* that partition the metadata by file group: every
shard mounts the same file system, shares one token secret, and owns
the groups the shard map assigns to it. The host database routes all
datalink ops through a :class:`~repro.shard.catalog.ShardMap` and runs
the fleet-friendly commit path by default (decision piggybacking +
bounded fan-out pool).

Because every shard constructs its own DLFF filter and the last mount
wins, the live filter's upcall is replaced with a fleet-wide fan-out:
"is this file linked?" must consult every shard — the owner of the
file's group is not knowable from the path alone.
"""

from __future__ import annotations

from typing import Optional

from repro.archive import ArchiveServer
from repro.dlfm import DLFM, DLFMConfig
from repro.fs import FileServer
from repro.host import HostConfig, HostDB
from repro.kernel import Simulator
from repro.shard.catalog import ShardMap


def shard_names(n: int) -> tuple[str, ...]:
    return tuple(f"shard{i + 1}" for i in range(n))


class ShardedSystem:
    def __init__(self, seed: int = 0, shards: int = 2,
                 dlfm_config: Optional[DLFMConfig] = None,
                 host_config: Optional[HostConfig] = None,
                 dbid: str = "hostdb", tracer=None, injector=None,
                 fs_name: str = "fs1",
                 archive_charge_time: bool = False):
        self.sim = Simulator(seed=seed, tracer=tracer, injector=injector)
        self.tracer = self.sim.tracer
        self.injector = self.sim.injector
        self.archive = ArchiveServer(self.sim,
                                     charge_time=archive_charge_time)
        self.fs_name = fs_name
        server = FileServer(self.sim, fs_name)
        self.servers: dict[str, FileServer] = {fs_name: server}
        self.dlfms: dict[str, DLFM] = {}
        for name in shard_names(shards):
            config = dlfm_config or DLFMConfig.tuned()
            dlfm = DLFM(self.sim, name, server, self.archive, config)
            dlfm.start()
            self.dlfms[name] = dlfm
            self.injector.register_crash(dlfm.db.name, dlfm.crash)
        # The last shard's filter won the mount; its upcall must span
        # the fleet (any shard may own the group of the path in hand).
        server.filtered.filter.set_upcall(self._fleet_upcall)

        if host_config is None:
            host_config = HostConfig(batch_datalinks=True,
                                     decision_piggyback=True,
                                     fanout_workers=8)
        self.host = HostDB(self.sim, dbid, self.dlfms, host_config)
        self.host.shard_map = ShardMap(self.host, self.dlfms)
        self.injector.register_crash(self.host.db.name, self.host.crash)

    def _fleet_upcall(self, path: str):
        """Generator: ask every shard's Upcall daemon; first hit wins."""
        for name in sorted(self.dlfms):
            info = yield from self.dlfms[name].upcalld.query(path)
            if info is not None:
                return info
        return None

    # ------------------------------------------------------------------ running

    def run(self, gen, name: str = "main", until: Optional[float] = None):
        """Run one root process to completion and return its result."""
        return self.sim.run_process(gen, name, until=until)

    def session(self):
        return self.host.session()

    # ------------------------------------------------------------------ conveniences

    def create_user_file(self, server: str, path: str, owner: str,
                         content: str = ""):
        """Create an ordinary user file on the shared file server."""
        return self.servers[server].fs.create(path, owner, content)

    def filtered_fs(self, server: str = None):
        """The DLFF-filtered file system applications must use."""
        return self.servers[server or self.fs_name].filtered

    def shard_of(self, grp_id: int) -> str:
        """The shard currently routing ``grp_id`` (cache view)."""
        return self.host.shard_map.resolve(grp_id)[0]

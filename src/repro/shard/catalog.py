"""The shard-map catalog: file group → owning shard, with fencing epochs.

The durable truth is the host database's ``dlk_shardmap`` table (one row
per file group, committed in the same host transaction as the group's
registration or move). :class:`ShardMap` keeps an in-memory routing
cache over it: datalink ops resolve their target shard here, carry the
cached epoch, and the shard rejects the op with
:class:`~repro.errors.StaleRouteError` when its own group epoch
disagrees — the session then calls :meth:`reload` and retries, so a
``move_group`` committed under a running session never misroutes an op,
it only costs it a round trip.
"""

from __future__ import annotations

from repro.errors import DataLinkError


class ShardMap:
    def __init__(self, host, shards: dict):
        #: Host database whose ``dlk_shardmap`` table is the durable map.
        self.host = host
        #: shard name → DLFM, the routing targets.
        self.shards = dict(shards)
        self.names = sorted(self.shards)
        if not self.names:
            raise DataLinkError("a shard map needs at least one shard")
        #: grp_id → (shard, epoch) routing cache.
        self._cache: dict[int, tuple[str, int]] = {}
        #: Bumped on every reload (observability: stale-route storms show
        #: up as a high reload count).
        self.reloads = 0

    # ------------------------------------------------------------------ placement

    def assign(self, grp_id: int) -> str:
        """Hash placement for a NEW group: deterministic, balanced."""
        return self.names[grp_id % len(self.names)]

    def insert(self, session, grp_id: int, shard: str):
        """Generator: add the catalog row inside ``session``'s open host
        transaction (epoch 1 = first placement) and prime the cache.

        The cache entry appears before the transaction commits; if it
        aborts, the next resolve of this group misses, reloads, and
        raises unrouted — self-healing, like every stale cache entry.
        """
        if shard not in self.shards:
            raise DataLinkError(f"unknown shard {shard!r}")
        yield from session.execute(
            "INSERT INTO dlk_shardmap (grp_id, shard, epoch) "
            "VALUES (?, ?, 1)", (grp_id, shard))
        self._cache[grp_id] = (shard, 1)

    def forget(self, grp_id: int) -> None:
        """Drop a group from the cache (its catalog row was deleted in
        the dropping transaction)."""
        self._cache.pop(grp_id, None)

    # ------------------------------------------------------------------ resolution

    def resolve(self, grp_id: int) -> tuple[str, int]:
        """Route a group: ``(shard_name, epoch)`` from the cache, with a
        reload on miss. Unrouted groups are a hard error — datalink DML
        against a dropped (or never-registered) group."""
        entry = self._cache.get(grp_id)
        if entry is None:
            self.reload()
            entry = self._cache.get(grp_id)
            if entry is None:
                raise DataLinkError(
                    f"file group {grp_id} is not in the shard map")
        return entry

    def reload(self) -> None:
        """Rebuild the cache from the durable catalog.

        Synchronous by design: restart recovery and stale-route retries
        call it without a transaction of their own. The unlocked read
        may see an uncommitted move's row — harmless, because a wrong
        route only produces another StaleRouteError and another reload
        once the move resolves.
        """
        self._cache = {
            int(grp_id): (shard, int(epoch or 0))
            for grp_id, shard, epoch in
            self.host.db.table_rows("dlk_shardmap")}
        self.reloads += 1

    def entries(self) -> dict[int, tuple[str, int]]:
        """Snapshot of the routing cache (tests and reports)."""
        return dict(self._cache)

    def any_shard(self):
        """Some DLFM of the fleet — for fleet-wide concerns that are
        shard-independent (e.g. the shared token secret)."""
        return self.shards[self.names[0]]

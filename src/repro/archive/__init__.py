"""ADSM-like archive server (the paper's backup target)."""

from repro.archive.server import ArchiveServer, ArchivedCopy

__all__ = ["ArchiveServer", "ArchivedCopy"]

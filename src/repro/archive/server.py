"""Versioned blob store standing in for IBM ADSM.

Copies are keyed by ``(server, path, recovery_id)`` — the paper's point
that a file of the same name can be linked/unlinked repeatedly with
different content is exactly why the recovery id is part of the key.
Transfers cost simulated time proportional to size, preserving the
asynchrony that coordinated backup depends on (the Copy daemon runs long
after the linking transaction committed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchiveError
from repro.kernel.sim import Simulator, Timeout


@dataclass(frozen=True)
class ArchivedCopy:
    server: str
    path: str
    recovery_id: str
    content: str
    owner: str
    group: str
    mode: int
    archived_at: float


class ArchiveServer:
    #: Simulated seconds per content byte transferred (plus fixed setup).
    TRANSFER_SETUP = 0.05
    TRANSFER_PER_BYTE = 0.0001

    def __init__(self, sim: Simulator, name: str = "adsm",
                 charge_time: bool = False):
        self.sim = sim
        self.name = name
        self.charge_time = charge_time
        self._copies: dict[tuple[str, str, str], ArchivedCopy] = {}
        self.stores = 0
        self.retrieves = 0
        self.deletes = 0

    def _transfer(self, nbytes: int):
        if self.charge_time:
            yield Timeout(self.TRANSFER_SETUP
                          + self.TRANSFER_PER_BYTE * nbytes)

    # -- operations (generators: transfers take time) ---------------------------

    def store(self, server: str, path: str, recovery_id: str, content: str,
              owner: str, group: str, mode: int):
        """Generator: archive one version; idempotent per recovery id."""
        yield from self._transfer(len(content))
        key = (server, path, recovery_id)
        self._copies[key] = ArchivedCopy(
            server=server, path=path, recovery_id=recovery_id,
            content=content, owner=owner, group=group, mode=mode,
            archived_at=self.sim.now)
        self.stores += 1

    def retrieve(self, server: str, path: str, recovery_id: str):
        """Generator: fetch one archived version."""
        key = (server, path, recovery_id)
        copy = self._copies.get(key)
        if copy is None:
            raise ArchiveError(f"no archived copy {key}")
        yield from self._transfer(len(copy.content))
        self.retrieves += 1
        return copy

    def delete_version(self, server: str, path: str, recovery_id: str) -> None:
        """Garbage collection of an obsolete backup copy."""
        key = (server, path, recovery_id)
        if key not in self._copies:
            raise ArchiveError(f"no archived copy {key}")
        del self._copies[key]
        self.deletes += 1

    # -- queries -------------------------------------------------------------------

    def has_copy(self, server: str, path: str, recovery_id: str) -> bool:
        return (server, path, recovery_id) in self._copies

    def versions(self, server: str, path: str) -> list[ArchivedCopy]:
        return sorted((c for (s, p, _), c in self._copies.items()
                       if s == server and p == path),
                      key=lambda c: c.archived_at)

    def copy_count(self) -> int:
        return len(self._copies)

"""DataLinks File Manager — the paper's transactional resource manager.

DLFM lives on a file server and makes link/unlink of external files
transactional with the host database's SQL transactions. It keeps all of
its metadata in a local :mod:`repro.minidb` database reached *only*
through SQL (the paper's "DB2 as a black box" bet), participates in
two-phase commit with the host, and runs six service daemons (Chown,
Copy, Retrieve, Delete-Group, Garbage Collector, Upcall).
"""

from repro.dlfm.config import DLFMConfig
from repro.dlfm.manager import DLFM

__all__ = ["DLFM", "DLFMConfig"]

"""The DLFM main daemon and its metadata operations.

A :class:`DLFM` owns a local :class:`~repro.minidb.Database` (its black
box persistent store), the DLFF filter on its file server, and the six
service daemons (paper Figure 5). Connections from host database agents
spawn child agents (:mod:`repro.dlfm.agent`); the metadata and 2PC logic
the agents invoke lives here so daemons and utilities can share it.

Transactional design (paper §3.3/§4):

* forward link/unlink work runs in one local-database transaction per
  host transaction; abort before prepare is a plain local rollback;
* **Prepare** inserts the transaction-table entry and issues the local
  COMMIT — from then on the local database cannot roll the work back;
* phase-2 **Commit/Abort** therefore use the *delayed-update scheme*
  (mark/restore) and must acquire new locks, so they can deadlock or
  time out; they retry until they succeed (Figure 4, experiment E2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.archive import ArchiveServer
from repro.dlff.filter import Filter
from repro.dlfm import api, schema
from repro.dlfm.config import DLFMConfig
from repro.dlfm.daemons.chown import ChownDaemon
from repro.dlfm.daemons.copyd import CopyDaemon
from repro.dlfm.daemons.delete_group import DeleteGroupDaemon
from repro.dlfm.daemons.gc import GarbageCollector
from repro.dlfm.daemons.retrieved import RetrieveDaemon
from repro.dlfm.daemons.upcall import UpcallDaemon
from repro.dlfm.daemons.version_merge import VersionMergeDaemon
from repro.errors import (RETRIABLE_FAULTS, LinkError, StaleRouteError,
                          TransactionAborted, TwoPCProtocolError,
                          UnlinkError)
from repro.fs.filesystem import FileServer
from repro.kernel.backoff import Backoff
from repro.kernel.pool import WorkerPool
from repro.kernel.sim import Simulator, Timeout
from repro.minidb import Database
from repro.sql.parser import parse as parse_sql


@dataclass
class DLFMMetrics:
    #: Envelopes received by child agents (one per host↔DLFM rendezvous).
    rpcs: int = 0
    #: Vectored envelopes and the logical ops they carried.
    batches: int = 0
    batched_ops: int = 0
    links: int = 0
    unlinks: int = 0
    link_errors: int = 0
    backouts: int = 0
    prepares: int = 0
    #: Prepares answered with the read-only vote (nothing hardened,
    #: participant released at end of phase 1, no phase-2 exposure).
    readonly_votes: int = 0
    commits: int = 0
    aborts: int = 0
    commit_retries: int = 0
    abort_retries: int = 0
    files_archived: int = 0
    files_restored: int = 0
    groups_registered: int = 0
    groups_deleted: int = 0
    gc_entries_removed: int = 0
    gc_copies_removed: int = 0
    indoubt_reported: int = 0
    stats_repins: int = 0
    #: Cold pages whose pending log chain the background replayer (not
    #: first-touch traffic) drained after an instant restart.
    pages_replayed_bg: int = 0


class DLFM:
    def __init__(self, sim: Simulator, name: str, server: FileServer,
                 archive: ArchiveServer,
                 config: Optional[DLFMConfig] = None,
                 token_secret: str = "dlff-secret"):
        self.sim = sim
        self.name = name
        self.server = server
        self.archive = archive
        self.config = config or DLFMConfig.tuned()
        self.metrics = DLFMMetrics()
        if (self.config.auto_runstats
                and not self.config.local_db.auto_runstats):
            self.config.local_db = self.config.local_db.with_changes(
                auto_runstats=True)
        self.db = Database(sim, f"dlfm-{name}", self.config.local_db)
        schema.create_schema(self.db, sim)
        if self.config.pin_statistics:
            schema.pin_statistics(self.db)

        # DLFF mount + daemons (started by start()).
        self.filter = Filter(sim, token_secret)
        self.filtered_fs = self.filter.mount(server)
        self.chown = ChownDaemon(sim, server.fs, secret=f"{name}-chown")
        self.copyd = CopyDaemon(self)
        self.retrieved = RetrieveDaemon(self)
        self.delete_groupd = DeleteGroupDaemon(self)
        self.gc = GarbageCollector(self)
        self.merged = VersionMergeDaemon(self)
        self.upcalld = UpcallDaemon(self)
        self.filter.set_upcall(self.upcalld.query)
        #: Background replayer: drains cold pages' pending log chains
        #: after an instant restart, so the replay gate runs dry even
        #: for pages no transaction ever touches. Workers pay their own
        #: I/O so recovery cost never lands on foreground commits.
        self.replayd = WorkerPool(sim, f"{name}-replayd",
                                  self._replay_page_item,
                                  workers=max(1, self.config.replay_workers))
        self._daemon_procs: list = []
        self._pool_procs: list = []
        self._replay_proc = None
        self._agents: list = []
        self.running = False

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Spawn the service daemons (the paper's Figure 5 process model).

        Worker pools start before the intake daemons so no dispatcher
        ever submits into a dead pool; their processes are tracked
        separately from the six service daemons.
        """
        if self.running:
            return
        self.running = True
        self._pool_procs = (self.copyd.start_workers()
                            + self.retrieved.start_workers()
                            + self.delete_groupd.start_workers())
        spawn = self.sim.spawn
        self._daemon_procs = [
            spawn(self.chown.run(), f"{self.name}-chownd"),
            spawn(self.copyd.run(), f"{self.name}-copyd"),
            spawn(self.retrieved.run(), f"{self.name}-retrieved"),
            spawn(self.delete_groupd.run(), f"{self.name}-delgrpd"),
            spawn(self.gc.run(), f"{self.name}-gcd"),
            spawn(self.merged.run(), f"{self.name}-merged"),
            spawn(self.upcalld.run(), f"{self.name}-upcalld"),
        ]

    def stop(self) -> None:
        for proc in self._daemon_procs:
            if not proc.finished:
                proc.kill()
        self._daemon_procs = []
        self.copyd.stop_workers()
        self.retrieved.stop_workers()
        self.delete_groupd.stop_workers()
        self.replayd.stop()
        if self._replay_proc is not None and not self._replay_proc.finished:
            self._replay_proc.kill()
        self._replay_proc = None
        self._pool_procs = []
        self.running = False

    def connect(self):
        """Host DB2 agent connect request → spawn a child agent.

        Returns the request channel the host agent talks to (the paper's
        per-connection child agent, §3.5).
        """
        from repro.dlfm.agent import ChildAgent
        if not self.running:
            raise TwoPCProtocolError(f"DLFM {self.name} is not available")
        agent = ChildAgent(self)
        self._agents.append(agent)
        self.sim.spawn(agent.serve(), f"{self.name}-agent-{len(self._agents)}")
        return agent.chan

    def crash(self) -> None:
        """The DLFM node fails: local database and all processes die."""
        self.stop()
        for agent in self._agents:
            agent.chan.close()
        self._agents = []
        self.db.crash()

    def restart(self) -> dict:
        """Restart after a crash: local DB recovery, daemons resume work.

        Prepared transactions stay indoubt until the host resolves them
        (§3.3); committed transactions with pending group deletions are
        picked up again by the Delete-Group daemon; pending archive
        entries are picked up by the Copy daemon.
        """
        summary = self.db.restart()
        if self.config.pin_statistics:
            self.metrics.stats_repins += schema.pin_statistics(self.db)
        self.start()
        self.delete_groupd.rescan_needed = True
        if self.db.replay_pending and self.config.replay_workers > 0:
            # Instant restart left cold pages with pending REDO chains:
            # drain them in the background while new traffic commits.
            self.replayd.start()
            self._replay_proc = self.sim.spawn(
                self._replay_feeder(), f"{self.name}-replayd-feed")
        return summary

    def _replay_feeder(self):
        """Generator: feed every still-pending page to the replay pool."""
        for key in sorted(self.db.replay_pending):
            if key not in self.db.replay_pending:
                continue  # foreground traffic already replayed it
            yield from self.replayd.submit(key)
        yield from self.replayd.drain()
        self.replayd.stop()

    def _replay_page_item(self, key):
        """Generator: replay one cold page's chain, paying its own I/O.

        The replay's buffer-pool misses land in ``unbilled_io``, which
        foreground statements drain; snapshot/restore the counter so the
        background worker charges the cost to itself instead.
        """
        table, page_no = key
        metrics = self.db.pool.metrics
        before = metrics.unbilled_io
        applied = self.db.replay_page(table, page_no)
        delta = metrics.unbilled_io - before
        metrics.unbilled_io = before
        if applied:
            self.metrics.pages_replayed_bg += 1
        cost = self.config.local_db.timing.io_cost(max(1, delta))
        if cost > 0:
            yield Timeout(cost)

    def read_session(self):
        """A local-DB session at ``config.read_isolation``.

        ``"default"`` returns a plain session at the engine's configured
        level — the paper's behaviour, unchanged. ``"SI"`` returns a
        snapshot-isolation session: its reads resolve against the MVCC
        version chains at a begin-timestamp snapshot and take **no read
        locks**, so DLFM's hot internal readers (in-doubt poller,
        reconcile scans, delete-group drain, link/unlink lookups) never
        queue behind — or deadlock with — phase-2 writers. Statements
        that must see and fence the *current* state keep FOR UPDATE,
        which forces the locking read path even under SI.
        """
        if self.config.read_isolation == "SI":
            return self.db.session("SI")
        return self.db.session()

    def _probe_lock(self, session) -> str:
        """``" FOR UPDATE"`` when ``session`` reads at SI, else ``""``.

        Existence/state probes that *fence* a subsequent write (link's
        group check, export's file scan) rely on lock waits under the
        locking levels; under SI a plain read would resolve against a
        snapshot and the fence would silently vanish (write-skew). The
        explicit FOR UPDATE restores the current-read + lock semantics
        for exactly those probes without touching the default levels.
        """
        return " FOR UPDATE" if session.isolation == "SI" else ""

    def retry_backoff(self, what: str) -> Backoff:
        """The retry-delay policy for phase-2 loops and daemons."""
        return Backoff(self.config.commit_retry_delay,
                       factor=self.config.commit_retry_backoff,
                       cap=self.config.commit_retry_max_delay,
                       jitter=self.config.commit_retry_jitter,
                       rng=self.sim.stream(f"retry:{self.name}:{what}"))

    def daemon_counters(self) -> dict:
        """Flat integer queue/claim/pool counters for a metrics registry."""
        counters = {
            "copyd_claimed": self.copyd.claimed,
            "copyd_reclaimed": self.copyd.reclaimed,
            "copyd_conflicts": self.copyd.conflicts,
            "retrieved_queue_depth": self.retrieved.queue_depth,
            "delgrpd_queue_depth": self.delete_groupd.queue_depth,
            "merged_passes": self.merged.passes,
            "merged_versions_merged": self.merged.versions_merged,
            "merged_live_chains": self.merged.live_chains,
        }
        for daemon in (self.copyd, self.retrieved, self.delete_groupd):
            prefix = daemon.pool.name.rsplit("-", 1)[-1]
            counters.update(daemon.pool.metrics.snapshot(prefix))
        return counters

    # ------------------------------------------------------------------ statistics guard

    def ensure_statistics(self) -> bool:
        """The paper's guard logic: detect that someone overwrote the
        hand-crafted statistics (user RUNSTATS) and re-pin + rebind."""
        if not self.config.pin_statistics:
            return False
        if schema.statistics_are_pinned(self.db):
            return False
        self.metrics.stats_repins += schema.pin_statistics(self.db)
        return True

    # ------------------------------------------------------------------ forward ops

    def _charge_rpc(self):
        cost = self.config.local_db.timing.rpc_cost()
        if cost > 0:
            yield Timeout(cost)

    def _check_route(self, group, grp_id: int, route_epoch: int) -> None:
        """Fence a routed op against this shard's view of the group.

        ``group`` is a ``(state, epoch)`` row or ``None``. The op is
        stale — the host should reload its shard map and retry — when
        the group is not here, its epoch disagrees with the route's, or
        a rebalance is mid-flight (moving states resolve to a fresh
        epoch once the move transaction finishes phase 2).
        """
        if group is None:
            raise StaleRouteError(
                f"group {grp_id} is not on shard {self.name}")
        state, epoch = group[0], group[1] or 0
        if state in (schema.GRP_MOVING_OUT, schema.GRP_MOVING_IN):
            raise StaleRouteError(
                f"group {grp_id} is rebalancing ({state}) on {self.name}")
        if epoch != route_epoch:
            raise StaleRouteError(
                f"group {grp_id} route epoch {route_epoch} != shard "
                f"epoch {epoch} on {self.name}")

    def op_link_file(self, session, req: api.LinkFile):
        """Generator: LinkFile forward processing (paper §3.2)."""
        if req.in_backout:
            # §3.2: "For link file request with in_backout set, DLFM
            # deletes the linked file entry that was inserted by [the]
            # current transaction."
            self.metrics.backouts += 1
            removed = yield from session.execute(
                "DELETE FROM dfm_file WHERE filename = ? AND link_txn = ? "
                "AND dbid = ? AND state = ?",
                (req.path, req.txn_id, req.dbid, schema.ST_LINKED))
            if removed != 1:
                raise LinkError(
                    f"in_backout link found {removed} linked entries "
                    f"for {req.path}")
            return {"removed": True}

        # Check 1: the file must exist on this server (via Chown daemon,
        # which also supplies the original ownership for later release).
        from repro.errors import FileNotFound
        try:
            info = yield from self.chown.request("stat", req.path)
        except FileNotFound:
            self.metrics.link_errors += 1
            raise LinkError(
                f"{req.path} does not exist on server {self.name}") from None
        # Check 2: the file group must exist and be active. A routed op
        # (route_epoch > 0) is fenced against the shard map: a missing,
        # moving, or epoch-mismatched group means the host's cached route
        # is stale — retryable, unlike a genuinely deleted group.
        group = yield from session.query_one(
            "SELECT state, epoch FROM dfm_group WHERE grp_id = ? AND "
            f"dbid = ?{self._probe_lock(session)}", (req.grp_id, req.dbid))
        if req.route_epoch:
            self._check_route(group, req.grp_id, req.route_epoch)
        if group is None or group[0] != schema.GRP_ACTIVE:
            raise LinkError(f"file group {req.grp_id} missing or deleted")
        # Same-transaction unlink+relink: the file is still under database
        # control, so a live stat would record the DLFM admin user as the
        # "original" owner. Inherit the true originals from the pending
        # unlinking entry instead. Repeated unlink+relink in one
        # transaction leaves SEVERAL unlinking entries for the filename
        # (each with its own unlink recovery id); they all carry the same
        # inherited originals, so take the most recent deterministically.
        pending = yield from session.execute(
            "SELECT orig_owner, orig_group, orig_mode, unlink_recovery_id "
            "FROM dfm_file WHERE filename = ? AND dbid = ? AND state = ?",
            (req.path, req.dbid, schema.ST_UNLINKING))
        if pending.rows:
            latest = max(pending.rows, key=lambda row: row[3])
            info = {"owner": latest[0], "group": latest[1],
                    "mode": latest[2]}
        # Check 3 + insert, made atomic by the unique (filename,
        # check_flag) index: a concurrent linker loses with a duplicate.
        from repro.errors import DuplicateKeyError
        try:
            yield from session.execute(
                "INSERT INTO dfm_file (filename, dbid, grp_id, recovery_id, "
                "link_txn, unlink_txn, unlink_recovery_id, unlink_time, "
                "state, check_flag, access_ctl, recovery, orig_owner, "
                "orig_group, orig_mode, archived) "
                "VALUES (?, ?, ?, ?, ?, NULL, NULL, NULL, ?, ?, ?, ?, ?, "
                "?, ?, 0)",
                (req.path, req.dbid, req.grp_id, req.recovery_id,
                 req.txn_id, schema.ST_LINKED, schema.LINKED_FLAG,
                 req.access_ctl, req.recovery, info["owner"], info["group"],
                 info["mode"]))
        except DuplicateKeyError:
            self.metrics.link_errors += 1
            raise LinkError(f"{req.path} is already linked") from None
        self.metrics.links += 1
        return {"linked": True}

    def op_unlink_file(self, session, req: api.UnlinkFile):
        """Generator: UnlinkFile forward processing (delayed update)."""
        if req.in_backout:
            # §3.2: "For unlink request with the flag set, the unlinked
            # file entry is restored back to linked state."
            self.metrics.backouts += 1
            restored = yield from session.execute(
                "UPDATE dfm_file SET state = ?, check_flag = ?, "
                "unlink_txn = NULL, unlink_recovery_id = NULL, "
                "unlink_time = NULL "
                "WHERE filename = ? AND unlink_txn = ? AND dbid = ? "
                "AND state = ?",
                (schema.ST_LINKED, schema.LINKED_FLAG, req.path, req.txn_id,
                 req.dbid, schema.ST_UNLINKING))
            if restored != 1:
                raise UnlinkError(
                    f"in_backout unlink found {restored} unlinking entries "
                    f"for {req.path}")
            return {"restored": True}

        if req.route_epoch:
            # Sharded host: fence against the shard map before touching
            # the entry, so a stale route retries instead of reporting
            # "not linked" for a file whose group moved elsewhere.
            group = yield from session.query_one(
                "SELECT state, epoch FROM dfm_group WHERE grp_id = ? AND "
                f"dbid = ?{self._probe_lock(session)}",
                (req.grp_id, req.dbid))
            self._check_route(group, req.grp_id, req.route_epoch)
        entry = yield from session.query_one(
            "SELECT state FROM dfm_file WHERE filename = ? AND "
            "check_flag = ? AND dbid = ? FOR UPDATE",
            (req.path, schema.LINKED_FLAG, req.dbid))
        if entry is None or entry[0] != schema.ST_LINKED:
            raise UnlinkError(f"{req.path} is not linked")
        # Delayed update: mark unlinking; check_flag moves to the unlink
        # recovery id so a re-link of the same file (even in this very
        # transaction) can insert a fresh linked entry (§3.2).
        yield from session.execute(
            "UPDATE dfm_file SET state = ?, unlink_txn = ?, "
            "unlink_recovery_id = ?, unlink_time = ?, check_flag = ? "
            "WHERE filename = ? AND check_flag = ? AND dbid = ?",
            (schema.ST_UNLINKING, req.txn_id, req.recovery_id, self.sim.now,
             req.recovery_id, req.path, schema.LINKED_FLAG, req.dbid))
        self.metrics.unlinks += 1
        return {"unlinked": True}

    def op_register_group(self, session, req: api.RegisterGroup):
        yield from session.execute(
            "INSERT INTO dfm_group (grp_id, dbid, table_name, column_name, "
            "state, delete_txn, delete_time, expires_at, epoch) "
            "VALUES (?, ?, ?, ?, ?, NULL, NULL, NULL, ?)",
            (req.grp_id, req.dbid, req.table_name, req.column_name,
             schema.GRP_ACTIVE, req.epoch))
        self.metrics.groups_registered += 1
        return {"registered": True}

    def op_delete_group(self, session, req: api.DeleteGroup):
        """Mark a group deleted (host DROP TABLE); daemon unlinks later."""
        if req.in_backout:
            yield from session.execute(
                "UPDATE dfm_group SET state = ?, delete_txn = NULL, "
                "delete_time = NULL, expires_at = NULL "
                "WHERE grp_id = ? AND delete_txn = ? AND dbid = ?",
                (schema.GRP_ACTIVE, req.grp_id, req.txn_id, req.dbid))
            return {"restored": True}
        if req.route_epoch:
            group = yield from session.query_one(
                "SELECT state, epoch FROM dfm_group WHERE grp_id = ? AND "
                "dbid = ?", (req.grp_id, req.dbid))
            self._check_route(group, req.grp_id, req.route_epoch)
        changed = yield from session.execute(
            "UPDATE dfm_group SET state = ?, delete_txn = ?, "
            "delete_time = ?, expires_at = ? "
            "WHERE grp_id = ? AND dbid = ? AND state = ?",
            (schema.GRP_DELETED, req.txn_id, self.sim.now,
             self.sim.now + self.config.group_lifetime, req.grp_id,
             req.dbid, schema.GRP_ACTIVE))
        if changed != 1:
            raise LinkError(f"group {req.grp_id} missing or already deleted")
        return {"deleted": True}

    # ------------------------------------------------------------------ rebalancing

    #: dfm_file column order shared by ExportGroup's snapshot and
    #: ImportGroup's verbatim re-insert.
    _FILE_COLUMNS = ("filename, dbid, grp_id, recovery_id, link_txn, "
                     "unlink_txn, unlink_recovery_id, unlink_time, state, "
                     "check_flag, access_ctl, recovery, orig_owner, "
                     "orig_group, orig_mode, archived")

    def op_export_group(self, session, req: api.ExportGroup):
        """Generator: rebalance source side — snapshot and mark moving-out.

        The FOR UPDATE on the group row plus the full file-row scan mean
        the export waits for (or deadlocks with, and retries after) any
        in-flight transaction touching the group; a *prepared* in-doubt
        transaction keeps its locks, so a move cannot start while the
        group has in-doubt work — by design, never by luck.
        """
        group = yield from session.query_one(
            "SELECT grp_id, dbid, table_name, column_name, state, "
            "delete_txn, delete_time, expires_at, epoch FROM dfm_group "
            "WHERE grp_id = ? AND dbid = ? FOR UPDATE",
            (req.grp_id, req.dbid))
        if group is None:
            raise StaleRouteError(
                f"group {req.grp_id} is not on shard {self.name}")
        if group[4] != schema.GRP_ACTIVE:
            raise LinkError(
                f"group {req.grp_id} is {group[4]}, cannot move")
        files = yield from session.execute(
            f"SELECT {self._FILE_COLUMNS} FROM dfm_file "
            f"WHERE grp_id = ? AND dbid = ?{self._probe_lock(session)}",
            (req.grp_id, req.dbid))
        # A move adopts file rows VERBATIM, so every row must be fully
        # resolved: an in-doubt link's phase-2 Commit (chown takeover,
        # archive enqueue) or Abort (row deletion) is addressed to THIS
        # shard and would miss rows that moved. In-flight transactions
        # block the scan above via their row locks; prepared ones
        # released their locks at the local commit, so probe dfm_txn for
        # every referenced transaction. Pending archive work stays too:
        # the copy daemon's completion update must find the row here.
        for row in files.rows:
            if row[8] == schema.ST_UNLINKING:
                raise LinkError(
                    f"group {req.grp_id} has an unresolved unlink of "
                    f"{row[0]}; retry after phase 2 settles")
            pending = yield from session.execute(
                "SELECT COUNT(*) FROM dfm_archive WHERE filename = ?",
                (row[0],))
            if pending.scalar():
                raise LinkError(
                    f"group {req.grp_id} has pending archive work for "
                    f"{row[0]}; retry after the copy daemon drains")
        for txn_id in sorted({row[4] for row in files.rows
                              if row[4] is not None}):
            unresolved = yield from session.query_one(
                "SELECT state FROM dfm_txn WHERE dbid = ? AND txn_id = ?",
                (req.dbid, txn_id))
            if unresolved is not None:
                raise LinkError(
                    f"group {req.grp_id} has unresolved transaction "
                    f"{txn_id} ({unresolved[0]}); retry later")
        yield from session.execute(
            "UPDATE dfm_group SET state = ?, delete_txn = ?, "
            "delete_time = ? WHERE grp_id = ? AND dbid = ?",
            (schema.GRP_MOVING_OUT, req.txn_id, self.sim.now,
             req.grp_id, req.dbid))
        return {"group_row": tuple(group),
                "file_rows": tuple(tuple(row) for row in files.rows),
                "epoch": group[8] or 0}

    def op_import_group(self, session, req: api.ImportGroup):
        """Generator: rebalance destination side — adopt the snapshot.

        File rows are re-inserted verbatim (original link/unlink txn ids
        and chown state preserved): phase-2 commit of the *move* must
        not re-run takeover/release on files whose own transactions
        finished long ago, so the adopted rows must not look freshly
        written by the move transaction.
        """
        g = req.group_row
        yield from session.execute(
            "INSERT INTO dfm_group (grp_id, dbid, table_name, column_name, "
            "state, delete_txn, delete_time, expires_at, epoch) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, NULL, ?)",
            (req.grp_id, req.dbid, g[2], g[3], schema.GRP_MOVING_IN,
             req.txn_id, self.sim.now, req.epoch))
        placeholders = ", ".join("?" * 16)
        for row in req.file_rows:
            yield from session.execute(
                f"INSERT INTO dfm_file ({self._FILE_COLUMNS}) "
                f"VALUES ({placeholders})", tuple(row))
        return {"imported": len(req.file_rows)}

    # ------------------------------------------------------------------ utility checkpoints

    def op_commit_piece(self, session, req: api.CommitPiece):
        """Generator: local commit of a utility piece (§4).

        "The transaction entry is inserted into transaction table in DLFM
        database when a local commit is issued for the first time for a
        given transaction but keep the entry marked as in-flight."
        """
        existing = yield from session.query_one(
            "SELECT state FROM dfm_txn WHERE dbid = ? AND txn_id = ?",
            (req.dbid, req.txn_id))
        if existing is None:
            yield from session.execute(
                "INSERT INTO dfm_txn (dbid, txn_id, state, prepare_time, "
                "groups_deleted) VALUES (?, ?, ?, NULL, 0)",
                (req.dbid, req.txn_id, schema.TXN_INFLIGHT))
        yield from session.commit()
        return {"piece_committed": True}

    # ------------------------------------------------------------------ 2PC participant

    def op_prepare(self, session, req: api.Prepare):
        """Generator: phase 1 — harden everything with a local COMMIT."""
        groups = yield from session.execute(
            "SELECT COUNT(*) FROM dfm_group WHERE delete_txn = ? AND "
            "dbid = ? AND state = ?",
            (req.txn_id, req.dbid, schema.GRP_DELETED))
        n_groups = groups.scalar()
        existing = yield from session.query_one(
            "SELECT state FROM dfm_txn WHERE dbid = ? AND txn_id = ?",
            (req.dbid, req.txn_id))
        if existing is None:
            yield from session.execute(
                "INSERT INTO dfm_txn (dbid, txn_id, state, prepare_time, "
                "groups_deleted) VALUES (?, ?, ?, ?, ?)",
                (req.dbid, req.txn_id, schema.TXN_PREPARED, self.sim.now,
                 n_groups))
        else:
            # Long utility transaction already has an in-flight entry.
            yield from session.execute(
                "UPDATE dfm_txn SET state = ?, prepare_time = ?, "
                "groups_deleted = ? WHERE dbid = ? AND txn_id = ?",
                (schema.TXN_PREPARED, self.sim.now, n_groups, req.dbid,
                 req.txn_id))
        yield from session.commit()  # the vote: local database hardened
        self.metrics.prepares += 1
        return {"vote": "commit"}

    def op_commit(self, req: api.Commit):
        """Generator: phase 2 commit — retry until it succeeds (Fig. 4)."""
        attempt = 1
        done_chown: set = set()
        backoff = self.retry_backoff("commit")
        while True:
            session = self.db.session()
            with self.sim.tracer.span("dlfm.phase2", verb="commit",
                                      dbid=req.dbid, txn=req.txn_id,
                                      attempt=attempt) as span:
                try:
                    result = yield from self._commit_once(session, req,
                                                          done_chown)
                    span.set(outcome="ok")
                    self.metrics.commits += 1
                    return result
                except RETRIABLE_FAULTS as error:
                    span.set(outcome="aborted",
                             cause=getattr(error, "reason", None)
                             or type(error).__name__)
                    # The failed attempt's session may still hold locks (a
                    # deadlock victim keeps every lock not yet released):
                    # roll it back before sleeping so the next attempt —
                    # and everyone else — is not blocked by a corpse.
                    yield from session.rollback()
                    self.metrics.commit_retries += 1
                    self.sim.tracer.count("retries", f"{self.name}.commit")
                    limit = self.config.commit_retry_limit
                    if limit is not None and attempt >= limit:
                        raise
            attempt += 1
            yield Timeout(backoff.next())

    def _commit_once(self, session, req: api.Commit, done_chown: set):
        txn_row = yield from session.query_one(
            "SELECT state, groups_deleted FROM dfm_txn "
            "WHERE dbid = ? AND txn_id = ? FOR UPDATE",
            (req.dbid, req.txn_id))
        if txn_row is None:
            yield from session.rollback()
            return {"outcome": "already-finished"}  # idempotent redelivery
        _, groups_deleted = txn_row

        # Unlinked files first: release to the file system; delete the
        # entry when no point-in-time recovery is needed, else keep it as
        # an unlinked version marker (§3.2). Releases run before takeovers
        # so an unlink+relink of the SAME file in one transaction ends up
        # taken over, not released.
        unlinking = yield from session.execute(
            "SELECT filename, recovery, orig_owner, orig_group, orig_mode "
            "FROM dfm_file WHERE unlink_txn = ? AND dbid = ? AND state = ?",
            (req.txn_id, req.dbid, schema.ST_UNLINKING))
        for path, recovery, owner, group, mode in unlinking:
            # Chown side effects are not transactional: remember what a
            # failed attempt already did so retries don't redo it (the
            # second release would race a concurrent re-link's stat).
            if ("release", path) not in done_chown:
                yield from self.chown.request("release", path, owner=owner,
                                              group=group, mode=mode)
                done_chown.add(("release", path))
            if recovery == "yes":
                yield from session.execute(
                    "UPDATE dfm_file SET state = ? WHERE filename = ? AND "
                    "unlink_txn = ? AND dbid = ? AND state = ?",
                    (schema.ST_UNLINKED, path, req.txn_id, req.dbid,
                     schema.ST_UNLINKING))
            else:
                yield from session.execute(
                    "DELETE FROM dfm_file WHERE filename = ? AND "
                    "unlink_txn = ? AND dbid = ? AND state = ?",
                    (path, req.txn_id, req.dbid, schema.ST_UNLINKING))

        # Newly linked files: take over ownership / strip write permission
        # (enables asynchronous archiving, §3.4) and queue archive work.
        linked = yield from session.execute(
            "SELECT filename, recovery_id, access_ctl, recovery "
            "FROM dfm_file WHERE link_txn = ? AND dbid = ? AND state = ?",
            (req.txn_id, req.dbid, schema.ST_LINKED))
        for path, recovery_id, access_ctl, recovery in linked:
            if ("takeover", path) not in done_chown:
                yield from self.chown.request(
                    "takeover", path, full=(access_ctl == "full"),
                    recovery=(recovery == "yes"))
                done_chown.add(("takeover", path))
            if recovery == "yes":
                yield from session.execute(
                    "INSERT INTO dfm_archive (filename, recovery_id, state, "
                    "enqueued_at) VALUES (?, ?, ?, ?)",
                    (path, recovery_id, "pending", self.sim.now))

        # Rebalance delayed updates: a committed move deletes the
        # moving-out group here (its rows live on the destination shard
        # now — no chown, the files never left the shared file server)
        # and flips the moving-in copy active at its new epoch.
        moved_out = yield from session.execute(
            "SELECT grp_id FROM dfm_group WHERE delete_txn = ? AND "
            "dbid = ? AND state = ?",
            (req.txn_id, req.dbid, schema.GRP_MOVING_OUT))
        for (grp_id,) in moved_out.rows:
            yield from session.execute(
                "DELETE FROM dfm_file WHERE grp_id = ? AND dbid = ?",
                (grp_id, req.dbid))
            yield from session.execute(
                "DELETE FROM dfm_group WHERE grp_id = ? AND dbid = ?",
                (grp_id, req.dbid))
        yield from session.execute(
            "UPDATE dfm_group SET state = ?, delete_txn = NULL, "
            "delete_time = NULL WHERE delete_txn = ? AND dbid = ? "
            "AND state = ?",
            (schema.GRP_ACTIVE, req.txn_id, req.dbid,
             schema.GRP_MOVING_IN))

        if groups_deleted:
            # Keep the entry so the Delete-Group daemon (or a restart
            # rescan) can find and finish the asynchronous unlinking.
            yield from session.execute(
                "UPDATE dfm_txn SET state = ? WHERE dbid = ? AND txn_id = ?",
                (schema.TXN_COMMITTED, req.dbid, req.txn_id))
        else:
            yield from session.execute(
                "DELETE FROM dfm_txn WHERE dbid = ? AND txn_id = ?",
                (req.dbid, req.txn_id))
        yield from session.commit()
        if groups_deleted:
            yield from self.delete_groupd.notify(req.dbid, req.txn_id)
        return {"outcome": "committed"}

    def op_abort_prepared(self, req: api.Abort):
        """Generator: phase 2 abort after prepare — undo committed local
        changes via the delayed-update records; retry until success."""
        attempt = 1
        backoff = self.retry_backoff("abort")
        while True:
            session = self.db.session()
            with self.sim.tracer.span("dlfm.phase2", verb="abort",
                                      dbid=req.dbid, txn=req.txn_id,
                                      attempt=attempt) as span:
                try:
                    result = yield from self._abort_once(session, req)
                    span.set(outcome="ok")
                    self.metrics.aborts += 1
                    return result
                except RETRIABLE_FAULTS as error:
                    span.set(outcome="aborted",
                             cause=getattr(error, "reason", None)
                             or type(error).__name__)
                    # Same as op_commit: drop the failed attempt's locks.
                    yield from session.rollback()
                    self.metrics.abort_retries += 1
                    self.sim.tracer.count("retries", f"{self.name}.abort")
                    limit = self.config.commit_retry_limit
                    if limit is not None and attempt >= limit:
                        raise
            attempt += 1
            yield Timeout(backoff.next())

    def _abort_once(self, session, req: api.Abort):
        txn_row = yield from session.query_one(
            "SELECT state FROM dfm_txn WHERE dbid = ? AND txn_id = ? "
            "FOR UPDATE", (req.dbid, req.txn_id))
        if txn_row is None:
            yield from session.rollback()
            return {"outcome": "already-finished"}
        if txn_row[0] == schema.TXN_INFLIGHT:
            # A long-running utility: completed pieces are NOT undone
            # ("undo of completed piece is not needed in case of the
            # utility failure", §4) — the utility is resumed instead.
            yield from session.rollback()
            return {"outcome": "in-flight-kept"}
        # Aborted move: delete the moving-in import FIRST — its rows keep
        # their original link/unlink txn ids, so they are invisible to the
        # generic per-txn statements below, and the moving-out restore to
        # active must never leave two live copies of one group.
        moving_in = yield from session.execute(
            "SELECT grp_id FROM dfm_group WHERE delete_txn = ? AND "
            "dbid = ? AND state = ?",
            (req.txn_id, req.dbid, schema.GRP_MOVING_IN))
        for (grp_id,) in moving_in.rows:
            yield from session.execute(
                "DELETE FROM dfm_file WHERE grp_id = ? AND dbid = ?",
                (grp_id, req.dbid))
            yield from session.execute(
                "DELETE FROM dfm_group WHERE grp_id = ? AND dbid = ? "
                "AND state = ?", (grp_id, req.dbid, schema.GRP_MOVING_IN))
        # Order matters: first remove entries this transaction inserted
        # (frees the unique (filename, '0') slot), then restore entries it
        # marked unlinking (which re-occupy that slot).
        yield from session.execute(
            "DELETE FROM dfm_file WHERE link_txn = ? AND dbid = ?",
            (req.txn_id, req.dbid))
        yield from session.execute(
            "UPDATE dfm_file SET state = ?, check_flag = ?, "
            "unlink_txn = NULL, unlink_recovery_id = NULL, unlink_time = NULL "
            "WHERE unlink_txn = ? AND dbid = ? AND state = ?",
            (schema.ST_LINKED, schema.LINKED_FLAG, req.txn_id, req.dbid,
             schema.ST_UNLINKING))
        yield from session.execute(
            "UPDATE dfm_group SET state = ?, delete_txn = NULL, "
            "delete_time = NULL, expires_at = NULL WHERE delete_txn = ? "
            "AND dbid = ?",
            (schema.GRP_ACTIVE, req.txn_id, req.dbid))
        yield from session.execute(
            "DELETE FROM dfm_txn WHERE dbid = ? AND txn_id = ?",
            (req.dbid, req.txn_id))
        yield from session.commit()
        return {"outcome": "aborted"}

    def op_list_indoubt(self, req: api.ListIndoubt):
        """Generator: prepared transactions awaiting the host's verdict."""
        session = self.read_session()
        rows = yield from session.execute(
            "SELECT txn_id FROM dfm_txn WHERE dbid = ? AND state = ?",
            (req.dbid, schema.TXN_PREPARED))
        yield from session.commit()
        self.metrics.indoubt_reported += len(rows)
        return sorted(r[0] for r in rows)

    # ------------------------------------------------------------------ backup / restore

    def op_ensure_archived(self, req: api.EnsureArchived):
        """Generator: backup coordination (§3.4) — every file linked up to
        the watermark must have an archive copy before the host declares
        its backup successful; pending ones are copied with priority.
        Entries claimed by the Copy daemon's workers are waited out
        first (pool drain) so the backup never races an in-flight
        archive transfer, then whatever is left — pending or stale
        inflight — is copied synchronously."""
        yield from self.copyd.pool.drain()
        session = self.db.session()
        pending = yield from session.execute(
            "SELECT filename, recovery_id FROM dfm_archive")
        yield from session.commit()
        if pending.rows:
            yield from self.copyd.archive_priority(list(pending.rows))
        session = self.db.session()
        yield from session.execute(
            "INSERT INTO dfm_backup (backup_id, dbid, recovery_id, "
            "backup_time) VALUES (?, ?, ?, ?)",
            (req.backup_id, req.dbid, req.recovery_id, self.sim.now))
        yield from session.commit()
        return {"archived": len(pending.rows)}

    def op_restore_to_backup(self, req: api.RestoreToBackup):
        """Generator: host database was restored to ``recovery_id``; bring
        DLFM metadata and the file system back in sync (§3.4).

        * entries linked before the watermark but unlinked after → back to
          linked (retrieving the file from the archive if it is gone);
        * entries linked after the watermark → removed / released.
        """
        watermark = req.recovery_id
        restored = released = 0
        session = self.db.session()

        # Pass 1: entries linked AFTER the backup are released/removed —
        # first, so their check_flag='0' slots are free before pass 2
        # resurrects older versions of the same filenames.
        too_new = yield from session.execute(
            "SELECT filename, recovery_id, orig_owner, orig_group, "
            "orig_mode FROM dfm_file WHERE state = ? AND dbid = ?",
            (schema.ST_LINKED, req.dbid))
        for path, recovery_id, owner, group, mode in too_new.rows:
            if recovery_id > watermark:
                yield from self.chown.request("release", path, owner=owner,
                                              group=group, mode=mode)
                yield from session.execute(
                    "DELETE FROM dfm_file WHERE filename = ? AND "
                    "recovery_id = ? AND dbid = ?",
                    (path, recovery_id, req.dbid))
                released += 1

        # Pass 2: entries linked before the backup and unlinked after it
        # come back to linked state (file retrieved from the archive
        # server if it is gone).
        resurrect = yield from session.execute(
            "SELECT filename, recovery_id, access_ctl FROM dfm_file "
            "WHERE state = ? AND dbid = ?", (schema.ST_UNLINKED, req.dbid))
        for path, recovery_id, access_ctl in resurrect.rows:
            entry = yield from session.query_one(
                "SELECT unlink_recovery_id FROM dfm_file WHERE filename = ? "
                "AND recovery_id = ? AND state = ?",
                (path, recovery_id, schema.ST_UNLINKED))
            unlink_rid = entry[0]
            if recovery_id <= watermark < unlink_rid:
                if not self.server.fs.exists(path):
                    yield from self.retrieved.restore(path, recovery_id)
                yield from self.chown.request(
                    "takeover", path, full=(access_ctl == "full"))
                yield from session.execute(
                    "UPDATE dfm_file SET state = ?, check_flag = ?, "
                    "unlink_txn = NULL, unlink_recovery_id = NULL, "
                    "unlink_time = NULL WHERE filename = ? AND "
                    "recovery_id = ?",
                    (schema.ST_LINKED, schema.LINKED_FLAG, path, recovery_id))
                restored += 1
        yield from session.commit()
        self.metrics.files_restored += restored
        return {"restored": restored, "released": released}

    def op_reconcile(self, req: api.ReconcileFiles):
        """Generator: the Reconcile utility's DLFM side (§3.4).

        The host ships its authoritative datalink references; they land in
        a temp table (reducing message count, as the paper describes) and
        set difference (EXCEPT) against dfm_file drives the fix-up.
        """
        session = self.read_session()
        yield from session.execute("CREATE TABLE temp_reconcile "
                                   "(filename TEXT, recovery_id TEXT, "
                                   "grp_id INT, access_ctl TEXT, "
                                   "recovery TEXT)")
        try:
            count = 0
            for path, recovery_id, grp_id, access_ctl, recovery in req.entries:
                yield from session.execute(
                    "INSERT INTO temp_reconcile (filename, recovery_id, "
                    "grp_id, access_ctl, recovery) VALUES (?, ?, ?, ?, ?)",
                    (path, recovery_id, grp_id, access_ctl, recovery))
                count += 1
                if count % self.config.batch_commit_n == 0:
                    yield from session.commit()

            # Missing on DLFM: host references it, no linked entry here
            # *for this host database* — another dbid's linked entries
            # must not mask a missing one of ours.
            missing = yield from session.execute(
                "SELECT filename, recovery_id FROM temp_reconcile "
                "EXCEPT "
                "SELECT filename, recovery_id FROM dfm_file WHERE state = ? "
                "AND dbid = ?",
                (schema.ST_LINKED, req.dbid))
            relinked = 0
            conflicts = []
            specs = {(p, r): (g, a, rec)
                     for p, r, g, a, rec in req.entries}
            for path, recovery_id in missing.rows:
                grp_id, access_ctl, recovery = specs[(path, recovery_id)]
                if not self.server.fs.exists(path):
                    continue  # host side must drop the reference instead
                holder = yield from session.query_one(
                    "SELECT dbid FROM dfm_file WHERE filename = ? AND "
                    "check_flag = ?", (path, schema.LINKED_FLAG))
                if holder is not None and holder[0] != req.dbid:
                    # The file is linked by another host database; the
                    # unique (filename, check_flag) slot is taken, so we
                    # cannot relink it — report the conflict instead.
                    conflicts.append(path)
                    continue
                info = yield from self.chown.request("stat", path)
                yield from session.execute(
                    "INSERT INTO dfm_file (filename, dbid, grp_id, "
                    "recovery_id, link_txn, unlink_txn, unlink_recovery_id, "
                    "unlink_time, state, check_flag, access_ctl, recovery, "
                    "orig_owner, orig_group, orig_mode, archived) "
                    "VALUES (?, ?, ?, ?, 0, NULL, NULL, NULL, ?, ?, ?, ?, "
                    "?, ?, ?, 0)",
                    (path, req.dbid, grp_id, recovery_id, schema.ST_LINKED,
                     schema.LINKED_FLAG, access_ctl, recovery,
                     info["owner"], info["group"], info["mode"]))
                yield from self.chown.request(
                    "takeover", path, full=(access_ctl == "full"))
                relinked += 1

            # Orphaned on DLFM: linked here, not referenced by the host.
            orphans = yield from session.execute(
                "SELECT filename, recovery_id FROM dfm_file WHERE state = ? "
                "AND dbid = ? "
                "EXCEPT SELECT filename, recovery_id FROM temp_reconcile",
                (schema.ST_LINKED, req.dbid))
            removed = 0
            for path, recovery_id in orphans.rows:
                entry = yield from session.query_one(
                    "SELECT orig_owner, orig_group, orig_mode FROM dfm_file "
                    "WHERE filename = ? AND recovery_id = ? AND state = ?",
                    (path, recovery_id, schema.ST_LINKED))
                if self.server.fs.exists(path):
                    yield from self.chown.request(
                        "release", path, owner=entry[0], group=entry[1],
                        mode=entry[2])
                yield from session.execute(
                    "DELETE FROM dfm_file WHERE filename = ? AND "
                    "recovery_id = ? AND state = ?",
                    (path, recovery_id, schema.ST_LINKED))
                removed += 1
            yield from session.commit()

            # Host-side dangling references: URL points at a file that
            # exists neither on disk nor in dfm_file.
            dangling = [p for p, r in missing.rows
                        if not self.server.fs.exists(p)]
            return {"relinked": relinked, "removed": removed,
                    "dangling": dangling, "conflicts": conflicts}
        finally:
            self.db.ddl(parse_sql("DROP TABLE temp_reconcile"))

    # ------------------------------------------------------------------ inspection

    def file_entries(self) -> list[tuple]:
        """Unlocked debug dump of dfm_file (tests and examples only)."""
        return self.db.table_rows("dfm_file")

    def linked_count(self) -> int:
        return sum(1 for row in self.db.table_rows("dfm_file")
                   if row[8] == schema.ST_LINKED)

"""DLFM child agents (paper §3.5).

The main daemon spawns one child agent per host-DB connection; all
requests from that connection are served by it, one at a time — while it
is busy, further sends from the host block (rendezvous channel), which is
the mechanism behind the paper's synchronous-commit lesson (E6).

A child agent owns one local-database session. Forward operations of a
host transaction accumulate in one local transaction; Prepare performs
the hardening local COMMIT; phase-2 Commit/Abort run through the
manager's retry loops on fresh sessions.
"""

from __future__ import annotations

from typing import Optional

from repro.dlfm import api
from repro.errors import ReproError, TransactionAborted, TwoPCProtocolError
from repro.kernel.channel import Channel
from repro.kernel.rpc import serve_loop


class ChildAgent:
    def __init__(self, dlfm):
        self.dlfm = dlfm
        self.chan = Channel(dlfm.sim, capacity=0, name="dlfm-agent")
        self.session = None
        self.current: Optional[tuple[str, int]] = None
        self.prepared = False
        self.failed = False
        #: True once any op of the current transaction changed local
        #: state. A transaction that stays False (its only ops failed and
        #: were rolled back to their statement savepoints) has nothing to
        #: harden: Prepare answers with the read-only vote instead.
        self.wrote = False
        self.requests = 0

    def serve(self):
        yield from serve_loop(self.chan, self.dispatch)
        # Connection gone: presumed abort. A local transaction that never
        # reached Prepare dies with its connection — otherwise its locks
        # would outlive the host session that abandoned it. A PREPARED
        # transaction stays indoubt, as §3.3 requires.
        if self.session is not None and not self.prepared:
            try:
                yield from self.session.rollback()
            except ReproError:
                pass  # crashed local db: restart recovery discards it
        self.session = None
        self.current = None

    # ------------------------------------------------------------------ dispatch

    def dispatch(self, req):
        with self.dlfm.sim.tracer.span(f"dlfm.{type(req).__name__}",
                                       dbid=getattr(req, "dbid", None),
                                       txn=getattr(req, "txn_id", None)):
            return (yield from self._dispatch(req))

    def _dispatch(self, req):
        self.requests += 1
        self.dlfm.metrics.rpcs += 1
        yield from self.dlfm._charge_rpc()

        if isinstance(req, api.BeginTxn):
            return self._begin(req)
        if isinstance(req, api.Batch):
            return (yield from self._batch(req))
        if isinstance(req, (api.LinkFile, api.UnlinkFile, api.RegisterGroup,
                            api.DeleteGroup, api.ExportGroup,
                            api.ImportGroup)):
            return (yield from self._forward(req))
        if isinstance(req, api.CommitPiece):
            self._check_txn(req)
            # A committed piece is already durable: the transaction can
            # never vote read-only, whatever happens afterwards.
            self.wrote = True
            return (yield from self.dlfm.op_commit_piece(self.session, req))
        if isinstance(req, api.Prepare):
            return (yield from self._prepare(req))
        if isinstance(req, api.Commit):
            return (yield from self._commit(req))
        if isinstance(req, api.Abort):
            return (yield from self._abort(req))
        if isinstance(req, api.ListIndoubt):
            return (yield from self.dlfm.op_list_indoubt(req))
        if isinstance(req, api.EnsureArchived):
            return (yield from self.dlfm.op_ensure_archived(req))
        if isinstance(req, api.RestoreToBackup):
            return (yield from self.dlfm.op_restore_to_backup(req))
        if isinstance(req, api.ReconcileFiles):
            return (yield from self.dlfm.op_reconcile(req))
        raise TwoPCProtocolError(f"unknown DLFM request {req!r}")

    # ------------------------------------------------------------------ handlers

    def _begin(self, req: api.BeginTxn):
        if self.current is not None and not self.failed:
            raise TwoPCProtocolError(
                f"BeginTxn {req.txn_id} while {self.current} is active")
        # Forward sessions honour ``read_isolation``: under SI the
        # transaction's lookups are lock-free snapshot reads (writes
        # still take X locks and lose to the first writer); probes that
        # fence a write carry an explicit FOR UPDATE (see manager).
        self.session = self.dlfm.read_session()
        self.current = (req.dbid, req.txn_id)
        self.prepared = False
        self.failed = False
        self.wrote = False
        return {"started": True}

    def _check_txn(self, req) -> None:
        if self.current != (req.dbid, req.txn_id):
            raise TwoPCProtocolError(
                f"request for txn {(req.dbid, req.txn_id)} but agent is on "
                f"{self.current}")

    def _forward(self, req):
        self._check_txn(req)
        if self.failed:
            raise TransactionAborted(
                "local transaction already rolled back; the host must "
                "abort the whole transaction", reason="failed")
        try:
            if isinstance(req, api.LinkFile):
                result = yield from self.dlfm.op_link_file(self.session, req)
            elif isinstance(req, api.UnlinkFile):
                result = yield from self.dlfm.op_unlink_file(self.session,
                                                             req)
            elif isinstance(req, api.RegisterGroup):
                result = yield from self.dlfm.op_register_group(self.session,
                                                                req)
            elif isinstance(req, api.ExportGroup):
                result = yield from self.dlfm.op_export_group(self.session,
                                                              req)
            elif isinstance(req, api.ImportGroup):
                result = yield from self.dlfm.op_import_group(self.session,
                                                              req)
            else:
                result = yield from self.dlfm.op_delete_group(self.session,
                                                              req)
            # Only a SUCCESSFUL op dirties the transaction: a failed one
            # was rolled back to its statement savepoint and left no
            # local state behind.
            self.wrote = True
            return result
        except TransactionAborted:
            # A severe local error (deadlock/timeout/log-full) already
            # rolled the local transaction back; the host database will
            # roll back the full transaction (§3.2).
            self.failed = True
            raise

    def _batch(self, req: api.Batch):
        """One rendezvous, many ops: the RPC-batching fast path.

        Implicit BeginTxn on first contact, the ops in order, optionally
        phase-1 Prepare piggybacked after the last one. Ops are
        all-or-nothing within the batch: a statement-level failure at op k
        compensates ops 0..k-1 (reverse order, ``in_backout``) and
        re-raises, leaving the local transaction as if the batch never
        arrived — the host can still do statement-level backout or retry.
        """
        if self.current is None:
            self._begin(api.BeginTxn(req.dbid, req.txn_id))
        self.dlfm.metrics.batches += 1
        self.dlfm.metrics.batched_ops += len(req.ops)
        results = []
        applied = []
        try:
            for op in req.ops:
                results.append((yield from self._forward(op)))
                applied.append(op)
        except TransactionAborted:
            raise  # local txn already rolled back; nothing to compensate
        except Exception:
            for op in reversed(applied):
                yield from self._compensate(op)
            raise
        reply = {"results": results}
        if req.prepare:
            reply["prepare"] = yield from self._prepare(
                api.Prepare(req.dbid, req.txn_id))
        return reply

    def _compensate(self, op):
        """Undo one applied batch op inside the still-open local txn."""
        from dataclasses import replace
        if isinstance(op, (api.LinkFile, api.UnlinkFile, api.DeleteGroup)):
            yield from self._forward(replace(op, in_backout=True))
        elif isinstance(op, api.RegisterGroup):
            # RegisterGroup has no in_backout form (it is never issued
            # from statement scope in the paper); delete the row we made.
            yield from self.session.execute(
                "DELETE FROM dfm_group WHERE grp_id = ? AND dbid = ?",
                (op.grp_id, op.dbid))

    def _prepare(self, req: api.Prepare):
        self._check_txn(req)
        if self.failed:
            raise TransactionAborted("cannot prepare a failed transaction",
                                     reason="failed")
        if not self.wrote:
            # Read-only participant optimization: the local transaction
            # changed nothing, so there is nothing to harden and no
            # in-doubt exposure — release the local session now and let
            # the coordinator skip this server in phase 2 (no dfm_txn
            # entry, no dlk_indoubt decision row, no Commit RPC).
            if self.session is not None:
                yield from self.session.rollback()
            self.dlfm.metrics.readonly_votes += 1
            self.dlfm.sim.tracer.count("readonly_votes", self.dlfm.name)
            self._finish(req)
            return {"vote": "read-only"}
        result = yield from self.dlfm.op_prepare(self.session, req)
        self.prepared = True
        return result

    def _commit(self, req: api.Commit):
        if self.current == (req.dbid, req.txn_id) and not self.prepared:
            raise TwoPCProtocolError(
                f"Commit for txn {req.txn_id} before Prepare")
        result = yield from self.dlfm.op_commit(req)
        self._finish(req)
        return result

    def _abort(self, req: api.Abort):
        if self.current == (req.dbid, req.txn_id) and not self.prepared:
            # Abort before prepare: plain local rollback (§3.3).
            if self.session is not None and not self.failed:
                yield from self.session.rollback()
            self.dlfm.metrics.aborts += 1
            self._finish(req)
            return {"outcome": "rolled-back"}
        # After prepare (or an unknown transaction resolved indoubt):
        # phase-2 abort via the delayed-update records; idempotent.
        result = yield from self.dlfm.op_abort_prepared(req)
        self._finish(req)
        return result

    def _finish(self, req) -> None:
        if self.current == (req.dbid, req.txn_id):
            self.current = None
            self.session = None
            self.prepared = False
            self.failed = False
            self.wrote = False

"""DLFM configuration, including the paper's tuned/untuned presets."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.minidb.config import DBConfig, TimingModel


@dataclass
class DLFMConfig:
    """Knobs for one DLFM instance.

    ``tuned()`` is the configuration the paper converged on after its
    lessons learned; ``untuned()`` is the starting point that exhibited
    the deadlock/timeout/escalation pathologies. Experiments flip
    individual knobs between the two.
    """

    #: Configuration of the local (black box) database.
    local_db: DBConfig = field(default_factory=DBConfig)
    #: Records per local commit in long-running work (delete-group, load,
    #: reconcile). The paper: "we issue commits to local DB2 periodically
    #: after processing every N records".
    batch_commit_n: int = 50
    #: Period of the Copy daemon's archive-table sweep (seconds).
    copy_period: float = 5.0
    #: Copy-daemon worker processes: entries claimed by one sweep are
    #: archived (transfer + local commit) by up to this many workers in
    #: parallel. 1 reproduces the historical strictly-serial daemon.
    copy_workers: int = 1
    #: Capacity of the Copy daemon's claimed-work queue (0 = rendezvous
    #: handoff: the sweeper blocks until a worker is free).
    copy_queue_capacity: int = 0
    #: Retrieve-daemon worker processes serving concurrent restores.
    retrieve_workers: int = 1
    #: Capacity of the Retrieve daemon's request channel (restore
    #: callers beyond workers + this many queued requests block).
    retrieve_queue_capacity: int = 16
    #: Delete-Group daemon workers draining group deletes; >1 overlaps
    #: the batched deletes of independent transactions with the scan.
    delgrp_workers: int = 1
    #: Capacity of the Delete-Group daemon's notification channel.
    delgrp_queue_capacity: int = 64
    #: Background-replayer workers draining cold pages' pending log
    #: chains after an instant restart (0 disables the drain: pages are
    #: then replayed only on demand, at first touch).
    replay_workers: int = 2
    #: Period of the Garbage Collector daemon (seconds).
    gc_period: float = 600.0
    #: Period of the Version-Merge daemon folding committed MVCC version
    #: tails back into base records (seconds).
    merge_period: float = 5.0
    #: Isolation level for DLFM's hot internal reads and forward-session
    #: lookups: ``"default"`` keeps the local database's own level (the
    #: paper's behaviour, byte for byte); ``"SI"`` runs them as snapshot
    #: reads that take no read locks, so the in-doubt poller, reconcile
    #: scans, delete-group drain and link/unlink lookups never queue
    #: behind — or deadlock with — phase-2 writers.
    read_isolation: str = "default"
    #: Lifetime of a deleted file group before GC removes its metadata.
    group_lifetime: float = 3600.0
    #: Keep unlinked-file backup copies for the last N host backups.
    keep_backups: int = 2
    #: Phase-2 commit/abort retry ceiling (None = retry forever, as the
    #: paper does; experiments may bound it).
    commit_retry_limit: Optional[int] = None
    #: Base delay between phase-2 retries after a deadlock/timeout. The
    #: actual sleep grows by ``commit_retry_backoff`` per attempt up to
    #: ``commit_retry_max_delay``, jittered by ``commit_retry_jitter``
    #: (relative half-width, drawn from a seeded stream) so independent
    #: resources don't retry in lockstep convoys.
    commit_retry_delay: float = 0.5
    commit_retry_backoff: float = 2.0
    commit_retry_max_delay: float = 8.0
    commit_retry_jitter: float = 0.1
    #: Hand-craft File/Archive-table statistics at startup and guard them
    #: against user RUNSTATS (lesson §4 / E4).
    pin_statistics: bool = True
    #: Auto-RUNSTATS on the local database: ``dfm_file``/``dfm_archive``
    #: growth trips the mutation-counter threshold and refreshes
    #: statistics inline, re-binding cached plans — the index-vs-scan
    #: flip happens WITHOUT the hand-crafted ``set_stats`` pinning.
    #: Orthogonal to ``pin_statistics``: pinned (manual) tables are
    #: never auto-refreshed, so enabling both keeps the paper's guard
    #: authoritative and auto-stats only covers what pinning missed.
    auto_runstats: bool = False
    #: Access-token lifetime issued by the host for full-control reads.
    token_expiry: float = 600.0

    def with_changes(self, **kwargs) -> "DLFMConfig":
        return replace(self, **kwargs)

    @classmethod
    def tuned(cls, timing: Optional[TimingModel] = None) -> "DLFMConfig":
        """The paper's final configuration (§3.2.1, §4, §5)."""
        return cls(
            local_db=DBConfig(
                isolation="CS",           # repeatable read "not really needed"
                next_key_locking=False,   # disabled to kill index deadlocks
                lock_timeout=60.0,        # the paper's global-deadlock breaker
                deadlock_check_interval=1.0,
                locklist_size=200_000,    # "lock list size set sufficiently large"
                maxlocks_fraction=0.6,
                timing=timing or TimingModel.zero()),
            pin_statistics=True)

    @classmethod
    def untuned(cls, timing: Optional[TimingModel] = None) -> "DLFMConfig":
        """A naive deployment: DB2 defaults, no statistics surgery."""
        return cls(
            local_db=DBConfig(
                isolation="RR",
                next_key_locking=True,
                lock_timeout=60.0,
                deadlock_check_interval=1.0,
                locklist_size=4_000,
                maxlocks_fraction=0.1,
                timing=timing or TimingModel.zero()),
            pin_statistics=False)

"""DLFM metadata schema in the local database (paper §3.1).

Five SQL tables:

* ``dfm_file`` — one entry per (linked or unlinked) file version. The
  **check-flag trick** (§3.2): a unique index on ``(filename,
  check_flag)`` where ``check_flag = '0'`` while linked and
  ``check_flag = recovery_id`` once unlinked permits at most ONE linked
  entry per file while allowing many unlinked ones, closing the
  check-then-insert race between child agents.
* ``dfm_group`` — file groups (one per datalink column of a host table),
  needed to unlink everything when a host SQL table is dropped.
* ``dfm_txn`` — transaction table for 2PC: entries appear at *prepare*
  (or at the first batched local commit of a long utility, marked
  ``in-flight``).
* ``dfm_archive`` — pending copy work for the Copy daemon; kept separate
  from ``dfm_file`` exactly as the paper says, "to avoid contention in
  the main metadata table" and to restart copying cheaply.
* ``dfm_backup`` — host backup cycles, for retention-driven GC.

The multiple secondary indexes on ``dfm_file`` are faithful to the paper
— they are what made next-key locking deadlock-prone (E3).
"""

from __future__ import annotations

#: check_flag value of a *linked* entry (the paper sets it "to zero").
LINKED_FLAG = "0"

#: dfm_file.state values.
ST_LINKED = "linked"          # forward-processed link, or committed link
ST_UNLINKING = "unlinking"    # delayed-update mark: unlink awaiting phase 2
ST_UNLINKED = "unlinked"      # committed unlink, kept for point-in-time restore

#: dfm_group.state values.
GRP_ACTIVE = "active"
GRP_DELETED = "deleted"
#: Rebalance (repro.shard) delayed-update marks: the move transaction
#: holds the group in these states between prepare and phase 2. Commit
#: deletes a moving-out group (rows now live on the destination shard)
#: and activates a moving-in one; abort restores/deletes respectively.
GRP_MOVING_OUT = "moving-out"
GRP_MOVING_IN = "moving-in"

#: dfm_txn.state values.
TXN_PREPARED = "prepared"
TXN_COMMITTED = "committed"   # retained only while delete-group work remains
TXN_INFLIGHT = "in-flight"    # long utility with batched local commits

DDL = [
    """CREATE TABLE dfm_file (
        filename TEXT, dbid TEXT, grp_id INT, recovery_id TEXT,
        link_txn INT, unlink_txn INT, unlink_recovery_id TEXT,
        unlink_time FLOAT, state TEXT, check_flag TEXT,
        access_ctl TEXT, recovery TEXT,
        orig_owner TEXT, orig_group TEXT, orig_mode INT,
        archived INT)""",
    "CREATE UNIQUE INDEX dfm_file_name_flag ON dfm_file (filename, check_flag)",
    "CREATE INDEX dfm_file_link_txn ON dfm_file (dbid, link_txn)",
    "CREATE INDEX dfm_file_unlink_txn ON dfm_file (dbid, unlink_txn)",
    "CREATE INDEX dfm_file_grp ON dfm_file (grp_id, state)",
    "CREATE INDEX dfm_file_recovery ON dfm_file (recovery_id)",
    """CREATE TABLE dfm_group (
        grp_id INT, dbid TEXT, table_name TEXT, column_name TEXT,
        state TEXT, delete_txn INT, delete_time FLOAT, expires_at FLOAT,
        epoch INT)""",
    "CREATE UNIQUE INDEX dfm_group_id ON dfm_group (dbid, grp_id)",
    "CREATE INDEX dfm_group_state ON dfm_group (state)",
    "CREATE INDEX dfm_group_txn ON dfm_group (dbid, delete_txn)",
    """CREATE TABLE dfm_txn (
        dbid TEXT, txn_id INT, state TEXT, prepare_time FLOAT,
        groups_deleted INT)""",
    "CREATE UNIQUE INDEX dfm_txn_id ON dfm_txn (dbid, txn_id)",
    "CREATE INDEX dfm_txn_state ON dfm_txn (state)",
    """CREATE TABLE dfm_archive (
        filename TEXT, recovery_id TEXT, state TEXT, enqueued_at FLOAT)""",
    "CREATE UNIQUE INDEX dfm_archive_key ON dfm_archive (filename, recovery_id)",
    "CREATE INDEX dfm_archive_state ON dfm_archive (state)",
    """CREATE TABLE dfm_backup (
        backup_id INT, dbid TEXT, recovery_id TEXT, backup_time FLOAT)""",
    "CREATE UNIQUE INDEX dfm_backup_id ON dfm_backup (backup_id, dbid)",
]

#: Hand-crafted statistics (the paper's utility): large cardinalities and
#: near-unique key columns force index access paths for every probe,
#: regardless of what RUNSTATS would say about a small/empty table.
PINNED_STATS = {
    "dfm_file": dict(card=1_000_000, npages=40_000, colcard={
        "filename": 1_000_000, "check_flag": 2, "link_txn": 200_000,
        "unlink_txn": 200_000, "grp_id": 1_000, "state": 3, "dbid": 10,
        "recovery_id": 1_000_000}),
    "dfm_group": dict(card=10_000, npages=400, colcard={
        "grp_id": 10_000, "state": 2, "delete_txn": 5_000}),
    "dfm_txn": dict(card=100_000, npages=4_000, colcard={
        "dbid": 10, "txn_id": 100_000, "state": 3}),
    "dfm_archive": dict(card=100_000, npages=4_000, colcard={
        "filename": 100_000, "recovery_id": 100_000, "state": 2}),
    "dfm_backup": dict(card=1_000, npages=40, colcard={
        "backup_id": 1_000, "dbid": 10}),
}


def create_schema(db, sim) -> None:
    """Run the DDL against a fresh local database."""
    def go():
        session = db.session()
        for statement in DDL:
            yield from session.execute(statement)
        yield from session.commit()
    sim.run_process(go(), "dlfm-ddl")


def pin_statistics(db) -> int:
    """Apply the hand-crafted statistics; returns how many were (re)set.

    Also the guard re-invoked when DLFM detects that a user RUNSTATS
    overwrote them (lesson §4): statistics version bumps invalidate bound
    plans, so the next execution re-optimizes with the pinned numbers.
    """
    applied = 0
    for table, spec in PINNED_STATS.items():
        stats = db.catalog.stats_for(table)
        if not stats.manual:
            db.set_table_stats(table, **spec)
            applied += 1
    return applied


def statistics_are_pinned(db) -> bool:
    return all(db.catalog.stats_for(t).manual for t in PINNED_STATS)

"""DLFM API request types (paper §2: "DLFM provides a set of APIs which
the datalink engine uses to make requests for linking a file, unlinking a
file, carrying out two-phase commit protocol, etc.").

Every request that belongs to a host transaction carries ``(dbid,
txn_id)`` — the host-generated monotonically increasing transaction id
the paper stresses is "absolutely essential", because DLFM has no logging
of its own and relates all metadata changes to transactions through
these ids stored in its SQL tables.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BeginTxn:
    dbid: str
    txn_id: int


@dataclass(frozen=True)
class LinkFile:
    dbid: str
    txn_id: int
    path: str
    grp_id: int
    recovery_id: str
    access_ctl: str = "full"      # "full" | "partial"
    recovery: str = "yes"         # archive for coordinated recovery?
    #: Set for compensation during host statement/savepoint rollback: a
    #: LinkFile with in_backout undoes a previous UnlinkFile (§3.2).
    in_backout: bool = False
    #: Shard-route fencing (repro.shard): >0 means the host resolved this
    #: op through its shard-map cache at this epoch; the shard rejects
    #: the op with StaleRouteError when its own group epoch disagrees.
    route_epoch: int = 0


@dataclass(frozen=True)
class UnlinkFile:
    dbid: str
    txn_id: int
    path: str
    recovery_id: str
    in_backout: bool = False
    grp_id: int = 0               # set by sharded hosts for route fencing
    route_epoch: int = 0


@dataclass(frozen=True)
class RegisterGroup:
    """New file group: one datalink column of one host SQL table."""
    dbid: str
    txn_id: int
    grp_id: int
    table_name: str
    column_name: str
    #: Initial shard-map epoch (sharded fleets register at epoch 1;
    #: unsharded groups stay at 0 = unfenced).
    epoch: int = 0


@dataclass(frozen=True)
class DeleteGroup:
    """Host DROP TABLE: mark the group deleted; files unlink asynchronously."""
    dbid: str
    txn_id: int
    grp_id: int
    in_backout: bool = False
    route_epoch: int = 0


@dataclass(frozen=True)
class Batch:
    """Vectored request: an ordered list of forward operations shipped in
    ONE host↔DLFM rendezvous (the RPC-batching fast path).

    ``ops`` may hold :class:`LinkFile`, :class:`UnlinkFile`,
    :class:`RegisterGroup` and :class:`DeleteGroup` requests, applied in
    order inside the agent's current local transaction. A Batch opens the
    sub-transaction implicitly (no separate BeginTxn round trip) and, with
    ``prepare`` set, runs phase-1 Prepare after the last op — the classic
    2PC piggyback that lets an N-link transaction finish in two messages
    (final Batch + phase-2 Commit) instead of N+3.

    Failure semantics: ops are all-or-nothing *within the batch*. If op k
    raises a statement-level error the agent compensates ops 0..k-1 with
    ``in_backout`` requests (§3.2) before re-raising, so the local
    transaction is exactly as it was before the batch arrived. A severe
    error (deadlock/timeout/log-full) rolls back the whole local
    transaction, as ever.
    """

    dbid: str
    txn_id: int
    ops: tuple  # ordered tuple of forward requests
    prepare: bool = False


@dataclass(frozen=True)
class CommitPiece:
    """Long-running utility (load/reconcile) checkpoint: commit the work
    done so far LOCALLY while the host transaction stays open (§4).

    The first CommitPiece of a transaction inserts its transaction-table
    entry marked ``in-flight``; completed pieces are never undone — a
    failed utility is *resumed*, not rolled back.
    """
    dbid: str
    txn_id: int


@dataclass(frozen=True)
class Prepare:
    dbid: str
    txn_id: int


@dataclass(frozen=True)
class Commit:
    dbid: str
    txn_id: int


@dataclass(frozen=True)
class Abort:
    dbid: str
    txn_id: int


@dataclass(frozen=True)
class ListIndoubt:
    """Host restart / indoubt-resolver poll: which txns are prepared here?"""
    dbid: str


@dataclass(frozen=True)
class ExportGroup:
    """Rebalance step 1 (source shard): snapshot a group's metadata.

    Locks the ``dfm_group`` row, marks it *moving-out* under the move
    transaction (delayed-update: phase-2 commit deletes the rows with no
    file-system side effects, abort restores ``active``), and returns
    the group row plus every ``dfm_file`` row verbatim.
    """
    dbid: str
    txn_id: int
    grp_id: int


@dataclass(frozen=True)
class ImportGroup:
    """Rebalance step 2 (destination shard): adopt exported metadata.

    Inserts the group row in state *moving-in* at the bumped epoch plus
    the file rows verbatim (original link/unlink txn markers preserved —
    phase-2 commit must not re-run chown takeover on adopted files).
    Commit flips the group ``active``; abort deletes everything imported.
    """
    dbid: str
    txn_id: int
    grp_id: int
    group_row: tuple   # exported dfm_group row
    file_rows: tuple   # exported dfm_file rows, verbatim
    epoch: int         # new shard-map epoch after the move


@dataclass(frozen=True)
class EnsureArchived:
    """Backup utility: make sure these files' copies exist (high priority),
    then record the backup cycle."""
    dbid: str
    backup_id: int
    recovery_id: str  # host recovery-id watermark at backup time


@dataclass(frozen=True)
class RestoreToBackup:
    """Restore utility: reconcile DLFM metadata with a restored host DB."""
    dbid: str
    recovery_id: str  # watermark preserved in the host backup image


@dataclass(frozen=True)
class ReconcileFiles:
    """Reconcile utility: authoritative list of (path, recovery_id) the
    host database currently references for this DLFM's server."""
    dbid: str
    entries: tuple  # tuple[(path, recovery_id, grp_id, access_ctl, recovery)]

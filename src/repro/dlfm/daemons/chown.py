"""Chown daemon: the only DLFM process running with root privilege.

Child agents ask it for file metadata ("stat"), for takeover at commit
(chown to the DLFM admin user + read-only — full access control strips
ownership, partial control only strips the write bit so asynchronous
archiving stays safe), and for release at unlink commit (restore the
original owner/group/mode). Requests carry an authentication secret, as
the paper stresses ("it is important to safeguard unauthorized
requests").
"""

from __future__ import annotations


from repro.dlff.filter import DLFM_ADMIN
from repro.errors import PermissionDenied, ReproError
from repro.fs.filesystem import FileSystem, READ_ONLY
from repro.kernel.channel import Channel
from repro.kernel.rpc import call, serve_loop


class ChownDaemon:
    def __init__(self, sim, fs: FileSystem, secret: str):
        self.sim = sim
        self.fs = fs
        self.secret = secret
        self.chan = Channel(sim, capacity=32, name="chownd")
        self.requests = 0
        self.denied = 0

    def run(self):
        yield from serve_loop(self.chan, self._dispatch)

    # -- client side (used by agents/daemons holding the secret) ----------------

    def request(self, op: str, path: str, **kwargs):
        """Generator: authenticated request to the daemon."""
        payload = {"secret": self.secret, "op": op, "path": path, **kwargs}
        result = yield from call(self.sim, self.chan, payload)
        return result

    # -- server side --------------------------------------------------------------

    def _dispatch(self, payload: dict):
        self.requests += 1
        if payload.get("secret") != self.secret:
            self.denied += 1
            raise PermissionDenied("chown daemon: bad authentication")
        op = payload["op"]
        path = payload["path"]
        if op == "stat":
            node = self.fs.stat(path)
            return {"owner": node.owner, "group": node.group,
                    "mode": node.mode, "mtime": node.mtime,
                    "inode": node.inode, "size": node.size}
        if op == "takeover":
            full = payload.get("full", True)
            if full:
                self.fs.chown(path, DLFM_ADMIN)
            # Full control is read-only by definition; partial control
            # loses its write bit only when the file must be archived —
            # "the asynchronous backup is only possible because DLFM
            # takes away the write permission" (§3.4).
            if full or payload.get("recovery", True):
                self.fs.chmod(path, READ_ONLY)
            return {"taken": True}
        if op == "release":
            self.fs.chown(path, payload["owner"])
            self.fs.chmod(path, payload["mode"])
            node = self.fs.stat(path)
            node.group = payload["group"]
            return {"released": True}
        if op == "restore_file":
            self.fs.restore_file(path, payload["content"], payload["owner"],
                                 payload["group"], payload["mode"])
            return {"restored": True}
        raise ReproError(f"chown daemon: unknown op {op!r}")
        yield  # pragma: no cover — uniform generator interface

"""Version-merge daemon: folds MVCC lineage tails into base records.

The minidb engine gives every updated heap slot an append-only tail of
committed versions (DESIGN.md §13) so SI readers can resolve against a
begin-timestamp snapshot without taking read locks. Left alone the
tails only shrink when a writing transaction happens to touch the row
again; this daemon is the L-Store merge: a periodic pass over the local
database that folds every tail no live snapshot can still see back into
its base record. The watermark comes from the engine itself (the oldest
active snapshot LSN) — the daemon cannot pick a stale one, it simply
asks :meth:`~repro.minidb.db.Database.merge_versions` for a safe pass.

A merge pass is pure in-memory bookkeeping — it takes no locks and
writes no log records, because version chains are logged implicitly by
the transactions that created them (``wal.py``) — so a crash at the
``daemon.worker:<node>:merged`` injection point loses nothing: restart
recovery rebuilds the chains from the WAL and the first post-restart
pass folds whatever is foldable again.
"""

from __future__ import annotations

from repro.kernel.sim import Timeout


class VersionMergeDaemon:
    def __init__(self, dlfm):
        self.dlfm = dlfm
        self.passes = 0
        self.versions_merged = 0

    @property
    def live_chains(self) -> int:
        return self.dlfm.db.live_chains()

    def run(self):
        """Generator (daemon): periodic merge passes forever."""
        period = self.dlfm.config.merge_period
        while True:
            yield Timeout(period)
            self.run_pass()

    def run_pass(self) -> int:
        """One merge pass; returns the number of versions folded."""
        db = self.dlfm.db
        sim = self.dlfm.sim
        self.passes += 1
        if not db.config.mvcc or not db.live_chains():
            return 0
        with sim.tracer.span("daemon.merged.pass",
                             node=self.dlfm.name) as span:
            merged = db.merge_versions()
            self.versions_merged += merged
            span.set(merged=merged, live_chains=db.live_chains())
        if merged and sim.injector.enabled:
            # Folds applied, nothing durable to lose: the recovery
            # contract says a crash here must reconstruct every chain a
            # live snapshot could still need from the WAL alone.
            sim.injector.maybe_crash(
                f"daemon.worker:{self.dlfm.name}:merged", db.name)
        return merged

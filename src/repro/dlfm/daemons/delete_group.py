"""Delete-Group daemon: asynchronous unlinking for dropped host tables.

When a host transaction that dropped an SQL table commits, the child
agent sends this daemon the transaction id; the daemon finds every group
the transaction deleted and unlinks all their files — **in batches of N
with a local commit per batch** so one huge group cannot blow the log or
escalate locks (lesson §4, experiment E8). Because the transaction-table
entry stays in state ``committed`` until the work is done, a DLFM crash
mid-way is resumed by a restart rescan (§3.5).

With ``DLFMConfig.delgrp_workers > 1`` the batched deletes of
independent transactions overlap: the ``run()`` process stays the single
intake (so killing it freezes the daemon, as the freeze tests rely on)
but hands each transaction to a :class:`~repro.kernel.pool.WorkerPool`
worker. The ``_active`` set dispatches each (dbid, txn_id) at most once
even when a notify races the restart rescan; crash safety is unchanged —
a worker crash leaves the ``committed`` dfm_txn row in place and the
restart rescan resumes it.
"""

from __future__ import annotations

from repro.dlfm import schema
from repro.errors import RETRIABLE_FAULTS, ChannelClosed
from repro.kernel.channel import Channel
from repro.kernel.pool import WorkerPool
from repro.kernel.sim import Timeout


class DeleteGroupDaemon:
    def __init__(self, dlfm):
        self.dlfm = dlfm
        self.chan = Channel(dlfm.sim,
                            capacity=dlfm.config.delgrp_queue_capacity,
                            name="delgrpd")
        self.rescan_needed = True
        self.groups_processed = 0
        self.files_unlinked = 0
        self.batch_commits = 0
        self.log_fulls = 0
        self._active: set = set()
        self.pool = WorkerPool(
            dlfm.sim, f"{dlfm.name}-delgrpd", self._process_one,
            workers=dlfm.config.delgrp_workers,
            crash_point=f"daemon.worker:{dlfm.name}:delgrpd",
            crash_node=dlfm.db.name)

    def start_workers(self):
        self._active.clear()
        return self.pool.start()

    def stop_workers(self) -> None:
        self.pool.stop()

    @property
    def queue_depth(self) -> int:
        """Commit notifications accepted but not yet dispatched."""
        return self.chan.pending

    def notify(self, dbid: str, txn_id: int):
        """Generator: commit processing hands over a transaction id."""
        yield from self.chan.send((dbid, txn_id))

    def run(self):
        if self.rescan_needed:
            self.rescan_needed = False
            yield from self._rescan_committed()
        while True:
            try:
                dbid, txn_id = yield from self.chan.recv()
            except ChannelClosed:
                return
            yield from self._submit((dbid, txn_id))

    def _submit(self, key):
        """Generator: dispatch one txn to the pool, at most once."""
        if key in self._active:
            return  # already queued or draining (notify raced a rescan)
        self._active.add(key)
        yield from self.pool.submit(key)

    def _process_one(self, key):
        dbid, txn_id = key
        try:
            yield from self.process_txn(dbid, txn_id)
        finally:
            self._active.discard(key)

    def _rescan_committed(self):
        """After restart (and at quiesce): resume every committed txn
        with pending groups; completes only when all are drained."""
        session = self.dlfm.read_session()
        rows = yield from session.execute(
            "SELECT dbid, txn_id FROM dfm_txn WHERE state = ?",
            (schema.TXN_COMMITTED,))
        yield from session.commit()
        for dbid, txn_id in rows:
            yield from self._submit((dbid, txn_id))
        yield from self.pool.drain()

    def process_txn(self, dbid: str, txn_id: int):
        """Generator: unlink all files of all groups this txn deleted."""
        db = self.dlfm.db
        sim = self.dlfm.sim
        if sim.injector.enabled:
            sim.injector.maybe_crash(
                f"daemon.pass:{self.dlfm.name}:delgrpd", db.name)
        with self.dlfm.sim.tracer.span("daemon.delgrpd.process_txn",
                                       dbid=dbid, txn=txn_id) as span:
            session = self.dlfm.read_session()
            groups = yield from session.execute(
                "SELECT grp_id FROM dfm_group WHERE delete_txn = ? AND "
                "dbid = ? AND state = ?", (txn_id, dbid, schema.GRP_DELETED))
            yield from session.commit()
            for (grp_id,) in groups.rows:
                yield from self._drain_group(dbid, grp_id)
                self.groups_processed += 1
                self.dlfm.metrics.groups_deleted += 1
            span.set(groups=len(groups.rows))
            session = db.session()
            yield from session.execute(
                "DELETE FROM dfm_txn WHERE dbid = ? AND txn_id = ?",
                (dbid, txn_id))
            yield from session.commit()

    def _drain_group(self, dbid: str, grp_id: int):
        """Unlink every linked file of the group, N per local commit."""
        batch_n = self.dlfm.config.batch_commit_n
        db = self.dlfm.db
        backoff = self.dlfm.retry_backoff(f"delgrpd:{grp_id}")
        while True:
            try:
                # SI drain sessions scan lock-free; their UPDATE/DELETE
                # still X-lock and a first-writer-wins conflict lands in
                # RETRIABLE_FAULTS below, like any deadlock would.
                session = self.dlfm.read_session()
                batch = yield from session.execute(
                    "SELECT filename, recovery_id, recovery, orig_owner, "
                    "orig_group, orig_mode FROM dfm_file WHERE grp_id = ? "
                    "AND dbid = ? AND state = ? LIMIT ?",
                    (grp_id, dbid, schema.ST_LINKED, batch_n))
                if not batch.rows:
                    yield from session.commit()
                    break
                for (path, recovery_id, recovery, owner, group,
                     mode) in batch.rows:
                    yield from self.dlfm.chown.request(
                        "release", path, owner=owner, group=group, mode=mode)
                    if recovery == "yes":
                        # Keep an unlinked marker for point-in-time restore;
                        # its own (unique) recovery id doubles as check flag.
                        yield from session.execute(
                            "UPDATE dfm_file SET state = ?, check_flag = ?, "
                            "unlink_recovery_id = ?, unlink_time = ? "
                            "WHERE filename = ? AND recovery_id = ? AND "
                            "state = ?",
                            (schema.ST_UNLINKED, recovery_id, recovery_id,
                             self.dlfm.sim.now, path, recovery_id,
                             schema.ST_LINKED))
                    else:
                        yield from session.execute(
                            "DELETE FROM dfm_file WHERE filename = ? AND "
                            "recovery_id = ? AND state = ?",
                            (path, recovery_id, schema.ST_LINKED))
                    self.files_unlinked += 1
                yield from session.commit()
                self.batch_commits += 1
                backoff.reset()
            except RETRIABLE_FAULTS as error:
                if getattr(error, "reason", None) == "logfull":
                    self.log_fulls += 1
                # A transient transport/I/O fault leaves the batch's local
                # transaction open (unlike an engine abort): drop its locks
                # before sleeping.
                yield from session.rollback()
                self.dlfm.sim.tracer.count("retries",
                                           f"{self.dlfm.name}.delgrpd")
                yield Timeout(backoff.next())
        # Group fully drained: mark it emptied; GC removes it at expiry.
        session = db.session()
        yield from session.execute(
            "UPDATE dfm_group SET state = ? WHERE grp_id = ? AND dbid = ?",
            ("emptied", grp_id, dbid))
        yield from session.commit()

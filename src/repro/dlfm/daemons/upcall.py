"""Upcall daemon: answers DLFF "is this file linked?" queries (§3.5).

Needed for files under *partial* access control, whose ownership is
unchanged — only DLFM's metadata knows they are linked. Uses its own
cursor-stability session committing per query so it never holds locks
against the hot path.
"""

from __future__ import annotations

from repro.dlfm import schema
from repro.errors import TransactionAborted
from repro.kernel.channel import Channel
from repro.kernel.rpc import call, serve_loop


class UpcallDaemon:
    def __init__(self, dlfm):
        self.dlfm = dlfm
        self.chan = Channel(dlfm.sim, capacity=32, name="upcalld")
        self.queries = 0

    def run(self):
        yield from serve_loop(self.chan, self._dispatch)

    # -- client side (called by DLFF) ----------------------------------------------

    def query(self, path: str):
        """Generator: linked-info dict or None."""
        result = yield from call(self.dlfm.sim, self.chan, {"path": path})
        return result

    # -- server side ------------------------------------------------------------------

    def _dispatch(self, payload: dict):
        self.queries += 1
        session = self.dlfm.db.session("CS")
        try:
            row = yield from session.query_one(
                "SELECT dbid, access_ctl FROM dfm_file WHERE filename = ? "
                "AND check_flag = ?", (payload["path"], schema.LINKED_FLAG))
            yield from session.commit()
        except TransactionAborted:
            # Fail safe: treat contention as "linked" so referential
            # integrity can never be violated by a lucky race.
            return {"dbid": "unknown", "access_ctl": "unknown"}
        if row is None:
            return None
        return {"dbid": row[0], "access_ctl": row[1]}

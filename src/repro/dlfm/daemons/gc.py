"""Garbage Collector daemon (§3.5): two kinds of cleanup.

1. **Backup retention** — keep unlinked-file entries (and their archive
   copies) only as far back as the oldest of the last N host backups
   needs: an unlinked entry whose unlink happened before that backup's
   recovery-id watermark can never be resurrected by a restore to any
   retained backup.
2. **Expired deleted groups** — once a deleted group's lifetime passes
   (and the Delete-Group daemon emptied it), its group entry, remaining
   unlinked file entries and archive copies are removed.
"""

from __future__ import annotations

from repro.dlfm import schema
from repro.errors import ArchiveError, TransactionAborted
from repro.kernel.sim import Timeout


class GarbageCollector:
    def __init__(self, dlfm):
        self.dlfm = dlfm
        self.entries_removed = 0
        self.copies_removed = 0
        self.backups_pruned = 0
        self.groups_removed = 0

    def run(self):
        while True:
            yield Timeout(self.dlfm.config.gc_period)
            # Housekeeping sweep also hosts the paper's statistics guard:
            # "additional logic is put into DLFM to check for changes in
            # metadata statistics and re-invoke the utility to reset
            # statistics and rebind plans if necessary" (§4).
            self.dlfm.ensure_statistics()
            try:
                yield from self.collect()
            except TransactionAborted:
                continue  # contention; try again next period

    def collect(self):
        """Generator: one full GC pass; returns a summary dict."""
        summary = {"entries": 0, "copies": 0, "groups": 0, "backups": 0}
        sim = self.dlfm.sim
        if sim.injector.enabled:
            sim.injector.maybe_crash(
                f"daemon.pass:{self.dlfm.name}:gcd", self.dlfm.db.name)
        with self.dlfm.sim.tracer.span("daemon.gc.collect") as span:
            yield from self._prune_backups(summary)
            yield from self._prune_expired_groups(summary)
            span.set(**summary)
        self.dlfm.metrics.gc_entries_removed += summary["entries"]
        self.dlfm.metrics.gc_copies_removed += summary["copies"]
        return summary

    # -- backup retention --------------------------------------------------------

    def _prune_backups(self, summary: dict):
        keep = self.dlfm.config.keep_backups
        db = self.dlfm.db
        session = db.session()
        backups = yield from session.execute(
            "SELECT backup_id, dbid, recovery_id FROM dfm_backup "
            "ORDER BY backup_id DESC")
        yield from session.commit()
        # Retention is per host database: each dbid keeps its last N.
        by_dbid: dict = {}
        for backup_id, dbid, watermark in backups.rows:
            by_dbid.setdefault(dbid, []).append((backup_id, watermark))
        session = db.session()
        drop_backup = yield from session.prepare(
            "DELETE FROM dfm_backup WHERE backup_id = ? AND dbid = ?")
        drop_entry = yield from session.prepare(
            "DELETE FROM dfm_file WHERE filename = ? AND "
            "recovery_id = ? AND state = ?")
        for dbid, cycles in sorted(by_dbid.items()):
            if len(cycles) <= keep:
                continue
            oldest_kept_watermark = cycles[keep - 1][1]
            for backup_id, _ in cycles[keep:]:
                yield from drop_backup.execute((backup_id, dbid))
                summary["backups"] += 1
                self.backups_pruned += 1
            # Unlinked entries dead to every retained backup of this host.
            victims = yield from session.execute(
                "SELECT filename, recovery_id, unlink_recovery_id "
                "FROM dfm_file WHERE state = ? AND dbid = ?",
                (schema.ST_UNLINKED, dbid))
            for path, recovery_id, unlink_rid in victims.rows:
                if (unlink_rid is not None
                        and unlink_rid < oldest_kept_watermark):
                    yield from drop_entry.execute(
                        (path, recovery_id, schema.ST_UNLINKED))
                    summary["entries"] += 1
                    self.entries_removed += 1
                    summary["copies"] += self._drop_copy(path, recovery_id)
        yield from session.commit()

    # -- expired deleted groups ------------------------------------------------------

    def _prune_expired_groups(self, summary: dict):
        now = self.dlfm.sim.now
        db = self.dlfm.db
        session = db.session()
        expired = yield from session.execute(
            "SELECT grp_id FROM dfm_group WHERE state = ? AND "
            "expires_at < ?", ("emptied", now))
        find_leftovers = yield from session.prepare(
            "SELECT filename, recovery_id FROM dfm_file WHERE "
            "grp_id = ? AND state = ?")
        drop_entry = yield from session.prepare(
            "DELETE FROM dfm_file WHERE filename = ? AND "
            "recovery_id = ? AND state = ?")
        drop_group = yield from session.prepare(
            "DELETE FROM dfm_group WHERE grp_id = ?")
        for (grp_id,) in expired.rows:
            leftovers = yield from find_leftovers.execute(
                (grp_id, schema.ST_UNLINKED))
            for path, recovery_id in leftovers.rows:
                yield from drop_entry.execute(
                    (path, recovery_id, schema.ST_UNLINKED))
                summary["entries"] += 1
                self.entries_removed += 1
                summary["copies"] += self._drop_copy(path, recovery_id)
            yield from drop_group.execute((grp_id,))
            summary["groups"] += 1
            self.groups_removed += 1
        yield from session.commit()

    def _drop_copy(self, path: str, recovery_id: str) -> int:
        try:
            self.dlfm.archive.delete_version(
                self.dlfm.server.name, path, recovery_id)
            self.copies_removed += 1
            return 1
        except ArchiveError:
            return 0  # never archived (recovery=no or still pending)

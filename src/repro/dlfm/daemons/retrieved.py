"""Retrieve daemon: restore archived files into the file system (§3.5).

Used after the host database is restored to a point in the past: linked
files that no longer exist on disk are fetched from the archive server
(by their recovery id, which identifies the exact version) and recreated
through the Chown daemon (root privilege needed — the file may belong to
any user).
"""

from __future__ import annotations

from repro.kernel.channel import Channel
from repro.kernel.rpc import call, serve_loop


class RetrieveDaemon:
    def __init__(self, dlfm):
        self.dlfm = dlfm
        self.chan = Channel(dlfm.sim, capacity=16, name="retrieved")
        self.restored = 0

    def run(self):
        yield from serve_loop(self.chan, self._dispatch)

    # -- client side ----------------------------------------------------------

    def restore(self, path: str, recovery_id: str):
        """Generator: restore one file version; blocks until done."""
        result = yield from call(self.dlfm.sim, self.chan,
                                 {"path": path, "recovery_id": recovery_id})
        return result

    # -- server side -----------------------------------------------------------

    def _dispatch(self, payload: dict):
        dlfm = self.dlfm
        path = payload["path"]
        recovery_id = payload["recovery_id"]
        copy = yield from dlfm.archive.retrieve(
            dlfm.server.name, path, recovery_id)
        yield from dlfm.chown.request(
            "restore_file", path, content=copy.content, owner=copy.owner,
            group=copy.group, mode=copy.mode)
        self.restored += 1
        dlfm.metrics.files_restored += 1
        return {"restored": True, "bytes": len(copy.content)}

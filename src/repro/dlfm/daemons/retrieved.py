"""Retrieve daemon: restore archived files into the file system (§3.5).

Used after the host database is restored to a point in the past: linked
files that no longer exist on disk are fetched from the archive server
(by their recovery id, which identifies the exact version) and recreated
through the Chown daemon (root privilege needed — the file may belong to
any user).

Restores are served by a :class:`~repro.kernel.pool.WorkerPool` of
``DLFMConfig.retrieve_workers`` processes so a post-restore "restore
storm" pipelines archive fetches with Chown handoffs instead of
draining one file at a time; the request backlog is bounded by
``DLFMConfig.retrieve_queue_capacity`` (callers beyond that block, which
is the intended backpressure). The ``run()`` process stays the single
intake so killing it freezes the daemon exactly as before.
"""

from __future__ import annotations

from repro.errors import ChannelClosed, ReproError
from repro.kernel.channel import Channel
from repro.kernel.pool import WorkerPool
from repro.kernel.rpc import call


class RetrieveDaemon:
    def __init__(self, dlfm):
        self.dlfm = dlfm
        self.chan = Channel(dlfm.sim,
                            capacity=dlfm.config.retrieve_queue_capacity,
                            name="retrieved")
        self.restored = 0
        self.pool = WorkerPool(
            dlfm.sim, f"{dlfm.name}-retrieved", self._serve_one,
            workers=dlfm.config.retrieve_workers,
            crash_point=f"daemon.worker:{dlfm.name}:retrieved",
            crash_node=dlfm.db.name)

    def start_workers(self):
        return self.pool.start()

    def stop_workers(self) -> None:
        self.pool.stop()

    @property
    def queue_depth(self) -> int:
        """Restore requests accepted but not yet handed to a worker."""
        return self.chan.pending

    def run(self):
        """Intake loop: hand each request to the pool (rendezvous, so at
        most ``retrieve_workers`` restores are in flight at once)."""
        while True:
            try:
                envelope = yield from self.chan.recv()
            except ChannelClosed:
                return
            yield from self.pool.submit(envelope)

    # -- client side ----------------------------------------------------------

    def restore(self, path: str, recovery_id: str):
        """Generator: restore one file version; blocks until done."""
        result = yield from call(self.dlfm.sim, self.chan,
                                 {"path": path, "recovery_id": recovery_id})
        return result

    # -- server side -----------------------------------------------------------

    def _serve_one(self, envelope):
        """Pool handler: one request → dispatch → reply (the body of
        ``rpc.serve_loop``, run concurrently per worker)."""
        try:
            result = yield from self._dispatch(envelope.payload)
        except ReproError as error:
            envelope.reply.trigger(("err", error))
        else:
            envelope.reply.trigger(("ok", result))

    def _dispatch(self, payload: dict):
        dlfm = self.dlfm
        path = payload["path"]
        recovery_id = payload["recovery_id"]
        copy = yield from dlfm.archive.retrieve(
            dlfm.server.name, path, recovery_id)
        yield from dlfm.chown.request(
            "restore_file", path, content=copy.content, owner=copy.owner,
            group=copy.group, mode=copy.mode)
        self.restored += 1
        dlfm.metrics.files_restored += 1
        return {"restored": True, "bytes": len(copy.content)}

"""DLFM service daemons (paper Figure 5).

* :mod:`chown` — root-privileged file ownership/permission service.
* :mod:`copyd` — asynchronous archiving of newly linked files.
* :mod:`retrieved` — restore of archived files after point-in-time restore.
* :mod:`delete_group` — asynchronous unlinking of dropped tables' files.
* :mod:`gc` — metadata/backup-copy garbage collection.
* :mod:`upcall` — answers DLFF "is this file linked?" queries.
* :mod:`version_merge` — folds committed MVCC version tails into base
  records (the L-Store merge behind snapshot-isolation reads).
"""

"""Copy daemon: asynchronous archiving of newly linked files (§3.4/§3.5).

Sweeps ``dfm_archive`` for pending entries, copies the file content to
the archive server, deletes the archive entry and flips ``archived`` on
the file entry — committing per entry so the archive table stays tiny
("entry gets deleted as soon as it is archived"). Runs concurrently with
child agents inserting into the same small multi-indexed table, which is
precisely where the paper hit next-key-locking deadlocks.
"""

from __future__ import annotations

from repro.errors import FileNotFound, TransactionAborted, TransientIOError
from repro.kernel.sim import Timeout


class CopyDaemon:
    def __init__(self, dlfm):
        self.dlfm = dlfm
        self.archived = 0
        self.conflicts = 0  # deadlocks/timeouts against child agents

    def run(self):
        while True:
            yield Timeout(self.dlfm.config.copy_period)
            yield from self.sweep()

    def sweep(self):
        """Generator: archive every currently pending entry; returns count."""
        db = self.dlfm.db
        sim = self.dlfm.sim
        if sim.injector.enabled:
            sim.injector.maybe_crash(
                f"daemon.pass:{self.dlfm.name}:copyd", db.name)
        with self.dlfm.sim.tracer.span("daemon.copyd.sweep") as span:
            try:
                session = db.session()
                pending = yield from session.execute(
                    "SELECT filename, recovery_id FROM dfm_archive "
                    "WHERE state = ?", ("pending",))
                yield from session.commit()
            except TransactionAborted:
                self.conflicts += 1
                span.set(outcome="conflict")
                return 0
            done = 0
            for path, recovery_id in pending.rows:
                done += yield from self._archive_one(path, recovery_id)
            span.set(pending=len(pending.rows), archived=done)
            return done

    def archive_priority(self, entries):
        """Generator: backup utility asks for these copies *now* (§3.4)."""
        done = 0
        for path, recovery_id in entries:
            done += yield from self._archive_one(path, recovery_id)
        return done

    def _archive_one(self, path: str, recovery_id: str):
        dlfm = self.dlfm
        fs = dlfm.server.fs
        try:
            node = fs.stat(path)
            content = node.content
        except FileNotFound:
            content = None  # crashed mid-flight long ago; drop the entry
        except TransientIOError:
            self.conflicts += 1
            return 0  # transient I/O fault; the next sweep retries
        if content is not None:
            yield from dlfm.archive.store(
                dlfm.server.name, path, recovery_id, content,
                owner=node.owner, group=node.group, mode=node.mode)
        try:
            session = dlfm.db.session()
            removed = yield from session.execute(
                "DELETE FROM dfm_archive WHERE filename = ? AND "
                "recovery_id = ?", (path, recovery_id))
            if removed:
                yield from session.execute(
                    "UPDATE dfm_file SET archived = 1 WHERE filename = ? "
                    "AND recovery_id = ?", (path, recovery_id))
            yield from session.commit()
        except TransactionAborted:
            # Deadlock/timeout against a child agent (the paper's archive
            # table contention); the sweep will retry next period.
            self.conflicts += 1
            return 0
        if removed and content is not None:
            self.archived += 1
            dlfm.metrics.files_archived += 1
            return 1
        return 0

"""Copy daemon: asynchronous archiving of newly linked files (§3.4/§3.5).

Sweeps ``dfm_archive`` for pending entries, copies the file content to
the archive server, deletes the archive entry and flips ``archived`` on
the file entry — committing per entry so the archive table stays tiny
("entry gets deleted as soon as it is archived"). Runs concurrently with
child agents inserting into the same small multi-indexed table, which is
precisely where the paper hit next-key-locking deadlocks.

Each sweep CLAIMS its batch first (one transaction flipping the rows to
``state='inflight'``) and then fans the transfer+commit of each entry
across a :class:`~repro.kernel.pool.WorkerPool` of
``DLFMConfig.copy_workers`` processes. The claim protocol is what makes
parallel archiving crash-safe:

* the claim set (``_claims``) is memory-only, so a claim dies with a
  crash while the ``inflight`` row survives — the restarted daemon
  treats any ``inflight`` row without a live claim as stale and
  re-queues it (counted in ``reclaimed``);
* no two workers ever archive the same entry, because an entry enters
  the pool only on a successful state-qualified UPDATE and stays in
  ``_claims`` until its worker finishes;
* the DELETE of the archive row is the commit point: it succeeds at
  most once, so ``dfm_file.archived`` flips exactly once and
  ``files_archived`` counts each file once even when a worker crashed
  between claim and delete (the archive store itself is idempotent per
  recovery id).

``sweep()`` stays synchronous for its callers — it drains the pool
before returning — so backup's ensure-archived and the chaos quiesce
keep their "sweep means done" semantics.
"""

from __future__ import annotations

from repro.errors import (
    FileNotFound,
    TransactionAborted,
    TransientIOError,
)
from repro.kernel.pool import WorkerPool
from repro.kernel.sim import Timeout

#: Archive-entry states: freshly committed links start 'pending'; a
#: sweep's claim transaction moves them to 'inflight' until archived.
ST_PENDING = "pending"
ST_INFLIGHT = "inflight"


class CopyDaemon:
    def __init__(self, dlfm):
        self.dlfm = dlfm
        self.archived = 0
        self.conflicts = 0  # deadlocks/timeouts against child agents
        self.claimed = 0    # entries claimed over the daemon's lifetime
        self.reclaimed = 0  # stale/retried inflight entries re-queued
        self._claims: set = set()
        self.pool = WorkerPool(
            dlfm.sim, f"{dlfm.name}-copyd", self._archive_entry,
            workers=dlfm.config.copy_workers,
            capacity=dlfm.config.copy_queue_capacity,
            crash_point=f"daemon.worker:{dlfm.name}:copyd",
            crash_node=dlfm.db.name)

    def start_workers(self):
        """(Re)start the archive workers; claims of the previous
        incarnation are gone, so its inflight rows become re-claimable."""
        self._claims.clear()
        return self.pool.start()

    def stop_workers(self) -> None:
        self.pool.stop()

    def run(self):
        while True:
            yield Timeout(self.dlfm.config.copy_period)
            yield from self.sweep()

    def sweep(self):
        """Generator: claim + archive every claimable entry; returns count."""
        db = self.dlfm.db
        sim = self.dlfm.sim
        if sim.injector.enabled:
            sim.injector.maybe_crash(
                f"daemon.pass:{self.dlfm.name}:copyd", db.name)
        with self.dlfm.sim.tracer.span("daemon.copyd.sweep") as span:
            try:
                batch = yield from self._claim_batch()
            except TransactionAborted:
                self.conflicts += 1
                span.set(outcome="conflict")
                return 0
            # Per-sweep accumulator: each worker reports its entry's
            # outcome here, so concurrent sweeps count only their own
            # batch (and a crashed worker simply never reports).
            results: list = []
            for key in batch:
                yield from self.pool.submit((key, results))
            yield from self.pool.drain()
            done = sum(results)
            span.set(pending=len(batch), archived=done)
            return done

    def _claim_batch(self):
        """Generator: one claim transaction marking a batch 'inflight'.

        Claims every 'pending' row plus every 'inflight' row with no
        live claim — the latter belonged to a crashed incarnation (the
        claim set is memory-only) or to a worker whose attempt failed
        transiently, and must be re-queued. Rows another sweep already
        claimed (in ``_claims``) are skipped, so concurrent sweeps never
        double-archive.
        """
        session = self.dlfm.db.session()
        rows = yield from session.execute(
            "SELECT filename, recovery_id, state FROM dfm_archive")
        # One claim UPDATE compiled per sweep, executed per row (the
        # archive table is exactly the repetitive-statement hot spot the
        # prepared path exists for).
        claim = yield from session.prepare(
            "UPDATE dfm_archive SET state = ? WHERE filename = ? "
            "AND recovery_id = ? AND state = ?")
        batch = []
        for path, recovery_id, state in rows.rows:
            key = (path, recovery_id)
            if key in self._claims:
                continue  # queued or being archived right now
            changed = yield from claim.execute(
                (ST_INFLIGHT, path, recovery_id, state))
            if changed:
                if state == ST_INFLIGHT:
                    self.reclaimed += 1
                batch.append(key)
        yield from session.commit()
        self._claims.update(batch)
        self.claimed += len(batch)
        return batch

    def archive_priority(self, entries):
        """Generator: backup utility asks for these copies *now* (§3.4)."""
        done = 0
        for path, recovery_id in entries:
            done += yield from self._archive_one(path, recovery_id)
        return done

    def _archive_entry(self, item):
        """Pool handler: archive one claimed entry, then drop its claim.

        The claim is dropped even on failure so the next sweep can
        re-claim (and thereby retry) the still-present inflight row.
        """
        (path, recovery_id), results = item
        try:
            results.append((yield from self._archive_one(path,
                                                         recovery_id)))
        finally:
            self._claims.discard((path, recovery_id))

    def _archive_one(self, path: str, recovery_id: str):
        dlfm = self.dlfm
        fs = dlfm.server.fs
        try:
            node = fs.stat(path)
            content = node.content
        except FileNotFound:
            content = None  # crashed mid-flight long ago; drop the entry
        except TransientIOError:
            self.conflicts += 1
            return 0  # transient I/O fault; the next sweep retries
        if content is not None:
            yield from dlfm.archive.store(
                dlfm.server.name, path, recovery_id, content,
                owner=node.owner, group=node.group, mode=node.mode)
        try:
            session = dlfm.db.session()
            removed = yield from session.execute(
                "DELETE FROM dfm_archive WHERE filename = ? AND "
                "recovery_id = ?", (path, recovery_id))
            if removed:
                yield from session.execute(
                    "UPDATE dfm_file SET archived = 1 WHERE filename = ? "
                    "AND recovery_id = ?", (path, recovery_id))
            yield from session.commit()
        except TransactionAborted:
            # Deadlock/timeout against a child agent (the paper's archive
            # table contention); the sweep will retry next period.
            self.conflicts += 1
            return 0
        if removed and content is not None:
            self.archived += 1
            dlfm.metrics.files_archived += 1
            return 1
        return 0

"""Workload result collection and reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import Histogram


@dataclass
class WorkloadReport:
    """Aggregate outcome of one workload run (virtual-time based)."""

    clients: int
    virtual_seconds: float
    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    selects: int = 0
    aborts: dict = field(default_factory=dict)   # reason → count
    latencies: list = field(default_factory=list)
    latency_hist: Histogram = field(default_factory=Histogram)
    # engine-side counters snapshotted at the end:
    deadlocks: int = 0
    lock_timeouts: int = 0
    escalations: int = 0
    commit_retries: int = 0
    log_fulls: int = 0

    def note_abort(self, reason: str) -> None:
        self.aborts[reason] = self.aborts.get(reason, 0) + 1

    def record_latency(self, seconds: float) -> None:
        self.latencies.append(seconds)
        self.latency_hist.record(seconds)

    @property
    def minutes(self) -> float:
        return self.virtual_seconds / 60.0

    @property
    def inserts_per_minute(self) -> float:
        return self.inserts / self.minutes if self.minutes else 0.0

    @property
    def updates_per_minute(self) -> float:
        return self.updates / self.minutes if self.minutes else 0.0

    @property
    def total_aborts(self) -> int:
        return sum(self.aborts.values())

    def latency_percentile(self, pct: float) -> Optional[float]:
        """Exact nearest-rank percentile over the recorded latencies.

        Nearest-rank: the smallest sample such that at least ``pct``
        percent of the samples are <= it — ``ceil(pct/100 * n)`` in
        one-based ranks. The old truncating ``int(pct/100 * n)`` index
        over-reported small percentiles (p50 of [1..10] gave the 6th
        sample) and only returned the maximum by accident of ``min``.
        """
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict:
        return {
            "clients": self.clients,
            "virtual_minutes": round(self.minutes, 2),
            "inserts_per_min": round(self.inserts_per_minute, 1),
            "updates_per_min": round(self.updates_per_minute, 1),
            "deadlocks": self.deadlocks,
            "lock_timeouts": self.lock_timeouts,
            "escalations": self.escalations,
            "commit_retries": self.commit_retries,
            "aborts": dict(self.aborts),
            "p50_latency_s": self.latency_percentile(50),
            "p95_latency_s": self.latency_percentile(95),
            "p99_latency_s": self.latency_percentile(99),
        }

"""Workload result collection and reporting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class WorkloadReport:
    """Aggregate outcome of one workload run (virtual-time based)."""

    clients: int
    virtual_seconds: float
    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    selects: int = 0
    aborts: dict = field(default_factory=dict)   # reason → count
    latencies: list = field(default_factory=list)
    # engine-side counters snapshotted at the end:
    deadlocks: int = 0
    lock_timeouts: int = 0
    escalations: int = 0
    commit_retries: int = 0
    log_fulls: int = 0

    def note_abort(self, reason: str) -> None:
        self.aborts[reason] = self.aborts.get(reason, 0) + 1

    @property
    def minutes(self) -> float:
        return self.virtual_seconds / 60.0

    @property
    def inserts_per_minute(self) -> float:
        return self.inserts / self.minutes if self.minutes else 0.0

    @property
    def updates_per_minute(self) -> float:
        return self.updates / self.minutes if self.minutes else 0.0

    @property
    def total_aborts(self) -> int:
        return sum(self.aborts.values())

    def latency_percentile(self, pct: float) -> Optional[float]:
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(pct / 100.0 * len(ordered)))
        return ordered[index]

    def summary(self) -> dict:
        return {
            "clients": self.clients,
            "virtual_minutes": round(self.minutes, 2),
            "inserts_per_min": round(self.inserts_per_minute, 1),
            "updates_per_min": round(self.updates_per_minute, 1),
            "deadlocks": self.deadlocks,
            "lock_timeouts": self.lock_timeouts,
            "escalations": self.escalations,
            "commit_retries": self.commit_retries,
            "aborts": dict(self.aborts),
            "p95_latency_s": self.latency_percentile(95),
        }

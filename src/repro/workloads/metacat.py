"""MetaCat: a million-file metadata-catalog workload.

The paper positions DLFM as the metadata layer for huge file
populations ("millions of files linked into the database").  This
workload models the catalog that sits on top: namespaces contain
datasets, datasets contain linked files (their datalink URLs stored as
catalog paths), and provenance edges connect derived files to their
parents.  The interactive traffic is metadata-predicate point queries —
path lookups, files-by-dataset-and-state, lineage children, datasets
per namespace — exactly the statement shapes DLFM's own daemons issue,
repeated with different values millions of times.

Two axes are measured, both on the virtual clock:

* **interpolated vs prepared** — the same query mix issued as dynamic
  SQL with literals spliced into the text (a distinct plan-cache key
  per value, so every execution pays ``TimingModel.compile_cpu``)
  versus issued through :meth:`Session.prepare` handles (one bind,
  then cache hits).  The ratio of the two phases' simulated times is
  the prepared-statement speedup the bench gates on.
* **cold vs auto statistics** — the catalog database runs with
  ``auto_runstats`` and NO hand-crafted ``set_stats`` anywhere; the
  mutation counters trip during ingest and the optimizer flips the
  point queries to index plans on its own.  A control database with
  auto-RUNSTATS off keeps the newborn ``card=0`` statistics and stays
  on table scans.

Everything is seeded: same config → byte-identical summary.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.kernel.sim import Simulator
from repro.minidb import Database
from repro.minidb.config import DBConfig, TimingModel

#: The four metadata-predicate query shapes (prepared form).
Q_PATH = "SELECT file_id, state FROM mc_file WHERE path = ?"
Q_DATASET = "SELECT COUNT(*) FROM mc_file WHERE ds_id = ? AND state = ?"
Q_LINEAGE = "SELECT child_id FROM mc_lineage WHERE parent_id = ?"
Q_NAMESPACE = "SELECT ds_id, name FROM mc_dataset WHERE ns_id = ?"

#: The plan probe the auto-vs-cold statistics proof is quoted on.
PROBE = Q_PATH


@dataclass
class MetaCatConfig:
    seed: int = 42
    #: Linked files in the catalog (quick bench: 100k; full: 1M).
    files: int = 100_000
    datasets: int = 200
    namespaces: int = 20
    #: Every Nth file gets a provenance edge from an earlier file.
    lineage_every: int = 4
    #: Point queries per phase (the same seeded mix runs interpolated
    #: first, then prepared).
    queries: int = 2_000
    #: Rows per ingest commit (bounds the lock footprint and gives
    #: auto-RUNSTATS its commit-time trigger points).
    piece: int = 2_000
    #: Compile cost the workload opts into (the engine default is 0.0 to
    #: preserve the historical calibration; this workload exists to
    #: expose the compile tax, so it charges one).
    compile_cpu: float = 0.004
    #: Pool sized to hold the full heap so the phases compare compile
    #: cost, not page faults (1M rows / 32 per page ≈ 31k pages).
    buffer_pool_pages: int = 65_536
    auto_runstats: bool = True

    def with_changes(self, **kwargs) -> "MetaCatConfig":
        return replace(self, **kwargs)


def _timing(cfg: MetaCatConfig) -> TimingModel:
    return replace(TimingModel.calibrated(), compile_cpu=cfg.compile_cpu)


def _build_db(cfg: MetaCatConfig, name: str = "metacat") -> Database:
    sim = Simulator(seed=cfg.seed)
    db = Database(sim, name, DBConfig(
        isolation="CS", next_key_locking=False,
        locklist_size=1_000_000, maxlocks_fraction=1.0,
        buffer_pool_pages=cfg.buffer_pool_pages,
        auto_runstats=cfg.auto_runstats,
        timing=_timing(cfg)))
    return db


def _file_path(cfg: MetaCatConfig, i: int) -> str:
    ds = i % cfg.datasets
    ns = ds % cfg.namespaces
    return f"dlfs://fs1/ns{ns}/ds{ds}/part-{i:07d}.dat"


def _file_state(i: int) -> str:
    return "archived" if i % 4 == 0 else "linked"


def ingest(db: Database, cfg: MetaCatConfig) -> dict:
    """Generator: build the catalog schema and load ``cfg.files`` linked
    files with prepared INSERTs, committing every ``cfg.piece`` rows."""
    session = db.session()
    ddl = [
        "CREATE TABLE mc_namespace (ns_id INT, name TEXT)",
        "CREATE UNIQUE INDEX mc_ns_pk ON mc_namespace (ns_id)",
        "CREATE TABLE mc_dataset (ds_id INT, ns_id INT, name TEXT, "
        "state TEXT)",
        "CREATE UNIQUE INDEX mc_ds_pk ON mc_dataset (ds_id)",
        "CREATE INDEX mc_ds_ns ON mc_dataset (ns_id)",
        "CREATE TABLE mc_file (file_id INT, ds_id INT, path TEXT, "
        "state TEXT, bytes INT)",
        "CREATE UNIQUE INDEX mc_file_pk ON mc_file (file_id)",
        "CREATE UNIQUE INDEX mc_file_path ON mc_file (path)",
        "CREATE INDEX mc_file_ds ON mc_file (ds_id)",
        "CREATE TABLE mc_lineage (parent_id INT, child_id INT)",
        "CREATE INDEX mc_lin_parent ON mc_lineage (parent_id)",
    ]
    for sql in ddl:
        yield from session.execute(sql)
    yield from session.commit()

    started = db.sim.now
    ins_ns = yield from session.prepare(
        "INSERT INTO mc_namespace (ns_id, name) VALUES (?, ?)")
    ins_ds = yield from session.prepare(
        "INSERT INTO mc_dataset (ds_id, ns_id, name, state) "
        "VALUES (?, ?, ?, ?)")
    ins_file = yield from session.prepare(
        "INSERT INTO mc_file (file_id, ds_id, path, state, bytes) "
        "VALUES (?, ?, ?, ?, ?)")
    ins_lin = yield from session.prepare(
        "INSERT INTO mc_lineage (parent_id, child_id) VALUES (?, ?)")

    for ns in range(cfg.namespaces):
        yield from ins_ns.execute((ns, f"ns{ns}"))
    for ds in range(cfg.datasets):
        yield from ins_ds.execute(
            (ds, ds % cfg.namespaces, f"ds{ds}",
             "active" if ds % 8 else "frozen"))
    yield from session.commit()

    edges = 0
    for i in range(cfg.files):
        yield from ins_file.execute(
            (i, i % cfg.datasets, _file_path(cfg, i), _file_state(i),
             (i * 37) % 1_000_000))
        if cfg.lineage_every and i and i % cfg.lineage_every == 0:
            yield from ins_lin.execute((i // 2, i))
            edges += 1
        if (i + 1) % cfg.piece == 0:
            yield from session.commit()
    yield from session.commit()
    return {
        "files": cfg.files,
        "datasets": cfg.datasets,
        "namespaces": cfg.namespaces,
        "lineage_edges": edges,
        "sim_s": round(db.sim.now - started, 6),
        "auto_runstats_runs": db.metrics.auto_runstats_runs,
    }


def _query_mix(db: Database, cfg: MetaCatConfig) -> list:
    """The seeded (kind, params) mix, shared by both phases so the
    interpolated-vs-prepared comparison sees identical work."""
    rng = db.sim.stream("metacat-queries")
    mix = []
    for i in range(cfg.queries):
        kind = i % 4
        if kind == 0:
            mix.append(("path", (_file_path(cfg, rng.randrange(cfg.files)),)))
        elif kind == 1:
            mix.append(("dataset", (rng.randrange(cfg.datasets),
                                    "linked" if i % 2 else "archived")))
        elif kind == 2:
            mix.append(("lineage", (rng.randrange(1, max(cfg.files, 2)),)))
        else:
            mix.append(("namespace", (rng.randrange(cfg.namespaces),)))
    return mix


def run_query_phase(db: Database, cfg: MetaCatConfig, mix: list,
                    mode: str) -> "dict":
    """Generator: issue the mix ``mode`` = 'interpolated' | 'prepared'."""
    session = db.session()
    hits0 = db.metrics.plan_hits
    binds0 = db.metrics.plan_binds
    started = db.sim.now

    if mode == "prepared":
        stmts = {}
        for key, sql in (("path", Q_PATH), ("dataset", Q_DATASET),
                         ("lineage", Q_LINEAGE), ("namespace", Q_NAMESPACE)):
            stmts[key] = yield from session.prepare(sql)
        for kind, params in mix:
            yield from stmts[kind].execute(params)
        yield from session.commit()
    elif mode == "interpolated":
        for kind, params in mix:
            if kind == "path":
                sql = (f"SELECT file_id, state FROM mc_file "
                       f"WHERE path = '{params[0]}'")
            elif kind == "dataset":
                sql = (f"SELECT COUNT(*) FROM mc_file WHERE "
                       f"ds_id = {params[0]} AND state = '{params[1]}'")
            elif kind == "lineage":
                sql = (f"SELECT child_id FROM mc_lineage "
                       f"WHERE parent_id = {params[0]}")
            else:
                sql = (f"SELECT ds_id, name FROM mc_dataset "
                       f"WHERE ns_id = {params[0]}")
            yield from session.execute(sql)
        yield from session.commit()
    else:
        raise ValueError(f"unknown mode {mode!r}")

    elapsed = db.sim.now - started
    statements = len(mix)
    return {
        "mode": mode,
        "statements": statements,
        "sim_s": round(elapsed, 6),
        "stmts_per_s": round(statements / elapsed, 2) if elapsed else None,
        "plan_hits": db.metrics.plan_hits - hits0,
        "plan_binds": db.metrics.plan_binds - binds0,
    }


def run_metacat(cfg: MetaCatConfig) -> dict:
    """Build the catalog once, then run the interpolated and prepared
    phases over the same seeded query mix. Returns the full summary."""
    db = _build_db(cfg)
    load = db.sim.run_process(ingest(db, cfg))
    mix = _query_mix(db, cfg)
    interp = db.sim.run_process(run_query_phase(db, cfg, mix,
                                                "interpolated"))
    prep = db.sim.run_process(run_query_phase(db, cfg, mix, "prepared"))
    stats = db.catalog.stats.get("mc_file")
    speedup = (round(interp["sim_s"] / prep["sim_s"], 2)
               if prep["sim_s"] else None)
    return {
        "config": {"files": cfg.files, "queries": cfg.queries,
                   "seed": cfg.seed, "compile_cpu": cfg.compile_cpu},
        "ingest": load,
        "interpolated": interp,
        "prepared": prep,
        "prepared_speedup": speedup,
        "auto_probe_plan": db.explain(PROBE)["access"],
        "auto_stats": {
            "card": stats.card if stats else 0,
            "manual": bool(stats.manual) if stats else False,
        },
        "plan_evictions": db.metrics.plan_evictions,
    }


def cold_stats_probe(cfg: MetaCatConfig, files: int = 5_000) -> dict:
    """The control arm: same schema and ingest with auto-RUNSTATS OFF
    (and no manual stats), so the catalog still believes ``card=0`` and
    the probe stays a table scan."""
    cold = cfg.with_changes(files=files, auto_runstats=False,
                            queries=0)
    db = _build_db(cold, name="metacat-cold")
    db.sim.run_process(ingest(db, cold))
    stats = db.catalog.stats.get("mc_file")
    return {
        "files": files,
        "probe_plan": db.explain(PROBE)["access"],
        "card_seen": stats.card if stats else 0,
        "auto_runstats_runs": db.metrics.auto_runstats_runs,
    }

"""Multi-client workload machinery for the paper's system test (§3.2.1).

The canonical workload: N clients, each looping { create a file → INSERT
a row linking it } two-thirds of the time and { UPDATE a previously
inserted row's datalink column to a fresh file } one-third of the time,
with exponential think times calibrated so the tuned configuration with
100 clients lands near the paper's ~300 inserts/min and ~150 updates/min.
"""

from repro.workloads.metacat import MetaCatConfig, cold_stats_probe, run_metacat
from repro.workloads.metrics import WorkloadReport
from repro.workloads.runner import SystemTestConfig, run_system_test

__all__ = ["MetaCatConfig", "SystemTestConfig", "WorkloadReport",
           "cold_stats_probe", "run_metacat", "run_system_test"]

"""The system-test runner: build a System, spawn clients, collect results."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.dlfm.config import DLFMConfig
from repro.errors import ReproError, TransactionAborted
from repro.host import DatalinkSpec, HostConfig, build_url
from repro.kernel.sim import Timeout
from repro.minidb.config import TimingModel
from repro.system import System
from repro.workloads.metrics import WorkloadReport


@dataclass
class SystemTestConfig:
    """Parameters of the paper's system test (E1) and its ablations."""

    clients: int = 100
    #: Virtual duration in seconds (the paper ran 24 h = 86_400).
    duration: float = 1_800.0
    #: Mean exponential think time between operations per client. 13.3 s
    #: with 100 clients ≈ 450 ops/min ≈ the paper's 300 ins + 150 upd.
    think_time: float = 13.3
    #: Operation mix weights.
    insert_weight: float = 2.0
    update_weight: float = 1.0
    #: Access control / recovery of the datalink column.
    access_control: str = "full"
    recovery: bool = True
    seed: int = 42
    #: Configs under test.
    dlfm_config: Optional[DLFMConfig] = None
    host_config: Optional[HostConfig] = None
    #: Enable the calibrated service-time model (realistic latencies).
    timed: bool = True
    #: Optional tracer (repro.obs.Tracer) attached to the simulator.
    tracer: Optional[object] = None


def run_system_test(config: SystemTestConfig) -> WorkloadReport:
    """Run the multi-client link/update workload; returns the report."""
    timing = TimingModel.calibrated() if config.timed else TimingModel.zero()
    dlfm_config = config.dlfm_config or DLFMConfig.tuned(timing=timing)
    if config.dlfm_config is None:
        dlfm_config.local_db.timing = timing
    host_config = config.host_config or HostConfig()
    host_config.db.timing = timing

    system = System(seed=config.seed, dlfm_config=dlfm_config,
                    host_config=host_config, tracer=config.tracer)
    report = WorkloadReport(clients=config.clients,
                            virtual_seconds=config.duration)

    def setup():
        yield from system.host.create_datalink_table(
            "media", [("id", "INT"), ("owner_name", "TEXT"),
                      ("attr", "TEXT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(access_control=config.access_control,
                                 recovery=config.recovery)})
        plain = system.host.db.session()
        yield from plain.execute(
            "CREATE UNIQUE INDEX media_id ON media (id)")
        yield from plain.commit()
        # The host side gets the same statistics treatment a production
        # DBA gives it; without this every UPDATE probe is a table scan
        # over the growing table (the very E4 pathology, host edition).
        system.host.db.set_table_stats(
            "media", card=1_000_000,
            colcard={"id": 1_000_000, "owner_name": 1_000})

    system.run(setup())

    row_ids = itertools.count(1)
    file_ids = itertools.count(1)

    def new_file(client_id: int) -> str:
        # Monotonic names: every insert lands at the tail of the filename
        # index, exactly like timestamp-named media ingest. This is what
        # makes next-key locking collide across clients (E3).
        seq = next(file_ids)
        path = f"/data/ingest-{seq:09d}.obj"
        system.create_user_file("fs1", path, owner=f"user{client_id}",
                                content=f"payload-{seq}")
        return build_url("fs1", path)

    def client(client_id: int):
        rng = system.sim.stream(f"client-{client_id}")
        session = system.session()
        my_rows: list[int] = []
        while system.sim.now < config.duration:
            yield Timeout(rng.expovariate(1.0 / config.think_time))
            if system.sim.now >= config.duration:
                break
            total = config.insert_weight + config.update_weight
            do_insert = (rng.random() < config.insert_weight / total
                         or not my_rows)
            started = system.sim.now
            try:
                if do_insert:
                    row_id = next(row_ids)
                    url = new_file(client_id)
                    yield from session.execute(
                        "INSERT INTO media (id, owner_name, attr, doc) "
                        "VALUES (?, ?, ?, ?)",
                        (row_id, f"user{client_id}", "new", url))
                    yield from session.commit()
                    my_rows.append(row_id)
                    report.inserts += 1
                else:
                    row_id = rng.choice(my_rows)
                    url = new_file(client_id)
                    yield from session.execute(
                        "UPDATE media SET doc = ?, attr = 'moved' "
                        "WHERE id = ?", (url, row_id))
                    yield from session.commit()
                    report.updates += 1
                report.record_latency(system.sim.now - started)
            except TransactionAborted as error:
                report.note_abort(error.reason)
                try:
                    yield from session.rollback()
                except ReproError:
                    pass
            except ReproError as error:
                report.note_abort(type(error).__name__)
                try:
                    yield from session.rollback()
                except ReproError:
                    pass

    def root():
        procs = [system.sim.spawn(client(i), f"client-{i}")
                 for i in range(config.clients)]
        for proc in procs:
            yield from proc.join()

    system.run(root())

    dlfm = system.dlfms["fs1"]
    for locks in (dlfm.db.locks, system.host.db.locks):
        report.deadlocks += locks.metrics.deadlocks
        report.lock_timeouts += locks.metrics.timeouts
        report.escalations += locks.metrics.escalations
    report.commit_retries = (dlfm.metrics.commit_retries
                             + dlfm.metrics.abort_retries)
    report.log_fulls = dlfm.db.wal.metrics.log_fulls
    report.virtual_seconds = max(config.duration, 1e-9)
    report.system = system  # expose for bench-specific inspection
    return report

"""Plan execution with the DB2-style locking protocol.

All methods are kernel generators (they may block on locks). The locking
rules implemented here are the ones the paper's lessons depend on:

* readers take table IS + row S; writers take table IX + row X;
* under **RR** read locks are held to commit and, with next-key locking
  on, the key past the end of every index range is S-locked (phantom
  protection); under **CS** read locks on qualifying rows last until the
  end of the statement and non-qualifying rows are released immediately;
* **index maintenance** (insert/delete of index entries) X-locks the next
  key whenever ``next_key_locking`` is configured on, regardless of
  isolation — this is the behaviour DLFM disabled (E3);
* a table scan locks *every row it examines*, which is why the optimizer
  picking table scans under concurrency "causes havoc" (E4);
* update/delete scans lock examined rows S then convert qualifying rows
  to X (conversion deadlocks included, as in real life without U locks);
* under **SI** plain reads take no locks at all — they resolve against
  the begin-snapshot version chains (see ``storage.py``) — while writes
  keep the full X/next-key protocol above plus a first-writer-wins
  check, so mixed SI/RR workloads preserve RR's guarantees.

Statement-level atomicity: the session wraps each statement in an
implicit savepoint and undoes partial work on statement errors.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DuplicateKeyError, SQLTypeError
from repro.minidb.btree import INFINITY_KEY, encode_key, encode_value
from repro.minidb.locks import LockMode
from repro.sql.optimizer import (AccessPath, DeletePlan, InsertPlan,
                                 SelectPlan, UpdatePlan)


class ResultSet:
    """Materialized query result."""

    def __init__(self, columns: list[str], rows: list[tuple]):
        self.columns = columns
        self.rows = rows

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, index: int) -> tuple:
        return self.rows[index]

    def scalar(self):
        """First column of the first row, or None for an empty result."""
        return self.rows[0][0] if self.rows else None

    def dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<ResultSet {self.columns} x{len(self.rows)}>"


class Executor:
    def __init__(self, db):
        self.db = db

    # ------------------------------------------------------------------ SELECT

    def run_select(self, txn, plan: SelectPlan, params: tuple):
        rows = yield from self._select_rows(txn, plan, params)
        if plan.except_plan is not None:
            removed = yield from self._select_rows(txn, plan.except_plan,
                                                   params)
            removed_set = set(removed)
            seen: set = set()
            kept = []
            for row in rows:
                if row not in removed_set and row not in seen:
                    seen.add(row)
                    kept.append(row)
            rows = kept
        if plan.limit is not None:
            limit = plan.limit({}, params)
            if not isinstance(limit, int) or limit < 0:
                raise SQLTypeError(f"bad LIMIT value {limit!r}")
            rows = rows[:limit]
        return ResultSet(plan.columns, rows)

    def _select_rows(self, txn, plan: SelectPlan, params: tuple):
        binding = plan.access.binding
        # SI: plain reads resolve against the begin snapshot with no
        # table/row/key locks at all. FOR UPDATE is a write intent and
        # keeps the locking protocol (current-state read, like RR).
        si_read = txn.snapshot_lsn is not None and not plan.for_update
        if plan.for_update:
            # DB2 update cursors take U when update locking is enabled:
            # writers serialize against each other without blocking
            # plain readers, and without S→X conversion deadlocks.
            read_mode = (LockMode.U if self.db.config.update_locks
                         else LockMode.X)
        else:
            read_mode = LockMode.S
        if not si_read:
            table_intent = LockMode.IX if plan.for_update else LockMode.IS
            yield from self.db.locks.acquire(
                txn, ("table", plan.table.name), table_intent)
            if plan.join is not None:
                yield from self.db.locks.acquire(
                    txn, ("table", plan.join.table.name), LockMode.IS)

        produced: list[tuple] = []
        order_keys: list[tuple] = []
        cs_locks: list = []

        scanned = yield from self._scan_access(
            txn, plan.access, params, {}, read_mode, cs_locks,
            write_scan=plan.for_update, si=si_read)
        for rid, row in scanned:
            env = {binding: row}
            if plan.join is not None:
                inner_rows = yield from self._scan_access(
                    txn, plan.join.access, params, env, LockMode.S, cs_locks,
                    write_scan=False, si=si_read)
                for inner_rid, inner_row in inner_rows:
                    env2 = dict(env)
                    env2[plan.join.access.binding] = inner_row
                    if not self._passes(plan.join_filter, env2, params):
                        continue
                    if not self._passes(plan.filter, env2, params):
                        continue
                    self._emit(plan, env2, params, produced, order_keys)
            else:
                if not self._passes(plan.filter, env, params):
                    self._maybe_release_cs(txn, plan, rid)
                    continue
                self._emit(plan, env, params, produced, order_keys)

        if txn.isolation == "CS" and not plan.for_update:
            self._release_cs_locks(txn, cs_locks)

        if plan.aggregates is not None:
            return [self._aggregate_row(plan, produced, order_keys)]

        if plan.order_by:
            paired = sorted(zip(order_keys, produced),
                            key=lambda pair: pair[0])
            produced = [row for _, row in paired]
        return produced

    def _emit(self, plan: SelectPlan, env: dict, params: tuple,
              produced: list, order_keys: list) -> None:
        if plan.aggregates is not None:
            # For aggregates we keep the raw env values per spec.
            values = tuple(
                (spec.arg(env, params) if spec.arg is not None else 1)
                for spec in plan.aggregates)
            produced.append(values)
            return
        if plan.items is None:
            row = env[plan.access.binding]
        else:
            row = tuple(item(env, params) for item, _ in plan.items)
        produced.append(row)
        if plan.order_by:
            key = []
            for compiled, descending in plan.order_by:
                value = compiled(env, params)
                encoded = encode_value(value)
                key.append(_Reversed(encoded) if descending else encoded)
            order_keys.append(tuple(key))

    def _aggregate_row(self, plan: SelectPlan, produced: list[tuple],
                       _order_keys) -> tuple:
        result = []
        for i, spec in enumerate(plan.aggregates):
            column = [row[i] for row in produced]
            non_null = [v for v in column if v is not None]
            if spec.name == "COUNT":
                result.append(len(non_null) if spec.arg is not None
                              else len(column))
            elif spec.name == "MAX":
                result.append(max(non_null) if non_null else None)
            elif spec.name == "MIN":
                result.append(min(non_null) if non_null else None)
            elif spec.name == "SUM":
                result.append(sum(non_null) if non_null else None)
            else:  # pragma: no cover - parser restricts names
                raise SQLTypeError(f"unknown aggregate {spec.name}")
        return tuple(result)

    @staticmethod
    def _passes(compiled, env: dict, params: tuple) -> bool:
        if compiled is None:
            return True
        value = compiled(env, params)
        return bool(value) and value is not None

    # ------------------------------------------------------------------ scans

    def _scan_access(self, txn, access: AccessPath, params: tuple,
                     outer_env: dict, row_mode: LockMode, cs_locks: list,
                     write_scan: bool, si: bool = False):
        """Lock-and-fetch all rows the access path touches.

        Returns list of (rid, row). ``row_mode`` is the lock taken on each
        examined row (S for reads; write scans take S then convert
        qualifying rows later). With ``si`` the scan is lock-free: rows
        resolve through the version chains at the transaction's begin
        snapshot (own writes read the slot).
        """
        heap = self.db.heaps[access.table]
        rows: list = []
        if si:
            return self._scan_snapshot(txn, access, params, outer_env)
        if access.kind == "table_scan":
            self.db.metrics.table_scans += 1
            for rid, _ in list(heap.scan()):
                newly = yield from self.db.locks.acquire(
                    txn, ("row", access.table, rid), row_mode)
                row = heap.fetch(rid)  # re-fetch: may have changed while blocked
                if row is None:
                    if newly:
                        self.db.locks.release(txn, ("row", access.table, rid))
                    continue
                if newly:
                    cs_locks.append(("row", access.table, rid))
                rows.append((rid, row))
            return rows

        self.db.metrics.index_scans += 1
        probe = access.probe
        btree = self.db.btrees[probe.index.name]
        eq_values = [expr(outer_env, params) for expr in probe.eq_exprs]
        lo_vals = list(eq_values)
        hi_vals = list(eq_values)
        lo_inc = hi_inc = True
        if probe.lo is not None:
            lo_vals.append(probe.lo[0](outer_env, params))
            lo_inc = probe.lo[1]
        if probe.hi is not None:
            hi_vals.append(probe.hi[0](outer_env, params))
            hi_inc = probe.hi[1]
        lo = tuple(lo_vals) if lo_vals else None
        hi = tuple(hi_vals) if hi_vals else None

        key_protect = (self.db.config.next_key_locking
                       and txn.isolation == "RR")
        matches = list(btree.scan_range(lo, lo_inc, hi, hi_inc))
        for ekey, rid in matches:
            if key_protect:
                # ARIES/KVL: each key read under RR is S-locked for commit
                # duration, so inserters' next-key X locks collide with us.
                yield from self.db.locks.acquire(
                    txn, ("key", access.table, probe.index.name, ekey),
                    LockMode.S)
            newly = yield from self.db.locks.acquire(
                txn, ("row", access.table, rid), row_mode)
            row = heap.fetch(rid)
            if row is None:
                if newly:
                    self.db.locks.release(txn, ("row", access.table, rid))
                continue
            if newly:
                cs_locks.append(("row", access.table, rid))
            rows.append((rid, row))

        # Phantom protection: under RR with next-key locking, lock the key
        # past the end of the scanned range.
        if key_protect:
            boundary = (tuple(hi_vals) if hi_vals else None)
            next_key = (btree.next_key_after(boundary) if boundary is not None
                        else INFINITY_KEY)
            nk_mode = LockMode.X if write_scan else LockMode.S
            yield from self.db.locks.acquire(
                txn, ("key", access.table, probe.index.name, next_key),
                nk_mode)
        return rows

    def _scan_snapshot(self, txn, access: AccessPath, params: tuple,
                       outer_env: dict) -> list:
        """SI access path: resolve rows at the begin snapshot, lock-free.

        Index probes need care: the B+tree reflects *current* keys (and
        uncommitted writers' entries), so probe matches are candidates
        only — each candidate's visible version is re-checked against
        the probe bounds — and rows whose visible version left the index
        (deleted or re-keyed after the snapshot) are found through their
        live chains, the L-Store-style tail sidecar scan.
        """
        heap = self.db.heaps[access.table]
        ts = txn.snapshot_lsn
        own = frozenset(r for t, r in txn.touched if t == access.table)
        if access.kind == "table_scan":
            self.db.metrics.table_scans += 1
            return list(heap.snapshot_scan(ts, own))

        self.db.metrics.index_scans += 1
        probe = access.probe
        btree = self.db.btrees[probe.index.name]
        eq_values = [expr(outer_env, params) for expr in probe.eq_exprs]
        lo_vals = list(eq_values)
        hi_vals = list(eq_values)
        lo_inc = hi_inc = True
        if probe.lo is not None:
            lo_vals.append(probe.lo[0](outer_env, params))
            lo_inc = probe.lo[1]
        if probe.hi is not None:
            hi_vals.append(probe.hi[0](outer_env, params))
            hi_inc = probe.hi[1]
        lo = tuple(lo_vals) if lo_vals else None
        hi = tuple(hi_vals) if hi_vals else None
        elo = encode_key(lo) if lo is not None else None
        ehi = encode_key(hi) if hi is not None else None

        candidates: list = []
        seen: set = set()
        for _, rid in btree.scan_range(lo, lo_inc, hi, hi_inc):
            if rid not in seen:
                seen.add(rid)
                candidates.append(rid)
        for rid in heap.version_rids():
            if rid not in seen:
                seen.add(rid)
                candidates.append(rid)

        table = self.db.catalog.tables[access.table]
        columns = probe.index.columns
        rows: list = []
        for rid in candidates:
            row = heap.snapshot_fetch(rid, ts, own)
            if row is None:
                continue
            ekey = encode_key(
                tuple(row[table.position(c)] for c in columns))
            if elo is not None:
                prefix = ekey[:len(elo)]
                if prefix < elo or (prefix == elo and not lo_inc):
                    continue
            if ehi is not None:
                prefix = ekey[:len(ehi)]
                if prefix > ehi or (prefix == ehi and not hi_inc):
                    continue
            rows.append((rid, row))
        return rows

    def _maybe_release_cs(self, txn, plan: SelectPlan, rid) -> None:
        """CS: a scanned row that did not qualify is unlocked immediately."""
        if txn.isolation == "CS" and not plan.for_update:
            self.db.locks.release(txn, ("row", plan.table.name, rid))

    def _release_cs_locks(self, txn, cs_locks: list) -> None:
        for resource in cs_locks:
            self.db.locks.release(txn, resource)

    # ------------------------------------------------------------------ INSERT

    def run_insert(self, txn, plan: InsertPlan, params: tuple):
        table = plan.table
        yield from self.db.locks.acquire(
            txn, ("table", table.name), LockMode.IX)
        count = 0
        for row_exprs in plan.rows:
            row = tuple(expr({}, params) if expr is not None else None
                        for expr in row_exprs)
            yield from self._insert_row(txn, table, row)
            count += 1
        return count

    def _insert_row(self, txn, table, row: tuple):
        self._typecheck(table, row)

        heap = self.db.heaps[table.name]
        # Lock the landing rid before the row becomes visible.
        while True:
            rid = heap.candidate_rid()
            newly = yield from self.db.locks.acquire(
                txn, ("row", table.name, rid), LockMode.X)
            if heap.is_free(rid):
                break
            # Someone landed there while we waited; drop the stale lock
            # (if it is not otherwise ours) and pick a new slot.
            if newly:
                self.db.locks.release(txn, ("row", table.name, rid))

        # Key-value locks for index maintenance (lesson E3: taken whenever
        # the feature is on, irrespective of isolation level). ARIES/KVL:
        # the inserted key is X-locked for commit duration and so is the
        # next key (we hold the latter to commit too — a simplification
        # that only strengthens the paper's observed behaviour).
        indexes = self.db.catalog.indexes_by_table.get(table.name, [])
        bulk = self.db.in_bulk_load(table.name)
        if self.db.config.next_key_locking and not bulk:
            # Bulk LOAD skips key-value locks: deferred entries are not
            # in the B-tree, so next-key resources are meaningless, and
            # the loader is the table's only writer by contract.
            from repro.minidb.btree import encode_key
            for index in indexes:
                key = self._index_key(table, index, row)
                yield from self.db.locks.acquire(
                    txn, ("key", table.name, index.name, encode_key(key)),
                    LockMode.X)
                next_key = self.db.btrees[index.name].next_key_after(key)
                yield from self.db.locks.acquire(
                    txn, ("key", table.name, index.name, next_key),
                    LockMode.X)

        # Unique pre-check (authoritative check is the B-tree insert —
        # except under bulk LOAD, where the insert is deferred and this
        # check, extended over the deferred entries, decides).
        for index in indexes:
            if index.unique and not self._has_null_key(table, index, row):
                key = self._index_key(table, index, row)
                if (self.db.btrees[index.name].search_eq(key)
                        or self.db.bulk_pending_duplicate(
                            table.name, index.name, key)):
                    raise DuplicateKeyError(
                        f"duplicate key {key!r} for unique index "
                        f"{index.name}")

        self.db.log_write("INSERT", txn, table.name, rid, before=None,
                          after=row)
        heap.insert(row, rid=rid)
        self.db.apply_index_insert(table, row, rid)
        self.db.metrics.rows_inserted += 1
        self.db.note_mutation(table.name)

    # ------------------------------------------------------------------ UPDATE

    def run_update(self, txn, plan: UpdatePlan, params: tuple):
        table = plan.table
        yield from self.db.locks.acquire(
            txn, ("table", table.name), LockMode.IX)
        cs_locks: list = []
        scan_mode = (LockMode.U if self.db.config.update_locks
                     else LockMode.S)
        scanned = yield from self._scan_access(
            txn, plan.access, params, {}, scan_mode, cs_locks,
            write_scan=True, si=txn.snapshot_lsn is not None)
        binding = plan.access.binding
        count = 0
        heap = self.db.heaps[table.name]
        for rid, row in scanned:
            env = {binding: row}
            if not self._passes(plan.filter, env, params):
                if txn.isolation == "CS":
                    self.db.locks.release(txn, ("row", table.name, rid))
                continue
            yield from self.db.locks.acquire(
                txn, ("row", table.name, rid), LockMode.X)
            # SI: the scan saw the snapshot version; with the X lock held,
            # first-writer-wins — any version committed past the snapshot
            # aborts us. When it passes, the slot equals the snapshot row.
            self.db.write_conflict_check(txn, table.name, rid)
            current = heap.fetch(rid)
            if current is None:
                continue
            new_row = list(current)
            env = {binding: current}
            for position, compiled in plan.assignments:
                new_row[position] = compiled(env, params)
            new_row = tuple(new_row)
            self._typecheck(table, new_row)
            yield from self._index_maintenance_locks(
                txn, table, current, new_row)
            self.db.log_write("UPDATE", txn, table.name, rid,
                              before=current, after=new_row)
            heap.update(rid, new_row)
            self.db.apply_index_update(table, current, new_row, rid)
            count += 1
        self.db.metrics.rows_updated += count
        if count:
            self.db.note_mutation(table.name, count)
        return count

    # ------------------------------------------------------------------ DELETE

    def run_delete(self, txn, plan: DeletePlan, params: tuple):
        table = plan.table
        yield from self.db.locks.acquire(
            txn, ("table", table.name), LockMode.IX)
        cs_locks: list = []
        scan_mode = (LockMode.U if self.db.config.update_locks
                     else LockMode.S)
        scanned = yield from self._scan_access(
            txn, plan.access, params, {}, scan_mode, cs_locks,
            write_scan=True, si=txn.snapshot_lsn is not None)
        binding = plan.access.binding
        count = 0
        heap = self.db.heaps[table.name]
        for rid, row in scanned:
            env = {binding: row}
            if not self._passes(plan.filter, env, params):
                if txn.isolation == "CS":
                    self.db.locks.release(txn, ("row", table.name, rid))
                continue
            yield from self.db.locks.acquire(
                txn, ("row", table.name, rid), LockMode.X)
            self.db.write_conflict_check(txn, table.name, rid)
            current = heap.fetch(rid)
            if current is None:
                continue
            yield from self._index_maintenance_locks(
                txn, table, current, None)
            self.db.log_write("DELETE", txn, table.name, rid,
                              before=current, after=None)
            heap.delete(rid)
            self.db.apply_index_delete(table, current, rid)
            count += 1
        self.db.metrics.rows_deleted += count
        if count:
            self.db.note_mutation(table.name, count)
        return count

    def _index_maintenance_locks(self, txn, table, old_row,
                                 new_row: Optional[tuple]):
        """Next-key X locks for delete/update index maintenance (E3)."""
        if (not self.db.config.next_key_locking
                or self.db.in_bulk_load(table.name)):
            return
        from repro.minidb.btree import encode_key
        for index in self.db.catalog.indexes_by_table.get(table.name, []):
            btree = self.db.btrees[index.name]
            old_key = self._index_key(table, index, old_row)
            touched = [old_key]
            if new_row is not None:
                new_key = self._index_key(table, index, new_row)
                if new_key == old_key:
                    continue  # this index is untouched by the update
                touched.append(new_key)
            for key in touched:
                yield from self.db.locks.acquire(
                    txn, ("key", table.name, index.name, encode_key(key)),
                    LockMode.X)
                next_key = btree.next_key_after(key)
                yield from self.db.locks.acquire(
                    txn, ("key", table.name, index.name, next_key),
                    LockMode.X)

    # ------------------------------------------------------------------ helpers

    @staticmethod
    def _index_key(table, index, row: tuple) -> tuple:
        return tuple(row[table.position(c)] for c in index.columns)

    @staticmethod
    def _has_null_key(table, index, row: tuple) -> bool:
        return any(row[table.position(c)] is None for c in index.columns)

    _PY_TYPES = {"INT": (int,), "FLOAT": (int, float), "TEXT": (str,),
                 "BOOL": (bool, int)}

    def _typecheck(self, table, row: tuple) -> None:
        for column, value in zip(table.columns, row):
            if value is None:
                continue
            expected = self._PY_TYPES[column.type]
            if not isinstance(value, expected):
                raise SQLTypeError(
                    f"column {table.name}.{column.name} is {column.type}, "
                    f"got {type(value).__name__} {value!r}")


class _Reversed:
    """Sort-key wrapper inverting comparison for ORDER BY ... DESC."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value

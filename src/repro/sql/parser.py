"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from typing import Optional

from repro.errors import SQLSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, tokenize

_TYPE_MAP = {
    "INT": "INT", "INTEGER": "INT", "BIGINT": "INT",
    "FLOAT": "FLOAT", "REAL": "FLOAT",
    "TEXT": "TEXT", "VARCHAR": "TEXT",
    "BOOL": "BOOL", "BOOLEAN": "BOOL",
}


def parse(sql: str) -> ast.Statement:
    return _Parser(tokenize(sql), sql).parse_statement()


class _Parser:
    def __init__(self, tokens: list[Token], sql: str):
        self.tokens = tokens
        self.sql = sql
        self.pos = 0
        self.param_count = 0

    # -- token plumbing ---------------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.cur
        self.pos += 1
        return token

    def check_kw(self, *words: str) -> bool:
        return self.cur.kind == "KEYWORD" and self.cur.value in words

    def accept_kw(self, *words: str) -> bool:
        if self.check_kw(*words):
            self.advance()
            return True
        return False

    def expect_kw(self, word: str) -> None:
        if not self.accept_kw(word):
            self.fail(f"expected {word}")

    def accept_op(self, op: str) -> bool:
        if self.cur.kind == "OP" and self.cur.value == op:
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            self.fail(f"expected {op!r}")

    def expect_ident(self) -> str:
        if self.cur.kind == "IDENT":
            return self.advance().value
        self.fail("expected identifier")

    def fail(self, message: str) -> None:
        raise SQLSyntaxError(
            f"{message} at position {self.cur.pos} "
            f"(near {self.cur.value!r}) in: {self.sql!r}")

    # -- statements --------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        stmt = self._statement()
        if self.cur.kind != "EOF":
            self.fail("trailing input")
        return stmt

    def _statement(self) -> ast.Statement:
        if self.accept_kw("EXPLAIN"):
            return ast.Explain(self._statement())
        if self.check_kw("SELECT"):
            return self._select(allow_except=True)
        if self.accept_kw("INSERT"):
            return self._insert()
        if self.accept_kw("UPDATE"):
            return self._update()
        if self.accept_kw("DELETE"):
            return self._delete()
        if self.accept_kw("CREATE"):
            return self._create()
        if self.accept_kw("DROP"):
            if self.accept_kw("INDEX"):
                return ast.DropIndex(self.expect_ident())
            self.expect_kw("TABLE")
            return ast.DropTable(self.expect_ident())
        self.fail("expected a statement")

    def _select(self, allow_except: bool) -> ast.Select:
        self.expect_kw("SELECT")
        items: Optional[tuple[ast.SelectItem, ...]]
        if self.accept_op("*"):
            items = None
        else:
            parsed = [self._select_item()]
            while self.accept_op(","):
                parsed.append(self._select_item())
            items = tuple(parsed)
        self.expect_kw("FROM")
        table = self._table_ref()
        join = None
        if self.accept_kw("INNER"):
            self.expect_kw("JOIN")
            join = self._join_clause()
        elif self.accept_kw("JOIN"):
            join = self._join_clause()
        where = self._expr() if self.accept_kw("WHERE") else None
        order_by: list[ast.OrderItem] = []
        if self.accept_kw("ORDER"):
            self.expect_kw("BY")
            order_by.append(self._order_item())
            while self.accept_op(","):
                order_by.append(self._order_item())
        limit = None
        if self.accept_kw("LIMIT"):
            if self.accept_op("?"):
                limit = ast.Param(self.param_count)
                self.param_count += 1
            else:
                token = self.advance()
                if token.kind != "NUMBER" or not isinstance(token.value, int):
                    self.fail("expected integer or ? LIMIT")
                limit = ast.Literal(token.value)
        for_update = False
        if self.accept_kw("FOR"):
            self.expect_kw("UPDATE")
            for_update = True
        except_select = None
        if allow_except and self.accept_kw("EXCEPT"):
            except_select = self._select(allow_except=False)
        return ast.Select(items=items, table=table, join=join, where=where,
                          order_by=tuple(order_by), for_update=for_update,
                          except_select=except_select, limit=limit)

    def _join_clause(self) -> ast.Join:
        join_table = self._table_ref()
        self.expect_kw("ON")
        return ast.Join(join_table, self._expr())

    def _select_item(self) -> ast.SelectItem:
        expr = self._expr()
        alias = None
        if self.accept_kw("AS"):
            alias = self.expect_ident()
        return ast.SelectItem(expr, alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self._primary()
        if not isinstance(expr, ast.ColumnRef):
            self.fail("ORDER BY supports only column references")
        descending = False
        if self.accept_kw("DESC"):
            descending = True
        else:
            self.accept_kw("ASC")
        return ast.OrderItem(expr, descending)

    def _table_ref(self) -> ast.TableRef:
        name = self.expect_ident()
        alias = None
        if self.cur.kind == "IDENT":
            alias = self.advance().value
        elif self.accept_kw("AS"):
            alias = self.expect_ident()
        return ast.TableRef(name, alias)

    def _insert(self) -> ast.Insert:
        self.expect_kw("INTO")
        table = self.expect_ident()
        self.expect_op("(")
        columns = [self.expect_ident()]
        while self.accept_op(","):
            columns.append(self.expect_ident())
        self.expect_op(")")
        self.expect_kw("VALUES")
        rows = [self._values_row(len(columns))]
        while self.accept_op(","):
            rows.append(self._values_row(len(columns)))
        return ast.Insert(table, tuple(columns), rows[0],
                          more_rows=tuple(rows[1:]))

    def _values_row(self, n_columns: int) -> tuple:
        self.expect_op("(")
        values = [self._expr()]
        while self.accept_op(","):
            values.append(self._expr())
        self.expect_op(")")
        if len(values) != n_columns:
            self.fail(f"{n_columns} columns but {len(values)} values")
        return tuple(values)

    def _update(self) -> ast.Update:
        table = self.expect_ident()
        self.expect_kw("SET")
        assignments = [self._assignment()]
        while self.accept_op(","):
            assignments.append(self._assignment())
        where = self._expr() if self.accept_kw("WHERE") else None
        return ast.Update(table, tuple(assignments), where)

    def _assignment(self) -> tuple[str, ast.Expr]:
        column = self.expect_ident()
        self.expect_op("=")
        return column, self._expr()

    def _delete(self) -> ast.Delete:
        self.expect_kw("FROM")
        table = self.expect_ident()
        where = self._expr() if self.accept_kw("WHERE") else None
        return ast.Delete(table, where)

    def _create(self) -> ast.Statement:
        unique = self.accept_kw("UNIQUE")
        if self.accept_kw("TABLE"):
            if unique:
                self.fail("UNIQUE TABLE is not a thing")
            return self._create_table()
        self.expect_kw("INDEX")
        name = self.expect_ident()
        self.expect_kw("ON")
        table = self.expect_ident()
        self.expect_op("(")
        columns = [self.expect_ident()]
        while self.accept_op(","):
            columns.append(self.expect_ident())
        self.expect_op(")")
        return ast.CreateIndex(name, table, tuple(columns), unique)

    def _create_table(self) -> ast.CreateTable:
        name = self.expect_ident()
        self.expect_op("(")
        columns = [self._column_def()]
        while self.accept_op(","):
            columns.append(self._column_def())
        self.expect_op(")")
        return ast.CreateTable(name, tuple(columns))

    def _column_def(self) -> tuple[str, str]:
        name = self.expect_ident()
        if self.cur.kind != "TYPE":
            self.fail("expected a column type")
        return name, _TYPE_MAP[self.advance().value]

    # -- expressions (precedence: OR < AND < NOT < predicate < additive) -----------

    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        items = [self._and_expr()]
        while self.accept_kw("OR"):
            items.append(self._and_expr())
        return items[0] if len(items) == 1 else ast.Or(tuple(items))

    def _and_expr(self) -> ast.Expr:
        items = [self._not_expr()]
        while self.accept_kw("AND"):
            items.append(self._not_expr())
        return items[0] if len(items) == 1 else ast.And(tuple(items))

    def _not_expr(self) -> ast.Expr:
        if self.accept_kw("NOT"):
            return ast.Not(self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Expr:
        left = self._additive()
        if self.cur.kind == "OP" and self.cur.value in ("=", "<>", "!=", "<",
                                                        "<=", ">", ">="):
            op = self.advance().value
            if op == "!=":
                op = "<>"
            return ast.Comparison(op, left, self._additive())
        if self.accept_kw("IS"):
            negated = self.accept_kw("NOT")
            self.expect_kw("NULL")
            return ast.IsNull(left, negated)
        if self.accept_kw("IN"):
            self.expect_op("(")
            options = [self._additive()]
            while self.accept_op(","):
                options.append(self._additive())
            self.expect_op(")")
            return ast.InList(left, tuple(options))
        if self.accept_kw("BETWEEN"):
            low = self._additive()
            self.expect_kw("AND")
            return ast.Between(left, low, self._additive())
        return left

    def _additive(self) -> ast.Expr:
        left = self._primary()
        while self.cur.kind == "OP" and self.cur.value in ("+", "-"):
            op = self.advance().value
            left = ast.Arithmetic(op, left, self._primary())
        return left

    def _primary(self) -> ast.Expr:
        token = self.cur
        if token.kind == "NUMBER" or token.kind == "STRING":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "OP" and token.value == "?":
            self.advance()
            param = ast.Param(self.param_count)
            self.param_count += 1
            return param
        if self.check_kw("NULL"):
            self.advance()
            return ast.Literal(None)
        if self.check_kw("TRUE"):
            self.advance()
            return ast.Literal(True)
        if self.check_kw("FALSE"):
            self.advance()
            return ast.Literal(False)
        if self.check_kw("COUNT", "MAX", "MIN", "SUM"):
            name = self.advance().value
            self.expect_op("(")
            if name == "COUNT" and self.accept_op("*"):
                self.expect_op(")")
                return ast.FuncCall("COUNT", None)
            arg = self._expr()
            self.expect_op(")")
            return ast.FuncCall(name, arg)
        if token.kind == "IDENT":
            name = self.advance().value
            if self.accept_op("."):
                return ast.ColumnRef(self.expect_ident(), qualifier=name)
            return ast.ColumnRef(name)
        if self.accept_op("("):
            expr = self._expr()
            self.expect_op(")")
            return expr
        if self.accept_op("-"):
            inner = self._primary()
            if isinstance(inner, ast.Literal) and isinstance(
                    inner.value, (int, float)):
                return ast.Literal(-inner.value)
            return ast.Arithmetic("-", ast.Literal(0), inner)
        self.fail("expected an expression")

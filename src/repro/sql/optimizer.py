"""Cost-based access-path selection.

This is the optimizer whose behaviour the paper fights with:

* it costs plans purely from :class:`~repro.minidb.catalog.TableStats`;
  a freshly created table has ``card=0`` so a table scan (cost ≈ 1 page)
  beats any index scan (root-to-leaf traversal plus probe constant) — the
  "when the table size is small, the optimizer could still pick table
  scan even when an index is available" gotcha;
* it knows **nothing about lock contention** — the cost model contains no
  term for the row locks a table scan will take under a concurrent
  workload (lesson §4, experiment E4).

Plans record their chosen access path plus the estimated cost so tests
and benchmarks can assert which plan won and why.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import SQLTypeError
from repro.minidb.catalog import Catalog, IndexDef, TableDef, TableStats
from repro.sql import ast
from repro.sql.expr import (Compiled, Scope, compile_expr, conjuncts,
                            expr_is_constant)

_FLIP = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass
class IndexProbe:
    """Runtime recipe for probing one index."""

    index: IndexDef
    eq_exprs: list[Compiled]               # values for the leading columns
    lo: Optional[tuple[Compiled, bool]] = None  # (value, inclusive)
    hi: Optional[tuple[Compiled, bool]] = None


@dataclass
class AccessPath:
    kind: str                  # "table_scan" | "index_scan"
    table: str
    binding: str
    probe: Optional[IndexProbe]
    cost: float

    @property
    def index_name(self) -> Optional[str]:
        return self.probe.index.name if self.probe else None


@dataclass
class JoinPlan:
    access: AccessPath
    table: TableDef


@dataclass
class AggSpec:
    name: str
    arg: Optional[Compiled]
    label: str


@dataclass
class SelectPlan:
    access: AccessPath
    table: TableDef
    filter: Optional[Compiled]
    join: Optional[JoinPlan]
    join_filter: Optional[Compiled]
    columns: list[str]
    items: Optional[list[tuple[Compiled, str]]]   # None → star
    aggregates: Optional[list[AggSpec]]
    order_by: list[tuple[Compiled, bool]]
    for_update: bool
    limit: Optional[Compiled]
    except_plan: Optional["SelectPlan"]

    kind: str = "select"
    tables: tuple[str, ...] = ()


@dataclass
class InsertPlan:
    table: TableDef
    #: One compiled expression list per VALUES row, each by column
    #: position; None → NULL. Multi-row inserts carry several.
    rows: list[list[Optional[Compiled]]]

    kind: str = "insert"
    tables: tuple[str, ...] = ()


@dataclass
class UpdatePlan:
    table: TableDef
    access: AccessPath
    filter: Optional[Compiled]
    assignments: list[tuple[int, Compiled]]

    kind: str = "update"
    tables: tuple[str, ...] = ()


@dataclass
class DeletePlan:
    table: TableDef
    access: AccessPath
    filter: Optional[Compiled]

    kind: str = "delete"
    tables: tuple[str, ...] = ()


# ---------------------------------------------------------------------------
# cost model — note the absence of any concurrency/locking term
# ---------------------------------------------------------------------------

def cost_table_scan(stats: TableStats) -> float:
    return max(1.0, float(stats.npages)) + 0.05 * max(stats.card, 0)


def estimated_levels(stats: TableStats) -> int:
    if stats.card <= 1:
        return 1
    return 1 + max(1, math.ceil(math.log(stats.card, 100)))


#: System-R-flavoured default selectivities for range predicates.
RANGE_SELECTIVITY_ONE_SIDED = 1.0 / 3.0
RANGE_SELECTIVITY_BOUNDED = 0.01


def cost_index_scan(stats: TableStats, index: IndexDef, n_eq: int,
                    range_bounds: int) -> float:
    """``range_bounds``: 0 (no range), 1 (one-sided), 2 (lo and hi)."""
    selectivity = 1.0
    for column in index.columns[:n_eq]:
        selectivity /= stats.distinct(column)
    if range_bounds == 1:
        selectivity *= RANGE_SELECTIVITY_ONE_SIDED
    elif range_bounds >= 2:
        selectivity *= RANGE_SELECTIVITY_BOUNDED
    matching = selectivity * max(stats.card, 0)
    return estimated_levels(stats) + matching * 2.0 + 0.2


# ---------------------------------------------------------------------------
# sargable-predicate extraction
# ---------------------------------------------------------------------------

@dataclass
class _Sarg:
    column: str
    op: str               # = | < | <= | > | >=
    value: ast.Expr       # Literal/Param, or ColumnRef into another binding


def _extract_sargs(where: Optional[ast.Expr], binding: str,
                   table: TableDef,
                   outer_bindings: frozenset[str]) -> list[_Sarg]:
    """Conjuncts usable as index probes for ``binding``.

    ``outer_bindings`` are bindings whose rows are available when the
    probe runs (join outer side), so equality against their columns is
    sargable too (index nested-loop join).
    """
    sargs: list[_Sarg] = []
    for conjunct in conjuncts(where):
        if isinstance(conjunct, ast.Between):
            # col BETWEEN a AND b ≡ col >= a AND col <= b
            if (_is_local_column(conjunct.item, binding, table)
                    and expr_is_constant(conjunct.low)
                    and expr_is_constant(conjunct.high)):
                sargs.append(_Sarg(conjunct.item.name, ">=", conjunct.low))
                sargs.append(_Sarg(conjunct.item.name, "<=", conjunct.high))
            continue
        sarg = _sarg_from(conjunct, binding, table, outer_bindings)
        if sarg is not None:
            sargs.append(sarg)
    return sargs


def _sarg_from(conjunct: ast.Expr, binding: str, table: TableDef,
               outer_bindings: frozenset[str]) -> Optional[_Sarg]:
    if not isinstance(conjunct, ast.Comparison) or conjunct.op == "<>":
        return None
    left, right, op = conjunct.left, conjunct.right, conjunct.op
    if _is_local_column(right, binding, table) and not _is_local_column(
            left, binding, table):
        left, right = right, left
        op = _FLIP[op]
    if not _is_local_column(left, binding, table):
        return None
    if expr_is_constant(right):
        return _Sarg(left.name, op, right)
    if (isinstance(right, ast.ColumnRef) and right.qualifier is not None
            and right.qualifier in outer_bindings):
        return _Sarg(left.name, op, right)
    return None


def _is_local_column(expr: ast.Expr, binding: str, table: TableDef) -> bool:
    if not isinstance(expr, ast.ColumnRef):
        return False
    if expr.qualifier is not None:
        return expr.qualifier == binding
    return expr.name in table.positions


# ---------------------------------------------------------------------------
# access-path selection
# ---------------------------------------------------------------------------

def choose_access(catalog: Catalog, table: TableDef, binding: str,
                  where: Optional[ast.Expr], scope: Scope,
                  outer_bindings: frozenset[str] = frozenset()) -> AccessPath:
    stats = catalog.stats_for(table.name)
    sargs = _extract_sargs(where, binding, table, outer_bindings)
    best = AccessPath("table_scan", table.name, binding, None,
                      cost_table_scan(stats))
    for index in catalog.indexes_by_table.get(table.name, []):
        candidate = _index_candidate(index, sargs, stats, table, binding,
                                     scope)
        if candidate is not None and candidate.cost < best.cost:
            best = candidate
    return best


def _index_candidate(index: IndexDef, sargs: list[_Sarg], stats: TableStats,
                     table: TableDef, binding: str,
                     scope: Scope) -> Optional[AccessPath]:
    eq_by_col = {s.column: s for s in sargs if s.op == "="}
    eq_exprs: list[Compiled] = []
    n_eq = 0
    for column in index.columns:
        sarg = eq_by_col.get(column)
        if sarg is None:
            break
        eq_exprs.append(compile_expr(sarg.value, scope))
        n_eq += 1
    lo = hi = None
    if n_eq < len(index.columns):
        range_col = index.columns[n_eq]
        for sarg in sargs:
            if sarg.column != range_col:
                continue
            compiled = compile_expr(sarg.value, scope)
            if sarg.op in (">", ">=") and lo is None:
                lo = (compiled, sarg.op == ">=")
            elif sarg.op in ("<", "<=") and hi is None:
                hi = (compiled, sarg.op == "<=")
    range_bounds = (lo is not None) + (hi is not None)
    if n_eq == 0 and range_bounds == 0:
        return None
    cost = cost_index_scan(stats, index, n_eq, range_bounds)
    probe = IndexProbe(index, eq_exprs, lo, hi)
    return AccessPath("index_scan", table.name, binding, probe, cost)


# ---------------------------------------------------------------------------
# statement planning
# ---------------------------------------------------------------------------

def plan_statement(catalog: Catalog, stmt: ast.Statement):
    if isinstance(stmt, ast.Select):
        return _plan_select(catalog, stmt)
    if isinstance(stmt, ast.Insert):
        return _plan_insert(catalog, stmt)
    if isinstance(stmt, ast.Update):
        return _plan_update(catalog, stmt)
    if isinstance(stmt, ast.Delete):
        return _plan_delete(catalog, stmt)
    raise SQLTypeError(f"not plannable: {stmt!r}")


def _plan_select(catalog: Catalog, stmt: ast.Select) -> SelectPlan:
    outer = catalog.require_table(stmt.table.name)
    bindings = {stmt.table.binding: outer}
    inner_def = None
    if stmt.join is not None:
        inner_def = catalog.require_table(stmt.join.table.name)
        if stmt.join.table.binding in bindings:
            raise SQLTypeError("duplicate table binding in join")
        bindings[stmt.join.table.binding] = inner_def
    scope = Scope(bindings)

    # Outer access: sargs come only from WHERE (no outer rows available).
    outer_scope = Scope({stmt.table.binding: outer})
    access = choose_access(catalog, outer, stmt.table.binding, stmt.where,
                           outer_scope)

    join_plan = None
    join_filter = None
    if stmt.join is not None:
        combined = _and_exprs(stmt.join.on, stmt.where)
        inner_access = choose_access(
            catalog, inner_def, stmt.join.table.binding, combined, scope,
            outer_bindings=frozenset({stmt.table.binding}))
        join_plan = JoinPlan(inner_access, inner_def)
        join_filter = compile_expr(stmt.join.on, scope)

    where_filter = (compile_expr(stmt.where, scope)
                    if stmt.where is not None else None)

    columns: list[str] = []
    items: Optional[list[tuple[Compiled, str]]] = None
    aggregates: Optional[list[AggSpec]] = None
    if stmt.items is None:
        columns = [f"{stmt.table.binding}.{c}" if inner_def else c
                   for c in outer.column_names]
        if inner_def is not None:
            columns += [f"{stmt.join.table.binding}.{c}"
                        for c in inner_def.column_names]
            items = _star_items(stmt, scope, outer, inner_def)
    else:
        agg_items = [item for item in stmt.items
                     if isinstance(item.expr, ast.FuncCall)]
        if agg_items:
            if len(agg_items) != len(stmt.items):
                raise SQLTypeError(
                    "mixing aggregates and plain columns needs GROUP BY, "
                    "which this subset does not support")
            aggregates = []
            for item in stmt.items:
                func: ast.FuncCall = item.expr
                arg = (compile_expr(func.arg, scope)
                       if func.arg is not None else None)
                label = item.alias or func.name.lower()
                aggregates.append(AggSpec(func.name, arg, label))
                columns.append(label)
        else:
            items = []
            for i, item in enumerate(stmt.items):
                label = item.alias or _default_label(item.expr, i)
                items.append((compile_expr(item.expr, scope), label))
                columns.append(label)

    order_by = [(compile_expr(o.expr, scope), o.descending)
                for o in stmt.order_by]
    limit = (compile_expr(stmt.limit, scope)
             if stmt.limit is not None else None)

    except_plan = (_plan_select(catalog, stmt.except_select)
                   if stmt.except_select is not None else None)

    tables = (outer.name,) + ((inner_def.name,) if inner_def else ())
    return SelectPlan(access=access, table=outer, filter=where_filter,
                      join=join_plan, join_filter=join_filter,
                      columns=columns, items=items, aggregates=aggregates,
                      order_by=order_by, for_update=stmt.for_update,
                      limit=limit, except_plan=except_plan,
                      tables=tables)


def _star_items(stmt: ast.Select, scope: Scope, outer: TableDef,
                inner: TableDef) -> list[tuple[Compiled, str]]:
    items = []
    for binding, table in ((stmt.table.binding, outer),
                           (stmt.join.table.binding, inner)):
        for column in table.column_names:
            ref = ast.ColumnRef(column, qualifier=binding)
            items.append((compile_expr(ref, scope), f"{binding}.{column}"))
    return items


def _default_label(expr: ast.Expr, position: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    return f"col{position + 1}"


def _and_exprs(a: Optional[ast.Expr],
               b: Optional[ast.Expr]) -> Optional[ast.Expr]:
    if a is None:
        return b
    if b is None:
        return a
    return ast.And((a, b))


def _plan_insert(catalog: Catalog, stmt: ast.Insert) -> InsertPlan:
    table = catalog.require_table(stmt.table)
    scope = Scope({})
    rows: list[list[Optional[Compiled]]] = []
    for values in stmt.rows:
        row_exprs: list[Optional[Compiled]] = [None] * len(table.columns)
        for column, value in zip(stmt.columns, values):
            row_exprs[table.position(column)] = compile_expr(value, scope)
        rows.append(row_exprs)
    return InsertPlan(table, rows, tables=(table.name,))


def _plan_update(catalog: Catalog, stmt: ast.Update) -> UpdatePlan:
    table = catalog.require_table(stmt.table)
    scope = Scope({stmt.table: table})
    access = choose_access(catalog, table, stmt.table, stmt.where, scope)
    where_filter = (compile_expr(stmt.where, scope)
                    if stmt.where is not None else None)
    assignments = [(table.position(column), compile_expr(value, scope))
                   for column, value in stmt.assignments]
    return UpdatePlan(table, access, where_filter, assignments,
                      tables=(table.name,))


def _plan_delete(catalog: Catalog, stmt: ast.Delete) -> DeletePlan:
    table = catalog.require_table(stmt.table)
    scope = Scope({stmt.table: table})
    access = choose_access(catalog, table, stmt.table, stmt.where, scope)
    where_filter = (compile_expr(stmt.where, scope)
                    if stmt.where is not None else None)
    return DeletePlan(table, access, where_filter, tables=(table.name,))

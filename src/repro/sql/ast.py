"""Abstract syntax tree for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


# -- expressions -------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    value: object  # int | float | str | bool | None


@dataclass(frozen=True)
class Param:
    index: int  # 0-based position of the `?` in the statement


@dataclass(frozen=True)
class ColumnRef:
    name: str
    qualifier: Optional[str] = None  # table name or alias

    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Comparison:
    op: str  # = | <> | < | <= | > | >=
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class And:
    items: tuple["Expr", ...]


@dataclass(frozen=True)
class Or:
    items: tuple["Expr", ...]


@dataclass(frozen=True)
class Not:
    item: "Expr"


@dataclass(frozen=True)
class IsNull:
    item: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class InList:
    item: "Expr"
    options: tuple["Expr", ...]


@dataclass(frozen=True)
class Between:
    item: "Expr"
    low: "Expr"
    high: "Expr"


@dataclass(frozen=True)
class Arithmetic:
    op: str  # + | -
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class FuncCall:
    name: str  # COUNT | MAX | MIN | SUM
    arg: Optional["Expr"]  # None for COUNT(*)


Expr = Union[Literal, Param, ColumnRef, Comparison, And, Or, Not, IsNull,
             InList, Between, Arithmetic, FuncCall]


# -- statements ---------------------------------------------------------------

@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expr: ColumnRef
    descending: bool = False


@dataclass(frozen=True)
class Join:
    table: TableRef
    on: Expr


@dataclass(frozen=True)
class Select:
    items: Optional[tuple[SelectItem, ...]]  # None means `*`
    table: TableRef
    join: Optional[Join] = None
    where: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    for_update: bool = False
    except_select: Optional["Select"] = None
    limit: Optional[Expr] = None  # Literal int or Param


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]
    values: tuple[Expr, ...]
    #: Additional value tuples of a multi-row ``VALUES (...), (...)``
    #: insert; ``values`` stays the first (and usually only) row so
    #: single-row consumers keep working unchanged.
    more_rows: tuple[tuple[Expr, ...], ...] = ()

    @property
    def rows(self) -> tuple[tuple[Expr, ...], ...]:
        """Every value tuple, first row included."""
        return (self.values,) + self.more_rows


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: tuple[tuple[str, str], ...]  # (name, type)


@dataclass(frozen=True)
class CreateIndex:
    index: str
    table: str
    columns: tuple[str, ...]
    unique: bool


@dataclass(frozen=True)
class DropTable:
    table: str


@dataclass(frozen=True)
class DropIndex:
    index: str


@dataclass(frozen=True)
class Explain:
    """EXPLAIN <statement>: report the chosen access path, don't run it."""
    statement: "Statement"


Statement = Union[Select, Insert, Update, Delete, CreateTable, CreateIndex,
                  DropTable, DropIndex, Explain]


def is_write(stmt: Statement) -> bool:
    return isinstance(stmt, (Insert, Update, Delete, CreateTable,
                             CreateIndex, DropTable))

"""Hand-written SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SQLSyntaxError

KEYWORDS = frozenset("""
    SELECT FROM WHERE AND OR NOT IN IS NULL BETWEEN ORDER BY ASC DESC
    INSERT INTO VALUES UPDATE SET DELETE CREATE DROP TABLE INDEX UNIQUE ON
    JOIN INNER EXCEPT TRUE FALSE AS FOR COUNT MAX MIN SUM DISTINCT LIMIT
    EXPLAIN
""".split())

TYPES = frozenset({"INT", "INTEGER", "FLOAT", "REAL", "TEXT", "VARCHAR",
                   "BOOL", "BOOLEAN", "BIGINT"})

#: Multi-char operators first so `<=` never lexes as `<`, `=`.
OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "(", ")", ",", "*",
             "?", ".", "+", "-")


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | TYPE | IDENT | NUMBER | STRING | OP | EOF
    value: object
    pos: int

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Token({self.kind},{self.value!r})"


def tokenize(sql: str) -> list[Token]:
    tokens = list(_scan(sql))
    tokens.append(Token("EOF", None, len(sql)))
    return tokens


def _scan(sql: str) -> Iterator[Token]:
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = i + 1
            parts = []
            while True:
                if end >= n:
                    raise SQLSyntaxError(f"unterminated string at {i}")
                if sql[end] == "'":
                    if end + 1 < n and sql[end + 1] == "'":  # escaped quote
                        parts.append(sql[i + 1:end + 1])
                        i = end + 1
                        end = i + 1
                        continue
                    break
                end += 1
            parts.append(sql[i + 1:end])
            yield Token("STRING", "".join(parts), i)
            i = end + 1
            continue
        if ch.isdigit():
            end = i
            is_float = False
            while end < n and (sql[end].isdigit() or sql[end] == "."):
                if sql[end] == ".":
                    if is_float:
                        break
                    is_float = True
                end += 1
            text = sql[i:end]
            yield Token("NUMBER", float(text) if is_float else int(text), i)
            i = end
            continue
        if ch.isalpha() or ch == "_":
            end = i
            while end < n and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[i:end]
            upper = word.upper()
            if upper in TYPES:
                yield Token("TYPE", upper, i)
            elif upper in KEYWORDS:
                yield Token("KEYWORD", upper, i)
            else:
                yield Token("IDENT", word, i)
            i = end
            continue
        for op in OPERATORS:
            if sql.startswith(op, i):
                yield Token("OP", op, i)
                i += len(op)
                break
        else:
            raise SQLSyntaxError(f"unexpected character {ch!r} at {i}")

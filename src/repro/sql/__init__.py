"""SQL subset: lexer → parser → cost-based optimizer → locking executor.

DLFM talks to its local database *only* through this layer ("DLFM treats
the DB2 as a black box and all requests ... are via standard SQL"). The
optimizer is deliberately faithful to the paper's complaint: it costs
plans purely from catalog statistics and knows nothing about lock
contention (experiment E4).
"""

from repro.sql.parser import parse
from repro.sql.lexer import tokenize

__all__ = ["parse", "tokenize"]

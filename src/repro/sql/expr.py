"""Expression resolution and compilation to Python closures.

Expressions are compiled once at plan time against a :class:`Scope`
(binding name → TableDef). At execution the environment is a dict mapping
binding names to the current row tuple. SQL three-valued logic is
approximated: comparisons involving NULL evaluate to ``None`` (unknown),
and filters treat ``None`` as not-qualifying.
"""

from __future__ import annotations

import operator
from typing import Callable, Optional

from repro.errors import SQLTypeError
from repro.minidb.catalog import TableDef
from repro.sql import ast

#: runtime environment: binding name → row tuple
Env = dict
Compiled = Callable[[Env, tuple], object]

_CMP = {"=": operator.eq, "<>": operator.ne, "<": operator.lt,
        "<=": operator.le, ">": operator.gt, ">=": operator.ge}


class Scope:
    """Name-resolution context for one statement."""

    def __init__(self, bindings: dict[str, TableDef]):
        self.bindings = bindings

    def resolve(self, ref: ast.ColumnRef) -> tuple[str, int]:
        """Return (binding, column position) or raise."""
        if ref.qualifier is not None:
            table = self.bindings.get(ref.qualifier)
            if table is None:
                raise SQLTypeError(f"unknown table qualifier {ref.qualifier!r}")
            return ref.qualifier, table.position(ref.name)
        matches = [(binding, table.positions[ref.name])
                   for binding, table in self.bindings.items()
                   if ref.name in table.positions]
        if not matches:
            raise SQLTypeError(f"unknown column {ref.name!r}")
        if len(matches) > 1:
            raise SQLTypeError(f"ambiguous column {ref.name!r}")
        return matches[0]


def _comparable(a, b) -> bool:
    numeric = (int, float)
    if isinstance(a, numeric) and isinstance(b, numeric):
        return True
    return type(a) is type(b)


def compile_expr(expr: ast.Expr, scope: Scope) -> Compiled:
    """Compile ``expr`` to ``fn(env, params) -> value``."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda env, params: value

    if isinstance(expr, ast.Param):
        index = expr.index
        def run_param(env, params):
            if index >= len(params):
                raise SQLTypeError(
                    f"statement has parameter ?{index + 1} but only "
                    f"{len(params)} values were supplied")
            return params[index]
        return run_param

    if isinstance(expr, ast.ColumnRef):
        binding, pos = scope.resolve(expr)
        return lambda env, params: env[binding][pos]

    if isinstance(expr, ast.Comparison):
        left = compile_expr(expr.left, scope)
        right = compile_expr(expr.right, scope)
        op = _CMP[expr.op]
        display = expr.op
        def run_cmp(env, params):
            a = left(env, params)
            b = right(env, params)
            if a is None or b is None:
                return None
            if not _comparable(a, b):
                raise SQLTypeError(
                    f"cannot compare {type(a).__name__} {display} "
                    f"{type(b).__name__}")
            return op(a, b)
        return run_cmp

    if isinstance(expr, ast.And):
        parts = [compile_expr(item, scope) for item in expr.items]
        def run_and(env, params):
            unknown = False
            for part in parts:
                value = part(env, params)
                if value is None:
                    unknown = True
                elif not value:
                    return False
            return None if unknown else True
        return run_and

    if isinstance(expr, ast.Or):
        parts = [compile_expr(item, scope) for item in expr.items]
        def run_or(env, params):
            unknown = False
            for part in parts:
                value = part(env, params)
                if value is None:
                    unknown = True
                elif value:
                    return True
            return None if unknown else False
        return run_or

    if isinstance(expr, ast.Not):
        inner = compile_expr(expr.item, scope)
        def run_not(env, params):
            value = inner(env, params)
            return None if value is None else not value
        return run_not

    if isinstance(expr, ast.IsNull):
        inner = compile_expr(expr.item, scope)
        if expr.negated:
            return lambda env, params: inner(env, params) is not None
        return lambda env, params: inner(env, params) is None

    if isinstance(expr, ast.InList):
        inner = compile_expr(expr.item, scope)
        options = [compile_expr(o, scope) for o in expr.options]
        def run_in(env, params):
            value = inner(env, params)
            if value is None:
                return None
            return any(option(env, params) == value for option in options)
        return run_in

    if isinstance(expr, ast.Between):
        inner = compile_expr(expr.item, scope)
        low = compile_expr(expr.low, scope)
        high = compile_expr(expr.high, scope)
        def run_between(env, params):
            value = inner(env, params)
            lo = low(env, params)
            hi = high(env, params)
            if value is None or lo is None or hi is None:
                return None
            return lo <= value <= hi
        return run_between

    if isinstance(expr, ast.Arithmetic):
        left = compile_expr(expr.left, scope)
        right = compile_expr(expr.right, scope)
        op = operator.add if expr.op == "+" else operator.sub
        def run_arith(env, params):
            a = left(env, params)
            b = right(env, params)
            if a is None or b is None:
                return None
            if not (isinstance(a, (int, float))
                    and isinstance(b, (int, float))):
                raise SQLTypeError(
                    f"arithmetic on {type(a).__name__}/{type(b).__name__}")
            return op(a, b)
        return run_arith

    if isinstance(expr, ast.FuncCall):
        raise SQLTypeError(
            f"aggregate {expr.name} is only allowed in the select list")

    raise SQLTypeError(f"cannot compile {expr!r}")


def conjuncts(where: Optional[ast.Expr]) -> list[ast.Expr]:
    """Flatten top-level ANDs (the optimizer's sargable-predicate pool)."""
    if where is None:
        return []
    if isinstance(where, ast.And):
        result = []
        for item in where.items:
            result.extend(conjuncts(item))
        return result
    return [where]


def expr_is_constant(expr: ast.Expr) -> bool:
    """True for literals/params — usable as index probe values at bind time."""
    return isinstance(expr, (ast.Literal, ast.Param))


def columns_in(expr: ast.Expr) -> list[ast.ColumnRef]:
    found: list[ast.ColumnRef] = []

    def walk(node):
        if isinstance(node, ast.ColumnRef):
            found.append(node)
        elif isinstance(node, (ast.Comparison, ast.Arithmetic)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (ast.And, ast.Or)):
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Not):
            walk(node.item)
        elif isinstance(node, ast.IsNull):
            walk(node.item)
        elif isinstance(node, ast.InList):
            walk(node.item)
            for option in node.options:
                walk(option)
        elif isinstance(node, ast.Between):
            walk(node.item)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, ast.FuncCall) and node.arg is not None:
            walk(node.arg)

    walk(expr)
    return found

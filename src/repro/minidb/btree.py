"""B+tree secondary indexes.

Keys are tuples of column values, encoded so mixed types (and NULLs) have
a total order. Next-key lookup (:meth:`BTree.next_key_after`) is what the
lock manager's ARIES/KVL-style next-key locking hangs off — the feature
whose interaction with DLFM's multi-index tables caused the deadlocks of
lesson §3.2.1/§4 (experiment E3).

Indexes are memory-resident and rebuilt from the heap at restart, so index
maintenance needs no WAL records (documented substitution; DB2 logs index
pages, but recovery observable behaviour is the same).
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional

from repro.errors import DuplicateKeyError
from repro.minidb.storage import Rid

#: Sorts after every real key; the lock resource for "insert at end".
INFINITY_KEY = ((9, None),)


def encode_value(value) -> tuple:
    """Encode one column value so heterogeneous values totally order.

    NULL sorts lowest (rank 0); bools are ints in Python so they share the
    numeric rank.
    """
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    if isinstance(value, (tuple, list)):
        return (3, tuple(encode_value(v) for v in value))
    raise TypeError(f"unindexable value {value!r}")


def encode_key(values: tuple) -> tuple:
    return tuple(encode_value(v) for v in values)


class _Leaf:
    __slots__ = ("entries", "next")

    def __init__(self) -> None:
        self.entries: list[tuple[tuple, Rid]] = []  # sorted by (ekey, rid)
        self.next: Optional["_Leaf"] = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self, keys: list, children: list) -> None:
        self.keys = keys          # separator i = min key of children[i+1]
        self.children = children


class BTree:
    """One secondary index over a table."""

    def __init__(self, name: str, table: str, columns: tuple[str, ...],
                 unique: bool, order: int = 64):
        self.name = name
        self.table = table
        self.columns = columns
        self.unique = unique
        self.order = order
        self._root: object = _Leaf()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # -- mutation ------------------------------------------------------------

    def insert(self, key_values: tuple, rid: Rid) -> None:
        ekey = encode_key(key_values)
        if self.unique and self._exists(ekey):
            raise DuplicateKeyError(
                f"duplicate key {key_values!r} in unique index {self.name}")
        split = self._insert(self._root, ekey, rid)
        if split is not None:
            sep, right = split
            self._root = _Inner([sep], [self._root, right])
        self._count += 1

    def delete(self, key_values: tuple, rid: Rid) -> bool:
        """Remove one (key, rid) entry; returns False if absent."""
        ekey = encode_key(key_values)
        leaf = self._leaf_for(ekey)
        while leaf is not None:
            idx = bisect.bisect_left(leaf.entries, (ekey, rid))
            if idx < len(leaf.entries) and leaf.entries[idx] == (ekey, rid):
                del leaf.entries[idx]
                self._count -= 1
                return True
            if leaf.entries and leaf.entries[0][0] > ekey:
                return False
            leaf = leaf.next
        return False

    # -- lookup ------------------------------------------------------------------

    def search_eq(self, key_values: tuple) -> list[Rid]:
        ekey = encode_key(key_values)
        return [rid for _, rid in self._scan_encoded(ekey, True, ekey, True)]

    def scan_range(self, lo: Optional[tuple], lo_inclusive: bool,
                   hi: Optional[tuple], hi_inclusive: bool
                   ) -> Iterator[tuple[tuple, Rid]]:
        """Yield ``(encoded_key, rid)`` for keys in the given bounds.

        Bounds are *prefix* key-value tuples (may cover only leading
        columns); ``None`` means unbounded on that side.
        """
        elo = encode_key(lo) if lo is not None else None
        ehi = encode_key(hi) if hi is not None else None
        yield from self._scan_encoded(elo, lo_inclusive, ehi, hi_inclusive)

    def next_key_after(self, key_values: Optional[tuple]) -> tuple:
        """Smallest encoded key strictly greater than ``key_values``.

        ``None`` asks for the smallest key overall. Returns
        :data:`INFINITY_KEY` when no such key exists — the lock manager
        uses it as the "end of index" lock resource.
        """
        ekey = encode_key(key_values) if key_values is not None else None
        for found, _ in self._scan_encoded(ekey, False, None, True):
            return found
        return INFINITY_KEY

    # -- internals ----------------------------------------------------------------

    def _exists(self, ekey: tuple) -> bool:
        for _ in self._scan_encoded(ekey, True, ekey, True):
            return True
        return False

    def _scan_encoded(self, elo, lo_inclusive, ehi, hi_inclusive):
        # Bounds are prefixes: a bound covering only leading columns
        # compares against the same-length prefix of each key (SQL range
        # semantics: ``a > 5`` excludes every key whose first column is 5).
        leaf = self._leaf_for(elo) if elo is not None else self._leftmost()
        while leaf is not None:
            for ekey, rid in leaf.entries:
                if elo is not None:
                    prefix = ekey[: len(elo)]
                    if prefix < elo or (prefix == elo and not lo_inclusive):
                        continue
                if ehi is not None:
                    prefix = ekey[: len(ehi)]
                    if prefix > ehi or (prefix == ehi and not hi_inclusive):
                        return
                yield ekey, rid
            leaf = leaf.next

    def _leftmost(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        return node

    def _leaf_for(self, ekey: tuple) -> _Leaf:
        # bisect_left so a search key equal to a separator descends LEFT:
        # duplicates of the separator key may live in the left subtree.
        node = self._root
        while isinstance(node, _Inner):
            idx = bisect.bisect_left(node.keys, ekey)
            node = node.children[idx]
        return node

    def _insert(self, node, ekey: tuple, rid: Rid):
        if isinstance(node, _Leaf):
            bisect.insort(node.entries, (ekey, rid))
            if len(node.entries) > self.order:
                return self._split_leaf(node)
            return None
        idx = bisect.bisect_right(node.keys, ekey)
        split = self._insert(node.children[idx], ekey, rid)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.children) > self.order:
            return self._split_inner(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.entries) // 2
        right = _Leaf()
        right.entries = leaf.entries[mid:]
        leaf.entries = leaf.entries[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.entries[0][0], right

    def _split_inner(self, node: _Inner):
        mid = len(node.children) // 2
        sep = node.keys[mid - 1]
        right = _Inner(node.keys[mid:], node.children[mid:])
        node.keys = node.keys[: mid - 1]
        node.children = node.children[:mid]
        return sep, right

    # -- maintenance ---------------------------------------------------------------

    def clear(self) -> None:
        self._root = _Leaf()
        self._count = 0

    def items(self) -> Iterator[tuple[tuple, Rid]]:
        """Every ``(encoded_key, rid)`` pair in key order.

        Used by checkpoints to snapshot the index image that instant
        recovery repairs from (DESIGN.md §11).
        """
        leaf = self._leftmost()
        while leaf is not None:
            yield from leaf.entries
            leaf = leaf.next

    def bulk_load(self, pairs) -> None:
        """Reload from ``(encoded_key, rid)`` pairs, in any order.

        Sorts the run once, then builds bottom-up: sequential leaf fills
        chained left-to-right, then inner levels over their minimum keys
        — the classic LOAD-style build, with no per-pair descent or
        splits. Duplicate keys are kept (entries are (key, rid) pairs);
        uniqueness is bypassed: callers pass checkpoint images or
        pre-checked LOAD runs that were consistent when taken.
        """
        entries = sorted((tuple(ekey), rid) for ekey, rid in pairs)
        self.clear()
        self._count = len(entries)
        if not entries:
            return
        level: list[tuple[tuple, object]] = []
        previous: Optional[_Leaf] = None
        for start in range(0, len(entries), self.order):
            leaf = _Leaf()
            leaf.entries = entries[start:start + self.order]
            if previous is not None:
                previous.next = leaf
            previous = leaf
            level.append((leaf.entries[0][0], leaf))
        while len(level) > 1:
            parents = []
            for start in range(0, len(level), self.order):
                group = level[start:start + self.order]
                node = _Inner([key for key, _ in group[1:]],
                              [child for _, child in group])
                parents.append((group[0][0], node))
            level = parents
        self._root = level[0][1]

    @property
    def nlevels(self) -> int:
        levels = 1
        node = self._root
        while isinstance(node, _Inner):
            levels += 1
            node = node.children[0]
        return levels

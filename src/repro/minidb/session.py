"""SQL sessions — the black-box surface DLFM programs against.

``execute`` is a kernel generator (statements can block on locks):

    rows = yield from session.execute(
        "SELECT * FROM dfm_file WHERE filename = ?", ("a.mpg",))

Behavioural contract (mirrors DB2):

* a transaction begins implicitly at the first statement;
* each statement runs under an implicit savepoint — statement errors
  (duplicate key, type errors) undo only that statement and leave the
  transaction usable;
* deadlock / lock-timeout / log-full abort the WHOLE transaction: the
  engine rolls it back automatically and raises ``TransactionAborted``
  (with ``reason``), exactly the behaviour DLFM's phase-2 retry loops and
  the host's savepoint story are built around.
"""

from __future__ import annotations


from repro.errors import DatabaseError, TransactionAborted
from repro.kernel.sim import Timeout
from repro.sql import ast
from repro.sql.executor import ResultSet
from repro.sql.parser import parse


class _ExplainPlan:
    """Pseudo-plan carrying an EXPLAIN result row (never cached)."""

    kind = "explain"

    def __init__(self, row: tuple):
        self.row = row


class PreparedStatement:
    """A statement handle from :meth:`Session.prepare`: parse once, bind
    once, execute many.

    The handle does NOT pin a plan object — every execution goes through
    the shared bound-plan cache, so all the invalidation machinery works
    unchanged: a stats-version bump or DDL eviction re-binds on the next
    execution (paying ``compile_cpu`` again), and a crash clears the
    cache so restarted executions re-prepare implicitly, exactly like
    DB2 packages. What the handle guarantees is a *stable cache key*
    (parameter markers, never interpolated literals) plus a one-time
    parse, which is what makes the steady state all cache hits.
    """

    def __init__(self, session: "Session", sql: str):
        self.session = session
        self.sql = sql
        self.executions = 0

    @property
    def plan(self):
        """The currently cached plan, or None if evicted/invalidated."""
        cached = self.session.db._plan_cache.get(self.sql)
        return cached[0] if cached is not None else None

    def execute(self, params: tuple = ()):
        """Generator: run the prepared statement with ``params``."""
        self.executions += 1
        result = yield from self.session.execute(self.sql, params)
        return result

    def query_one(self, params: tuple = ()):
        """Generator: run a prepared SELECT, return the one row or None."""
        self.executions += 1
        row = yield from self.session.query_one(self.sql, params)
        return row


class Session:
    def __init__(self, db, isolation: str):
        self.db = db
        self.isolation = isolation
        self.txn = None

    # ------------------------------------------------------------------ txn control

    @property
    def in_txn(self) -> bool:
        return self.txn is not None

    def _require_txn(self):
        if self.txn is None:
            self.txn = self.db.begin(self.isolation)
        return self.txn

    def commit(self, payload=None):
        """Generator: commit the open transaction (no-op when none).

        ``payload`` (if any) rides on the COMMIT log record — see
        :meth:`Database.commit`. A payload with no open transaction
        starts one so the record is still written and forced.
        """
        if self.txn is None:
            if payload is None:
                return
            self._require_txn()
        txn, self.txn = self.txn, None
        yield from self.db.commit(txn, payload=payload)

    def rollback(self):
        """Generator: roll back the open transaction (no-op when none)."""
        if self.txn is None:
            return
        txn, self.txn = self.txn, None
        yield from self.db.rollback(txn)

    def savepoint(self, name: str) -> None:
        self._require_txn().set_savepoint(name)

    def rollback_to_savepoint(self, name: str) -> None:
        if self.txn is None:
            raise DatabaseError("no transaction for savepoint rollback")
        self.db.rollback_to_savepoint(self.txn, name)

    # ------------------------------------------------------------------ execute

    def execute(self, sql: str, params: tuple = ()):
        """Generator: run one SQL statement.

        Returns a :class:`ResultSet` for SELECT, the affected-row count
        for INSERT/UPDATE/DELETE, and None for DDL.
        """
        self.db.metrics.statements += 1
        stall = self.db.traffic_open_at - self.db.sim.now
        if stall > 0:
            # Crash recovery is still replaying: classic ARIES restart
            # holds ALL new statements until REDO and the index rebuilds
            # finish; the instant path only holds them for the log-tail
            # analysis pass (DESIGN.md §11).
            yield Timeout(stall)
        cost = self.db.config.timing.statement_cost()
        if cost > 0:
            yield Timeout(cost)

        plan, hit = self._plan_or_ddl(sql)
        if not hit:
            # Parse + optimize happened: charge compilation. A cache hit
            # (the prepared-statement steady state) skips this entirely —
            # that asymmetry is the whole point of preparing.
            cost = self.db.config.timing.compile_cost()
            if cost > 0:
                yield Timeout(cost)
        if plan is None:
            return None  # DDL handled eagerly

        if plan.kind == "explain":
            return ResultSet(["kind", "access", "index", "cost"],
                             [plan.row])

        txn = self._require_txn()
        statement_start = txn.last_lsn
        try:
            if plan.kind == "select":
                result = yield from self.db.executor.run_select(
                    txn, plan, params)
            elif plan.kind == "insert":
                result = yield from self.db.executor.run_insert(
                    txn, plan, params)
            elif plan.kind == "update":
                result = yield from self.db.executor.run_update(
                    txn, plan, params)
            elif plan.kind == "delete":
                result = yield from self.db.executor.run_delete(
                    txn, plan, params)
            else:  # pragma: no cover — planner restricts kinds
                raise DatabaseError(f"unknown plan kind {plan.kind}")
        except TransactionAborted:
            # Severe error: DB2 has already decided the transaction dies.
            self.txn = None
            yield from self.db.rollback(txn)
            raise
        except DatabaseError:
            # Statement-level failure: undo this statement only.
            self.db._undo_to(txn, upto_lsn=statement_start)
            raise
        yield from self._charge_io()
        return result

    def _plan_or_ddl(self, sql: str):
        """Resolve ``sql`` to ``(plan, cache_hit)`` — None for DDL."""
        stmt = None
        if sql not in self.db._plan_cache:
            stmt = parse(sql)
            if isinstance(stmt, (ast.CreateTable, ast.CreateIndex,
                                 ast.DropTable, ast.DropIndex)):
                self.db.ddl(stmt)
                return None, False
            if isinstance(stmt, ast.Explain):
                return self._explain_plan(stmt), False
        return self.db.bind_plan(sql, stmt)

    def _explain_plan(self, stmt):
        """EXPLAIN: plan the inner statement, return a descriptor plan."""
        from repro.sql.optimizer import plan_statement
        inner = plan_statement(self.db.catalog, stmt.statement)
        access = getattr(inner, "access", None)
        row = (inner.kind,
               access.kind if access else "n/a",
               access.index_name if access else None,
               round(access.cost, 3) if access else None)
        return _ExplainPlan(row)

    def _charge_io(self):
        pages = self.db.pool.metrics.drain_unbilled()
        cost = self.db.config.timing.io_cost(pages)
        entries, self.db.unbilled_index_entries = (
            self.db.unbilled_index_entries, 0.0)
        cost += self.db.config.timing.index_entry_cost(entries)
        if cost > 0:
            yield Timeout(cost)

    # ------------------------------------------------------------------ prepare

    def prepare(self, sql: str):
        """Generator: compile ``sql`` once, returning a
        :class:`PreparedStatement` for repeated execution.

        Binding happens now, through the shared plan cache — a miss
        charges ``compile_cpu`` here so the executions themselves run
        at cache-hit cost. DDL and EXPLAIN have no bound plan and
        cannot be prepared.
        """
        stmt = parse(sql)
        if isinstance(stmt, (ast.CreateTable, ast.CreateIndex,
                             ast.DropTable, ast.DropIndex, ast.Explain)):
            raise DatabaseError(f"cannot prepare DDL/EXPLAIN: {sql!r}")
        _, hit = self.db.bind_plan(sql, stmt)
        if not hit:
            cost = self.db.config.timing.compile_cost()
            if cost > 0:
                yield Timeout(cost)
        return PreparedStatement(self, sql)

    # ------------------------------------------------------------------ sugar

    def query_one(self, sql: str, params: tuple = ()):
        """Generator: run a SELECT and return the single row or None."""
        result = yield from self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise DatabaseError("query_one needs a SELECT")
        if len(result) > 1:
            raise DatabaseError(f"expected at most one row, got {len(result)}")
        return result.rows[0] if result.rows else None

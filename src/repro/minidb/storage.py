"""Disk, buffer pool and heap files.

Storage is deliberately synchronous: the only blocking points inside the
engine are lock waits. I/O volume is *metered* here (buffer misses, page
writes, log forces) and converted into virtual time by the session layer
after each statement, which keeps the event count of big simulations low
without losing the timing behaviour.

Durability model: the :class:`Disk` holds immutable snapshots of pages;
the buffer pool is a write-back cache over it (steal/no-force). A crash
drops the buffer pool and the unforced log tail; restart redoes/undoes
from the log (see ``recovery.py``).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import DatabaseError

#: RID: (page number, slot number) within a table's heap.
Rid = tuple[int, int]


class HeapPage:
    """In-memory image of one heap page."""

    __slots__ = ("page_no", "slots", "page_lsn")

    def __init__(self, page_no: int, capacity: int,
                 slots: Optional[list] = None, page_lsn: int = 0):
        self.page_no = page_no
        self.slots: list[Optional[tuple]] = (
            list(slots) if slots is not None else [None] * capacity)
        self.page_lsn = page_lsn

    @property
    def free_slots(self) -> int:
        return sum(1 for slot in self.slots if slot is None)

    def first_free(self) -> Optional[int]:
        for i, slot in enumerate(self.slots):
            if slot is None:
                return i
        return None


class Disk:
    """Durable page store: table → page_no → (page_lsn, row snapshot).

    Also holds the checkpoint-time secondary-index images instant
    recovery repairs from (chain-driven per-index repair instead of a
    full-heap rebuild): index name → list of (encoded key, rid) pairs,
    written by ``Database.checkpoint`` and consumed by ``recovery.py``.
    """

    def __init__(self) -> None:
        self._tables: dict[str, dict[int, tuple[int, tuple]]] = {}
        self._index_images: dict[str, list] = {}

    def write_page(self, table: str, page: HeapPage) -> None:
        self._tables.setdefault(table, {})[page.page_no] = (
            page.page_lsn, tuple(page.slots))

    def read_page(self, table: str, page_no: int,
                  capacity: int) -> Optional[HeapPage]:
        stored = self._tables.get(table, {}).get(page_no)
        if stored is None:
            return None
        page_lsn, slots = stored
        return HeapPage(page_no, capacity, slots=list(slots),
                        page_lsn=page_lsn)

    def page_numbers(self, table: str) -> list[int]:
        return sorted(self._tables.get(table, {}))

    def page_lsn(self, table: str, page_no: int) -> int:
        """Durable page LSN without a buffer-pool fetch (0 = no page)."""
        stored = self._tables.get(table, {}).get(page_no)
        return stored[0] if stored is not None else 0

    def drop_table(self, table: str) -> None:
        self._tables.pop(table, None)

    def tables(self) -> list[str]:
        return sorted(self._tables)

    # -- index images (checkpoint ↔ instant recovery) -------------------------

    def store_index_image(self, name: str, pairs: list) -> None:
        self._index_images[name] = list(pairs)

    def load_index_image(self, name: str) -> Optional[list]:
        pairs = self._index_images.get(name)
        return list(pairs) if pairs is not None else None

    def drop_index_image(self, name: str) -> None:
        self._index_images.pop(name, None)


@dataclass
class BufferMetrics:
    hits: int = 0
    misses: int = 0
    page_writes: int = 0
    #: misses + writes accumulated since the last drain (for time charging)
    unbilled_io: int = 0

    def _io(self) -> None:
        self.unbilled_io += 1

    def drain_unbilled(self) -> int:
        n, self.unbilled_io = self.unbilled_io, 0
        return n


class BufferPool:
    """Write-back LRU page cache over the :class:`Disk`."""

    def __init__(self, disk: Disk, capacity: int, rows_per_page: int):
        self.disk = disk
        self.capacity = capacity
        self.rows_per_page = rows_per_page
        self._frames: "OrderedDict[tuple[str, int], HeapPage]" = OrderedDict()
        self._dirty: set[tuple[str, int]] = set()
        self.metrics = BufferMetrics()

    def fetch(self, table: str, page_no: int, create: bool = False) -> HeapPage:
        key = (table, page_no)
        page = self._frames.get(key)
        if page is not None:
            self._frames.move_to_end(key)
            self.metrics.hits += 1
            return page
        page = self.disk.read_page(table, page_no, self.rows_per_page)
        if page is None:
            if not create:
                raise DatabaseError(f"missing page {table}:{page_no}")
            page = HeapPage(page_no, self.rows_per_page)
        else:
            self.metrics.misses += 1
            self.metrics._io()
        self._frames[key] = page
        self._evict_if_needed()
        return page

    def mark_dirty(self, table: str, page_no: int) -> None:
        self._dirty.add((table, page_no))

    def _evict_if_needed(self) -> None:
        while len(self._frames) > self.capacity:
            key, page = self._frames.popitem(last=False)
            if key in self._dirty:
                self._dirty.discard(key)
                self.disk.write_page(key[0], page)
                self.metrics.page_writes += 1
                self.metrics._io()

    def flush_all(self) -> int:
        """Write every dirty page to disk (checkpoint); returns pages written."""
        written = 0
        for key in sorted(self._dirty):
            page = self._frames.get(key)
            if page is not None:
                self.disk.write_page(key[0], page)
                self.metrics.page_writes += 1
                self.metrics._io()
                written += 1
        self._dirty.clear()
        return written

    def drop_table(self, table: str) -> None:
        for key in [k for k in self._frames if k[0] == table]:
            del self._frames[key]
            self._dirty.discard(key)
        self.disk.drop_table(table)

    def clear(self) -> None:
        """Crash: lose all cached (including dirty) pages."""
        self._frames.clear()
        self._dirty.clear()

    def peek_slot(self, table: str, page_no: int, slot_no: int):
        """Read one slot without touching pool state (no LRU move, no
        miss/IO accounting, no caching). The version-merge fold uses it
        to compare a chain's newest entry against the base record, so
        folding never perturbs buffer metrics or eviction order. Reads
        the cached frame when present (it is newer than disk), else the
        durable page — which may be stale during a lazy restart; callers
        treat a mismatch as "keep the chain" (conservative)."""
        page = self._frames.get((table, page_no))
        if page is None:
            page = self.disk.read_page(table, page_no, self.rows_per_page)
        if page is None or slot_no >= len(page.slots):
            return None
        return page.slots[slot_no]


class Heap:
    """Slotted heap file for one table, accessed through the buffer pool."""

    def __init__(self, table: str, pool: BufferPool):
        self.table = table
        self.pool = pool
        self.rows_per_page = pool.rows_per_page
        self._page_count = 0
        self._free_pages: set[int] = set()
        #: Free-space hint: lazy min-heap mirror of ``_free_pages``. May
        #: hold stale or duplicate page numbers; they are popped on first
        #: contact. Keeps "lowest page with space" amortized O(log n)
        #: instead of scanning the whole free set per insert.
        self._free_heap: list[int] = []
        self._row_count = 0
        #: Instant-recovery replay gate: when set, called with a page
        #: number before ANY page access, replaying that page's pending
        #: log chain first (see ``Database.replay_page``). None outside
        #: of a lazy restart — the common case pays one attribute test.
        self.replay_hook = None
        #: MVCC lineage chains (L-Store style): rid → ascending list of
        #: ``(commit_lsn, row_or_None)`` versions. The base record is the
        #: heap slot itself; the chain is its append-only tail, oldest
        #: first — each entry's lineage predecessor is simply the entry
        #: before it, and a ``None`` row is a delete marker. A missing
        #: chain means the slot's committed value is the base, visible to
        #: every snapshot (effective timestamp 0). Timestamp 0 marks the
        #: seed entry: the committed state before the first in-flight
        #: writer touched the slot.
        self._versions: dict[Rid, list[tuple[int, Optional[tuple]]]] = {}

    # -- bootstrap --------------------------------------------------------------

    @classmethod
    def recover(cls, table: str, pool: BufferPool) -> "Heap":
        """Rebuild heap bookkeeping from durable pages after a restart."""
        heap = cls(table, pool)
        for page_no in pool.disk.page_numbers(table):
            page = pool.fetch(table, page_no)
            heap._page_count = max(heap._page_count, page_no + 1)
            used = sum(1 for slot in page.slots if slot is not None)
            heap._row_count += used
            if used < heap.rows_per_page:
                heap._note_free(page_no)
        return heap

    @classmethod
    def recover_lazy(cls, table: str, pool: BufferPool,
                     chain_pages: Iterable[int] = ()) -> "Heap":
        """Heap bookkeeping without reading a single page.

        ``chain_pages`` are pages named by pending per-page log chains
        (they may not exist on disk yet). The page count must be exact —
        it keeps fresh inserts off rid ranges the replay will fill — but
        the free-space map starts empty: new inserts land on fresh pages
        and ``_row_count`` only counts rows seen so far (documented
        deviation; statistics catch up via RUNSTATS or pinned stats).
        """
        heap = cls(table, pool)
        numbers = pool.disk.page_numbers(table)
        if numbers:
            heap._page_count = numbers[-1] + 1
        for page_no in chain_pages:
            heap._page_count = max(heap._page_count, page_no + 1)
        return heap

    # -- geometry (feeds optimizer statistics) -----------------------------------

    @property
    def npages(self) -> int:
        return self._page_count

    @property
    def nrows(self) -> int:
        return self._row_count

    # -- operations ---------------------------------------------------------------

    def candidate_rid(self) -> Rid:
        """Where the next free-choice insert would land (no mutation).

        The executor X-locks this rid *before* inserting so a reused slot
        still X-locked by an uncommitted deleter can't expose dirty data.
        """
        page = self._first_page_with_space()
        if page is not None:
            return (page.page_no, page.first_free())
        return (self._page_count, 0)

    def is_free(self, rid: Rid) -> bool:
        if rid[0] >= self._page_count:
            return True
        page = self._page_for(rid[0])
        return page.slots[rid[1]] is None

    def insert(self, row: tuple, rid: Optional[Rid] = None) -> Rid:
        """Place ``row``; a forced ``rid`` is used by redo/undo replay."""
        if rid is not None:
            page = self._page_for(rid[0], create=True)
            if page.slots[rid[1]] is not None:
                raise DatabaseError(f"redo insert into occupied slot {rid}")
            page.slots[rid[1]] = row
            target = rid
        else:
            page = self._page_with_space()
            slot = page.first_free()
            assert slot is not None
            page.slots[slot] = row
            target = (page.page_no, slot)
        if page.free_slots == 0:
            self._free_pages.discard(page.page_no)
        else:
            self._note_free(page.page_no)
        self.pool.mark_dirty(self.table, page.page_no)
        self._row_count += 1
        return target

    def delete(self, rid: Rid) -> tuple:
        page = self._page_for(rid[0])
        row = page.slots[rid[1]]
        if row is None:
            raise DatabaseError(f"delete of empty slot {self.table}:{rid}")
        page.slots[rid[1]] = None
        self._note_free(page.page_no)
        self.pool.mark_dirty(self.table, page.page_no)
        self._row_count -= 1
        return row

    def update(self, rid: Rid, new_row: tuple) -> tuple:
        page = self._page_for(rid[0])
        old = page.slots[rid[1]]
        if old is None:
            raise DatabaseError(f"update of empty slot {self.table}:{rid}")
        page.slots[rid[1]] = new_row
        self.pool.mark_dirty(self.table, page.page_no)
        return old

    def fetch(self, rid: Rid) -> Optional[tuple]:
        if rid[0] >= self._page_count:
            return None
        page = self._page_for(rid[0])
        return page.slots[rid[1]]

    def scan(self) -> Iterator[tuple[Rid, tuple]]:
        for page_no in range(self._page_count):
            page = self._page_for(page_no)
            for slot_no, row in enumerate(page.slots):
                if row is not None:
                    yield (page_no, slot_no), row

    # -- version chains (MVCC lineage tails) ---------------------------------------

    @property
    def live_chains(self) -> int:
        return len(self._versions)

    def version_seed(self, rid: Rid, row: Optional[tuple]) -> None:
        """Pin the committed pre-state when a writer first touches a slot.

        No-op if the rid already has a chain: its newest committed entry
        is the pre-state. The seed (timestamp 0) is what snapshots older
        than every chained version resolve to.
        """
        if rid not in self._versions:
            self._versions[rid] = [(0, row)]

    def version_append(self, rid: Rid, ts: int, row: Optional[tuple]) -> None:
        """Append the committed state at commit LSN ``ts`` (delete → None)."""
        chain = self._versions.get(rid)
        if chain is None:
            # Guarded against by the write-pin rule (an active writer's
            # chains are never folded); kept for defense in depth.
            self._versions[rid] = [(0, row), (ts, row)]
        else:
            chain.append((ts, row))

    def version_newest_ts(self, rid: Rid) -> int:
        """Commit LSN of the newest version (0 = base only, never conflicts)."""
        chain = self._versions.get(rid)
        return chain[-1][0] if chain else 0

    def version_rids(self) -> list[Rid]:
        return list(self._versions)

    def snapshot_fetch(self, rid: Rid, ts: int,
                       own: frozenset = frozenset()) -> Optional[tuple]:
        """Row visible at snapshot ``ts``: newest version with commit
        LSN ≤ ts; rids in ``own`` read the slot (a transaction sees its
        own uncommitted writes); no chain means the slot is the base."""
        if rid in own:
            return self.fetch(rid)
        chain = self._versions.get(rid)
        if chain is None:
            return self.fetch(rid)
        for entry_ts, row in reversed(chain):
            if entry_ts <= ts:
                return row
        return None

    def snapshot_scan(self, ts: int, own: frozenset = frozenset()
                      ) -> Iterator[tuple[Rid, tuple]]:
        """Like :meth:`scan`, resolved through version chains at ``ts``.

        Pages are fetched through the pool (snapshot readers pay the
        same I/O a locking scan would); only visibility differs.
        """
        for page_no in range(self._page_count):
            page = self._page_for(page_no)
            for slot_no, slot in enumerate(page.slots):
                rid = (page_no, slot_no)
                if rid in own:
                    if slot is not None:
                        yield rid, slot
                    continue
                chain = self._versions.get(rid)
                if chain is not None:
                    row = None
                    for entry_ts, entry_row in reversed(chain):
                        if entry_ts <= ts:
                            row = entry_row
                            break
                    if row is not None:
                        yield rid, row
                elif slot is not None:
                    yield rid, slot

    def fold_versions(self, rid: Rid, watermark: int) -> int:
        """Merge: drop chain entries no snapshot ≥ ``watermark`` can see.

        Keeps the newest entry with ts ≤ watermark (it is what the
        oldest live snapshot resolves to) and everything newer. When a
        single entry remains and it equals the base record, the whole
        chain folds away — the base alone serves every snapshot. The
        slot comparison uses the pool-neutral peek; a stale durable page
        during a lazy restart just means the chain is kept for now.
        Returns the number of entries dropped.
        """
        chain = self._versions.get(rid)
        if not chain:
            return 0
        keep_from = 0
        for i, (entry_ts, _) in enumerate(chain):
            if entry_ts <= watermark:
                keep_from = i
            else:
                break
        dropped = keep_from
        if keep_from:
            del chain[:keep_from]
        if (len(chain) == 1 and chain[0][0] <= watermark
                and chain[0][1] == self.pool.peek_slot(
                    self.table, rid[0], rid[1])):
            del self._versions[rid]
            dropped += 1
        return dropped

    def versions_image(self) -> dict:
        """Copy of all chains (checkpoint payload; entries are immutable)."""
        return {rid: list(chain) for rid, chain in self._versions.items()}

    def restore_versions(self, image: dict) -> None:
        self._versions = {rid: list(chain) for rid, chain in image.items()}

    def set_page_lsn(self, page_no: int, lsn: int) -> None:
        page = self._page_for(page_no, create=True)
        page.page_lsn = max(page.page_lsn, lsn)

    def page_lsn(self, page_no: int) -> int:
        return self._page_for(page_no, create=True).page_lsn

    # -- internals -------------------------------------------------------------

    def _page_for(self, page_no: int, create: bool = False) -> HeapPage:
        if self.replay_hook is not None:
            # On-demand REDO: drain this page's pending log chain before
            # anyone sees the page. The hook removes the page from the
            # pending set before applying, so the replay's own accesses
            # pass straight through (no recursion).
            self.replay_hook(self.table, page_no)
        if page_no >= self._page_count:
            if not create:
                raise DatabaseError(
                    f"page {page_no} beyond heap {self.table}")
            for missing in range(self._page_count, page_no + 1):
                self._note_free(missing)
            self._page_count = page_no + 1
            return self.pool.fetch(self.table, page_no, create=True)
        return self.pool.fetch(self.table, page_no, create=True)

    def _note_free(self, page_no: int) -> None:
        if page_no not in self._free_pages:
            self._free_pages.add(page_no)
            heapq.heappush(self._free_heap, page_no)

    def _first_page_with_space(self) -> Optional[HeapPage]:
        """Lowest-numbered page with a free slot, via the hint heap.
        Stale entries (removed or refilled pages) pop lazily."""
        while self._free_heap:
            page_no = self._free_heap[0]
            if page_no not in self._free_pages:
                heapq.heappop(self._free_heap)
                continue
            page = self._page_for(page_no)
            if page.first_free() is None:
                self._free_pages.discard(page_no)
                heapq.heappop(self._free_heap)
                continue
            return page
        return None

    def _page_with_space(self) -> HeapPage:
        page = self._first_page_with_space()
        if page is not None:
            return page
        page_no = self._page_count
        self._page_count += 1
        page = self.pool.fetch(self.table, page_no, create=True)
        self._note_free(page_no)
        return page

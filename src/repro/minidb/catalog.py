"""System catalog: table/index definitions and optimizer statistics.

Statistics are the lever of the paper's optimizer lesson (E4): plans are
costed from ``TableStats``, which starts at the DB2 default of zero rows
for a fresh table — so the optimizer prefers table scans until either
RUNSTATS runs or the statistics are *hand-crafted* with
:meth:`Catalog.set_stats` (the paper's utility). Every statistics change
bumps a version, which invalidates bound plans (packages) referencing the
table, forcing re-optimization — exactly the "user ran RUNSTATS and the
plan went bad again" failure mode DLFM guards against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CatalogError


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type: str  # INT | FLOAT | TEXT | BOOL


@dataclass
class TableDef:
    name: str
    columns: list[ColumnDef]

    def __post_init__(self) -> None:
        self.positions = {c.name: i for i, c in enumerate(self.columns)}
        if len(self.positions) != len(self.columns):
            raise CatalogError(f"duplicate column in table {self.name}")

    def position(self, column: str) -> int:
        try:
            return self.positions[column]
        except KeyError:
            raise CatalogError(
                f"no column {column!r} in table {self.name}") from None

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]


@dataclass
class IndexDef:
    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool


@dataclass
class TableStats:
    """Optimizer's beliefs about a table — not necessarily the truth."""

    card: int = 0
    npages: int = 1
    colcard: dict[str, int] = field(default_factory=dict)
    manual: bool = False  # hand-crafted by the DLFM statistics utility

    def distinct(self, column: str) -> int:
        return max(1, self.colcard.get(column, max(1, self.card // 10 or 1)))


class Catalog:
    def __init__(self) -> None:
        self.tables: dict[str, TableDef] = {}
        self.indexes: dict[str, IndexDef] = {}
        self.indexes_by_table: dict[str, list[IndexDef]] = {}
        self.stats: dict[str, TableStats] = {}
        self._stats_versions: dict[str, int] = {}

    # -- DDL ---------------------------------------------------------------------

    def create_table(self, name: str, columns: list[ColumnDef]) -> TableDef:
        if name in self.tables:
            raise CatalogError(f"table {name} already exists")
        table = TableDef(name, columns)
        self.tables[name] = table
        self.indexes_by_table[name] = []
        self.stats[name] = TableStats()
        self._stats_versions[name] = 0
        return table

    def drop_table(self, name: str) -> None:
        self.require_table(name)
        del self.tables[name]
        for index in self.indexes_by_table.pop(name, []):
            del self.indexes[index.name]
        self.stats.pop(name, None)
        self._stats_versions.pop(name, None)

    def create_index(self, name: str, table: str, columns: tuple[str, ...],
                     unique: bool) -> IndexDef:
        if name in self.indexes:
            raise CatalogError(f"index {name} already exists")
        tdef = self.require_table(table)
        for column in columns:
            tdef.position(column)  # validates
        index = IndexDef(name, table, tuple(columns), unique)
        self.indexes[name] = index
        self.indexes_by_table[table].append(index)
        return index

    def require_table(self, name: str) -> TableDef:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"no such table {name}") from None

    def require_index(self, name: str) -> IndexDef:
        try:
            return self.indexes[name]
        except KeyError:
            raise CatalogError(f"no such index {name}") from None

    # -- statistics -----------------------------------------------------------------

    def stats_for(self, table: str) -> TableStats:
        self.require_table(table)
        return self.stats[table]

    def stats_version(self, table: str) -> int:
        return self._stats_versions.get(table, 0)

    def _bump(self, table: str) -> None:
        self._stats_versions[table] = self._stats_versions.get(table, 0) + 1

    def runstats(self, table: str, card: int, npages: int,
                 colcard: dict[str, int]) -> TableStats:
        """Refresh statistics from actual data (clears the manual flag)."""
        self.require_table(table)
        stats = TableStats(card=card, npages=max(1, npages),
                           colcard=dict(colcard), manual=False)
        self.stats[table] = stats
        self._bump(table)
        return stats

    def set_stats(self, table: str, card: int, npages: Optional[int] = None,
                  colcard: Optional[dict[str, int]] = None) -> TableStats:
        """Hand-craft statistics (the paper's catalog-poking utility)."""
        if card < 0:
            raise CatalogError("card must be non-negative")
        self.require_table(table)
        stats = TableStats(
            card=card,
            npages=max(1, npages if npages is not None else card // 32 + 1),
            colcard=dict(colcard or {}),
            manual=True)
        self.stats[table] = stats
        self._bump(table)
        return stats

"""Restart recovery: ARIES-style analysis / redo / undo.

Runs against the durable state only: disk page images plus the forced
prefix of the WAL. Redo is conditional on page LSNs (idempotent across
repeated crashes); undo of loser transactions writes CLRs so a crash
during recovery is itself recoverable. Secondary indexes are rebuilt from
the heaps afterwards (documented substitution for index logging).
"""

from __future__ import annotations

from typing import Optional

from repro.minidb import wal as walmod
from repro.minidb.storage import Heap


class _RecoveryTxn:
    """Shim giving the WAL a chain head for recovery-time CLRs."""

    def __init__(self, txn_id: int, last_lsn: Optional[int]):
        self.id = txn_id
        self.last_lsn = last_lsn
        self.first_lsn = last_lsn

    def mark_rollback_only(self, reason: str = "error") -> None:
        pass


def recover(db) -> dict:
    """Bring ``db`` to a transaction-consistent state; returns a summary."""
    records = db.wal.records  # after crash() this is exactly the durable prefix

    # ---- analysis ---------------------------------------------------------
    last_lsn: dict[int, int] = {}
    first_lsn: dict[int, int] = {}
    ended: set[int] = set()
    committed: set[int] = set()
    prepared: set[int] = set()
    for record in records:
        if record.txn_id == 0:
            continue
        if record.kind in (walmod.COMMIT, walmod.ABORT):
            ended.add(record.txn_id)
            prepared.discard(record.txn_id)
            if record.kind == walmod.COMMIT:
                committed.add(record.txn_id)
        elif record.kind == walmod.PREPARE:
            prepared.add(record.txn_id)
            last_lsn[record.txn_id] = record.lsn
        else:
            last_lsn[record.txn_id] = record.lsn
            first_lsn.setdefault(record.txn_id, record.lsn)
    # Prepared (XA indoubt) transactions are NOT losers: their outcome
    # belongs to the transaction manager.
    losers = {txn_id: lsn for txn_id, lsn in last_lsn.items()
              if txn_id not in ended and txn_id not in prepared}

    # ---- rebuild heap bookkeeping from durable pages ------------------------
    for table in db.catalog.tables:
        db.heaps[table] = Heap.recover(table, db.pool)

    # ---- redo -------------------------------------------------------------------
    redone = 0
    for record in records:
        if not record.redoable:
            continue
        heap = db.heaps.get(record.table)
        if heap is None:
            continue  # table was dropped
        if heap.page_lsn(record.rid[0]) >= record.lsn:
            continue
        _apply_state(heap, record.rid, record.after)
        heap.set_page_lsn(record.rid[0], record.lsn)
        redone += 1

    # ---- undo losers (single backward pass with CLR chains) ----------------------
    undone = 0
    shims = {txn_id: _RecoveryTxn(txn_id, lsn)
             for txn_id, lsn in losers.items()}
    cursors = dict(losers)  # txn id → next LSN to examine
    while cursors:
        txn_id = max(cursors, key=lambda t: cursors[t])
        lsn = cursors[txn_id]
        record = db.wal.record(lsn)
        shim = shims[txn_id]
        next_lsn: Optional[int]
        if record.kind == walmod.CLR:
            next_lsn = record.undo_next
        elif record.redoable:
            heap = db.heaps.get(record.table)
            if heap is not None:
                _apply_state(heap, record.rid, record.before)
                clr = db.wal.append(
                    walmod.CLR, shim, table=record.table, rid=record.rid,
                    before=record.after, after=record.before,
                    undo_next=record.prev_lsn)
                heap.set_page_lsn(record.rid[0], clr.lsn)
            undone += 1
            next_lsn = record.prev_lsn
        else:  # BEGIN or foreign record kind
            next_lsn = record.prev_lsn
        if next_lsn is None:
            db.wal.append(walmod.ABORT, shim)
            del cursors[txn_id]
        else:
            cursors[txn_id] = next_lsn

    # ---- resurrect prepared (indoubt) transactions --------------------------------
    from repro.minidb.locks import LockMode
    from repro.minidb.txn import Transaction, TxnState
    for txn_id in sorted(prepared):
        txn = Transaction(txn_id, "RR", 0.0)
        txn.state = TxnState.PREPARED
        txn.last_lsn = last_lsn.get(txn_id)
        txn.first_lsn = first_lsn.get(txn_id, txn.last_lsn)
        # Reacquire X locks on every row the transaction touched so new
        # work cannot read or overwrite its undecided changes.
        cursor = txn.last_lsn
        while cursor is not None:
            record = db.wal.record(cursor)
            if record.redoable and record.table in db.heaps:
                db.locks.force_grant(
                    txn, ("row", record.table, record.rid), LockMode.X)
            cursor = record.prev_lsn
        db.txns._active[txn_id] = txn

    # ---- rebuild secondary indexes -----------------------------------------------
    for index in db.catalog.indexes.values():
        btree = db.btrees[index.name]
        btree.clear()
        table = db.catalog.require_table(index.table)
        for rid, row in db.heaps[index.table].scan():
            key = tuple(row[table.position(c)] for c in index.columns)
            btree.insert(key, rid)

    db.checkpoint()
    return {"redone": redone, "undone": undone,
            "losers": sorted(losers), "committed": sorted(committed),
            "prepared": sorted(prepared)}


def _apply_state(heap: Heap, rid, desired: Optional[tuple]) -> None:
    current = heap.fetch(rid)
    if current is not None:
        heap.delete(rid)
    if desired is not None:
        heap.insert(desired, rid=rid)

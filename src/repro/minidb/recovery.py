"""Restart recovery: instant REDO-only restart, or classic ARIES replay.

Runs against the durable state only: disk page images plus the forced
prefix of the WAL.

With ``DBConfig.instant_recovery`` (the default) restart follows Sauer &
Härder's instant-recovery design: analysis reads only the durable tail
since the last checkpoint (the checkpoint payload carries the
transaction table and the per-page chain-head snapshot), REDO is
*deferred* — each page's pending log chain is recorded in
``db.replay_pending`` and replayed on first touch through the heap's
replay gate (``Database.replay_page``) or by DLFM's background
replayer — and secondary indexes are repaired from their checkpoint
images plus the tail deltas instead of a full-heap rebuild. Undo of
loser transactions and prepared-transaction lock resurrection stay
eager, so the engine is transaction-consistent (and accepts new work)
the moment ``restart()`` returns, after tail-proportional work only.

With ``instant_recovery=False`` the classic path runs: full-log
conditional REDO, then undo, then index rebuilds from the heaps.
Both paths write CLRs during undo so a crash during recovery is itself
recoverable. Each path's foreground I/O (log scan, page reads, index
repair) accumulates in the buffer pool's unbilled counter and is
converted, at the end of recovery, into ``Database.traffic_open_at`` —
a gate every new statement waits out. That is how "time to first
commit" materializes in simulated time: classic restart stalls traffic
for the whole replay, instant restart for the tail analysis only.
"""

from __future__ import annotations

from typing import Optional

from repro.minidb import wal as walmod
from repro.minidb.storage import Heap

#: Log records per log page: converts scan length into page I/Os charged
#: to the restart gate (restart cost is I/O-bound).
LOG_RECORDS_PER_PAGE = 10

#: Checkpoint index-image entries per page. Images are dense sorted runs
#: of small (key, rid) pairs — index-leaf packing, several times denser
#: than heap rows (``DBConfig.rows_per_page``).
INDEX_IMAGE_ENTRIES_PER_PAGE = 100


def _log_scan_io(records: int) -> int:
    return (records + LOG_RECORDS_PER_PAGE - 1) // LOG_RECORDS_PER_PAGE


def _image_io(entries: int) -> int:
    return ((entries + INDEX_IMAGE_ENTRIES_PER_PAGE - 1)
            // INDEX_IMAGE_ENTRIES_PER_PAGE)


def _close_traffic_gate(db) -> None:
    """Convert recovery's parked foreground I/O into a statement gate.

    Everything recovery read or wrote through the pool landed in
    ``unbilled_io``; draining it here (instead of letting whichever
    session touches the pool first pay) models the restart window during
    which the engine is genuinely unavailable to ALL traffic.
    """
    pages = db.pool.metrics.drain_unbilled()
    db.traffic_open_at = db.sim.now + db.config.timing.io_cost(pages)


class _RecoveryTxn:
    """Shim giving the WAL a chain head for recovery-time CLRs."""

    def __init__(self, txn_id: int, last_lsn: Optional[int]):
        self.id = txn_id
        self.last_lsn = last_lsn
        self.first_lsn = last_lsn

    def mark_rollback_only(self, reason: str = "error") -> None:
        pass


def recover(db) -> dict:
    """Bring ``db`` to a transaction-consistent state; returns a summary."""
    if db.config.instant_recovery:
        return _recover_instant(db)
    return _recover_classic(db)


# ---------------------------------------------------------------- instant path

def _recover_instant(db) -> dict:
    wal = db.wal

    # ---- analysis: checkpoint snapshot + the durable tail only ------------
    ckpt = wal.last_checkpoint_lsn
    snapshot: dict = {}
    if ckpt:
        payload = wal.record(ckpt).payload or {}
        snapshot = payload.get("txn_table", {})
    tail = wal.records[ckpt:]

    last_lsn: dict[int, int] = {}
    first_lsn: dict[int, int] = {}
    prepared: set[int] = set()
    for txn_id, info in snapshot.items():
        if info.get("last") is not None:
            last_lsn[txn_id] = info["last"]
            first_lsn[txn_id] = info.get("first") or info["last"]
        if info.get("prepared"):
            prepared.add(txn_id)
    ended: set[int] = set()
    committed: set[int] = set()
    for record in tail:
        if record.txn_id == 0:
            continue
        if record.kind in (walmod.COMMIT, walmod.ABORT):
            ended.add(record.txn_id)
            prepared.discard(record.txn_id)
            if record.kind == walmod.COMMIT:
                committed.add(record.txn_id)
        else:
            if record.kind == walmod.PREPARE:
                prepared.add(record.txn_id)
            last_lsn[record.txn_id] = record.lsn
            first_lsn.setdefault(record.txn_id, record.lsn)
    losers = {txn_id: lsn for txn_id, lsn in last_lsn.items()
              if txn_id not in ended and txn_id not in prepared}

    # ---- build the pending per-page replay chains -------------------------
    # Walk each chain head down until the durable page LSN catches it: the
    # records above the durable LSN are exactly the page's missing REDO
    # work. Pages of dropped tables are skipped (catalog is durable).
    pending: dict[tuple[str, int], list[int]] = {}
    for key in sorted(wal.page_heads):
        table, page_no = key
        if table not in db.catalog.tables:
            continue
        durable = db.disk.page_lsn(table, page_no)
        lsns: list[int] = []
        lsn: Optional[int] = wal.page_heads[key]
        while lsn is not None and lsn > durable:
            lsns.append(lsn)
            lsn = wal.record(lsn).prev_page_lsn
        if lsns:
            lsns.reverse()
            pending[key] = lsns
    redone = sum(len(lsns) for lsns in pending.values())

    # ---- heap bookkeeping without reading a single page -------------------
    chain_pages: dict[str, list[int]] = {}
    for table, page_no in pending:
        chain_pages.setdefault(table, []).append(page_no)
    for table in db.catalog.tables:
        db.heaps[table] = Heap.recover_lazy(table, db.pool,
                                            chain_pages.get(table, ()))
    db.replay_pending = pending
    for table in chain_pages:
        db.heaps[table].replay_hook = db.replay_page

    # Analysis read the tail once; the first post-restart statement pays.
    db.pool.metrics.unbilled_io += _log_scan_io(len(tail))

    # ---- chain-driven per-index repair (no full-heap rebuild) -------------
    for index in db.catalog.indexes.values():
        btree = db.btrees[index.name]
        table = db.catalog.require_table(index.table)
        image = db.disk.load_index_image(index.name)
        if image is None and db.disk.page_numbers(index.table):
            # No checkpoint image but durable heap pages exist: the index
            # was created after the last checkpoint. Fall back to a heap
            # scan — the replay gate makes the scan see crash-time rows,
            # at the price of replaying this one table eagerly.
            btree.clear()
            for rid, row in db.heaps[index.table].scan():
                key = tuple(row[table.position(c)] for c in index.columns)
                btree.insert(key, rid)
            continue
        if image is None:
            # No image and no durable pages: every row the index should
            # hold comes from tail records — replay deltas from empty.
            btree.clear()
        else:
            btree.bulk_load(image)
            db.pool.metrics.unbilled_io += _image_io(len(image))
        for record in tail:
            if not record.redoable or record.table != index.table:
                continue
            if record.before is not None:
                key = tuple(record.before[table.position(c)]
                            for c in index.columns)
                btree.delete(key, record.rid)
            if record.after is not None:
                key = tuple(record.after[table.position(c)]
                            for c in index.columns)
                btree.insert(key, record.rid)

    # ---- eager undo + indoubt resurrection, then re-checkpoint ------------
    # Undo maintains the indexes directly (they already hold crash-time
    # state); touched pages replay through the gate before the
    # before-image lands, so undo is correct on a partially-replayed heap.
    undone = _undo_losers(db, losers, maintain_indexes=True)
    _resurrect_prepared(db, prepared, last_lsn, first_lsn)
    _rebuild_versions(db)
    db.checkpoint()
    _close_traffic_gate(db)
    return {"redone": redone, "undone": undone,
            "losers": sorted(losers), "committed": sorted(committed),
            "prepared": sorted(prepared)}


# ---------------------------------------------------------------- classic path

def _recover_classic(db) -> dict:
    records = db.wal.records  # after crash() this is exactly the durable prefix

    # ---- analysis (full log) ----------------------------------------------
    last_lsn: dict[int, int] = {}
    first_lsn: dict[int, int] = {}
    ended: set[int] = set()
    committed: set[int] = set()
    prepared: set[int] = set()
    for record in records:
        if record.txn_id == 0:
            continue
        if record.kind in (walmod.COMMIT, walmod.ABORT):
            ended.add(record.txn_id)
            prepared.discard(record.txn_id)
            if record.kind == walmod.COMMIT:
                committed.add(record.txn_id)
        elif record.kind == walmod.PREPARE:
            prepared.add(record.txn_id)
            last_lsn[record.txn_id] = record.lsn
        else:
            last_lsn[record.txn_id] = record.lsn
            first_lsn.setdefault(record.txn_id, record.lsn)
    # Prepared (XA indoubt) transactions are NOT losers: their outcome
    # belongs to the transaction manager.
    losers = {txn_id: lsn for txn_id, lsn in last_lsn.items()
              if txn_id not in ended and txn_id not in prepared}

    # ---- rebuild heap bookkeeping from durable pages ------------------------
    for table in db.catalog.tables:
        db.heaps[table] = Heap.recover(table, db.pool)
    db.replay_pending = {}
    db.pool.metrics.unbilled_io += _log_scan_io(len(records))

    # ---- redo -------------------------------------------------------------------
    redone = 0
    for record in records:
        if not record.redoable:
            continue
        heap = db.heaps.get(record.table)
        if heap is None:
            continue  # table was dropped
        if heap.page_lsn(record.rid[0]) >= record.lsn:
            continue
        _apply_heap_state(heap, record.rid, record.after)
        heap.set_page_lsn(record.rid[0], record.lsn)
        redone += 1

    # ---- undo losers, resurrect indoubts, rebuild indexes -------------------
    undone = _undo_losers(db, losers, maintain_indexes=False)
    _resurrect_prepared(db, prepared, last_lsn, first_lsn)
    _rebuild_versions(db)
    for index in db.catalog.indexes.values():
        btree = db.btrees[index.name]
        btree.clear()
        table = db.catalog.require_table(index.table)
        for rid, row in db.heaps[index.table].scan():
            key = tuple(row[table.position(c)] for c in index.columns)
            btree.insert(key, rid)

    db.checkpoint()
    _close_traffic_gate(db)
    return {"redone": redone, "undone": undone,
            "losers": sorted(losers), "committed": sorted(committed),
            "prepared": sorted(prepared)}


# ---------------------------------------------------------------- shared parts

def _undo_losers(db, losers: dict[int, int], maintain_indexes: bool) -> int:
    """Single backward pass over all losers, writing CLR chains.

    ``undone`` counts only undos actually *applied*; records of dropped
    tables apply nothing, but still get a CLR so a crash during recovery
    never re-examines them (the chain stays idempotent).
    """
    undone = 0
    shims = {txn_id: _RecoveryTxn(txn_id, lsn)
             for txn_id, lsn in losers.items()}
    cursors = dict(losers)  # txn id → next LSN to examine
    while cursors:
        txn_id = max(cursors, key=lambda t: cursors[t])
        lsn = cursors[txn_id]
        record = db.wal.record(lsn)
        shim = shims[txn_id]
        next_lsn: Optional[int]
        if record.kind == walmod.CLR:
            next_lsn = record.undo_next
        elif record.redoable:
            heap = db.heaps.get(record.table)
            if heap is not None:
                if maintain_indexes:
                    db._apply_state(record.table, record.rid, record.before)
                else:
                    _apply_heap_state(heap, record.rid, record.before)
                undone += 1
            clr = db.wal.append(
                walmod.CLR, shim, table=record.table, rid=record.rid,
                before=record.after, after=record.before,
                undo_next=record.prev_lsn)
            if heap is not None:
                heap.set_page_lsn(record.rid[0], clr.lsn)
            next_lsn = record.prev_lsn
        else:  # BEGIN or foreign record kind
            next_lsn = record.prev_lsn
        if next_lsn is None:
            db.wal.append(walmod.ABORT, shim)
            del cursors[txn_id]
        else:
            cursors[txn_id] = next_lsn
    return undone


def _resurrect_prepared(db, prepared: set[int], last_lsn: dict[int, int],
                        first_lsn: dict[int, int]) -> None:
    from repro.minidb.locks import LockMode
    from repro.minidb.txn import Transaction, TxnState
    for txn_id in sorted(prepared):
        # Stamped with the recovery-time clock: a 0.0 birth time would
        # make age-based lock-wait policies see an ancient transaction.
        txn = Transaction(txn_id, "RR", db.sim.now)
        txn.state = TxnState.PREPARED
        txn.last_lsn = last_lsn.get(txn_id)
        txn.first_lsn = first_lsn.get(txn_id, txn.last_lsn)
        # Reacquire X locks on every row the transaction touched so new
        # work cannot read or overwrite its undecided changes. The same
        # walk rebuilds the touched set: the eventual commit stamps one
        # version per entry, and until then the merge pass must not fold
        # the seed guarding each slot's uncommitted state.
        cursor = txn.last_lsn
        while cursor is not None:
            record = db.wal.record(cursor)
            if record.redoable and record.table in db.heaps:
                db.locks.force_grant(
                    txn, ("row", record.table, record.rid), LockMode.X)
                txn.touched[(record.table, record.rid)] = None
            cursor = record.prev_lsn
        db.txns._active[txn_id] = txn


def _rebuild_versions(db) -> None:
    """Mirror the runtime MVCC protocol over the durable log.

    Chains as of the last checkpoint come from its payload; each tail
    record then replays the same steps the runtime took — seed the
    committed pre-state on a transaction's first touch, stamp one
    version per written rid at the COMMIT record's LSN. Version appends
    need no WAL records of their own: the logical heap records plus the
    commit LSN *are* the version log (the same documented substitution
    secondary indexes use). Runs after loser undo and in-doubt
    resurrection, so the tail also covers recovery's own CLR/ABORT
    chains. No snapshot survives a crash, so the closing merge pass
    (watermark = log tail) folds every committed tail version back into
    its base record; what remains are the before-image guards pinned by
    resurrected in-doubt transactions — without them a new SI snapshot
    would read an undecided slot.
    """
    if not db.config.mvcc:
        return
    wal = db.wal
    ckpt = wal.last_checkpoint_lsn
    if ckpt:
        images = (wal.record(ckpt).payload or {}).get("versions", {})
        for table, image in images.items():
            heap = db.heaps.get(table)
            if heap is not None:
                heap.restore_versions(image)
    #: txn id → {(table, rid): latest logged state} — what the commit
    #: stamp would have seen in the slot at commit time (strict 2PL:
    #: nobody else touches a rid between first write and commit).
    pending: dict[int, dict] = {}
    for record in wal.records[ckpt:]:
        if record.kind == walmod.COMMIT:
            for (table, rid), state in pending.pop(
                    record.txn_id, {}).items():
                heap = db.heaps.get(table)
                if heap is not None:
                    heap.version_append(rid, record.lsn, state)
        elif record.kind == walmod.ABORT:
            pending.pop(record.txn_id, None)
        elif record.redoable:
            heap = db.heaps.get(record.table)
            if heap is None:
                continue  # table dropped
            if record.kind != walmod.CLR:
                heap.version_seed(record.rid, record.before)
            pending.setdefault(record.txn_id, {})[
                (record.table, record.rid)] = record.after
    db.merge_versions()


def _apply_heap_state(heap: Heap, rid, desired: Optional[tuple]) -> None:
    """Force a heap slot to ``desired`` (indexes handled separately)."""
    current = heap.fetch(rid)
    if current is not None:
        heap.delete(rid)
    if desired is not None:
        heap.insert(desired, rid=rid)

"""Multi-granularity strict-2PL lock manager.

Implements the DB2 behaviours the paper's lessons revolve around:

* intent modes IS/IX/S/SIX/X on tables, S/X on rows and index keys;
* **next-key locking** resources (``("key", table, index, ekey)``) taken by
  the executor when ``DBConfig.next_key_locking`` is on — experiment E3;
* **lock escalation**: when one transaction's row/key locks on a table
  exceed ``maxlocks_fraction × locklist_size``, or the locklist is full,
  its row locks are traded for a single table lock — experiment E5;
* FIFO queuing with conversion priority, **interval-based deadlock
  detection** (victim = youngest) and per-request **timeouts** — E7.

The detector timer is armed only while requests are blocked, so drained
simulations terminate.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.errors import DeadlockError, LockTimeoutError, TransactionAborted
from repro.kernel.sim import TIMEOUT, Event, Simulator

from repro.minidb.config import DBConfig


class LockMode(enum.IntEnum):
    IS = 0
    IX = 1
    S = 2
    U = 3    # update lock: read now, intend to convert to X
    SIX = 4
    X = 5


_M = LockMode
#: COMPAT[a][b] — may a be held concurrently with b?
#: U coexists with readers (S/IS) but not with another U/IX/X — the
#: classic remedy for S→X conversion deadlocks on update scans.
_COMPAT = {
    _M.IS:  {_M.IS: True,  _M.IX: True,  _M.S: True,  _M.U: True,
             _M.SIX: True,  _M.X: False},
    _M.IX:  {_M.IS: True,  _M.IX: True,  _M.S: False, _M.U: False,
             _M.SIX: False, _M.X: False},
    _M.S:   {_M.IS: True,  _M.IX: False, _M.S: True,  _M.U: True,
             _M.SIX: False, _M.X: False},
    _M.U:   {_M.IS: True,  _M.IX: False, _M.S: True,  _M.U: False,
             _M.SIX: False, _M.X: False},
    _M.SIX: {_M.IS: True,  _M.IX: False, _M.S: False, _M.U: False,
             _M.SIX: False, _M.X: False},
    _M.X:   {_M.IS: False, _M.IX: False, _M.S: False, _M.U: False,
             _M.SIX: False, _M.X: False},
}
#: Least upper bound in the lock lattice (for conversions).
_SUP = {
    frozenset({_M.IS, _M.IS}): _M.IS,
    frozenset({_M.IS, _M.IX}): _M.IX,
    frozenset({_M.IS, _M.S}): _M.S,
    frozenset({_M.IS, _M.U}): _M.U,
    frozenset({_M.IS, _M.SIX}): _M.SIX,
    frozenset({_M.IS, _M.X}): _M.X,
    frozenset({_M.IX, _M.IX}): _M.IX,
    frozenset({_M.IX, _M.S}): _M.SIX,
    frozenset({_M.IX, _M.U}): _M.X,
    frozenset({_M.IX, _M.SIX}): _M.SIX,
    frozenset({_M.IX, _M.X}): _M.X,
    frozenset({_M.S, _M.S}): _M.S,
    frozenset({_M.S, _M.U}): _M.U,
    frozenset({_M.S, _M.SIX}): _M.SIX,
    frozenset({_M.S, _M.X}): _M.X,
    frozenset({_M.U, _M.U}): _M.U,
    frozenset({_M.U, _M.SIX}): _M.X,
    frozenset({_M.U, _M.X}): _M.X,
    frozenset({_M.SIX, _M.SIX}): _M.SIX,
    frozenset({_M.SIX, _M.X}): _M.X,
    frozenset({_M.X, _M.X}): _M.X,
}


def compatible(a: LockMode, b: LockMode) -> bool:
    return _COMPAT[a][b]


def supremum(a: LockMode, b: LockMode) -> LockMode:
    return _SUP[frozenset({a, b})]


#: Lock resources. ``table`` granularity:   ("table", tname)
#:                 ``row``   granularity:   ("row", tname, rid)
#:                 ``key``   granularity:   ("key", tname, index, ekey)
Resource = tuple


def resource_table(resource: Resource) -> str:
    return resource[1]


def is_table_resource(resource: Resource) -> bool:
    return resource[0] == "table"


class _Request:
    __slots__ = ("txn", "mode", "desired", "event", "is_conversion")

    def __init__(self, txn, mode: LockMode, desired: LockMode,
                 event: Event, is_conversion: bool):
        self.txn = txn
        self.mode = mode
        self.desired = desired
        self.event = event
        self.is_conversion = is_conversion


class _LockHead:
    __slots__ = ("resource", "holders", "queue")

    def __init__(self, resource: Resource):
        self.resource = resource
        self.holders: dict[int, LockMode] = {}  # txn id → mode
        self.queue: deque[_Request] = deque()


@dataclass
class LockMetrics:
    acquires: int = 0
    waits: int = 0
    deadlocks: int = 0
    timeouts: int = 0
    escalations: int = 0
    escalation_failures: int = 0
    peak_locks: int = 0
    detector_runs: int = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


class LockManager:
    def __init__(self, sim: Simulator, config: DBConfig, name: str = "db"):
        self.sim = sim
        self.config = config
        self.name = name
        self.heads: dict[Resource, _LockHead] = {}
        self.metrics = LockMetrics()
        self._total_locks = 0
        self._waiting: dict[int, tuple] = {}  # txn id → (resource, request, txn)
        self._detector_armed = False

    # ------------------------------------------------------------------ acquire

    def acquire(self, txn, resource: Resource, mode: LockMode,
                timeout: Optional[float] = None):
        """Generator: take ``resource`` in ``mode`` for ``txn`` (blocking).

        Returns True when a *new* lock entry was created for this
        transaction (used by cursor-stability early release). Raises
        DeadlockError / LockTimeoutError (both mark the transaction
        rollback-only) or TransactionAborted("locklist") when the locklist
        is exhausted and escalation is disabled or fails.
        """
        txn.ensure_active()
        self.metrics.acquires += 1

        if self.sim.injector.enabled:
            rule = self.sim.injector.fire(f"lock.acquire:{self.name}",
                                          ("lock_timeout", "lock_deadlock"))
            if rule is not None:
                # Forced victim, following the exact failure paths below.
                if rule.kind == "lock_timeout":
                    self.metrics.timeouts += 1
                    txn.mark_rollback_only("timeout")
                    raise LockTimeoutError(
                        f"txn {txn.id} injected lock timeout on {resource!r}")
                self.metrics.deadlocks += 1
                txn.mark_rollback_only("deadlock")
                raise DeadlockError(
                    f"txn {txn.id} injected deadlock victim on {resource!r}")

        if not is_table_resource(resource):
            table = resource_table(resource)
            covering = self._table_mode(txn, table)
            if covering is not None and self._covers(covering, mode):
                return False  # an escalated table lock already covers this
            # Multi-granularity protocol: row/key locks are always preceded
            # by the matching intent lock on the table, so an escalated
            # table lock held by someone else blocks us here.
            intent = (LockMode.IS if mode in (LockMode.S, LockMode.IS)
                      else LockMode.IX)  # U intends to write → IX
            yield from self._acquire_raw(txn, ("table", table), intent,
                                         timeout)
            if self._should_escalate(txn, table):
                yield from self._escalate(txn, table, mode)
                return False
        newly = yield from self._acquire_raw(txn, resource, mode, timeout)
        return newly

    def _acquire_raw(self, txn, resource: Resource, mode: LockMode,
                     timeout: Optional[float] = None):
        head = self.heads.get(resource)
        if head is None:
            head = self.heads[resource] = _LockHead(resource)
        held = head.holders.get(txn.id)
        if held is not None and supremum(held, mode) == held:
            return False  # already strong enough
        desired = supremum(held, mode) if held is not None else mode
        is_conversion = held is not None

        if self._grantable(head, txn, desired, is_conversion):
            self._grant(head, txn, desired, new=held is None)
            return held is None

        # Must wait.
        self.metrics.waits += 1
        event = Event(self.sim, name=f"lock:{resource!r}:{txn.id}")
        request = _Request(txn, mode, desired, event, is_conversion)
        head.queue.append(request)
        self._waiting[txn.id] = (resource, request, txn)
        self._arm_detector()
        wait_limit = self.config.lock_timeout if timeout is None else timeout
        with self.sim.tracer.span("lock.wait", db=self.name,
                                  resource=resource, mode=desired.name,
                                  txn=txn.id) as span:
            outcome = yield event.wait(wait_limit)
            if outcome is TIMEOUT:
                span.set(outcome="timeout")
                self._cancel_request(head, request)
                self.metrics.timeouts += 1
                txn.mark_rollback_only("timeout")
                raise LockTimeoutError(
                    f"txn {txn.id} timed out after {wait_limit}s on "
                    f"{resource!r} ({desired.name})")
            if outcome == "deadlock":
                span.set(outcome="deadlock")
                self.metrics.deadlocks += 1
                txn.mark_rollback_only("deadlock")
                raise DeadlockError(
                    f"txn {txn.id} chosen as deadlock victim on {resource!r}")
            # ("granted", newly): bookkeeping was done by the granter.
            span.set(outcome="granted")
            return outcome[1]

    def _grantable(self, head: _LockHead, txn, desired: LockMode,
                   is_conversion: bool) -> bool:
        for other_id, other_mode in head.holders.items():
            if other_id != txn.id and not compatible(desired, other_mode):
                return False
        if not is_conversion:
            # FIFO fairness: a fresh request must not overtake waiters.
            for queued in head.queue:
                if queued.txn.id != txn.id:
                    return False
        return True

    def _grant(self, head: _LockHead, txn, desired: LockMode, new: bool) -> None:
        head.holders[txn.id] = desired
        if new:
            txn.note_lock(head.resource, self)
            self._total_locks += 1
            self.metrics.peak_locks = max(self.metrics.peak_locks,
                                          self._total_locks)

    # ------------------------------------------------------------------ release

    def release(self, txn, resource: Resource) -> None:
        """Early release of a single lock (cursor-stability reads)."""
        head = self.heads.get(resource)
        if head is None or txn.id not in head.holders:
            return
        del head.holders[txn.id]
        txn.forget_lock(resource)
        self._total_locks -= 1
        self._wake_waiters(head)

    def release_all(self, txn) -> None:
        """End-of-transaction release (strict 2PL)."""
        resources = txn.drain_locks()
        affected = []
        for resource in resources:
            head = self.heads.get(resource)
            if head is not None and txn.id in head.holders:
                del head.holders[txn.id]
                self._total_locks -= 1
                affected.append(head)
        for head in affected:
            self._wake_waiters(head)

    def _wake_waiters(self, head: _LockHead) -> None:
        # Pass 1: conversions anywhere in the queue (they jump the line).
        for request in list(head.queue):
            if request.is_conversion and self._compatible_with_others(
                    head, request.txn, request.desired):
                head.queue.remove(request)
                self._finish_grant(head, request)
        # Pass 2: FIFO prefix of compatible fresh requests.
        while head.queue:
            request = head.queue[0]
            if not self._compatible_with_others(head, request.txn,
                                                request.desired):
                break
            head.queue.popleft()
            self._finish_grant(head, request)
        if not head.holders and not head.queue:
            self.heads.pop(head.resource, None)

    def _compatible_with_others(self, head: _LockHead, txn,
                                desired: LockMode) -> bool:
        return all(compatible(desired, mode)
                   for other, mode in head.holders.items() if other != txn.id)

    def _finish_grant(self, head: _LockHead, request: _Request) -> None:
        new = request.txn.id not in head.holders
        self._grant(head, request.txn, request.desired, new=new)
        self._waiting.pop(request.txn.id, None)
        request.event.trigger(("granted", new))

    def _cancel_request(self, head: _LockHead, request: _Request) -> None:
        try:
            head.queue.remove(request)
        except ValueError:
            pass
        self._waiting.pop(request.txn.id, None)
        self._wake_waiters(head)

    # ------------------------------------------------------------------ escalation

    def _table_mode(self, txn, table: str) -> Optional[LockMode]:
        head = self.heads.get(("table", table))
        if head is None:
            return None
        return head.holders.get(txn.id)

    @staticmethod
    def _covers(table_mode: LockMode, row_mode: LockMode) -> bool:
        if table_mode == LockMode.X:
            return True
        if table_mode in (LockMode.S, LockMode.SIX):
            return row_mode in (LockMode.S, LockMode.IS)
        return False

    def _should_escalate(self, txn, table: str) -> bool:
        if not self.config.lock_escalation:
            if self._total_locks + 1 > self.config.locklist_size:
                txn.mark_rollback_only()
                raise TransactionAborted(
                    f"locklist exhausted ({self.config.locklist_size}) and "
                    "lock escalation is disabled", reason="locklist")
            return False
        threshold = self.config.maxlocks_fraction * self.config.locklist_size
        if txn.row_lock_count(table) + 1 > threshold:
            return True
        if self._total_locks + 1 > self.config.locklist_size:
            return True
        return False

    def _escalate(self, txn, table: str, pending_mode: LockMode):
        """Trade row/key locks on ``table`` for one table lock."""
        wants_x = pending_mode in (LockMode.X, LockMode.IX, LockMode.SIX,
                                   LockMode.U)
        if not wants_x:
            wants_x = any(
                self.heads[res].holders.get(txn.id) == LockMode.X
                for res in txn.row_locks(table) if res in self.heads)
        target = LockMode.X if wants_x else LockMode.S
        try:
            yield from self._acquire_raw(txn, ("table", table), target)
        except TransactionAborted:
            self.metrics.escalation_failures += 1
            raise
        self.metrics.escalations += 1
        self.sim.tracer.event("lock.escalation", db=self.name, table=table,
                              txn=txn.id, mode=target.name)
        for resource in list(txn.row_locks(table)):
            head = self.heads.get(resource)
            if head is not None and txn.id in head.holders:
                del head.holders[txn.id]
                self._total_locks -= 1
                self._wake_waiters(head)
            txn.forget_lock(resource)

    # ------------------------------------------------------------------ deadlocks

    def _arm_detector(self) -> None:
        if self._detector_armed:
            return
        self._detector_armed = True
        self.sim.after(self.config.deadlock_check_interval,
                       self._detector_tick)

    def _detector_tick(self) -> None:
        self._detector_armed = False
        if not self._waiting:
            return
        self.metrics.detector_runs += 1
        while True:
            victim = self._find_deadlock_victim()
            if victim is None:
                break
            resource, request, txn = self._waiting.pop(victim)
            self.sim.tracer.event("lock.deadlock", db=self.name,
                                  victim=victim, resource=resource)
            head = self.heads.get(resource)
            if head is not None:
                try:
                    head.queue.remove(request)
                except ValueError:
                    pass
                self._wake_waiters(head)
            request.event.trigger("deadlock")
        if self._waiting:
            self._arm_detector()

    def _find_deadlock_victim(self) -> Optional[int]:
        """DFS for a cycle in the wait-for graph; returns the youngest member."""
        edges: dict[int, set[int]] = {}
        for txn_id, (resource, request, _) in self._waiting.items():
            head = self.heads.get(resource)
            if head is None:
                continue
            blockers = set()
            for holder, mode in head.holders.items():
                if holder != txn_id and not compatible(request.desired, mode):
                    blockers.add(holder)
            if not request.is_conversion:
                # Fresh requests also wait behind earlier incompatible
                # waiters (FIFO); conversions jump the queue, so they wait
                # only on holders.
                for queued in head.queue:
                    if queued is request:
                        break
                    if (queued.txn.id != txn_id
                            and not compatible(request.desired,
                                               queued.desired)):
                        blockers.add(queued.txn.id)
            edges[txn_id] = blockers

        WHITE, GREY, BLACK = 0, 1, 2
        color = dict.fromkeys(edges, WHITE)

        def dfs(node: int, path: list[int]) -> Optional[list[int]]:
            color[node] = GREY
            path.append(node)
            for nxt in edges.get(node, ()):
                if color.get(nxt, BLACK) == GREY:
                    return path[path.index(nxt):]
                if color.get(nxt, BLACK) == WHITE:
                    cycle = dfs(nxt, path)
                    if cycle is not None:
                        return cycle
            path.pop()
            color[node] = BLACK
            return None

        for start in list(edges):
            if color[start] == WHITE:
                cycle = dfs(start, [])
                if cycle is not None:
                    return max(cycle)  # youngest transaction dies
        return None

    # ------------------------------------------------------------------ recovery

    def force_grant(self, txn, resource: Resource, mode: LockMode) -> None:
        """Grant without queuing — restart recovery reacquiring the write
        locks of a prepared (indoubt) transaction, before any new work is
        admitted, so contention is impossible by construction."""
        if not is_table_resource(resource):
            self.force_grant(txn, ("table", resource_table(resource)),
                             LockMode.IX)
        head = self.heads.get(resource)
        if head is None:
            head = self.heads[resource] = _LockHead(resource)
        held = head.holders.get(txn.id)
        desired = supremum(held, mode) if held is not None else mode
        self._grant(head, txn, desired, new=held is None)

    # ------------------------------------------------------------------ inspection

    @property
    def total_locks(self) -> int:
        return self._total_locks

    def holders_of(self, resource: Resource) -> dict[int, LockMode]:
        head = self.heads.get(resource)
        return dict(head.holders) if head else {}

    def waiting_txns(self) -> list[int]:
        return sorted(self._waiting)

    def clear(self) -> None:
        """Crash: the lock table is volatile."""
        self.heads.clear()
        self._waiting.clear()
        self._total_locks = 0

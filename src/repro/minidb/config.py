"""Tunable knobs for the minidb engine.

These map one-for-one onto the DB2 configuration parameters the paper
tunes: LOCKTIMEOUT, DLCHKTIME, LOCKLIST/MAXLOCKS (escalation), the
next-key-locking registry switch, and log capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union


@dataclass
class TimingModel:
    """Virtual service times charged to operations (seconds).

    With ``enabled=False`` (the default for unit tests) no time is charged
    and simulations complete at t≈0 except for explicit waits. Benchmarks
    use :meth:`calibrated`, whose values are chosen so the tuned E1
    configuration lands near the paper's reported 300 links/min with 100
    clients (see EXPERIMENTS.md, "Calibration").
    """

    enabled: bool = False
    cpu_per_statement: float = 0.0005
    #: Parse + optimize cost, charged only when a statement misses the
    #: bound-plan cache (a re-bind after invalidation pays it again).
    #: Dynamic SQL that interpolates literals gets a distinct cache key
    #: per value and pays this on EVERY execution — the cost the
    #: prepared-statement API exists to amortize. 0.0 keeps the
    #: historical "compilation is free" calibration (like
    #: ``index_entry``); the prepared-statement bench arm opts in.
    compile_cpu: float = 0.0
    page_io: float = 0.004
    log_force: float = 0.006
    lock_op: float = 0.00002
    rpc: float = 0.002
    #: Per-entry secondary-index maintenance (DB2 logs index pages; our
    #: indexes are memory-resident, so this models that write cost).
    #: 0.0 keeps the historical "indexes are free" calibration — the
    #: LOAD bench arm opts in to expose the bulk-build win.
    index_entry: float = 0.0
    #: Relative per-entry cost of a sorted bottom-up bulk build versus
    #: per-row insert maintenance (sequential index-page writes).
    bulk_index_factor: float = 0.1

    @classmethod
    def zero(cls) -> "TimingModel":
        return cls(enabled=False)

    @classmethod
    def calibrated(cls) -> "TimingModel":
        return cls(enabled=True)

    def statement_cost(self) -> float:
        return self.cpu_per_statement if self.enabled else 0.0

    def compile_cost(self) -> float:
        return self.compile_cpu if self.enabled else 0.0

    def io_cost(self, pages: int = 1) -> float:
        return self.page_io * pages if self.enabled else 0.0

    def log_force_cost(self) -> float:
        return self.log_force if self.enabled else 0.0

    def rpc_cost(self) -> float:
        return self.rpc if self.enabled else 0.0

    def index_entry_cost(self, entries: float = 1) -> float:
        return self.index_entry * entries if self.enabled else 0.0


@dataclass
class DBConfig:
    """Engine configuration; defaults approximate an untuned DB2 instance."""

    #: Seconds a lock request may wait before LockTimeoutError (LOCKTIMEOUT).
    lock_timeout: float = 60.0
    #: Period of the wait-for-graph deadlock detector (DLCHKTIME).
    deadlock_check_interval: float = 1.0
    #: ARIES/KVL next-key locking on index access under RR (the paper turns
    #: this OFF for DLFM's local database).
    next_key_locking: bool = True
    #: Default isolation level for new sessions: "RR" (repeatable read,
    #: with phantom protection when next-key locking is on), "RS" (read
    #: stability: read locks held to commit, no phantom protection — what
    #: DLFM effectively got by disabling next-key locking), "CS"
    #: (cursor stability), or "SI" (snapshot isolation: reads resolve
    #: against a begin-timestamp snapshot of the version chains and take
    #: no S row/key locks at all; writers keep X locks and the first
    #: writer to commit wins write-write conflicts). SI requires ``mvcc``.
    isolation: str = "RR"
    #: Maintain MVCC lineage chains (base slot + append-only version
    #: tail stamped with commit LSNs). Required for isolation="SI";
    #: chains fold back into base records as soon as no live snapshot
    #: can see them, so with no SI sessions this is pure bookkeeping and
    #: RR/RS/CS scheduling is unchanged.
    mvcc: bool = True
    #: Total lock entries available across all transactions (LOCKLIST).
    locklist_size: int = 100_000
    #: Fraction of the locklist one transaction may fill before its row
    #: locks on a table escalate to a table lock (MAXLOCKS).
    maxlocks_fraction: float = 0.22
    #: Master switch for escalation (real DB2 cannot disable it; we can,
    #: for the E5 ablation's control arm).
    lock_escalation: bool = True
    #: Use U (update) locks on update/delete scans instead of S→X
    #: conversion — DB2's remedy for conversion deadlocks. Off by default
    #: so the conversion-deadlock behaviour stays observable.
    update_locks: bool = False
    #: Active-log capacity in log records before LogFullError (LOGPRIMARY).
    wal_capacity: int = 200_000
    #: WAL group commit (DB2's MINCOMMIT): committers arriving within this
    #: many simulated seconds of each other share ONE physical log force —
    #: the first becomes the group leader, waits out the window, then
    #: forces to the log tail, covering everyone who appended meanwhile.
    #: 0.0 (the default) forces per commit, the paper-faithful behaviour;
    #: commit latency grows by up to the window when enabled.
    #: ``"auto"`` self-tunes: the WAL keeps an EWMA of commit-request
    #: inter-arrival spacing and each leader picks its own window —
    #: force immediately when arrivals are sparse (no latency tax at low
    #: concurrency), batch up to ``group_commit_max_window`` under
    #: bursts (keeping the forces-saved win). See DESIGN.md §9.
    group_commit_window: Union[float, str] = 0.0
    #: Auto mode: smallest window a batching leader will wait (floor so
    #: a dense burst still collects followers arriving "now").
    group_commit_min_window: float = 0.002
    #: Auto mode: hard ceiling on the chosen window (the latency bound —
    #: equal to the historical fixed window, so auto never waits longer
    #: than the fixed configuration did).
    group_commit_max_window: float = 0.05
    #: Auto mode: EWMA smoothing factor for commit inter-arrival gaps.
    group_commit_ewma_alpha: float = 0.25
    #: Auto mode: window = clamp(factor * ewma_gap, min, max) — how many
    #: expected arrivals a leader tries to cover.
    group_commit_burst_factor: float = 4.0
    #: Bound on ``Database._plan_cache`` entries (LRU eviction beyond it).
    plan_cache_size: int = 512
    #: Auto-RUNSTATS: refresh a table's statistics once enough rows have
    #: mutated since they were last computed, bumping the stats version
    #: so cached plans re-bind — no more ``card=0`` scan plans on tables
    #: that grew after creation. Off by default: the E4 ablation (and
    #: DB2 up to v8) depends on stale statistics staying stale until
    #: someone runs RUNSTATS. Tables with hand-crafted (``manual``)
    #: statistics are never refreshed — the paper's pinning guard wins.
    auto_runstats: bool = False
    #: Minimum mutations (insert/update/delete rows) since the last
    #: refresh before auto-RUNSTATS reconsiders a table.
    auto_runstats_threshold: int = 200
    #: Refresh once mutations exceed ``threshold + fraction * card`` —
    #: the PostgreSQL-autovacuum shape: cheap tables refresh eagerly,
    #: million-row tables only after proportional churn.
    auto_runstats_fraction: float = 0.2
    #: Instant, REDO-only restart (Sauer & Härder): analysis over the
    #: durable tail builds per-page replay chains; pages are replayed
    #: lazily on first touch (plus a background drain in DLFM) instead
    #: of a full-log REDO pass before the first statement. False gives
    #: the classic ARIES full-replay restart (the bench baseline).
    instant_recovery: bool = True
    #: Buffer-pool capacity in pages.
    buffer_pool_pages: int = 2_000
    #: Heap rows per page (drives optimizer page counts and I/O volume).
    rows_per_page: int = 32
    #: B+tree fanout.
    btree_order: int = 64
    #: Virtual service times.
    timing: TimingModel = field(default_factory=TimingModel.zero)

    def with_changes(self, **kwargs) -> "DBConfig":
        """Functional update helper used by experiment configuration."""
        return replace(self, **kwargs)

    def validate(self) -> None:
        if self.lock_timeout <= 0:
            raise ValueError("lock_timeout must be positive")
        if not 0 < self.maxlocks_fraction <= 1:
            raise ValueError("maxlocks_fraction must be in (0, 1]")
        if self.isolation not in ("RR", "RS", "CS", "SI"):
            raise ValueError(f"unknown isolation level {self.isolation!r}")
        if self.isolation == "SI" and not self.mvcc:
            raise ValueError("isolation='SI' requires mvcc=True")
        if self.rows_per_page < 1 or self.btree_order < 4:
            raise ValueError("degenerate storage geometry")
        if isinstance(self.group_commit_window, str):
            if self.group_commit_window != "auto":
                raise ValueError(
                    f"group_commit_window must be a number or 'auto', "
                    f"got {self.group_commit_window!r}")
        elif self.group_commit_window < 0:
            raise ValueError("group_commit_window must be >= 0")
        if not (0 < self.group_commit_min_window
                <= self.group_commit_max_window):
            raise ValueError(
                "need 0 < group_commit_min_window <= group_commit_max_window")
        if not 0 < self.group_commit_ewma_alpha <= 1:
            raise ValueError("group_commit_ewma_alpha must be in (0, 1]")
        if self.group_commit_burst_factor <= 0:
            raise ValueError("group_commit_burst_factor must be positive")
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        if self.auto_runstats_threshold < 1:
            raise ValueError("auto_runstats_threshold must be >= 1")
        if self.auto_runstats_fraction < 0:
            raise ValueError("auto_runstats_fraction must be >= 0")

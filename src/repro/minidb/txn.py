"""Transaction objects and the active-transaction table."""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.errors import TransactionAborted
from repro.minidb.locks import Resource, is_table_resource, resource_table


class TxnState(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"   # XA: hardened, outcome owned by the TM
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One minidb transaction: lock ownership, undo chain head, savepoints."""

    def __init__(self, txn_id: int, isolation: str, start_time: float):
        self.id = txn_id
        self.isolation = isolation
        self.state = TxnState.ACTIVE
        self.start_time = start_time
        self.rollback_only = False
        self.abort_reason: Optional[str] = None
        self.first_lsn: Optional[int] = None
        self.last_lsn: Optional[int] = None
        #: SI only: WAL tail LSN at begin. Reads resolve to the newest
        #: version committed at or before it; None for RR/RS/CS.
        self.snapshot_lsn: Optional[int] = None
        #: (table, rid) written by this transaction, insertion-ordered.
        #: Snapshot reads treat these as own-writes (read the slot), the
        #: commit stamps one version per entry, and the merge daemon
        #: never folds a chain pinned here.
        self.touched: dict[tuple[str, tuple], None] = {}
        self._locks: dict[Resource, None] = {}  # insertion-ordered set
        self._row_locks: dict[str, set[Resource]] = {}
        self._savepoints: dict[str, Optional[int]] = {}

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<Txn {self.id} {self.state.value}>"

    # -- state -----------------------------------------------------------------

    def ensure_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionAborted(
                f"transaction {self.id} is {self.state.value}",
                reason=self.abort_reason or "ended")
        if self.rollback_only:
            raise TransactionAborted(
                f"transaction {self.id} is rollback-only "
                f"({self.abort_reason})", reason=self.abort_reason or "error")

    def mark_rollback_only(self, reason: str = "error") -> None:
        if not self.rollback_only:
            self.rollback_only = True
            self.abort_reason = reason

    # -- lock bookkeeping (called by LockManager) ----------------------------------

    def note_lock(self, resource: Resource, _mgr) -> None:
        self._locks[resource] = None
        if not is_table_resource(resource):
            self._row_locks.setdefault(resource_table(resource),
                                       set()).add(resource)

    def forget_lock(self, resource: Resource) -> None:
        self._locks.pop(resource, None)
        if not is_table_resource(resource):
            rows = self._row_locks.get(resource_table(resource))
            if rows is not None:
                rows.discard(resource)

    def drain_locks(self) -> list[Resource]:
        resources = list(self._locks)
        self._locks.clear()
        self._row_locks.clear()
        return resources

    def row_lock_count(self, table: str) -> int:
        return len(self._row_locks.get(table, ()))

    def row_locks(self, table: str) -> set[Resource]:
        return set(self._row_locks.get(table, ()))

    @property
    def lock_count(self) -> int:
        return len(self._locks)

    # -- savepoints ------------------------------------------------------------

    def set_savepoint(self, name: str) -> None:
        self._savepoints[name] = self.last_lsn

    def savepoint_lsn(self, name: str) -> Optional[int]:
        if name not in self._savepoints:
            raise TransactionAborted(f"unknown savepoint {name!r}")
        return self._savepoints[name]

    def drop_savepoint(self, name: str) -> None:
        self._savepoints.pop(name, None)


class TransactionTable:
    """Registry of in-flight transactions; feeds the WAL's active floor.

    ``start`` lets a restarted database continue its id sequence — the
    paper stresses transaction ids must be monotonically increasing,
    which must hold across crashes too.
    """

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)
        self._active: dict[int, Transaction] = {}
        self._highest = start - 1

    def begin(self, isolation: str, now: float) -> Transaction:
        txn = Transaction(next(self._counter), isolation, now)
        self._highest = max(self._highest, txn.id)
        self._active[txn.id] = txn
        return txn

    @property
    def highest_id(self) -> int:
        return self._highest

    def end(self, txn: Transaction, state: TxnState) -> None:
        txn.state = state
        self._active.pop(txn.id, None)

    def active_floor(self) -> Optional[int]:
        """Smallest first-LSN among in-flight transactions (pins the log)."""
        lsns = [t.first_lsn for t in self._active.values()
                if t.first_lsn is not None]
        return min(lsns) if lsns else None

    def oldest_snapshot(self) -> Optional[int]:
        """Smallest begin-snapshot among live SI transactions, or None.

        This is the version-merge watermark source: versions older than
        the newest one at-or-below it are invisible to every live and
        future snapshot and can fold into the base record.
        """
        snaps = [t.snapshot_lsn for t in self._active.values()
                 if t.snapshot_lsn is not None]
        return min(snaps) if snaps else None

    @property
    def active(self) -> list[Transaction]:
        return list(self._active.values())

    def clear(self) -> None:
        self._active.clear()

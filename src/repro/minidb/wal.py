"""Write-ahead log with a bounded active window and per-page log chains.

The log is logical (row-level before/after images); secondary indexes
are repaired from checkpoint images plus the durable tail at restart
(see ``recovery.py``). The *active window* spans from the oldest
position still needed — the first LSN of the oldest in-flight
transaction, or the last checkpoint, whichever is older — to the tail.
When that window exceeds ``wal_capacity`` the appending transaction
gets :class:`~repro.errors.LogFullError`, exactly the DB2 "log full"
condition the paper's long-running utilities (load, reconcile,
delete-group) had to dodge with periodic local commits (lesson §4, E8).

Per-page chains (Sauer & Härder instant recovery): every redoable
record carries ``prev_page_lsn``, the LSN of the previous redoable
record against the same heap page, and :attr:`LogManager.page_heads`
maps each page to its chain head. Checkpoints snapshot the head table
so a restart can find every page's chain without scanning the whole
log; :meth:`LogManager.crash` rebuilds the heads from the last durable
checkpoint plus the surviving tail (prev links only ever point
backward, so truncating the unforced tail cannot dangle a chain).

MVCC version chains are logged *implicitly*, the same substitution the
indexes use: a version append is fully determined by a transaction's
redoable records (the seed is the before-image of its first touch of a
slot, the stamped state is its last logged ``after``) plus the LSN of
its COMMIT record, which doubles as the version timestamp. Checkpoints
snapshot the chains themselves in the payload (``"versions"``) next to
the chain heads; ``recovery._rebuild_versions`` replays image + tail
to reconstruct chains on both the classic and instant paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import LogFullError

# Log record kinds.
BEGIN = "BEGIN"
COMMIT = "COMMIT"
ABORT = "ABORT"
INSERT = "INSERT"
DELETE = "DELETE"
UPDATE = "UPDATE"
CLR = "CLR"
CHECKPOINT = "CHECKPOINT"
PREPARE = "PREPARE"  # XA: transaction hardened but outcome undecided
FORGET = "FORGET"    # 2PC decision forgotten (piggybacked decisions)

_REDOABLE = frozenset({INSERT, DELETE, UPDATE, CLR})


@dataclass
class LogRecord:
    """One WAL entry. ``undo_next`` is only set for CLRs.

    ``prev_page_lsn`` threads the per-page log chain: for a redoable
    record it is the LSN of the previous redoable record against the
    same (table, page), or None at the chain's start.
    """

    lsn: int
    kind: str
    txn_id: int
    prev_lsn: Optional[int] = None
    table: Optional[str] = None
    rid: Optional[tuple[int, int]] = None
    before: Optional[tuple] = None
    after: Optional[tuple] = None
    undo_next: Optional[int] = None
    prev_page_lsn: Optional[int] = None
    payload: Any = None  # checkpoint snapshots

    @property
    def redoable(self) -> bool:
        return self.kind in _REDOABLE


@dataclass
class WalMetrics:
    appends: int = 0
    forces: int = 0
    log_fulls: int = 0
    #: Group commit (``DBConfig.group_commit_window``): number of shared
    #: physical forces, and commits/prepares that piggybacked on one
    #: instead of paying their own.
    group_commits: int = 0
    forces_saved: int = 0
    #: Auto window mode only: leaders that forced immediately because
    #: arrivals were sparse, and leaders that chose to wait and batch.
    auto_immediate: int = 0
    auto_batched: int = 0


class LogManager:
    """Append-only log plus durability watermark.

    Records with ``lsn <= flushed_upto`` survive a crash; the tail is lost.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.records: list[LogRecord] = []
        self.flushed_upto = 0  # highest durable LSN; LSNs start at 1
        self.last_checkpoint_lsn = 0
        #: (table, page_no) → LSN of the newest redoable record against
        #: that page (the per-page chain head).
        self.page_heads: dict[tuple[str, int], int] = {}
        self.metrics = WalMetrics()
        #: Adaptive group commit ("auto" window): EWMA of commit-request
        #: inter-arrival gaps, fed by :meth:`note_commit_request`. Kept
        #: here (not in WalMetrics) because the obs layer coerces every
        #: WalMetrics field to an int counter.
        self.commit_gap_ewma: Optional[float] = None
        self.last_commit_request: Optional[float] = None
        #: Windows chosen by auto-mode leaders, for the obs histogram.
        self.auto_windows: list[float] = []

    @property
    def tail_lsn(self) -> int:
        return len(self.records)

    def append(self, kind: str, txn, *, table: Optional[str] = None,
               rid: Optional[tuple[int, int]] = None,
               before: Optional[tuple] = None, after: Optional[tuple] = None,
               undo_next: Optional[int] = None, payload: Any = None,
               active_floor: Optional[int] = None) -> LogRecord:
        """Append one record for ``txn``; enforces the active-window bound.

        ``active_floor`` is the smallest first-LSN among in-flight
        transactions (computed by the caller, who owns the transaction
        table); ``None`` means no transaction is pinning the log.
        """
        floor = self.last_checkpoint_lsn
        if active_floor is not None:
            floor = min(floor, active_floor - 1)
        window = self.tail_lsn - floor
        if window >= self.capacity and kind not in (COMMIT, ABORT, CLR,
                                                    CHECKPOINT, PREPARE,
                                                    FORGET):
            # Ending records are always allowed so the pinning transaction
            # can be rolled back / finished; CLRs are its undo work.
            self.metrics.log_fulls += 1
            if txn is not None:
                txn.mark_rollback_only("logfull")
            raise LogFullError(
                f"active log window {window} reached capacity "
                f"{self.capacity} (txn {txn.id if txn else 0})")
        lsn = self.tail_lsn + 1
        prev_page_lsn = None
        if kind in _REDOABLE and table is not None and rid is not None:
            page_key = (table, rid[0])
            prev_page_lsn = self.page_heads.get(page_key)
            self.page_heads[page_key] = lsn
        record = LogRecord(lsn=lsn, kind=kind,
                           txn_id=txn.id if txn is not None else 0,
                           prev_lsn=txn.last_lsn if txn is not None else None,
                           table=table, rid=rid, before=before, after=after,
                           undo_next=undo_next, prev_page_lsn=prev_page_lsn,
                           payload=payload)
        self.records.append(record)
        self.metrics.appends += 1
        if txn is not None:
            txn.last_lsn = lsn
            if txn.first_lsn is None:
                txn.first_lsn = lsn
        return record

    def force(self, upto: Optional[int] = None) -> bool:
        """Make the log durable up to ``upto`` (default: tail).

        Returns True when a physical force was needed (caller charges I/O).
        """
        target = self.tail_lsn if upto is None else upto
        if target <= self.flushed_upto:
            return False
        self.flushed_upto = target
        self.metrics.forces += 1
        return True

    def record(self, lsn: int) -> LogRecord:
        return self.records[lsn - 1]

    def note_commit_request(self, now: float, alpha: float) -> None:
        """Feed one commit-request arrival into the inter-arrival EWMA.

        Called by the database on every commit/prepare force request when
        the group-commit window is ``"auto"``. The EWMA tracks the spacing
        between requests; leaders consult it via the database's window
        policy to decide between forcing immediately and batching.
        """
        if self.last_commit_request is not None:
            gap = now - self.last_commit_request
            if self.commit_gap_ewma is None:
                self.commit_gap_ewma = gap
            else:
                self.commit_gap_ewma += alpha * (gap - self.commit_gap_ewma)
        self.last_commit_request = now

    def window(self, active_floor: Optional[int]) -> int:
        """Current active-log size in records."""
        floor = self.last_checkpoint_lsn
        if active_floor is not None:
            floor = min(floor, active_floor - 1)
        return self.tail_lsn - floor

    def note_checkpoint(self, lsn: int) -> None:
        self.last_checkpoint_lsn = lsn

    def forget_table(self, table: str) -> None:
        """Drop a table's per-page chains (non-transactional DROP TABLE)."""
        for key in [k for k in self.page_heads if k[0] == table]:
            del self.page_heads[key]

    # -- crash/restart support -------------------------------------------------

    def durable_records(self) -> list[LogRecord]:
        """The prefix of the log that survives a crash."""
        return self.records[: self.flushed_upto]

    def crash(self) -> None:
        """Discard the unforced tail, as a machine crash would.

        The chain-head table is volatile state: rebuild it from the last
        durable checkpoint's snapshot plus a forward scan of the records
        that survive — exactly what restart recovery may rely on.
        """
        del self.records[self.flushed_upto:]
        if self.last_checkpoint_lsn > self.flushed_upto:
            # The noted checkpoint fell past the durability watermark
            # (test harnesses move flushed_upto backward): fall back to
            # the newest checkpoint record that actually survived.
            self.last_checkpoint_lsn = 0
            for record in reversed(self.records):
                if record.kind == CHECKPOINT:
                    self.last_checkpoint_lsn = record.lsn
                    break
        heads: dict[tuple[str, int], int] = {}
        ckpt = self.last_checkpoint_lsn
        if ckpt:
            payload = self.record(ckpt).payload or {}
            heads.update(payload.get("chain_heads", {}))
        for record in self.records[ckpt:]:
            if record.redoable and record.table is not None:
                heads[(record.table, record.rid[0])] = record.lsn
        self.page_heads = heads

"""minidb — the embedded relational engine used as a *black box* store.

This package plays the role DB2 plays in the paper: DLFM (and the host
database) talk to it only through SQL sessions; it supplies persistence,
logging/recovery, locking, and a cost-based optimizer. Every mechanism the
paper's lessons hinge on is real here:

* strict two-phase locking with intent modes (IS/IX/S/SIX/X),
* **next-key locking** on B+tree indexes (switchable — lesson §3.2.1/§4),
* **lock escalation** driven by locklist/maxlocks (lesson §4),
* interval-based deadlock detection plus **lock timeouts** (lesson §4),
* a bounded write-ahead log that raises ``LogFullError`` (lesson §4),
* a cost-based optimizer that trusts catalog statistics and knows nothing
  about locking, plus RUNSTATS and manual statistic overrides (lesson §4),
* static plan binding with explicit rebinding,
* crash / restart with ARIES-style redo-undo recovery.
"""

from repro.minidb.config import DBConfig, TimingModel
from repro.minidb.db import Database
from repro.minidb.session import Session
from repro.minidb.locks import LockMode

__all__ = ["DBConfig", "Database", "LockMode", "Session", "TimingModel"]

"""The Database facade: what DLFM and the host engine see as "DB2".

Owns every engine component and exposes:

* :meth:`session` — SQL sessions (the only interface DLFM uses);
* transaction control (begin/commit/rollback/savepoints) as kernel
  generators, since commit forces the log and rollback may take locks;
* plan binding with statistics-version invalidation (E4);
* RUNSTATS and hand-crafted statistics;
* :meth:`crash` / :meth:`restart` with ARIES-style recovery (E10);
* :meth:`checkpoint` — flush dirty pages and truncate the active log.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (CatalogError, CrashedError, DatabaseError,
                          TransactionAborted)
from repro.kernel.sim import Event, Simulator, Timeout
from repro.minidb import wal as walmod
from repro.minidb.btree import BTree, encode_key
from repro.minidb.catalog import Catalog, ColumnDef
from repro.minidb.config import DBConfig
from repro.minidb.locks import LockManager
from repro.minidb.storage import BufferPool, Disk, Heap
from repro.minidb.txn import Transaction, TransactionTable, TxnState
from repro.minidb.wal import LogManager
from repro.sql import ast
from repro.sql.executor import Executor
from repro.sql.optimizer import plan_statement
from repro.sql.parser import parse


@dataclass
class DBMetrics:
    statements: int = 0
    commits: int = 0
    rollbacks: int = 0
    aborts_by_reason: dict = field(default_factory=dict)
    rows_inserted: int = 0
    rows_updated: int = 0
    rows_deleted: int = 0
    table_scans: int = 0
    index_scans: int = 0
    plan_binds: int = 0
    plan_hits: int = 0
    plan_invalidations: int = 0
    plan_evictions: int = 0
    #: Auto-RUNSTATS refreshes triggered by mutation counters.
    auto_runstats_runs: int = 0
    recoveries: int = 0
    #: Instant recovery: pages whose pending log chain was replayed on
    #: demand (or by the background replayer), and records applied.
    pages_replayed: int = 0
    replay_records: int = 0
    #: Bulk LOAD: index entries whose maintenance was deferred to the
    #: end-of-load bottom-up build instead of per-row inserts.
    bulk_entries_deferred: int = 0
    #: MVCC: tail versions stamped at commit / folded back into base
    #: records (inline at commit plus the merge daemon's passes).
    versions_created: int = 0
    versions_merged: int = 0

    def note_abort(self, reason: str) -> None:
        self.rollbacks += 1
        self.aborts_by_reason[reason] = (
            self.aborts_by_reason.get(reason, 0) + 1)


class _BulkIndexPending:
    """Deferred index entries for one index during a bulk LOAD.

    ``by_rid`` (rid → key values) makes undo of an aborted LOAD an O(1)
    removal; ``keys`` (key values → count) backs unique pre-checks,
    which become authoritative while the B-tree insert is deferred.
    """

    __slots__ = ("by_rid", "keys")

    def __init__(self) -> None:
        self.by_rid: dict = {}
        self.keys: dict = {}

    def add(self, rid, key) -> None:
        self.by_rid[rid] = key
        self.keys[key] = self.keys.get(key, 0) + 1

    def drop(self, rid) -> bool:
        key = self.by_rid.pop(rid, _ABSENT)
        if key is _ABSENT:
            return False
        count = self.keys.get(key, 0) - 1
        if count <= 0:
            self.keys.pop(key, None)
        else:
            self.keys[key] = count
        return True


_ABSENT = object()


class Database:
    def __init__(self, sim: Simulator, name: str = "db",
                 config: Optional[DBConfig] = None):
        self.sim = sim
        self.name = name
        self.config = config or DBConfig()
        self.config.validate()
        self.disk = Disk()
        self.catalog = Catalog()
        self.metrics = DBMetrics()
        self.crashed = False
        self._build_volatile()

    def _build_volatile(self) -> None:
        """(Re)create everything lost in a crash."""
        self.pool = BufferPool(self.disk, self.config.buffer_pool_pages,
                               self.config.rows_per_page)
        self.wal = getattr(self, "wal", None) or LogManager(
            self.config.wal_capacity)
        self.locks = LockManager(self.sim, self.config, self.name)
        previous = getattr(self, "txns", None)
        self.txns = TransactionTable(
            start=(previous.highest_id + 1) if previous else 1)
        self.heaps: dict[str, Heap] = {}
        self.btrees: dict[str, BTree] = {}
        #: Instant recovery: (table, page_no) → ascending LSNs still to
        #: replay. Filled by ``recovery.py``, drained by
        #: :meth:`replay_page` (volatile; rebuilt from the WAL at restart).
        self.replay_pending: dict[tuple[str, int], list[int]] = {}
        #: Sim time before which new statements stall: recovery converts
        #: its foreground I/O (REDO scan, page reads, index repair) into
        #: this gate, so a restarted DB really is unavailable while the
        #: classic restart replays — and barely stalls on the instant path.
        self.traffic_open_at: float = 0.0
        self.executor = Executor(self)
        #: Bound-plan cache, LRU-ordered (oldest first); capped at
        #: ``config.plan_cache_size``.
        self._plan_cache: OrderedDict[str, tuple] = OrderedDict()
        #: In-flight group-commit force (Event) or None; volatile state.
        self._group_force: Optional[Event] = None
        #: Active bulk LOADs: table → {index name → _BulkIndexPending}.
        #: Volatile by design — a crash discards the deferral and restart
        #: rebuilds indexes from durable state as usual.
        self._bulk_loads: dict[str, dict[str, _BulkIndexPending]] = {}
        #: Index-entry maintenance work not yet converted into simulated
        #: time (drained by Session._charge_io, like pool.unbilled_io).
        self.unbilled_index_entries: float = 0.0
        #: Guard-rail log for the merge path: an explicit fold watermark
        #: above the oldest live snapshot lands here (the chaos checker
        #: surfaces entries as ``stale-merge`` violations).
        self.version_violations: list[str] = []
        #: Auto-RUNSTATS bookkeeping: rows mutated per table since its
        #: statistics were last computed. Volatile by design — a crash
        #: loses the counters and staleness re-accumulates from zero,
        #: exactly like DB2's in-memory UDI counters.
        self.stats_mutations: dict[str, int] = {}
        for table in self.catalog.tables.values():
            self.heaps[table.name] = Heap(table.name, self.pool)
        for index in self.catalog.indexes.values():
            self.btrees[index.name] = BTree(
                index.name, index.table, index.columns, index.unique,
                self.config.btree_order)

    # ------------------------------------------------------------------ sessions

    def session(self, isolation: Optional[str] = None) -> "Session":
        from repro.minidb.session import Session
        return Session(self, isolation or self.config.isolation)

    # ------------------------------------------------------------------ txn control

    def begin(self, isolation: Optional[str] = None) -> Transaction:
        self._ensure_up()
        level = isolation or self.config.isolation
        txn = self.txns.begin(level, self.sim.now)
        if level == "SI":
            if not self.config.mvcc:
                raise DatabaseError("isolation='SI' requires mvcc=True")
            # Snapshot = current WAL tail: exactly the commit records
            # appended so far. Reading an appended-but-unforced commit is
            # safe — our own commit force flushes the tail in order, so
            # this read can never become durable before what it saw.
            txn.snapshot_lsn = self.wal.tail_lsn
        return txn

    def commit(self, txn: Transaction, payload=None):
        """Generator: commit — force the log, release locks.

        ``payload`` rides on the COMMIT record itself (decision
        piggybacking: the host's 2PC decision shares the commit's one
        WAL force instead of paying for its own logged INSERTs). A
        payload forces a COMMIT record even for a write-free
        transaction — the decision must be durable regardless.
        """
        self._ensure_up()
        if txn.rollback_only:
            yield from self.rollback(txn)
            raise TransactionAborted(
                f"txn {txn.id} was rollback-only at commit",
                reason=txn.abort_reason or "error")
        if txn.last_lsn is not None or payload is not None:
            record = self.wal.append(walmod.COMMIT, txn, payload=payload,
                                     active_floor=self.txns.active_floor())
            # Stamp the version tail with the commit LSN before any yield:
            # in the cooperative kernel no snapshot can begin in between,
            # so versions and the commit record appear atomically.
            self._stamp_versions(txn, record.lsn)
            injector = self.sim.injector
            if injector.enabled:
                # Crash with the COMMIT record appended but NOT durable.
                injector.maybe_crash(f"wal.force.before:{self.name}",
                                     self.name)
            yield from self._force_wal(txn, "commit")
            if injector.enabled:
                # Crash with the record durable but the ack never sent.
                injector.maybe_crash(f"wal.force.after:{self.name}",
                                     self.name)
        self.locks.release_all(txn)
        self.txns.end(txn, TxnState.COMMITTED)
        self.metrics.commits += 1
        self._maybe_auto_runstats()
        self._maybe_soft_checkpoint()

    def prepare(self, txn: Transaction):
        """Generator: XA phase 1 — harden the transaction, keep locks.

        From here on the transaction's outcome belongs to the external
        transaction manager: restart recovery neither redoes-away nor
        undoes it, and its write locks are reacquired (it stays indoubt
        until :meth:`commit` or :meth:`rollback` is called for it).
        """
        self._ensure_up()
        if txn.rollback_only:
            yield from self.rollback(txn)
            raise TransactionAborted(
                f"txn {txn.id} was rollback-only at prepare",
                reason=txn.abort_reason or "error")
        txn.ensure_active()
        self.wal.append(walmod.PREPARE, txn,
                        active_floor=self.txns.active_floor())
        injector = self.sim.injector
        if injector.enabled:
            injector.maybe_crash(f"wal.force.before:{self.name}", self.name)
        yield from self._force_wal(txn, "prepare")
        if injector.enabled:
            injector.maybe_crash(f"wal.force.after:{self.name}", self.name)
        txn.state = TxnState.PREPARED

    def _commit_window(self) -> float:
        """Window a new group-commit leader should wait, in seconds.

        Fixed mode returns the configured constant. ``"auto"`` consults
        the WAL's commit inter-arrival EWMA: when the expected gap is at
        or beyond the max window, waiting would buy nothing — force
        immediately (no latency tax at low concurrency). Under bursts,
        wait long enough to cover about ``group_commit_burst_factor``
        expected arrivals, clamped to [min_window, max_window].
        """
        cfg = self.config
        if cfg.group_commit_window != "auto":
            return float(cfg.group_commit_window)
        gap = self.wal.commit_gap_ewma
        if gap is None or gap >= cfg.group_commit_max_window:
            return 0.0
        return min(max(cfg.group_commit_burst_factor * gap,
                       cfg.group_commit_min_window),
                   cfg.group_commit_max_window)

    def _force_wal(self, txn: Transaction, record: str):
        """Generator: make the just-appended commit/prepare record durable.

        With a positive ``group_commit_window`` (or ``"auto"`` choosing
        one), committers arriving while a force is pending share ONE
        physical force: the first becomes the group leader, waits out
        the window, then forces to the log tail — covering everyone who
        appended meanwhile; followers just wait (``forces_saved``).
        Control never returns before the record is durable, so an
        acknowledgement cannot precede the force: a crash inside the
        window fails every member with CrashedError.
        """
        cfg = self.config
        auto = cfg.group_commit_window == "auto"
        if auto:
            self.wal.note_commit_request(self.sim.now,
                                         cfg.group_commit_ewma_alpha)
        elif cfg.group_commit_window <= 0:
            if self.wal.force():
                with self.sim.tracer.span("wal.force", db=self.name,
                                          txn=txn.id, record=record,
                                          lsn=self.wal.flushed_upto):
                    cost = cfg.timing.log_force_cost()
                    if cost > 0:
                        yield Timeout(cost)
            return
        target = self.wal.tail_lsn
        while target > self.wal.flushed_upto:
            event = self._group_force
            if event is None:
                window = self._commit_window()
                if auto:
                    self.wal.auto_windows.append(window)
                if window <= 0:
                    # Auto, sparse arrivals: nobody is expected within a
                    # useful window, so pay our own force right away.
                    self.wal.metrics.auto_immediate += 1
                    if self.wal.force():
                        with self.sim.tracer.span("wal.force", db=self.name,
                                                  txn=txn.id, record=record,
                                                  lsn=self.wal.flushed_upto):
                            cost = cfg.timing.log_force_cost()
                            if cost > 0:
                                yield Timeout(cost)
                    return
                if auto:
                    self.wal.metrics.auto_batched += 1
                # Leader: open a group, collect committers for one window.
                event = Event(self.sim, latch=True,
                              name=f"group-force-{self.name}")
                self._group_force = event
                yield Timeout(window)
                if self._group_force is not event:
                    # crash() failed the group while we slept
                    raise CrashedError(
                        f"database {self.name} crashed during group commit")
                injector = self.sim.injector
                if injector.enabled:
                    # Crash between window expiry and the physical force:
                    # the whole group's records sit in the unforced tail,
                    # so crash() must fail every member (never-ack). Fires
                    # while _group_force is still set so crash() can see
                    # and fail the group.
                    injector.maybe_crash(f"wal.group:leader:{self.name}",
                                         self.name)
                self._group_force = None
                if txn.rollback_only:
                    # Aborted while waiting (e.g. picked as a victim): a
                    # dead transaction must not force its own commit
                    # record. Wake the followers with a benign outcome so
                    # one of them re-loops into leadership.
                    event.trigger(None)
                    raise TransactionAborted(
                        f"txn {txn.id} aborted inside the group-commit "
                        f"window", reason=txn.abort_reason or "error")
                self.wal.metrics.group_commits += 1
                if self.wal.force():
                    with self.sim.tracer.span("wal.force", db=self.name,
                                              txn=txn.id, record=record,
                                              lsn=self.wal.flushed_upto,
                                              group=True):
                        cost = cfg.timing.log_force_cost()
                        if cost > 0:
                            yield Timeout(cost)
                event.trigger(None)
            else:
                # Follower: the pending force will cover our record.
                self.wal.metrics.forces_saved += 1
                outcome = yield event.wait()
                if isinstance(outcome, BaseException):
                    raise outcome

    def indoubt_transactions(self) -> list[Transaction]:
        """Prepared transactions awaiting an outcome (after restart too)."""
        return [t for t in self.txns.active
                if t.state is TxnState.PREPARED]

    def find_prepared(self, txn_id: int) -> Transaction:
        for txn in self.txns.active:
            if txn.id == txn_id and txn.state is TxnState.PREPARED:
                return txn
        raise DatabaseError(f"no prepared transaction {txn_id}")

    def rollback(self, txn: Transaction):
        """Generator: undo everything the transaction did, release locks."""
        self._ensure_up()
        if txn.state not in (TxnState.ACTIVE, TxnState.PREPARED):
            return
        self._undo_to(txn, upto_lsn=None)
        if txn.last_lsn is not None:
            self.wal.append(walmod.ABORT, txn,
                            active_floor=self.txns.active_floor())
        self.locks.release_all(txn)
        self.txns.end(txn, TxnState.ABORTED)
        self.metrics.note_abort(txn.abort_reason or "user")
        self._maybe_soft_checkpoint()
        return
        yield  # pragma: no cover — generator for interface symmetry

    def rollback_to_savepoint(self, txn: Transaction, name: str) -> None:
        target = txn.savepoint_lsn(name)
        self._undo_to(txn, upto_lsn=target)
        txn.rollback_only = False
        txn.abort_reason = None

    # ------------------------------------------------------------------ undo

    def _undo_to(self, txn: Transaction, upto_lsn: Optional[int]) -> None:
        """Undo ``txn``'s records with LSN greater than ``upto_lsn``.

        Locks are already held (strict 2PL), so undo never blocks.
        """
        floor = upto_lsn or 0
        next_to_undo = txn.last_lsn
        while next_to_undo is not None and next_to_undo > floor:
            record = self.wal.record(next_to_undo)
            if record.kind == walmod.CLR:
                next_to_undo = record.undo_next
                continue
            if record.redoable:
                self._apply_state(record.table, record.rid, record.before)
                clr = self.wal.append(
                    walmod.CLR, txn, table=record.table, rid=record.rid,
                    before=record.after, after=record.before,
                    undo_next=record.prev_lsn,
                    active_floor=self.txns.active_floor())
                self.heaps[record.table].set_page_lsn(record.rid[0], clr.lsn)
            next_to_undo = record.prev_lsn

    def _apply_state(self, table: str, rid, desired: Optional[tuple]) -> None:
        """Force a heap slot (and index entries) to ``desired``."""
        heap = self.heaps[table]
        current = heap.fetch(rid)
        tdef = self.catalog.tables.get(table)
        if current is not None:
            heap.delete(rid)
            if tdef is not None:
                self.apply_index_delete(tdef, current, rid)
        if desired is not None:
            heap.insert(desired, rid=rid)
            if tdef is not None:
                self.apply_index_insert(tdef, desired, rid)

    # ------------------------------------------------------------------ lazy replay

    def replay_page(self, table: str, page_no: int) -> int:
        """On-demand REDO of one page's pending log chain (instant recovery).

        Called by the heap replay gate on first touch after a lazy
        restart, and by DLFM's background replayer for cold pages. Pops
        the page from the pending set *before* applying, so the replay's
        own page accesses pass straight through the gate. Idempotent:
        each record is applied only when the page LSN is behind it.
        Returns the number of records applied.
        """
        lsns = self.replay_pending.pop((table, page_no), None)
        if lsns is None:
            return 0
        heap = self.heaps.get(table)
        applied = 0
        if heap is not None:
            for lsn in lsns:
                record = self.wal.record(lsn)
                if heap.page_lsn(page_no) >= lsn:
                    continue
                current = heap.fetch(record.rid)
                if current is not None:
                    heap.delete(record.rid)
                if record.after is not None:
                    heap.insert(record.after, rid=record.rid)
                heap.set_page_lsn(page_no, lsn)
                applied += 1
            self.metrics.pages_replayed += 1
            self.metrics.replay_records += applied
        if not self.replay_pending:
            # Replay complete: take the gate off the hot path entirely.
            for other in self.heaps.values():
                other.replay_hook = None
        return applied

    # ------------------------------------------------------------------ WAL hook

    def log_write(self, kind: str, txn: Transaction, table: str, rid,
                  before, after):
        record = self.wal.append(
            getattr(walmod, kind), txn, table=table, rid=rid, before=before,
            after=after, active_floor=self.txns.active_floor())
        heap = self.heaps[table]
        heap.set_page_lsn(rid[0], record.lsn)
        if self.config.mvcc:
            # First touch pins the committed pre-state as the chain seed;
            # the commit will stamp the final state with its commit LSN.
            heap.version_seed(rid, before)
            txn.touched[(table, rid)] = None
        return record

    # ------------------------------------------------------------------ versions

    def oldest_snapshot_lsn(self) -> int:
        """Merge watermark: oldest live SI snapshot, else the WAL tail."""
        snap = self.txns.oldest_snapshot()
        return snap if snap is not None else self.wal.tail_lsn

    def write_conflict_check(self, txn: Transaction, table: str,
                             rid) -> None:
        """SI first-writer-wins: abort if the row has a version committed
        after our snapshot (called with the X row lock already held, so
        the newest version is final). Rows we already wrote are ours."""
        if txn.snapshot_lsn is None or (table, rid) in txn.touched:
            return
        if self.heaps[table].version_newest_ts(rid) > txn.snapshot_lsn:
            txn.mark_rollback_only("write-conflict")
            raise TransactionAborted(
                f"txn {txn.id}: row {table}:{rid} was modified after the "
                f"snapshot (first writer wins)", reason="write-conflict")

    def _stamp_versions(self, txn: Transaction, commit_lsn: int) -> None:
        """Append one version per written rid at the commit LSN, then fold
        what no live snapshot needs (with none live, the chain collapses
        back into the base record immediately — legacy workloads never
        accumulate chains)."""
        if not self.config.mvcc or not txn.touched:
            return
        touched = list(txn.touched)
        txn.touched.clear()
        watermark = self.oldest_snapshot_lsn()
        merged = 0
        for table, rid in touched:
            heap = self.heaps.get(table)
            if heap is None:
                continue  # table dropped mid-transaction (DDL is immediate)
            heap.version_append(rid, commit_lsn, heap.fetch(rid))
            self.metrics.versions_created += 1
            merged += heap.fold_versions(rid, watermark)
        self.metrics.versions_merged += merged

    def merge_versions(self, watermark: Optional[int] = None) -> int:
        """One merge pass: fold every chain no live snapshot can see.

        Skips chains pinned by an in-flight writer (their slot holds
        uncommitted data, so the seed must survive until commit/abort
        resolves it). An explicit ``watermark`` above the oldest live
        snapshot is a caller bug — it is recorded for the chaos
        ``stale-merge`` invariant and the fold proceeds as asked, so the
        checker provably catches the damage. Returns entries folded.
        """
        if not self.config.mvcc:
            return 0
        safe = self.oldest_snapshot_lsn()
        if watermark is None:
            watermark = safe
        elif watermark > safe:
            self.version_violations.append(
                f"merge watermark {watermark} above oldest live "
                f"snapshot {safe}")
        pinned = set()
        for active in self.txns.active:
            pinned.update(active.touched)
        merged = 0
        for table, heap in self.heaps.items():
            for rid in heap.version_rids():
                if (table, rid) in pinned:
                    continue
                merged += heap.fold_versions(rid, watermark)
        self.metrics.versions_merged += merged
        return merged

    def live_chains(self) -> int:
        return sum(heap.live_chains for heap in self.heaps.values())

    def snapshot_table_rows(self, table: str,
                            ts: Optional[int] = None) -> list[tuple]:
        """Rows of ``table`` visible at snapshot ``ts`` (default: a fresh
        snapshot at the current tail). Lock-free; used by tests and the
        chaos ``lost-committed-version`` checker."""
        if ts is None:
            ts = self.wal.tail_lsn
        return [row for _, row in self.heaps[table].snapshot_scan(ts)]

    # ------------------------------------------------------------------ index maintenance

    def apply_index_insert(self, table, row: tuple, rid) -> None:
        pending = self._bulk_loads.get(table.name)
        for index in self.catalog.indexes_by_table.get(table.name, []):
            key = tuple(row[table.position(c)] for c in index.columns)
            if pending is not None:
                pending[index.name].add(rid, key)
                self.metrics.bulk_entries_deferred += 1
            else:
                self.unbilled_index_entries += 1
                self.btrees[index.name].insert(key, rid)

    def apply_index_delete(self, table, row: tuple, rid) -> None:
        pending = self._bulk_loads.get(table.name)
        for index in self.catalog.indexes_by_table.get(table.name, []):
            if pending is not None and pending[index.name].drop(rid):
                continue  # entry was still deferred; undo is a dict pop
            key = tuple(row[table.position(c)] for c in index.columns)
            self.unbilled_index_entries += 1
            self.btrees[index.name].delete(key, rid)

    def apply_index_update(self, table, old_row: tuple, new_row: tuple,
                           rid) -> None:
        pending = self._bulk_loads.get(table.name)
        for index in self.catalog.indexes_by_table.get(table.name, []):
            old_key = tuple(old_row[table.position(c)] for c in index.columns)
            new_key = tuple(new_row[table.position(c)] for c in index.columns)
            if old_key == new_key:
                continue
            if pending is not None:
                p = pending[index.name]
                if not p.drop(rid):
                    self.unbilled_index_entries += 1
                    self.btrees[index.name].delete(old_key, rid)
                p.add(rid, new_key)
                self.metrics.bulk_entries_deferred += 1
            else:
                self.unbilled_index_entries += 2
                btree = self.btrees[index.name]
                btree.delete(old_key, rid)
                btree.insert(new_key, rid)

    # ------------------------------------------------------------------ bulk LOAD

    def in_bulk_load(self, table: str) -> bool:
        return table in self._bulk_loads

    def bulk_pending_duplicate(self, table: str, index_name: str,
                               key: tuple) -> bool:
        """Does a deferred entry already carry ``key``? (unique pre-check)"""
        pending = self._bulk_loads.get(table)
        if pending is None:
            return False
        p = pending.get(index_name)
        return p is not None and key in p.keys

    def begin_bulk_load(self, table: str) -> None:
        """Defer per-row index maintenance for ``table`` (DB2 LOAD).

        While active, ``apply_index_*`` records pending entries instead
        of touching the B+trees, so index scans do not see the loaded
        rows until :meth:`end_bulk_load` folds them in with one sorted
        bottom-up build (DB2's "load pending" table state). Heap writes
        and WAL records are unchanged, so aborts undo normally (the
        deferred entry is dropped) and a crash simply discards the
        volatile deferral — restart rebuilds indexes from durable state.
        The loader is assumed to be the table's only writer (LOAD holds
        the DLFM file locks), so next-key locks are skipped meanwhile.
        """
        self._ensure_up()
        self.catalog.require_table(table)
        self._bulk_loads.setdefault(table, {
            index.name: _BulkIndexPending()
            for index in self.catalog.indexes_by_table.get(table, [])})

    def _merge_bulk_load(self, table: str) -> int:
        """Fold a table's deferred entries into its B+trees; returns count."""
        pending = self._bulk_loads.pop(table, None)
        if pending is None:
            return 0
        merged = 0
        for index_name, p in pending.items():
            btree = self.btrees.get(index_name)
            if btree is None or not p.by_rid:
                continue
            pairs = list(btree.items())
            pairs.extend((encode_key(key), rid)
                         for rid, key in p.by_rid.items())
            btree.bulk_load(pairs)
            merged += len(p.by_rid)
        return merged

    def end_bulk_load(self, table: str):
        """Generator: merge deferred entries, charging the sequential
        bottom-up build at ``bulk_index_factor`` of per-row cost."""
        merged = self._merge_bulk_load(table)
        cost = self.config.timing.index_entry_cost(
            merged * self.config.timing.bulk_index_factor)
        if cost > 0:
            yield Timeout(cost)
        return merged

    # ------------------------------------------------------------------ DDL

    def ddl(self, stmt) -> None:
        """DDL is applied immediately and is not transactional (documented)."""
        self._ensure_up()
        if isinstance(stmt, ast.CreateTable):
            columns = [ColumnDef(n, t) for n, t in stmt.columns]
            self.catalog.create_table(stmt.table, columns)
            self.heaps[stmt.table] = Heap(stmt.table, self.pool)
            touched = stmt.table
        elif isinstance(stmt, ast.CreateIndex):
            index = self.catalog.create_index(stmt.index, stmt.table,
                                              stmt.columns, stmt.unique)
            btree = BTree(index.name, index.table, index.columns,
                          index.unique, self.config.btree_order)
            table = self.catalog.require_table(stmt.table)
            for rid, row in self.heaps[stmt.table].scan():
                key = tuple(row[table.position(c)] for c in index.columns)
                btree.insert(key, rid)
            self.btrees[index.name] = btree
            if stmt.table in self._bulk_loads:
                # Built from the heap, which already holds the loaded
                # rows; only entries deferred from here on concern it.
                self._bulk_loads[stmt.table][index.name] = (
                    _BulkIndexPending())
            touched = stmt.table
        elif isinstance(stmt, ast.DropTable):
            self.catalog.drop_table(stmt.table)
            self.heaps.pop(stmt.table, None)
            for name in [n for n, b in self.btrees.items()
                         if b.table == stmt.table]:
                del self.btrees[name]
                self.disk.drop_index_image(name)
            self.pool.drop_table(stmt.table)
            self.wal.forget_table(stmt.table)
            self._bulk_loads.pop(stmt.table, None)
            for key in [k for k in self.replay_pending
                        if k[0] == stmt.table]:
                del self.replay_pending[key]
            touched = stmt.table
        elif isinstance(stmt, ast.DropIndex):
            index = self.catalog.require_index(stmt.index)
            self.catalog.indexes_by_table[index.table].remove(index)
            del self.catalog.indexes[stmt.index]
            del self.btrees[stmt.index]
            self.disk.drop_index_image(stmt.index)
            self._bulk_loads.get(index.table, {}).pop(stmt.index, None)
            touched = index.table
        else:
            raise CatalogError(f"not DDL: {stmt!r}")
        self._invalidate_plans(touched)

    # ------------------------------------------------------------------ plans

    def get_plan(self, sql: str):
        """Bound-plan lookup; stale statistics versions force a re-bind."""
        return self.bind_plan(sql)[0]

    def bind_plan(self, sql: str, stmt=None):
        """Bound-plan lookup returning ``(plan, hit)``.

        ``hit`` distinguishes a cache hit (no parse, no optimize — the
        prepared-statement fast path) from a fresh bind, which is what
        :class:`~repro.minidb.session.Session` charges ``compile_cpu``
        for. A cached plan whose statistics versions went stale counts
        as a miss: it re-parses, re-optimizes and pays compilation
        again. ``stmt`` (if given) is a pre-parsed AST reused on a miss,
        so ``Session.prepare`` parses exactly once.
        """
        cached = self._plan_cache.get(sql)
        if cached is not None:
            plan, versions = cached
            if all(self.catalog.stats_version(t) == v
                   for t, v in versions.items()):
                self._plan_cache.move_to_end(sql)
                self.metrics.plan_hits += 1
                return plan, True
            self.metrics.plan_invalidations += 1
        if stmt is None:
            stmt = parse(sql)
        plan = plan_statement(self.catalog, stmt)
        versions = {t: self.catalog.stats_version(t) for t in plan.tables}
        self._plan_cache[sql] = (plan, versions)
        self._plan_cache.move_to_end(sql)
        while len(self._plan_cache) > self.config.plan_cache_size:
            self._plan_cache.popitem(last=False)
            self.metrics.plan_evictions += 1
        self.metrics.plan_binds += 1
        return plan, False

    def _invalidate_plans(self, table: Optional[str] = None) -> None:
        """Evict cached plans — all of them, or those touching ``table``.

        DDL passes the affected table so that e.g. CREATE INDEX evicts
        exactly the plans it could improve (an already-cached scan plan
        would otherwise keep running without the new index), without
        discarding every other statement's binding work.
        """
        if table is None:
            self._plan_cache.clear()
            return
        stale = [sql for sql, (plan, _) in self._plan_cache.items()
                 if table in plan.tables]
        for sql in stale:
            del self._plan_cache[sql]
            self.metrics.plan_evictions += 1

    def explain(self, sql: str) -> dict:
        """Access-path summary for tests/benchmarks (not SQL EXPLAIN)."""
        plan = self.get_plan(sql)
        info = {"kind": plan.kind}
        access = getattr(plan, "access", None)
        if access is not None:
            info["access"] = access.kind
            info["index"] = access.index_name
            info["cost"] = round(access.cost, 3)
        return info

    # ------------------------------------------------------------------ statistics

    def runstats(self, table: str) -> None:
        """Recompute true statistics (DB2 RUNSTATS); invalidates plans."""
        tdef = self.catalog.require_table(table)
        heap = self.heaps[table]
        distinct: dict[str, set] = {c.name: set() for c in tdef.columns}
        for _, row in heap.scan():
            for column, value in zip(tdef.columns, row):
                distinct[column.name].add(value)
        self.catalog.runstats(
            table, card=heap.nrows, npages=heap.npages,
            colcard={c: len(vals) for c, vals in distinct.items()})
        self.stats_mutations.pop(table, None)

    def set_table_stats(self, table: str, card: int,
                        npages: Optional[int] = None,
                        colcard: Optional[dict[str, int]] = None) -> None:
        """Hand-craft statistics (the paper's catalog-poking utility)."""
        self.catalog.set_stats(table, card, npages, colcard)
        self.stats_mutations.pop(table, None)

    def note_mutation(self, table: str, rows: int = 1) -> None:
        """Count mutated rows toward the table's auto-RUNSTATS trigger."""
        self.stats_mutations[table] = self.stats_mutations.get(table, 0) + rows

    def _auto_runstats_due(self, table: str) -> bool:
        stats = self.catalog.stats.get(table)
        if stats is None or stats.manual:
            # Dropped table, or hand-crafted statistics: the E4 pinning
            # guard always wins over the refresh daemon.
            return False
        due = (self.config.auto_runstats_threshold
               + self.config.auto_runstats_fraction * stats.card)
        return self.stats_mutations.get(table, 0) >= due

    def _maybe_auto_runstats(self) -> None:
        """Refresh statistics for tables whose mutation counters crossed
        the staleness threshold (runs inline at commit, like DB2's
        real-time statistics collection). The refresh bumps the stats
        version, so every cached plan on the table re-binds — the
        ``card=0`` table-scan cliff heals itself as tables grow."""
        if not self.config.auto_runstats or not self.stats_mutations:
            return
        for table in sorted(self.stats_mutations):
            if table in self._bulk_loads:
                continue  # LOAD pending: stats come after the build phase
            if not self._auto_runstats_due(table):
                continue
            injector = self.sim.injector
            if injector.enabled:
                # Crash with mutations applied but the refresh (and its
                # plan invalidation) not yet installed — restart must
                # leave plans consistent with whatever stats survived.
                injector.maybe_crash(f"runstats.refresh:{self.name}",
                                     self.name)
            self.runstats(table)
            self.metrics.auto_runstats_runs += 1

    # ------------------------------------------------------------------ checkpoint / crash

    def _maybe_soft_checkpoint(self) -> None:
        """Reclaim log space once no old transaction pins it (as DB2's
        automatic log truncation does). Without this, one log-full event
        would poison the log forever."""
        window = self.wal.window(self.txns.active_floor())
        if window > self.config.wal_capacity // 2:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Flush dirty pages, snapshot volatile state, truncate the log.

        The payload carries what instant recovery's tail-only analysis
        needs: the transaction table (first/last LSN and prepared flag
        per active transaction — a prepared transaction may predate the
        checkpoint by an arbitrary margin) and the per-page chain-head
        table. Secondary-index images go to the disk, keyed by index
        name, so restart repairs each index from image + tail deltas
        instead of a full-heap rebuild.
        """
        self._ensure_up()
        self.pool.flush_all()
        for name, btree in self.btrees.items():
            image = list(btree.items())
            for pending in self._bulk_loads.values():
                p = pending.get(name)
                if p is not None and p.by_rid:
                    # Deferred LOAD entries are durable heap rows whose
                    # WAL records may predate this checkpoint: the image
                    # must carry them or restart's image+tail repair
                    # would silently lose them.
                    image.extend((encode_key(key), rid)
                                 for rid, key in p.by_rid.items())
            self.disk.store_index_image(name, image)
        txn_table = {}
        for txn in self.txns.active:
            txn_table[txn.id] = {
                "first": txn.first_lsn, "last": txn.last_lsn,
                "prepared": txn.state is TxnState.PREPARED}
        versions = {table: heap.versions_image()
                    for table, heap in self.heaps.items()
                    if heap.live_chains}
        record = self.wal.append(
            walmod.CHECKPOINT, None,
            payload={"active": [t.id for t in self.txns.active],
                     "chain_heads": dict(self.wal.page_heads),
                     "txn_table": txn_table,
                     "versions": versions})
        self.wal.force()
        self.wal.note_checkpoint(record.lsn)

    def crash(self) -> None:
        """Power failure: volatile state gone, durable state preserved."""
        self.crashed = True
        pending, self._group_force = self._group_force, None
        if pending is not None:
            # Fail every group-commit member: their commit records are in
            # the tail being discarded and were never acknowledged.
            pending.trigger(CrashedError(
                f"database {self.name} crashed before the group force"))
        self.wal.crash()
        self.pool.clear()
        self.locks.clear()
        self.txns.clear()
        self.heaps.clear()
        self.btrees.clear()
        self.replay_pending.clear()
        self._plan_cache.clear()
        self._bulk_loads.clear()
        self.stats_mutations.clear()
        self.unbilled_index_entries = 0.0

    def restart(self) -> dict:
        """Restart after a crash; returns a recovery summary.

        With ``config.instant_recovery`` (default) this is the instant,
        REDO-only restart: tail analysis + eager undo run here, but page
        REDO is deferred into ``replay_pending`` and happens lazily (see
        :meth:`replay_page`). Otherwise classic full-replay ARIES.
        """
        from repro.minidb.recovery import recover
        self.crashed = False
        self._build_volatile()
        summary = recover(self)
        self.metrics.recoveries += 1
        return summary

    def _ensure_up(self) -> None:
        if self.crashed:
            raise CrashedError(f"database {self.name} is down (crashed)")

    # ------------------------------------------------------------------ backup images

    def backup_image(self) -> dict:
        """Full offline-style backup: checkpoint, then snapshot durables."""
        import copy
        self.checkpoint()
        return {
            "disk": copy.deepcopy(self.disk),
            "catalog": copy.deepcopy(self.catalog),
            "wal_flushed": self.wal.flushed_upto,
        }

    def restore_image(self, image: dict) -> None:
        """Point-in-time restore from :meth:`backup_image`."""
        import copy
        self.crashed = True
        self.disk = copy.deepcopy(image["disk"])
        self.catalog = copy.deepcopy(image["catalog"])
        self.wal = LogManager(self.config.wal_capacity)
        self.restart()

    # ------------------------------------------------------------------ convenience

    def table_rows(self, table: str) -> list[tuple]:
        """Unlocked debug read of a whole table (tests only)."""
        return [row for _, row in self.heaps[table].scan()]

"""One-call wiring of a complete DataLinks deployment (paper Figure 1).

A :class:`System` builds: the simulation kernel, one archive server, N
file servers each with a DLFM (+ DLFF mount + daemons), and a host
database with the datalink engine. This is the entry point used by the
examples, the workload harness and the integration tests.
"""

from __future__ import annotations

from typing import Optional

from repro.archive import ArchiveServer
from repro.dlfm import DLFM, DLFMConfig
from repro.fs import FileServer
from repro.host import HostConfig, HostDB
from repro.host.backup import backup_database, restore_database
from repro.host.reconcile import reconcile
from repro.kernel import Simulator


class System:
    def __init__(self, seed: int = 0, servers: tuple[str, ...] = ("fs1",),
                 dlfm_config: Optional[DLFMConfig] = None,
                 host_config: Optional[HostConfig] = None,
                 dbid: str = "hostdb", tracer=None, injector=None,
                 archive_charge_time: bool = False):
        self.sim = Simulator(seed=seed, tracer=tracer, injector=injector)
        self.tracer = self.sim.tracer
        self.injector = self.sim.injector
        self.archive = ArchiveServer(self.sim,
                                     charge_time=archive_charge_time)
        self.servers: dict[str, FileServer] = {}
        self.dlfms: dict[str, DLFM] = {}
        for name in servers:
            server = FileServer(self.sim, name)
            config = dlfm_config or DLFMConfig.tuned()
            dlfm = DLFM(self.sim, name, server, self.archive, config)
            dlfm.start()
            self.servers[name] = server
            self.dlfms[name] = dlfm
            self.injector.register_crash(dlfm.db.name, dlfm.crash)
        self.host = HostDB(self.sim, dbid, self.dlfms, host_config)
        self.injector.register_crash(self.host.db.name, self.host.crash)

    # ------------------------------------------------------------------ running

    def run(self, gen, name: str = "main", until: Optional[float] = None):
        """Run one root process to completion and return its result."""
        return self.sim.run_process(gen, name, until=until)

    def session(self):
        return self.host.session()

    # ------------------------------------------------------------------ conveniences

    def create_user_file(self, server: str, path: str, owner: str,
                         content: str = ""):
        """Create an ordinary user file on a file server (pre-link)."""
        return self.servers[server].fs.create(path, owner, content)

    def filtered_fs(self, server: str):
        """The DLFF-filtered file system applications must use."""
        return self.servers[server].filtered

    def backup(self):
        """Generator: coordinated backup; returns the backup id."""
        return (yield from backup_database(self.host))

    def restore(self, backup_id: int):
        """Generator: coordinated point-in-time restore."""
        return (yield from restore_database(self.host, backup_id))

    def reconcile(self):
        """Generator: run the Reconcile utility."""
        return (yield from reconcile(self.host))

"""Simulated POSIX-ish file system.

Carries exactly the metadata DLFM manipulates: owner, group, permission
bits, modification time, inode number. The Chown daemon's "takeover"
(chown to the DLFM admin user + read-only) and "release" (restore the
original owner/permissions) operate on these for real, and DLFF's
enforcement decisions read them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import FileExists, FileNotFound, PermissionDenied

#: Permission bits (simplified octal triple).
READ_ONLY = 0o444
READ_WRITE = 0o644


@dataclass
class FileNode:
    path: str
    owner: str
    group: str
    mode: int
    mtime: float
    inode: int
    content: str = ""

    @property
    def size(self) -> int:
        return len(self.content)

    def writable_by(self, user: str) -> bool:
        if user == "root":
            return True
        if user == self.owner:
            return bool(self.mode & 0o200)
        return bool(self.mode & 0o002)

    def readable_by(self, user: str) -> bool:
        if user == "root" or user == self.owner:
            return True
        return bool(self.mode & 0o004)


class FileSystem:
    """One mounted file system on a file server."""

    _inodes = itertools.count(1)

    def __init__(self, sim, name: str = "fs"):
        self.sim = sim
        self.name = name
        self._files: dict[str, FileNode] = {}

    def _inject(self, op: str, path: str) -> None:
        """Chaos hook: raise TransientIOError if a fault rule fires."""
        if self.sim.injector.enabled:
            self.sim.injector.fs_check(f"fs.{op}:{self.name}", path)

    # -- queries -----------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._files

    def stat(self, path: str) -> FileNode:
        self._inject("stat", path)
        node = self._files.get(path)
        if node is None:
            raise FileNotFound(path)
        return node

    def listdir(self, prefix: str = "/") -> list[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    # -- mutation ----------------------------------------------------------------

    def create(self, path: str, owner: str, content: str = "",
               group: str = "users", mode: int = READ_WRITE) -> FileNode:
        self._inject("create", path)
        if path in self._files:
            raise FileExists(path)
        node = FileNode(path=path, owner=owner, group=group, mode=mode,
                        mtime=self.sim.now, inode=next(self._inodes),
                        content=content)
        self._files[path] = node
        return node

    def read(self, path: str, user: str) -> str:
        self._inject("read", path)
        node = self.stat(path)
        if not node.readable_by(user):
            raise PermissionDenied(f"{user} cannot read {path}")
        return node.content

    def write(self, path: str, user: str, content: str) -> None:
        self._inject("write", path)
        node = self.stat(path)
        if not node.writable_by(user):
            raise PermissionDenied(f"{user} cannot write {path}")
        node.content = content
        node.mtime = self.sim.now

    def delete(self, path: str, user: str) -> None:
        self._inject("delete", path)
        node = self.stat(path)
        if not node.writable_by(user):
            raise PermissionDenied(f"{user} cannot delete {path}")
        del self._files[path]

    def rename(self, old: str, new: str, user: str) -> None:
        self._inject("rename", old)
        node = self.stat(old)
        if not node.writable_by(user):
            raise PermissionDenied(f"{user} cannot rename {old}")
        if new in self._files:
            raise FileExists(new)
        del self._files[old]
        node.path = new
        self._files[new] = node

    # -- administrative (used by the Chown daemon, runs as root) ---------------------

    def chown(self, path: str, owner: str) -> None:
        self.stat(path).owner = owner

    def chmod(self, path: str, mode: int) -> None:
        self.stat(path).mode = mode

    def restore_file(self, path: str, content: str, owner: str, group: str,
                     mode: int) -> FileNode:
        """Recreate a file from an archived copy (Retrieve daemon)."""
        if path in self._files:
            del self._files[path]
        node = FileNode(path=path, owner=owner, group=group, mode=mode,
                        mtime=self.sim.now, inode=next(self._inodes),
                        content=content)
        self._files[path] = node
        return node


class FileServer:
    """A named file-server node: one file system plus its DLFF mount.

    The DLFF filter is attached later (the DLFM bootstraps it) — user
    applications must go through :attr:`filtered`, while DLFM's daemons
    use :attr:`fs` directly with root privilege.
    """

    def __init__(self, sim, name: str):
        self.sim = sim
        self.name = name
        self.fs = FileSystem(sim, name=name)
        self.filtered = None  # set by dlff.Filter.mount()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<FileServer {self.name}>"

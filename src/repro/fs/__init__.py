"""In-memory file server (stands in for the paper's AIX/JFS file systems)."""

from repro.fs.filesystem import FileNode, FileSystem, FileServer

__all__ = ["FileNode", "FileSystem", "FileServer"]

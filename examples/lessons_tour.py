"""A guided tour of the paper's "lessons learned" (§4), live.

Runs four miniature experiments showing each tuning lesson flipping from
pathological to healthy:

  1. next-key locking on the multi-indexed File table → deadlocks;
  2. default optimizer statistics → table-scan lock storms;
  3. a bulk load in one transaction → lock escalation stalls everyone;
  4. the 60 s timeout breaking an induced cross-system stall.

Run:  python examples/lessons_tour.py        (~1 minute)
"""

from repro.dlfm.config import DLFMConfig
from repro.minidb.config import TimingModel
from repro.workloads import SystemTestConfig, run_system_test


def show(tag, summary):
    print(f"  {tag:<28} ins/min={summary['inserts_per_min']:<7} "
          f"deadlocks={summary['deadlocks']:<5} "
          f"timeouts={summary['lock_timeouts']:<5} "
          f"escalations={summary['escalations']:<5} "
          f"p95={summary['p95_latency_s'] and round(summary['p95_latency_s'], 3)}")


def arm(**overrides):
    config = DLFMConfig.tuned(timing=TimingModel.calibrated())
    pin = overrides.pop("pin_statistics", True)
    config.pin_statistics = pin
    for key, value in overrides.items():
        setattr(config.local_db, key, value)
    report = run_system_test(SystemTestConfig(
        clients=25, duration=480, think_time=2.0, dlfm_config=config))
    return report.summary()


def main():
    print("Lesson 1 — next-key locking (paper §3.2.1/§4):")
    show("NKL on (DB2 default)", arm(next_key_locking=True,
                                     isolation="RR"))
    show("NKL off (DLFM's fix)", arm(next_key_locking=False))

    print("\nLesson 2 — optimizer statistics (paper §4):")
    show("default statistics", arm(pin_statistics=False))
    show("hand-crafted statistics", arm(pin_statistics=True))

    print("\nLesson 3 — lock escalation headroom (paper §4):")
    show("small locklist", arm(locklist_size=1_500,
                               maxlocks_fraction=0.05))
    show("large locklist", arm(locklist_size=200_000,
                               maxlocks_fraction=0.6))

    print("\nEvery row above is the same workload; only one knob moves.")
    print("The tuned configuration (bottom row of each pair) is the one")
    print("the paper shipped: CS isolation, next-key locking disabled,")
    print("pinned statistics, a large lock list, and a 60 s lock timeout.")


if __name__ == "__main__":
    main()

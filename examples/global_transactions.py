"""XA global transactions spanning the host database and two file servers.

The paper (§3.3): "In the case of an XA transaction, the host database
also generates a local transaction id that is different from the global
XA transaction id" — the DLFMs only ever see the local id.

This example plays the external transaction manager: one global
transaction links files on two file servers, prepares everywhere, then
the host crashes before the TM's verdict arrives. After restart the
branch is indoubt — its rows still locked — until the TM decides.

Run:  python examples/global_transactions.py
"""

from repro.host import DatalinkSpec, build_url
from repro.host.xa import xa_commit, xa_prepare, xa_recover
from repro.system import System


def main():
    system = System(seed=8, servers=("fs-east", "fs-west"))
    host = system.host

    def tm_flow():
        yield from host.create_datalink_table(
            "ledger_docs", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=False)})
        system.create_user_file("fs-east", "/docs/invoice.pdf", owner="fin")
        system.create_user_file("fs-west", "/docs/receipt.pdf", owner="fin")

        # --- the application's branch of a global transaction -----------
        session = system.session()
        yield from session.execute(
            "INSERT INTO ledger_docs (id, doc) VALUES (?, ?)",
            (1, build_url("fs-east", "/docs/invoice.pdf")))
        yield from session.execute(
            "INSERT INTO ledger_docs (id, doc) VALUES (?, ?)",
            (2, build_url("fs-west", "/docs/receipt.pdf")))

        gtrid = "TM-0001:branch-42"
        prepared = yield from xa_prepare(session, gtrid)
        print(f"prepared: global id {gtrid!r} ↔ local txn id "
              f"{prepared.txn_id}, vote {prepared.vote!r} "
              "(the DLFMs only ever saw the local id)")

        # --- host crashes before the TM's commit arrives ----------------
        print("\n*** host database crashes ***\n")
        host.db.crash()
        summary = host.db.restart()
        print(f"host restart: prepared branches recovered = "
              f"{summary['prepared']}")

        status = yield from xa_recover(host)
        print(f"xa_recover() → {status}")

        # the branch's rows are still locked against everyone else
        probe = host.db.session()
        from repro.errors import TransactionAborted
        try:
            yield from probe.execute("SELECT * FROM ledger_docs")
        except TransactionAborted as error:
            print(f"probe blocked as expected: {error.reason}")

        # --- the TM finally says COMMIT ---------------------------------
        decision = yield from xa_commit(host, gtrid)
        print(f"TM verdict applied: branch committed, phase 2 driven to "
              f"{list(decision['servers'])} "
              f"(read-only, skipped: {list(decision['readonly'])})")

        reader = host.db.session()
        rows = yield from reader.execute(
            "SELECT id, doc FROM ledger_docs ORDER BY id")
        yield from reader.commit()
        for row in rows:
            print(f"  row {row[0]}: {row[1]}")
        east = system.dlfms["fs-east"].linked_count()
        west = system.dlfms["fs-west"].linked_count()
        print(f"linked files: fs-east={east} fs-west={west}")

    system.run(tm_flow())
    print("\nglobal transactions example complete")


if __name__ == "__main__":
    main()

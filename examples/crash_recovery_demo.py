"""Crash/recovery walk-through: indoubt transactions and daemon resume.

Demonstrates §3.3 of the paper end to end:

1. a transaction links a file and completes phase 1 (prepare) at the
   DLFM, the host records its commit decision — then the DLFM node dies;
2. on restart the transaction is *indoubt* at the DLFM; the host's
   resolution (or its polling daemon, if the DLFM stays down a while)
   drives phase 2 and the link materializes;
3. a second transaction that never prepared simply vanishes with the
   crash — the local database's own restart recovery rolls it back.

Run:  python examples/crash_recovery_demo.py
"""

from repro.dlfm import api
from repro.host import DatalinkSpec, build_url
from repro.host.indoubt import indoubt_poller
from repro.kernel import Timeout
from repro.system import System


def main():
    system = System(seed=4)
    host = system.host
    dlfm = system.dlfms["fs1"]

    def demo():
        yield from host.create_datalink_table(
            "docs", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=True)})
        for name in ("committed.doc", "inflight.doc"):
            system.create_user_file("fs1", f"/d/{name}", owner="u")

        # --- transaction 1: prepared, decision logged, then DLFM dies ----
        session = system.session()
        yield from session.execute(
            "INSERT INTO docs (id, doc) VALUES (?, ?)",
            (1, build_url("fs1", "/d/committed.doc")))
        txn_id = session.txn_id
        yield from session._send_control("fs1",
                                         api.Prepare(host.dbid, txn_id))
        yield from session.session.execute(
            "INSERT INTO dlk_indoubt (txn_id, server) VALUES (?, ?)",
            (txn_id, "fs1"))
        yield from session.session.commit()
        print(f"txn {txn_id}: prepared at DLFM, commit decision durable "
              "at host")

        # --- transaction 2: in-flight, never prepared ----------------------
        session2 = system.session()
        yield from session2.execute(
            "INSERT INTO docs (id, doc) VALUES (?, ?)",
            (2, build_url("fs1", "/d/inflight.doc")))
        print(f"txn {session2.txn_id}: forward work done, NOT prepared")

        print("\n*** DLFM node crashes ***\n")
        dlfm.crash()

        # The host spawns the polling daemon the paper describes — the
        # DLFM is unavailable right now.
        poller = system.sim.spawn(indoubt_poller(host, "fs1"),
                                  "indoubt-poller")
        yield Timeout(12)

        print("DLFM restarts; local recovery runs")
        summary = dlfm.restart()
        print(f"  local restart: redone={summary['redone']} "
              f"undone={summary['undone']}")

        outcome = yield from poller.join()
        print(f"indoubt resolution: {outcome}")

        # Verify: txn 1's link survived; txn 2 left no trace.
        entries = dlfm.file_entries()
        linked = [row[0] for row in entries if row[8] == "linked"]
        print(f"linked files after recovery: {linked}")
        assert linked == ["/d/committed.doc"]
        assert dlfm.db.table_rows("dfm_txn") == []
        owner = system.servers["fs1"].fs.stat("/d/committed.doc").owner
        print(f"/d/committed.doc owner: {owner} (taken over in the "
              "re-driven phase 2)")

    system.run(demo())
    print("\ncrash recovery demo complete")


if __name__ == "__main__":
    main()

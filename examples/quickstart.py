"""Quickstart: link a file to the database, query it, read it with a token.

Mirrors Figure 1 (storage model) and Figure 3 (application flow) of the
paper: the host database stores metadata + a DATALINK URL; the file lives
on a file server under DLFM control; the application finds the URL via
SQL and opens the file through the ordinary file API with a host-issued
access token.

Run:  python examples/quickstart.py
"""

from repro.host import DatalinkSpec, build_url
from repro.kernel import Timeout
from repro.system import System


def main():
    # One call wires up: simulation kernel, archive server, a file server
    # with DLFM + DLFF + daemons, and the host database.
    system = System(seed=1)

    def application():
        # A user drops a video onto the file server (ordinary file I/O).
        system.create_user_file(
            "fs1", "/videos/jordan-commercial.mpg", owner="alice",
            content="MPEG" * 500)

        # DDL: a table with a DATALINK column under full access control.
        yield from system.host.create_datalink_table(
            "clips",
            [("id", "INT"), ("title", "TEXT"), ("year", "INT"),
             ("video", "TEXT")],
            {"video": DatalinkSpec(access_control="full", recovery=True)})

        session = system.session()

        # INSERT links the file in the same transaction (2PC under the
        # hood: the DLFM sub-transaction prepares before the host commits).
        url = build_url("fs1", "/videos/jordan-commercial.mpg")
        yield from session.execute(
            "INSERT INTO clips (id, title, year, video) "
            "VALUES (?, ?, ?, ?)", (1, "Jordan TV commercial", 1998, url))
        yield from session.commit()

        node = system.servers["fs1"].fs.stat(
            "/videos/jordan-commercial.mpg")
        print(f"after commit: owner={node.owner} mode={oct(node.mode)} "
              "(database took the file over)")

        # The application flow of Figure 3: search via SQL, get URL +
        # access token, then read through the standard file API.
        result, tokens = yield from session.fetch_with_tokens(
            "SELECT title, video FROM clips WHERE year = 1998")
        for title, video_url in result:
            token = tokens[video_url]
            content = system.filtered_fs("fs1").read(
                "/videos/jordan-commercial.mpg", "bob", token=token)
            print(f"read {len(content)} bytes of {title!r} via token")

        # Referential integrity: nobody can delete or rename the file
        # while it is linked.
        try:
            yield from system.filtered_fs("fs1").delete(
                "/videos/jordan-commercial.mpg", "alice")
        except Exception as error:
            print(f"delete rejected: {type(error).__name__}: {error}")

        # The Copy daemon archives the file asynchronously after commit.
        yield Timeout(15)
        print(f"archive server now holds "
              f"{system.archive.copy_count()} copy(ies)")

        # Deleting the row unlinks the file and gives it back to alice.
        yield from session.execute("DELETE FROM clips WHERE id = 1")
        yield from session.commit()
        node = system.servers["fs1"].fs.stat(
            "/videos/jordan-commercial.mpg")
        print(f"after unlink: owner={node.owner} mode={oct(node.mode)} "
              "(returned to the user)")

    system.run(application())
    print("quickstart complete")


if __name__ == "__main__":
    main()

"""A media asset library with coordinated backup and point-in-time restore.

The workload the paper's introduction motivates: video clips and email
attachments live in the file system (where streaming servers and mail
clients can reach them through ordinary file APIs) while their metadata
lives in the database — searchable with SQL, transactionally consistent
with the files, and recoverable *together* with them.

This example exercises: multiple datalink tables, the same-transaction
unlink/relink move, DROP TABLE group deletion, coordinated backup, a
disaster, and point-in-time restore + reconcile.

Run:  python examples/media_library.py
"""

from repro.host import DatalinkSpec, build_url
from repro.kernel import Timeout
from repro.system import System


def main():
    system = System(seed=99)
    fs = system.servers["fs1"].fs

    def library():
        # -- ingest ---------------------------------------------------------
        yield from system.host.create_datalink_table(
            "clips",
            [("id", "INT"), ("title", "TEXT"), ("celebrity", "TEXT"),
             ("video", "TEXT")],
            {"video": DatalinkSpec(access_control="full", recovery=True)})
        yield from system.host.create_datalink_table(
            "attachments",
            [("id", "INT"), ("message", "TEXT"), ("blob", "TEXT")],
            {"blob": DatalinkSpec(access_control="partial",
                                  recovery=False)})

        session = system.session()
        clips = [
            (1, "50-day moving average charts", "none"),
            (2, "TV commercial, 1997 finals", "Michael Jordan"),
            (3, "Slam-dunk contest reel", "Michael Jordan"),
        ]
        for clip_id, title, celeb in clips:
            path = f"/media/clip{clip_id}.mpg"
            system.create_user_file("fs1", path, owner="editor",
                                    content=f"MPEG:{title}")
            yield from session.execute(
                "INSERT INTO clips (id, title, celebrity, video) "
                "VALUES (?, ?, ?, ?)",
                (clip_id, title, celeb, build_url("fs1", path)))
        for att_id in range(1, 4):
            path = f"/mail/att{att_id}.pdf"
            system.create_user_file("fs1", path, owner="mailer",
                                    content=f"PDF:{att_id}")
            yield from session.execute(
                "INSERT INTO attachments (id, message, blob) "
                "VALUES (?, ?, ?)",
                (att_id, f"customer profile #{att_id}",
                 build_url("fs1", path)))
        yield from session.commit()
        print(f"ingested {len(clips)} clips + 3 attachments; "
              f"linked files: {system.dlfms['fs1'].linked_count()}")

        # -- the SQL searches from the paper's Figure 3 ------------------------
        result = yield from session.execute(
            "SELECT title, video FROM clips WHERE celebrity = ?",
            ("Michael Jordan",))
        print("clips with Michael Jordan:")
        for title, url in result:
            print(f"  {title}: {url}")
        # Under repeatable read the search holds its locks until commit —
        # end the transaction before other work touches those rows.
        yield from session.commit()

        # -- archive then back up ----------------------------------------------
        yield Timeout(20)  # Copy daemon archives the recoverable clips
        backup_id = yield from system.backup()
        print(f"coordinated backup #{backup_id} complete "
              f"({system.archive.copy_count()} archived copies)")

        # -- normal life continues: move a clip to the archive table -----------
        yield from system.host.create_datalink_table(
            "retired_clips", [("id", "INT"), ("video", "TEXT")],
            {"video": DatalinkSpec(access_control="full", recovery=True)})
        session = system.session()
        # unlink from clips + relink into retired_clips, one transaction
        yield from session.execute("DELETE FROM clips WHERE id = 3")
        yield from session.execute(
            "INSERT INTO retired_clips (id, video) VALUES (?, ?)",
            (3, build_url("fs1", "/media/clip3.mpg")))
        yield from session.commit()
        print("moved clip 3 to retired_clips in a single transaction")

        # -- disaster ------------------------------------------------------------
        yield from session.execute("DELETE FROM clips WHERE id = 2")
        yield from session.commit()
        yield from system.filtered_fs("fs1").delete("/media/clip2.mpg",
                                                    "editor")
        print("disaster: clip 2 unlinked and its file destroyed")

        # -- point-in-time restore -------------------------------------------------
        yield from system.restore(backup_id)
        recon = yield from system.reconcile()
        print(f"restored to backup #{backup_id}; reconcile: {recon['fs1']}")
        session = system.session()
        count = yield from session.execute("SELECT COUNT(*) FROM clips")
        print(f"clips rows after restore: {count.scalar()} "
              f"(clip 2 file back: {fs.exists('/media/clip2.mpg')})")
        body = fs.stat("/media/clip2.mpg").content
        print(f"clip 2 content restored from archive: {body!r}")

    system.run(library())
    print("media library example complete")


if __name__ == "__main__":
    main()

"""Perf — the fast paths behind the flags (DESIGN.md §9).

Not a paper experiment: this measures the two optimisations this repo
carries beyond the paper's tuning lessons — RPC batching with prepare
piggyback (``HostConfig.batch_datalinks``) and WAL group commit
(``DBConfig.group_commit_window``) — and asserts the acceptance gates:

* ≥10× fewer host↔DLFM RPC envelopes at 100 links/transaction;
* ≥2× fewer physical WAL forces across the system;
* the E6 (flags off) and E8 (flags on) outcomes are preserved.

``python -m repro bench`` runs the same harness and also records the
trajectory into ``BENCH_PERF.json``. REPRO_FULL=1 runs the E1 arms at
full bench scale here as well.
"""

from benchmarks.conftest import full_scale, print_table, run_once
from repro.bench import (ARMS, BenchConfig, run_bulk_arm, run_e1_arm,
                         run_e6_sentinel, run_e8_sentinel)


def test_fastpath_bulk_arms(benchmark):
    cfg = BenchConfig()

    def run():
        return {arm: run_bulk_arm(cfg, arm) for arm in ARMS}

    arms = run_once(benchmark, run)
    print_table(
        f"bulk microbenchmark ({cfg.clients} clients x {cfg.txns} txns "
        f"x {cfg.links} links)",
        ["arm", "rpcs", "rpcs/txn", "wal_forces", "saved", "p50_txn",
         "p95_txn"],
        [(arm, a["rpcs"], a["rpcs_per_txn"], a["wal_forces"],
          a["wal_forces_saved"], a["p50_txn_s"], a["p95_txn_s"])
         for arm, a in arms.items()])

    base, fast = arms["baseline"], arms["fast"]
    rpc_reduction = base["rpcs"] / max(fast["rpcs"], 1)
    force_reduction = base["wal_forces"] / max(fast["wal_forces"], 1)
    print(f"\nrpc_reduction={rpc_reduction:.1f}x  "
          f"wal_force_reduction={force_reduction:.2f}x")

    # The acceptance gates (ISSUE: >=10x RPCs, >=2x WAL forces at N=100).
    assert rpc_reduction >= 10
    assert force_reduction >= 2
    # Batching alone must not change force counts; group commit alone
    # must not change RPC counts — the arms decompose cleanly.
    assert arms["batched"]["wal_forces"] == base["wal_forces"]
    assert arms["group_commit"]["rpcs"] == base["rpcs"]
    # Same work in every arm: identical link/unlink totals.
    for arm in ARMS[1:]:
        assert arms[arm]["links"] == base["links"]
        assert arms[arm]["unlinks"] == base["unlinks"]


def test_fastpath_e1_throughput(benchmark):
    cfg = BenchConfig() if full_scale() else BenchConfig.quick_config()

    def run():
        return {"off": run_e1_arm(cfg, fast=False),
                "on": run_e1_arm(cfg, fast=True)}

    e1 = run_once(benchmark, run)
    print_table(
        f"E1-style workload ({cfg.e1_clients} clients, "
        f"{cfg.e1_duration:.0f} virtual s)",
        ["flags", "ins/min", "upd/min", "aborts", "rpcs", "wal_forces",
         "p95_latency"],
        [(label, a["inserts_per_min"], a["updates_per_min"], a["aborts"],
          a["rpcs"], a["wal_forces"], a["p95_latency_s"])
         for label, a in e1.items()])
    # The fast paths must not cost throughput or correctness; RPCs drop.
    assert e1["on"]["inserts_per_min"] >= 0.9 * e1["off"]["inserts_per_min"]
    assert e1["on"]["rpcs"] < e1["off"]["rpcs"]


def test_fastpath_sentinels(benchmark):
    cfg = BenchConfig()

    def run():
        return {"e6": run_e6_sentinel(), "e8": run_e8_sentinel(cfg)}

    sentinels = run_once(benchmark, run)
    print_table(
        "sentinels: paper outcomes survive the fast paths",
        ["sentinel", "detail", "preserved"],
        [("E6 (flags off)",
          f"async {sentinels['e6']['async_completed']}/3 done, "
          f"{sentinels['e6']['async_commit_retries']} retries; "
          f"sync {sentinels['e6']['sync_completed']}/3 done",
          sentinels["e6"]["preserved"]),
         ("E8 (flags on)",
          f"unbatched log_fulls={sentinels['e8']['unbatched_log_fulls']}; "
          f"batched completed={sentinels['e8']['batched_completed']}",
          sentinels["e8"]["preserved"])])
    assert sentinels["e6"]["preserved"]
    assert sentinels["e8"]["preserved"]

"""E8 — long-running work needs periodic local commits (§4).

Paper claim: "Load and reconcile utilities tend to run for a long time
... there is potential for running out of system resources such as log
file ... in the delete group daemon we unlink all the files under
deleted group. If large number of files are linked under one group then
unlinking them in single local DB2 transaction can cause the DB2 log
full error condition. So we issue commits to local DB2 periodically
after processing every N records."

Setup: a table with F linked files on a DLFM whose local database has a
small active log. Arms: delete-group batch size N ∈ {whole group, 200,
50, 10}. The unbatched arm hits log-full and never finishes.
"""

from benchmarks.conftest import print_table, run_once
from repro.dlfm.config import DLFMConfig
from repro.host import DatalinkSpec, build_url
from repro.kernel.sim import Timeout
from repro.system import System

FILES = 800
WAL_CAPACITY = 500  # a whole-group transaction (800 records) cannot fit
HORIZON = 600.0


def _run(batch_n: int):
    config = DLFMConfig.tuned()
    config.local_db.wal_capacity = WAL_CAPACITY
    config.batch_commit_n = batch_n
    config.commit_retry_delay = 5.0
    system = System(seed=2, dlfm_config=config)
    dlfm = system.dlfms["fs1"]

    def setup():
        yield from system.host.create_datalink_table(
            "bulk", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=False)})
        session = system.session()
        for i in range(FILES):
            path = f"/bulk/f{i:06d}"
            system.create_user_file("fs1", path, owner="load")
            yield from session.execute(
                "INSERT INTO bulk (id, doc) VALUES (?, ?)",
                (i, build_url("fs1", path)))
            if (i + 1) % 50 == 0:
                yield from session.commit()
        yield from session.commit()

    system.run(setup())
    assert dlfm.linked_count() == FILES

    def drop_and_wait():
        session = system.session()
        yield from session.drop_table("bulk")
        yield from session.commit()
        yield Timeout(HORIZON)

    system.run(drop_and_wait(), until=HORIZON + 60)
    return {
        "unlinked": FILES - dlfm.linked_count(),
        "log_fulls": dlfm.db.wal.metrics.log_fulls,
        "batch_commits": dlfm.delete_groupd.batch_commits,
        "completed": dlfm.linked_count() == 0,
    }


def test_e8_batched_commit_sweep(benchmark):
    arms = [FILES * 10, 200, 50, 10]

    def run():
        return [(n, _run(n)) for n in arms]

    results = run_once(benchmark, run)
    rows = []
    for n, r in results:
        label = "whole group" if n > FILES else str(n)
        rows.append((label, r["log_fulls"], r["batch_commits"],
                     f"{r['unlinked']}/{FILES}",
                     "yes" if r["completed"] else "NO"))
    print_table(
        f"E8 — delete-group batch-size sweep ({FILES} files, "
        f"log capacity {WAL_CAPACITY} records)",
        ["batch N", "log-full errors", "local commits", "files unlinked",
         "completed"],
        rows)
    by_n = dict(results)
    unbatched = by_n[FILES * 10]
    assert unbatched["log_fulls"] > 0          # the paper's failure mode
    assert not unbatched["completed"]          # it can never finish
    for n in (200, 50, 10):
        assert by_n[n]["completed"]
        assert by_n[n]["log_fulls"] == 0
    # smaller batches → more local commits
    assert by_n[10]["batch_commits"] > by_n[200]["batch_commits"]

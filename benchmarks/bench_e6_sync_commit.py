"""E6 — commit must be synchronous w.r.t. the host database (§4).

Paper claim: releasing the application while DLFM still runs phase-2
commit processing leads to a distributed deadlock that no local detector
can see: T1's commit processing at the DLFM waits for a lock held by
T2's sub-transaction; T2's host side waits for a record lock held by
T11 (the application's next transaction); T11 is blocked on its message
send because the DLFM child agent is still busy with T1's commit. T1's
commit keeps timing out and retrying forever. Making the commit
synchronous removes the cycle.

We reproduce the exact T1 / T11 / T2 scenario with both commit modes.
"""

from benchmarks.conftest import print_table, run_once
from repro.dlfm.config import DLFMConfig
from repro.errors import TransactionAborted
from repro.host import DatalinkSpec, HostConfig, build_url
from repro.kernel.sim import Timeout
from repro.system import System

HORIZON = 900.0


def _scenario(sync_commit: bool):
    # RR + next-key locking at the DLFM: T1's commit-time scan of its own
    # entries S-locks the key range boundary — T2's uncommitted insert
    # holds it X (ARIES/KVL), which is the local wait the cycle needs.
    dlfm_config = DLFMConfig.tuned()
    dlfm_config.local_db.isolation = "RR"
    dlfm_config.local_db.next_key_locking = True
    dlfm_config.local_db.lock_timeout = 60.0
    host_config = HostConfig(sync_commit=sync_commit)
    # DB2's default LOCKTIMEOUT is -1 (wait forever); the paper's 60 s
    # timeout is on the DLFM side. With a finite host timeout the cycle
    # would eventually be broken by the host instead.
    host_config.db.lock_timeout = 1e9
    system = System(seed=5, dlfm_config=dlfm_config,
                    host_config=host_config)
    done = {"T1": None, "T11": None, "T2": None}

    def setup():
        yield from system.host.create_datalink_table(
            "t", [("id", "INT"), ("f", "TEXT")], {"f": DatalinkSpec()})
        for name in ("a", "b", "c"):
            system.create_user_file("fs1", f"/d/{name}", owner="u")
        # the host record 'x' that T11 and T2 both need
        session = system.host.db.session()
        yield from session.execute("CREATE TABLE hot (id INT, v INT)")
        yield from session.execute(
            "INSERT INTO hot (id, v) VALUES (1, 0)")
        yield from session.commit()
        system.host.db.set_table_stats("hot", card=1_000_000,
                                       colcard={"id": 1_000_000})

    system.run(setup())

    def application_a():
        """Runs T1, then immediately T11 on the same connection."""
        session = system.session()
        # T1: link /d/a; commit at t=0.5 so T2's sub-transaction is
        # already holding its DLFM key locks when phase 2 scans.
        yield from session.execute(
            "INSERT INTO t (id, f) VALUES (?, ?)",
            (1, build_url("fs1", "/d/a")))
        yield Timeout(0.5)
        yield from session.commit()
        done["T1"] = system.sim.now
        # T11: X-lock record x, then a LinkFile that must reach the SAME
        # child agent (still busy with T1's commit in async mode).
        try:
            yield from session.execute(
                "UPDATE hot SET v = 1 WHERE id = 1")
            yield from session.execute(
                "INSERT INTO t (id, f) VALUES (?, ?)",
                (2, build_url("fs1", "/d/b")))
            yield from session.commit()
            done["T11"] = system.sim.now
        except TransactionAborted:
            yield from session.rollback()

    def application_b():
        """Runs T2: an open DLFM sub-transaction, then needs record x."""
        session = system.session()
        yield Timeout(0.1)  # link BEFORE T1 commits (holds its key locks)
        try:
            yield from session.execute(
                "INSERT INTO t (id, f) VALUES (?, ?)",
                (3, build_url("fs1", "/d/c")))
            yield Timeout(2.0)  # sub-transaction stays open for a while
            yield from session.execute(
                "UPDATE hot SET v = 2 WHERE id = 1")
            yield from session.commit()
            done["T2"] = system.sim.now
        except TransactionAborted:
            yield from session.rollback()

    def root():
        system.sim.spawn(application_a(), "app-a")
        system.sim.spawn(application_b(), "app-b")
        yield Timeout(HORIZON)

    system.run(root(), until=HORIZON)
    dlfm = system.dlfms["fs1"]
    return {
        "done": dict(done),
        "completed": sum(1 for v in done.values() if v is not None),
        "commit_retries": dlfm.metrics.commit_retries,
        "dlfm_timeouts": dlfm.db.locks.metrics.timeouts,
    }


def test_e6_sync_vs_async_commit(benchmark):
    def run():
        return _scenario(sync_commit=False), _scenario(sync_commit=True)

    async_mode, sync_mode = run_once(benchmark, run)
    print_table(
        "E6 — asynchronous vs synchronous phase-2 commit "
        f"(horizon {HORIZON:.0f}s)",
        ["metric", "async commit", "sync commit", "paper"],
        [
            ("transactions completed (of 3)", async_mode["completed"],
             sync_mode["completed"], "stuck vs all"),
            ("T11 completed", async_mode["done"]["T11"] is not None,
             sync_mode["done"]["T11"] is not None, "no vs yes"),
            ("T2 completed", async_mode["done"]["T2"] is not None,
             sync_mode["done"]["T2"] is not None, "no vs yes"),
            ("phase-2 retry attempts", async_mode["commit_retries"],
             sync_mode["commit_retries"], "repeats forever vs 0"),
            ("DLFM lock timeouts", async_mode["dlfm_timeouts"],
             sync_mode["dlfm_timeouts"], "recurring vs 0"),
        ])
    # Async: the cycle persists — T11 and T2 never finish, and T1's
    # phase-2 commit keeps timing out and retrying ("this process will
    # repeat forever as the deadlock cycle persists").
    assert async_mode["done"]["T11"] is None
    assert async_mode["done"]["T2"] is None
    assert async_mode["commit_retries"] >= 5
    # Sync: everything completes. (A bounded number of phase-2 retries is
    # fine — that is Figure 4's retry loop doing its job on a LOCAL
    # conflict, which the local deadlock detector resolves.)
    assert sync_mode["completed"] == 3
    assert sync_mode["commit_retries"] <= 2

"""E3 — next-key locking on the multi-indexed File table causes frequent
deadlocks; disabling it removes them (§3.2.1, §4).

Paper claim: "the next key locking feature results in deadlocks
frequently when multiple datalink applications are running concurrently.
... that feature is turned off. With these enhancements, we were able to
run 100-client workload ... without much deadlock/timeout problem."

The workload ingests files with monotonically increasing names (like
timestamped media), so concurrent inserts hit adjacent keys in the
filename index — the collision pattern behind the paper's deadlocks.
"""

from benchmarks.conftest import print_table, run_once
from repro.dlfm.config import DLFMConfig
from repro.minidb.config import TimingModel
from repro.workloads import SystemTestConfig, run_system_test


def _arm(next_key_locking: bool):
    config = DLFMConfig.tuned(timing=TimingModel.calibrated())
    config.local_db.next_key_locking = next_key_locking
    report = run_system_test(SystemTestConfig(
        clients=40, duration=600, think_time=2.0, dlfm_config=config))
    return report


def test_e3_next_key_locking_ablation(benchmark):
    def run():
        return _arm(next_key_locking=True), _arm(next_key_locking=False)

    nkl_on, nkl_off = run_once(benchmark, run)
    on, off = nkl_on.summary(), nkl_off.summary()
    print_table(
        "E3 — next-key locking ablation (40 hot clients, adjacent-key "
        "ingest)",
        ["metric", "paper (NKL on)", "NKL on", "paper (NKL off)", "NKL off"],
        [
            ("deadlocks", "frequent", on["deadlocks"], "≈0",
             off["deadlocks"]),
            ("lock timeouts", "-", on["lock_timeouts"], "≈0",
             off["lock_timeouts"]),
            ("aborted txns", "-", sum(on["aborts"].values()), "≈0",
             sum(off["aborts"].values())),
            ("inserts/min", "-", on["inserts_per_min"], "-",
             off["inserts_per_min"]),
            ("p95 latency (s)", "-", round(on["p95_latency_s"], 3), "-",
             round(off["p95_latency_s"], 3)),
        ])
    assert on["deadlocks"] > 5 * max(1, off["deadlocks"])
    assert off["deadlocks"] <= 2
    assert off["inserts_per_min"] >= on["inserts_per_min"]

"""E7 — breaking global deadlocks with a timeout (§4).

Paper claim: "we take a simple approach and rely on the timeout mechanism
to resolve potential distributed deadlock. The problem with the timeout
mechanism is that it is difficult to come up with a perfect timeout
period and some transactions may get rolled back unnecessarily. In our
case, we set the timeout to 60 seconds and it has performed reasonably
well."

Workload: clients contend on a shared pool of host rows; a periodic
"hog" transaction holds locks for ~90 s. A too-small timeout aborts
healthy waiters (work lost, unnecessary rollbacks); a too-large timeout
lets everything stall behind the hog. 60 s is the sweet-ish spot.
"""

from benchmarks.conftest import print_table, run_once
from repro.dlfm.config import DLFMConfig
from repro.errors import ReproError, TransactionAborted
from repro.host import DatalinkSpec, HostConfig, build_url
from repro.kernel.sim import Timeout
from repro.minidb.config import TimingModel
from repro.obs.metrics import Histogram
from repro.system import System

HOG_HOLD = 90.0
DURATION = 1_200.0


def _run(lock_timeout: float):
    dlfm_config = DLFMConfig.tuned(timing=TimingModel.calibrated())
    dlfm_config.local_db.lock_timeout = lock_timeout
    host_config = HostConfig()
    host_config.db.lock_timeout = lock_timeout
    host_config.db.timing = TimingModel.calibrated()
    system = System(seed=23, dlfm_config=dlfm_config,
                    host_config=host_config)
    stats = {"ops": 0, "timeout_aborts": 0, "deadlock_aborts": 0,
             "latencies": Histogram(), "hog_cycles": 0}

    def setup():
        yield from system.host.create_datalink_table(
            "media", [("id", "INT"), ("tag", "TEXT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=False)})
        session = system.host.db.session()
        yield from session.execute(
            "CREATE UNIQUE INDEX media_id ON media (id)")
        yield from session.commit()
        system.host.db.set_table_stats("media", card=1_000_000,
                                       colcard={"id": 1_000_000})
        # a shared pool of 40 rows everyone updates
        app = system.session()
        for i in range(40):
            system.create_user_file("fs1", f"/p/{i}", owner="u")
            yield from app.execute(
                "INSERT INTO media (id, tag, doc) VALUES (?, ?, ?)",
                (i, "pool", build_url("fs1", f"/p/{i}")))
        yield from app.commit()

    system.run(setup())

    def client(i):
        rng = system.sim.stream(f"c{i}")
        session = system.session()
        while system.sim.now < DURATION:
            yield Timeout(rng.expovariate(1.0 / 8.0))
            if system.sim.now >= DURATION:
                break
            row = rng.randrange(40)
            started = system.sim.now
            try:
                yield from session.execute(
                    "UPDATE media SET tag = ? WHERE id = ?",
                    (f"touch-{i}", row))
                yield from session.commit()
                stats["ops"] += 1
                stats["latencies"].record(system.sim.now - started)
            except TransactionAborted as error:
                if error.reason == "timeout":
                    stats["timeout_aborts"] += 1
                elif error.reason == "deadlock":
                    stats["deadlock_aborts"] += 1
                try:
                    yield from session.rollback()
                except ReproError:
                    pass

    def hog():
        """Every 5 minutes, grabs 6 pool rows and sits on them."""
        session = system.session()
        while system.sim.now < DURATION:
            yield Timeout(180.0)
            if system.sim.now >= DURATION:
                break
            try:
                for row in range(6):
                    yield from session.execute(
                        "UPDATE media SET tag = 'hogged' WHERE id = ?",
                        (row,))
                yield Timeout(HOG_HOLD)
                yield from session.commit()
                stats["hog_cycles"] += 1
            except TransactionAborted:
                try:
                    yield from session.rollback()
                except ReproError:
                    pass

    def root():
        procs = [system.sim.spawn(client(i), f"c{i}") for i in range(15)]
        procs.append(system.sim.spawn(hog(), "hog"))
        for proc in procs:
            yield from proc.join()

    system.run(root())
    lat = stats["latencies"].summary()
    return {
        "timeout_aborts": stats["timeout_aborts"],
        "deadlocks": stats["deadlock_aborts"],
        "ops_per_min": round(stats["ops"] / (DURATION / 60), 1),
        "p50_latency": round(lat["p50"], 2) if lat["count"] else None,
        "p95_latency": round(lat["p95"], 2) if lat["count"] else None,
        "p99_latency": round(lat["p99"], 2) if lat["count"] else None,
        "max_latency": round(lat["max"], 2) if lat["count"] else None,
    }


def test_e7_timeout_sweep(benchmark):
    values = [5.0, 15.0, 60.0, 300.0]

    def run():
        return [(t, _run(t)) for t in values]

    results = run_once(benchmark, run)
    rows = [(f"{t:.0f}s" + (" (paper)" if t == 60 else ""),
             r["timeout_aborts"], r["ops_per_min"], r["p50_latency"],
             r["p95_latency"], r["p99_latency"], r["max_latency"])
            for t, r in results]
    print_table(
        "E7 — lock-timeout sweep (15 clients on a hot pool + 90 s hog)",
        ["timeout", "unnecessary aborts", "ops/min", "p50 lat (s)",
         "p95 lat (s)", "p99 lat (s)", "max lat (s)"],
        rows)
    by_timeout = dict(results)
    # Small timeouts abort healthy waiters; 60 s and up do not.
    assert by_timeout[5.0]["timeout_aborts"] > by_timeout[60.0][
        "timeout_aborts"]
    assert by_timeout[15.0]["timeout_aborts"] >= by_timeout[60.0][
        "timeout_aborts"]
    # Generous timeouts trade aborts for stall time behind the hog.
    assert (by_timeout[300.0]["max_latency"]
            >= by_timeout[5.0]["max_latency"])

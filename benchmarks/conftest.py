"""Shared benchmark plumbing.

Every benchmark runs its experiment exactly once under
``benchmark.pedantic`` (the numbers of interest are *simulated* metrics,
not wall time) and prints a paper-vs-measured table.

Scale: by default experiments run at reduced virtual duration / client
count so the whole suite finishes in minutes. Set ``REPRO_FULL=1`` for
the paper-scale runs (100 clients, 24 virtual hours for E1).
"""

import os


FULL = os.environ.get("REPRO_FULL", "") == "1"


def full_scale() -> bool:
    return FULL


def print_table(title: str, columns: list[str], rows: list[tuple]) -> None:
    widths = [max(len(str(col)), *(len(str(r[i])) for r in rows))
              for i, col in enumerate(columns)] if rows else [
                  len(c) for c in columns]
    line = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    print(f"\n== {title}")
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))


def run_once(benchmark, fn):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

"""E1 — the paper's system test (§3.2.1, Abstract, §5).

Paper claim: with the tuned configuration, a 100-client workload ran for
24 hours "without much deadlock/timeout problem", sustaining ~300
link-inserts/min and ~150 updates/min.

Default run is scaled (fewer clients / 30 virtual minutes); REPRO_FULL=1
runs 100 clients for 24 virtual hours.
"""

from benchmarks.conftest import full_scale, print_table, run_once
from repro.workloads import SystemTestConfig, run_system_test

PAPER = {"clients": 100, "inserts_per_min": 300, "updates_per_min": 150,
         "deadlocks": "few", "timeouts": "few"}


def test_e1_system_test_tuned(benchmark):
    duration = 86_400.0 if full_scale() else 1_800.0
    clients = 100 if full_scale() else 100

    def run():
        return run_system_test(SystemTestConfig(
            clients=clients, duration=duration))

    report = run_once(benchmark, run)
    summary = report.summary()
    print_table(
        "E1 system test (tuned DLFM configuration)",
        ["metric", "paper", "measured"],
        [
            ("clients", PAPER["clients"], summary["clients"]),
            ("virtual duration (min)", 1440, summary["virtual_minutes"]),
            ("inserts/min", PAPER["inserts_per_min"],
             summary["inserts_per_min"]),
            ("updates/min", PAPER["updates_per_min"],
             summary["updates_per_min"]),
            ("deadlocks", PAPER["deadlocks"], summary["deadlocks"]),
            ("lock timeouts", PAPER["timeouts"], summary["lock_timeouts"]),
            ("lock escalations", 0, summary["escalations"]),
            ("p95 latency (s)", "n/a", round(summary["p95_latency_s"], 3)),
        ])
    # Shape assertions: the tuned system sustains the paper's regime.
    assert summary["inserts_per_min"] > 200
    assert summary["updates_per_min"] > 90
    assert summary["deadlocks"] <= 2
    assert summary["lock_timeouts"] <= 2
    assert summary["escalations"] == 0


def test_e1_client_scaling(benchmark):
    """Throughput scales with client count in the tuned configuration
    (think-time bound, not contention bound)."""
    counts = [10, 25, 50, 100] if not full_scale() else [10, 50, 100, 200]

    def run():
        results = []
        for n in counts:
            report = run_system_test(SystemTestConfig(
                clients=n, duration=600.0))
            results.append((n, report))
        return results

    results = run_once(benchmark, run)
    rows = []
    for n, report in results:
        summary = report.summary()
        rows.append((n, summary["inserts_per_min"],
                     summary["updates_per_min"], summary["deadlocks"],
                     summary["lock_timeouts"]))
    print_table("E1 scaling (tuned)",
                ["clients", "ins/min", "upd/min", "deadlocks", "timeouts"],
                rows)
    ins = [r[1] for r in rows]
    assert ins == sorted(ins)  # monotone scaling
    assert all(r[3] <= 2 for r in rows)

"""E9 — the check-flag unique index closes the link race (§3.2).

Paper claim: "During the link file operation, file entry check and
insert must be an atomic operation (otherwise there is a small window
where two child agents can both check for and not find the linked entry
for a file and then insert the two linked entries for the same file). To
close the window for race condition, a unique index on filename and a
new check-flag is defined. ... This unique index prevents two linked
entries but allows multiple unlinked entries for the same file."

Adversarial harness: K clients race to link each of M files at the same
instant. Invariants: exactly one winner per file, every loser gets a
clean 'already linked' error, at most one linked entry per file, and a
file that was linked and unlinked repeatedly accumulates multiple
unlinked entries but never a second linked one.
"""

from benchmarks.conftest import print_table, run_once
from repro.dlfm import schema
from repro.errors import LinkError, TransactionAborted
from repro.host import DatalinkSpec, build_url
from repro.kernel.sim import Timeout
from repro.system import System

FILES = 30
RACERS = 6


def _run():
    system = System(seed=17)
    dlfm = system.dlfms["fs1"]

    def setup():
        yield from system.host.create_datalink_table(
            "race", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=True)})
        for i in range(FILES):
            system.create_user_file("fs1", f"/race/f{i:03d}", owner="u")

    system.run(setup())
    outcomes = {"ok": 0, "already_linked": 0, "other": 0}

    def racer(racer_id):
        session = system.session()
        rng = system.sim.stream(f"racer{racer_id}")
        for i in range(FILES):
            yield Timeout(rng.random() * 0.01)  # near-simultaneous
            try:
                yield from session.execute(
                    "INSERT INTO race (id, doc) VALUES (?, ?)",
                    (racer_id * 1000 + i, build_url("fs1",
                                                    f"/race/f{i:03d}")))
                yield from session.commit()
                outcomes["ok"] += 1
            except LinkError:
                yield from session.rollback()
                outcomes["already_linked"] += 1
            except TransactionAborted:
                yield from session.rollback()
                outcomes["other"] += 1

    def root():
        procs = [system.sim.spawn(racer(r), f"racer{r}")
                 for r in range(RACERS)]
        for proc in procs:
            yield from proc.join()

    system.run(root())

    # linked-entry invariant per file
    linked_per_file = {}
    unlinked_per_file = {}
    for row in dlfm.file_entries():
        if row[8] == schema.ST_LINKED:
            linked_per_file[row[0]] = linked_per_file.get(row[0], 0) + 1
        elif row[8] == schema.ST_UNLINKED:
            unlinked_per_file[row[0]] = unlinked_per_file.get(row[0], 0) + 1

    # link/unlink churn: multiple unlinked entries accumulate for one file
    def churn():
        session = system.session()
        for round_no in range(3):
            yield from session.execute(
                "DELETE FROM race WHERE doc = ?",
                (build_url("fs1", "/race/f000"),))
            yield from session.commit()
            yield from session.execute(
                "INSERT INTO race (id, doc) VALUES (?, ?)",
                (90_000 + round_no, build_url("fs1", "/race/f000")))
            yield from session.commit()

    system.run(churn())
    churn_unlinked = sum(
        1 for row in dlfm.file_entries()
        if row[0] == "/race/f000" and row[8] == schema.ST_UNLINKED)
    churn_linked = sum(
        1 for row in dlfm.file_entries()
        if row[0] == "/race/f000" and row[8] == schema.ST_LINKED)
    return (outcomes, linked_per_file, unlinked_per_file, churn_unlinked,
            churn_linked)


def test_e9_link_race(benchmark):
    (outcomes, linked_per_file, _unlinked, churn_unlinked,
     churn_linked) = run_once(benchmark, _run)
    print_table(
        f"E9 — {RACERS} racers × {FILES} files simultaneous LinkFile",
        ["invariant", "paper", "measured"],
        [
            ("successful links", FILES, outcomes["ok"]),
            ("clean 'already linked' errors", FILES * (RACERS - 1),
             outcomes["already_linked"] + outcomes["other"]),
            ("files with 2+ linked entries", 0,
             sum(1 for v in linked_per_file.values() if v > 1)),
            ("unlinked entries after 3 unlink/relink rounds", "several",
             churn_unlinked),
            ("linked entries after churn", 1, churn_linked),
        ])
    assert outcomes["ok"] == FILES
    assert all(v == 1 for v in linked_per_file.values())
    assert len(linked_per_file) == FILES
    assert churn_unlinked == 3   # one marker per unlink round
    assert churn_linked == 1

"""E10 — crash matrix: transactional guarantees across failures
(§3.3, §3.4, §3.5).

Each scenario crashes a component at a chosen point and verifies the
system converges to a consistent state after recovery:

  A  DLFM crash before prepare        → sub-transaction vanishes
  B  DLFM crash after prepare, host decided commit → link survives
  C  DLFM crash after prepare, no decision         → presumed abort
  D  host crash after decision, before phase 2     → phase 2 re-driven
  E  DLFM crash with pending delete-group work     → daemon resumes
  F  DLFM crash with pending archive copies        → copy daemon resumes
  G  restore to backup + reconcile                 → both sides converge
"""

from benchmarks.conftest import print_table, run_once
from repro.dlfm import api
from repro.errors import ReproError
from repro.host import DatalinkSpec, build_url
from repro.host.indoubt import resolve_indoubts
from repro.kernel.sim import Timeout
from repro.system import System


def _fresh(seed):
    system = System(seed=seed)

    def setup():
        yield from system.host.create_datalink_table(
            "t", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=True)})
        for i in range(12):
            system.create_user_file("fs1", f"/x/f{i:02d}", owner="u")

    system.run(setup())
    return system


def _link(system, session, i):
    yield from session.execute(
        "INSERT INTO t (id, doc) VALUES (?, ?)",
        (i, build_url("fs1", f"/x/f{i:02d}")))


def scenario_a():
    """DLFM crash before prepare."""
    system = _fresh(1)
    dlfm = system.dlfms["fs1"]

    def go():
        session = system.session()
        yield from _link(system, session, 0)
        dlfm.crash()
        dlfm.restart()
        try:
            yield from session.commit()
        except ReproError:
            yield from session.rollback()

    system.run(go())
    return dlfm.linked_count() == 0 and dlfm.db.table_rows("dfm_txn") == []


def _prepare_with_decision(system, record_decision: bool):
    """Run a txn through phase 1 by hand; optionally log the decision."""
    def go():
        session = system.session()
        yield from _link(system, session, 0)
        txn_id = session.txn_id
        yield from session._send_control(
            "fs1", api.Prepare(system.host.dbid, txn_id))
        if record_decision:
            yield from session.session.execute(
                "INSERT INTO dlk_indoubt (txn_id, server) VALUES (?, ?)",
                (txn_id, "fs1"))
        yield from session.session.commit()
        return txn_id

    return system.run(go())


def scenario_b():
    """DLFM crash after prepare; decision was commit."""
    system = _fresh(2)
    dlfm = system.dlfms["fs1"]
    _prepare_with_decision(system, record_decision=True)
    dlfm.crash()
    dlfm.restart()
    result = system.run(resolve_indoubts(system.host))
    return (result["committed"] == 1 and dlfm.linked_count() == 1
            and system.host.db.table_rows("dlk_indoubt") == [])


def scenario_c():
    """DLFM crash after prepare; no decision row → presumed abort."""
    system = _fresh(3)
    dlfm = system.dlfms["fs1"]
    _prepare_with_decision(system, record_decision=False)
    dlfm.crash()
    dlfm.restart()
    result = system.run(resolve_indoubts(system.host))
    return (result["aborted"] == 1 and dlfm.linked_count() == 0
            and dlfm.db.table_rows("dfm_txn") == [])


def scenario_d():
    """Host crash after decision, before phase 2."""
    system = _fresh(4)
    _prepare_with_decision(system, record_decision=True)
    system.host.crash()
    result = system.run(system.host.restart())
    return (result["committed"] == 1
            and system.dlfms["fs1"].linked_count() == 1)


def scenario_e():
    """DLFM crash with committed-but-unprocessed delete-group work."""
    system = _fresh(5)
    dlfm = system.dlfms["fs1"]

    def fill():
        session = system.session()
        for i in range(6):
            yield from _link(system, session, i)
        yield from session.commit()

    system.run(fill())
    next(p for p in dlfm._daemon_procs if "delgrpd" in p.name).kill()

    def drop():
        session = system.session()
        yield from session.drop_table("t")
        yield from session.commit()

    system.run(drop())
    before_crash = dlfm.linked_count()
    dlfm.crash()
    dlfm.restart()

    def wait():
        yield Timeout(30)

    system.run(wait())
    return before_crash == 6 and dlfm.linked_count() == 0


def scenario_f():
    """DLFM crash with pending archive entries; copy daemon resumes."""
    system = _fresh(6)
    dlfm = system.dlfms["fs1"]

    def fill():
        session = system.session()
        for i in range(4):
            yield from _link(system, session, i)
        yield from session.commit()

    system.run(fill())
    assert system.archive.copy_count() == 0
    dlfm.crash()
    dlfm.restart()

    def wait():
        yield Timeout(30)

    system.run(wait())
    return system.archive.copy_count() == 4


def scenario_g():
    """Backup → destructive changes → restore + reconcile converge."""
    system = _fresh(7)
    dlfm = system.dlfms["fs1"]

    def go():
        session = system.session()
        for i in range(3):
            yield from _link(system, session, i)
        yield from session.commit()
        backup_id = yield from system.backup()
        # post-backup damage: unlink 1, delete its file, link another
        yield from session.execute("DELETE FROM t WHERE id = 0")
        yield from session.commit()
        yield from system.filtered_fs("fs1").delete("/x/f00", "u")
        yield from _link(system, session, 5)
        yield from session.commit()
        yield from system.restore(backup_id)
        result = yield from system.reconcile()
        return result

    result = system.run(go())
    clean = result["fs1"] == {"relinked": 0, "removed": 0, "dangling": [],
                              "conflicts": [], "nulled": 0}
    linked_ok = dlfm.linked_count() == 3
    file_back = system.servers["fs1"].fs.exists("/x/f00")
    return clean and linked_ok and file_back


SCENARIOS = [
    ("A crash before prepare → work vanishes", scenario_a),
    ("B prepared + commit decision → survives", scenario_b),
    ("C prepared, no decision → presumed abort", scenario_c),
    ("D host crash after decision → phase-2 redriven", scenario_d),
    ("E delete-group resumes after crash", scenario_e),
    ("F copy daemon resumes after crash", scenario_f),
    ("G restore + reconcile converge", scenario_g),
]


def test_e10_crash_matrix(benchmark):
    def run():
        return [(name, fn()) for name, fn in SCENARIOS]

    results = run_once(benchmark, run)
    print_table(
        "E10 — crash/recovery matrix",
        ["scenario", "invariants hold"],
        [(name, "yes" if ok else "NO") for name, ok in results])
    assert all(ok for _, ok in results)

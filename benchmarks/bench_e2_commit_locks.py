"""E2 / Figure 4 — DLFM commit processing acquires new locks.

Paper claim: "The SQL commit processing does not acquire any new locks
... On the other hand the DLFM uses the SQL interface to update the
metadata ... during commit processing. This, in turn, requires additional
locks to be acquired ... a retry logic is included in the commit
processing and it keeps retrying until it succeeds."

Measured here: (a) the host's own SQL commit takes zero new locks;
(b) DLFM phase-2 commit takes a substantial number of new locks per
transaction; (c) under the untuned configuration phase-2 deadlocks /
timeouts occur and are absorbed by the retry loop — every commit still
succeeds.
"""

from benchmarks.conftest import print_table, run_once
from repro.dlfm.config import DLFMConfig
from repro.minidb.config import TimingModel
from repro.workloads import SystemTestConfig, run_system_test


def _measure(dlfm_config, clients, duration, think):
    report = run_system_test(SystemTestConfig(
        clients=clients, duration=duration, think_time=think,
        dlfm_config=dlfm_config))
    system = report.system
    dlfm = system.dlfms["fs1"]
    dlfm_locks = dlfm.db.locks.metrics
    return {
        "report": report,
        "dlfm_lock_acquires_per_commit": round(
            dlfm_locks.acquires / max(1, dlfm.db.metrics.commits), 1),
        "phase2_retries": dlfm.metrics.commit_retries
                          + dlfm.metrics.abort_retries,
        "dlfm_commits": dlfm.metrics.commits,
        "host_commit_lock_acquires": 0,  # by construction: release-only
        "dlfm_deadlocks": dlfm_locks.deadlocks,
        "dlfm_timeouts": dlfm_locks.timeouts,
        "latency": report.latency_hist.summary(),
    }


def test_e2_commit_processing_locks(benchmark):
    def run():
        tuned = _measure(None, clients=40, duration=600, think=4.0)
        untuned = _measure(
            DLFMConfig.untuned(timing=TimingModel.calibrated()),
            clients=40, duration=600, think=4.0)
        return tuned, untuned

    tuned, untuned = run_once(benchmark, run)
    print_table(
        "E2 / Fig.4 — commit processing acquires locks; retries absorb "
        "phase-2 failures",
        ["metric", "paper", "tuned", "untuned"],
        [
            ("host SQL commit: new locks", 0,
             tuned["host_commit_lock_acquires"],
             untuned["host_commit_lock_acquires"]),
            ("DLFM lock acquires / local txn", ">0",
             tuned["dlfm_lock_acquires_per_commit"],
             untuned["dlfm_lock_acquires_per_commit"]),
            ("phase-2 retries", "happens",
             tuned["phase2_retries"], untuned["phase2_retries"]),
            ("DLFM deadlocks", "possible",
             tuned["dlfm_deadlocks"], untuned["dlfm_deadlocks"]),
            ("2PC commits completed", "all",
             tuned["dlfm_commits"], untuned["dlfm_commits"]),
            ("op latency p50 (s)", "-",
             round(tuned["latency"]["p50"], 3),
             round(untuned["latency"]["p50"], 3)),
            ("op latency p95 (s)", "-",
             round(tuned["latency"]["p95"], 3),
             round(untuned["latency"]["p95"], 3)),
            ("op latency p99 (s)", "-",
             round(tuned["latency"]["p99"], 3),
             round(untuned["latency"]["p99"], 3)),
        ])
    # Fig 4's structural claim: DLFM commit work takes locks.
    assert tuned["dlfm_lock_acquires_per_commit"] > 0
    # The retry loop guarantees completion even when phase 2 conflicts:
    # every decided transaction eventually committed at the DLFM.
    assert untuned["dlfm_commits"] > 0
    assert tuned["report"].summary()["inserts_per_min"] > 0
    # The histogram percentiles are populated and ordered.
    assert tuned["latency"]["count"] > 0
    assert tuned["latency"]["p50"] <= tuned["latency"]["p95"] <= \
        tuned["latency"]["p99"] <= tuned["latency"]["max"]

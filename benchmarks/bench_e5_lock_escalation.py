"""E5 — lock escalation "brings the system to its knees" (§4).

Paper claim: "When a DLFM process holds lots of row locks in a metadata
table then it may cause the lock escalation to table level lock. The lock
escalation for a high traffic table will result in timeouts for other
applications. ... We observed that lock escalation in any of the metadata
tables usually brings the system to its knees. Within our daemons, we are
careful that they commit frequently enough so as to not cause any lock
escalation. Also ... lock list size should be set sufficiently large."

Workload: the normal client mix PLUS one bulk-load application that links
many files in a single transaction. Arms: small locklist/maxlocks (bulk
loader escalates dfm_file to a table lock) vs the tuned large locklist.
"""

from benchmarks.conftest import print_table, run_once
from repro.dlfm.config import DLFMConfig
from repro.errors import ReproError, TransactionAborted
from repro.host import DatalinkSpec, build_url
from repro.kernel.sim import Timeout
from repro.minidb.config import TimingModel
from repro.system import System


def _run(locklist: int, maxlocks: float, bulk_size: int = 250,
         clients: int = 20, duration: float = 900.0):
    config = DLFMConfig.tuned(timing=TimingModel.calibrated())
    config.local_db.locklist_size = locklist
    config.local_db.maxlocks_fraction = maxlocks
    config.local_db.lock_timeout = 20.0
    system = System(seed=11, dlfm_config=config)
    stats = {"ops": 0, "timeouts": 0, "aborts": 0, "bulk_done": 0,
             "latencies": []}

    def setup():
        yield from system.host.create_datalink_table(
            "media", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=False)})

    system.run(setup())
    counter = {"files": 0, "rows": 0}

    def new_url(owner):
        counter["files"] += 1
        path = f"/bulk/f{counter['files']:07d}"
        system.create_user_file("fs1", path, owner=owner)
        return build_url("fs1", path)

    def client(i):
        rng = system.sim.stream(f"c{i}")
        session = system.session()
        while system.sim.now < duration:
            yield Timeout(rng.expovariate(1.0 / 6.0))
            if system.sim.now >= duration:
                break
            counter["rows"] += 1
            started = system.sim.now
            try:
                yield from session.execute(
                    "INSERT INTO media (id, doc) VALUES (?, ?)",
                    (counter["rows"], new_url(f"u{i}")))
                yield from session.commit()
                stats["ops"] += 1
                stats["latencies"].append(system.sim.now - started)
            except TransactionAborted as error:
                stats["aborts"] += 1
                if error.reason == "timeout":
                    stats["timeouts"] += 1
                try:
                    yield from session.rollback()
                except ReproError:
                    pass

    def bulk_loader():
        """Links ``bulk_size`` files in ONE transaction, repeatedly."""
        session = system.session()
        while system.sim.now < duration:
            yield Timeout(30.0)
            try:
                for _ in range(bulk_size):
                    counter["rows"] += 1
                    yield from session.execute(
                        "INSERT INTO media (id, doc) VALUES (?, ?)",
                        (counter["rows"], new_url("loader")))
                    # ingesting the file's content takes real time, all of
                    # it spent INSIDE the transaction (no batched commits —
                    # exactly what the paper warns against)
                    yield Timeout(0.3)
                yield from session.commit()
                stats["bulk_done"] += 1
            except TransactionAborted:
                try:
                    yield from session.rollback()
                except ReproError:
                    pass

    def root():
        procs = [system.sim.spawn(client(i), f"client-{i}")
                 for i in range(clients)]
        procs.append(system.sim.spawn(bulk_loader(), "bulk"))
        for proc in procs:
            yield from proc.join()

    system.run(root())
    dlfm = system.dlfms["fs1"]
    lat = sorted(stats["latencies"])
    return {
        "escalations": dlfm.db.locks.metrics.escalations
                       + system.host.db.locks.metrics.escalations,
        "timeouts": stats["timeouts"],
        "aborts": stats["aborts"],
        "ops_per_min": round(stats["ops"] / (duration / 60), 1),
        "p95_latency": round(lat[int(len(lat) * 0.95)], 3) if lat else None,
        "bulk_done": stats["bulk_done"],
    }


def test_e5_lock_escalation(benchmark):
    def run():
        small = _run(locklist=600, maxlocks=0.1)
        large = _run(locklist=200_000, maxlocks=0.6)
        return small, large

    small, large = run_once(benchmark, run)
    print_table(
        "E5 — lock escalation ablation (20 clients + 1 bulk loader)",
        ["metric", "small locklist", "large locklist", "paper"],
        [
            ("lock escalations", small["escalations"],
             large["escalations"], ">0 vs 0"),
            ("client lock timeouts", small["timeouts"], large["timeouts"],
             "many vs few"),
            ("client aborts", small["aborts"], large["aborts"], "-"),
            ("client ops/min", small["ops_per_min"], large["ops_per_min"],
             "collapses vs fine"),
            ("client p95 latency (s)", small["p95_latency"],
             large["p95_latency"], "-"),
        ])
    assert small["escalations"] > 0
    assert large["escalations"] == 0
    assert small["timeouts"] > large["timeouts"]
    assert small["ops_per_min"] < large["ops_per_min"]

"""E4 — cost-based optimizer vs hand-crafted statistics (§3.2.1, §4).

Paper claims:
* "When the table size (cardinality) is small, the optimizer could still
  pick table scan even when an index is available. To ensure that the
  optimizer always picks the access plan we want, the statistics in the
  catalog are manually set."
* "Cost based Optimizer does not take locking cost (concurrent accesses)
  into account ... Using the RDBMS as a black box can cause havoc in
  terms of causing the lock timeouts and deadlocks and reducing the
  throughput of the concurrent workload."
* "issuing a runstats operation by user will overwrite the hand-crafted
  statistics ... additional logic is put into DLFM to check for changes
  in metadata statistics and re-invoke the utility."

Arms: (a) pinned statistics (tuned); (b) default statistics; (c) user
RUNSTATS sabotage mid-run with the guard ON.
"""

from benchmarks.conftest import print_table, run_once
from repro.dlfm.config import DLFMConfig
from repro.minidb.config import TimingModel
from repro.workloads import SystemTestConfig, run_system_test

PROBE = "SELECT state FROM dfm_file WHERE filename = ? AND check_flag = ?"


def _run(pin: bool):
    config = DLFMConfig.tuned(timing=TimingModel.calibrated())
    config.pin_statistics = pin
    report = run_system_test(SystemTestConfig(
        clients=30, duration=600, think_time=2.0, dlfm_config=config))
    dlfm = report.system.dlfms["fs1"]
    summary = report.summary()
    summary["probe_plan"] = dlfm.db.explain(PROBE)["access"]
    summary["file_table_scans"] = dlfm.db.metrics.table_scans
    summary["stats_repins"] = dlfm.metrics.stats_repins
    summary["aborts"] = report.aborts
    return summary


def test_e4_statistics_ablation(benchmark):
    def run():
        pinned = _run(pin=True)
        default = _run(pin=False)
        return pinned, default

    pinned, default = run_once(benchmark, run)
    print_table(
        "E4 — optimizer statistics ablation (30 hot clients)",
        ["metric", "pinned stats", "default stats", "paper"],
        [
            ("File-table probe plan", pinned["probe_plan"],
             default["probe_plan"], "index vs table scan"),
            ("DLFM table scans", pinned["file_table_scans"],
             default["file_table_scans"], "avoided vs frequent"),
            ("lock timeouts", pinned["lock_timeouts"],
             default["lock_timeouts"], "low vs high"),
            ("deadlocks", pinned["deadlocks"], default["deadlocks"],
             "low vs high"),
            ("inserts/min", pinned["inserts_per_min"],
             default["inserts_per_min"], "higher vs lower"),
            ("p95 latency (s)", round(pinned["p95_latency_s"], 3),
             round(default["p95_latency_s"], 3), "-"),
        ])
    assert pinned["probe_plan"] == "index_scan"
    assert default["probe_plan"] == "table_scan"
    assert pinned["file_table_scans"] < default["file_table_scans"]
    assert pinned["inserts_per_min"] > default["inserts_per_min"]
    # "havoc": contention symptoms appear only in the default arm
    default_pain = (default["lock_timeouts"] + default["deadlocks"]
                    + sum(default["aborts"].values()))
    pinned_pain = (pinned["lock_timeouts"] + pinned["deadlocks"]
                   + sum(pinned["aborts"].values()))
    assert default_pain > pinned_pain


def test_e4_runstats_guard(benchmark):
    """A user RUNSTATS flips plans to table scans; the DLFM guard detects
    the overwrite, re-pins and rebinds (paper's guard logic)."""
    from repro.system import System
    from repro.dlfm.config import DLFMConfig
    from repro.host import DatalinkSpec, build_url

    def run():
        system = System(seed=3, dlfm_config=DLFMConfig.tuned())
        dlfm = system.dlfms["fs1"]

        def go():
            yield from system.host.create_datalink_table(
                "t", [("id", "INT"), ("f", "TEXT")], {"f": DatalinkSpec()})
            session = system.session()
            for i in range(10):
                system.create_user_file("fs1", f"/f/{i}", owner="u")
                yield from session.execute(
                    "INSERT INTO t (id, f) VALUES (?, ?)",
                    (i, build_url("fs1", f"/f/{i}")))
                yield from session.commit()

        system.run(go())
        plan_before = dlfm.db.explain(PROBE)["access"]
        pinned_before = dlfm.db.catalog.stats_for("dfm_file").manual
        # user sabotage: RUNSTATS over the (small) metadata tables
        dlfm.db.runstats("dfm_file")
        plan_after_runstats = dlfm.db.explain(PROBE)["access"]
        # the guard notices and repairs
        repaired = dlfm.ensure_statistics()
        plan_after_guard = dlfm.db.explain(PROBE)["access"]
        return (plan_before, pinned_before, plan_after_runstats, repaired,
                plan_after_guard)

    (before, pinned, after_runstats, repaired, after_guard) = run_once(
        benchmark, run)
    print_table(
        "E4b — RUNSTATS sabotage and the statistics guard",
        ["stage", "probe plan"],
        [
            ("pinned statistics (bound)", before),
            ("after user RUNSTATS", after_runstats),
            ("after guard re-pins + rebinds", after_guard),
        ])
    assert pinned is True
    assert before == "index_scan"
    assert after_runstats == "table_scan"   # the paper's failure mode
    assert repaired is True
    assert after_guard == "index_scan"


def test_e4_auto_runstats_flips_without_pinning(benchmark):
    """The modern alternative to catalog surgery: with auto-RUNSTATS on
    and pinning OFF, ordinary link traffic grows ``dfm_file`` past the
    mutation threshold and the probe flips to the index on its own —
    no ``set_stats`` anywhere. Pinned tables stay exempt, so the
    paper's guard and the automation coexist."""
    from repro.system import System
    from repro.host import DatalinkSpec, build_url

    def arm(auto: bool):
        config = DLFMConfig.tuned()
        config.pin_statistics = False
        config.auto_runstats = auto
        config.local_db = config.local_db.with_changes(
            auto_runstats_threshold=10, auto_runstats_fraction=0.2)
        system = System(seed=17, dlfm_config=config)
        dlfm = system.dlfms["fs1"]

        def go():
            yield from system.host.create_datalink_table(
                "t", [("id", "INT"), ("f", "TEXT")], {"f": DatalinkSpec()})
            session = system.session()
            for i in range(150):
                system.create_user_file("fs1", f"/auto/{i}", owner="u")
                yield from session.execute(
                    "INSERT INTO t (id, f) VALUES (?, ?)",
                    (i, build_url("fs1", f"/auto/{i}")))
                if (i + 1) % 10 == 0:
                    yield from session.commit()
            yield from session.commit()

        system.run(go())
        stats = dlfm.db.catalog.stats_for("dfm_file")
        return {
            "probe_plan": dlfm.db.explain(PROBE)["access"],
            "card_seen": stats.card,
            "manual": stats.manual,
            "refreshes": dlfm.db.metrics.auto_runstats_runs,
        }

    def run():
        return arm(auto=True), arm(auto=False)

    auto, cold = run_once(benchmark, run)
    print_table(
        "E4c — auto-RUNSTATS vs cold statistics (no pinning)",
        ["metric", "auto-RUNSTATS", "cold stats"],
        [
            ("File-table probe plan", auto["probe_plan"],
             cold["probe_plan"]),
            ("catalog card", auto["card_seen"], cold["card_seen"]),
            ("stats refreshes", auto["refreshes"], cold["refreshes"]),
        ])
    assert auto["probe_plan"] == "index_scan"
    assert not auto["manual"]               # the flip came from auto-stats
    assert auto["refreshes"] >= 1
    assert cold["probe_plan"] == "table_scan"
    assert cold["refreshes"] == 0

"""XA global transactions (§3.3): local txn id ≠ global id; host is both
participant (to the TM) and coordinator (of its DLFMs)."""

import pytest

from repro.errors import DataLinkError, TransactionAborted
from repro.host import DatalinkSpec, build_url
from repro.host.xa import (xa_commit, xa_finish_pending, xa_prepare,
                           xa_recover, xa_rollback)
from repro.system import System


@pytest.fixture
def xa_system():
    system = System(seed=61, servers=("fs1", "fs2"))

    def setup():
        yield from system.host.create_datalink_table(
            "gt", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=False)})
        for server in ("fs1", "fs2"):
            for i in range(3):
                system.create_user_file(server, f"/g/f{i}", owner="u")

    system.run(setup())
    return system


def start_branch(system, session, ids=((1, "fs1", 0), (2, "fs2", 0))):
    for row_id, server, file_index in ids:
        yield from session.execute(
            "INSERT INTO gt (id, doc) VALUES (?, ?)",
            (row_id, build_url(server, f"/g/f{file_index}")))


def count_rows(system):
    def go():
        session = system.host.db.session()
        result = yield from session.execute("SELECT COUNT(*) FROM gt")
        yield from session.commit()
        return result.scalar()
    return system.run(go())


def test_local_txn_id_differs_from_gtrid(xa_system):
    def go():
        session = xa_system.session()
        yield from start_branch(xa_system, session)
        prepared = yield from xa_prepare(session, "gtrid-ABC-001")
        decision = yield from xa_commit(xa_system.host, "gtrid-ABC-001")
        return prepared, decision

    prepared, decision = xa_system.run(go())
    assert isinstance(prepared.txn_id, int)  # the paper's point: an integer
    assert prepared.txn_id != "gtrid-ABC-001"  # distinct from the global id
    assert prepared.vote == "commit"
    assert prepared.readonly_servers == ()
    assert decision["txn_id"] == prepared.txn_id
    assert sorted(decision["servers"]) == ["fs1", "fs2"]
    assert decision["readonly"] == ()
    assert xa_system.dlfms["fs1"].linked_count() == 1
    assert xa_system.dlfms["fs2"].linked_count() == 1
    assert count_rows(xa_system) == 2


def test_xa_rollback_undoes_both_sides(xa_system):
    def go():
        session = xa_system.session()
        yield from start_branch(xa_system, session)
        yield from xa_prepare(session, "g2")
        yield from xa_rollback(xa_system.host, "g2")

    xa_system.run(go())
    assert xa_system.dlfms["fs1"].linked_count() == 0
    assert xa_system.dlfms["fs2"].linked_count() == 0
    assert count_rows(xa_system) == 0
    assert xa_system.host.db.table_rows("xa_pending") == []


def test_prepared_branch_survives_host_crash_as_indoubt(xa_system):
    host = xa_system.host

    def phase1():
        session = xa_system.session()
        yield from start_branch(xa_system, session)
        return (yield from xa_prepare(session, "g3"))

    local_id = xa_system.run(phase1()).txn_id
    host.db.crash()
    summary = host.db.restart()
    assert summary["prepared"] == [local_id]

    def recover_and_commit():
        status = yield from xa_recover(host)
        assert status == {"g3": {"state": "indoubt", "txn_id": local_id,
                                 "readonly": ()}}
        yield from xa_commit(host, "g3")
        return (yield from xa_recover(host))

    status_after = xa_system.run(recover_and_commit())
    assert status_after == {}
    assert count_rows(xa_system) == 2
    assert xa_system.dlfms["fs1"].linked_count() == 1


def test_indoubt_branch_locks_block_other_readers(xa_system):
    """After restart the prepared branch's rows stay X-locked."""
    host = xa_system.host

    def phase1():
        session = xa_system.session()
        yield from start_branch(xa_system, session)
        yield from xa_prepare(session, "g4")

    xa_system.run(phase1())
    host.db.crash()
    host.db.restart()

    def try_read():
        from repro.errors import LockTimeoutError
        session = host.db.session()
        with pytest.raises(LockTimeoutError):
            yield from session.execute("SELECT * FROM gt", ())
        return True

    assert xa_system.run(try_read()) is True

    def decide():
        yield from xa_rollback(host, "g4")

    xa_system.run(decide())
    assert count_rows(xa_system) == 0


def test_host_crash_after_commit_decision_redrives_phase2(xa_system):
    host = xa_system.host

    def phase1():
        session = xa_system.session()
        yield from start_branch(xa_system, session)
        prepared = yield from xa_prepare(session, "g5")
        txn = host.db.find_prepared(prepared.txn_id)
        # local commit = durable decision; crash BEFORE phase 2
        yield from host.db.commit(txn)

    xa_system.run(phase1())
    host.db.crash()
    host.db.restart()

    def recover():
        status = yield from xa_recover(host)
        assert set(status) == {"g5"}
        assert status["g5"]["state"] == "commit-pending"
        assert status["g5"]["readonly"] == ()
        finished = yield from xa_finish_pending(host)
        return finished

    finished = xa_system.run(recover())
    assert finished == ["g5"]
    assert xa_system.dlfms["fs1"].linked_count() == 1
    assert xa_system.dlfms["fs2"].linked_count() == 1
    assert host.db.table_rows("xa_pending") == []


def test_dlfm_prepare_failure_rolls_back_global_branch(xa_system):
    def go():
        session = xa_system.session()
        yield from start_branch(xa_system, session)
        xa_system.dlfms["fs2"].crash()
        xa_system.dlfms["fs2"].restart()
        with pytest.raises(TransactionAborted):
            yield from xa_prepare(session, "g6")

    xa_system.run(go())
    assert xa_system.dlfms["fs1"].linked_count() == 0
    assert count_rows(xa_system) == 0
    assert xa_system.host.db.table_rows("xa_pending") == []


def test_prepare_with_no_work_rejected(xa_system):
    def go():
        session = xa_system.session()
        with pytest.raises(DataLinkError):
            yield from xa_prepare(session, "empty")
        return True

    assert xa_system.run(go()) is True


def test_xa_readonly_branch_released_at_phase1(xa_system):
    """Every participant votes read-only and the local txn wrote nothing:
    the whole branch finishes at phase 1 (XA_RDONLY) — no PREPARE
    record, no xa_pending rows, nothing for the TM to drive."""
    from repro.dlfm import api
    from repro.errors import LinkError
    host = xa_system.host

    def go():
        session = xa_system.session()
        # fs1 joins but its DLFM transaction writes nothing (the failed
        # link leaves no state) and the host session never writes.
        with pytest.raises(LinkError):
            yield from session.dlfm_call("fs1", api.LinkFile(
                host.dbid, session.txn_id_for("fs1"), "/g/missing",
                host.group_ids[("gt", "doc")], "r-ro-1"))
        return (yield from xa_prepare(session, "g-ro"))

    result = xa_system.run(go())
    assert result.vote == "read-only"
    assert result.readonly_servers == ("fs1",)
    assert host.metrics.readonly_branches == 1
    assert host.db.table_rows("xa_pending") == []
    assert host.db.indoubt_transactions() == []
    assert xa_system.dlfms["fs1"].db.table_rows("dfm_txn") == []

    def recover():
        return (yield from xa_recover(host))

    assert xa_system.run(recover()) == {}  # nothing survives to resolve

    def commit_released():
        with pytest.raises(DataLinkError):
            yield from xa_commit(host, "g-ro")  # branch already finished
        return True

    assert xa_system.run(commit_released()) is True


def test_xa_local_read_only_branch_releases_locks(xa_system):
    """A SELECT-only branch votes read-only and its read locks drop at
    phase 1, so a writer is not blocked behind a finished branch."""
    host = xa_system.host

    def go():
        session = xa_system.session()
        yield from session.execute("SELECT COUNT(*) FROM gt")
        prepared = yield from xa_prepare(session, "g-local")
        assert prepared.vote == "read-only"
        # The branch is done: a writer must get the table immediately.
        writer = host.db.session()
        yield from writer.execute(
            "INSERT INTO gt (id, doc, doc__recid) VALUES (?, ?, ?)",
            (9, "plain", None))
        yield from writer.commit()
        return prepared

    prepared = xa_system.run(go())
    assert prepared.readonly_servers == ()
    assert count_rows(xa_system) == 1


def test_xa_mixed_readonly_participant_in_results(xa_system):
    """fs1 writes, fs2 joins read-only: the branch votes commit but the
    TM sees fs2 released at phase 1 in prepare/recover/commit results."""
    from repro.errors import LinkError
    host = xa_system.host

    def go():
        session = xa_system.session()
        yield from start_branch(xa_system, session, ids=((1, "fs1", 0),))
        with pytest.raises(LinkError):
            yield from session.execute(
                "INSERT INTO gt (id, doc) VALUES (?, ?)",
                (2, build_url("fs2", "/g/missing")))
        prepared = yield from xa_prepare(session, "g-mix")
        status = yield from xa_recover(host)
        decision = yield from xa_commit(host, "g-mix")
        return prepared, status, decision

    prepared, status, decision = xa_system.run(go())
    assert prepared.vote == "commit"
    assert prepared.readonly_servers == ("fs2",)
    assert status["g-mix"]["state"] == "indoubt"
    assert status["g-mix"]["readonly"] == ("fs2",)
    assert decision["servers"] == ("fs1",)  # fs2 pruned from phase 2
    assert decision["readonly"] == ("fs2",)
    assert host.metrics.readonly_votes == 1
    assert xa_system.dlfms["fs1"].linked_count() == 1
    assert host.db.table_rows("xa_pending") == []


def test_unknown_gtrid_rejected(xa_system):
    def go():
        from repro.host.xa import _bootstrap
        _bootstrap(xa_system.host)
        with pytest.raises(DataLinkError):
            yield from xa_commit(xa_system.host, "nope")
        return True

    assert xa_system.run(go()) is True

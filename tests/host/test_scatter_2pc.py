"""Scatter-gather 2PC: parallel fan-out, read-only votes, crash windows.

The paper's coordinator drives its participants serially; this repo adds
a concurrent fan-out behind ``HostConfig.scatter_gather`` whose protocol
outcomes must be IDENTICAL — one no-vote aborts everyone including
already-prepared participants (§3.3) — plus the classical read-only
participant optimization: a DLFM whose local transaction wrote nothing
votes read-only at Prepare, is released at end of phase 1, gets no
``dlk_indoubt`` decision row and no phase-2 Commit.
"""

import pytest

from repro.chaos.faults import FaultInjector, FaultPlan, FaultRule
from repro.errors import CrashedError, LinkError, TransactionAborted
from repro.host import DatalinkSpec, HostConfig, build_url
from repro.host.session import HostSession
from repro.system import System


def _make(servers=("fs1", "fs2", "fs3"), injector=None, **host_kwargs):
    system = System(seed=11, servers=servers,
                    host_config=HostConfig(**host_kwargs),
                    injector=injector)

    def setup():
        yield from system.host.create_datalink_table(
            "spread", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=False)})
        for server in servers:
            for i in range(4):
                system.create_user_file(server, f"/s/f{i}", owner="u")

    if injector is not None:
        injector.enabled = False  # keep faults out of the fixture setup
    system.run(setup())
    if injector is not None:
        injector.enabled = True
    return system


def _link(session, row_id, server, path="/s/f0"):
    yield from session.execute(
        "INSERT INTO spread (id, doc) VALUES (?, ?)",
        (row_id, build_url(server, path)))


def _touch_readonly(session, row_id, server):
    """Make ``server`` a participant whose local txn wrote nothing: the
    failed link's statement backout leaves no DLFM state behind."""
    with pytest.raises(LinkError):
        yield from session.execute(
            "INSERT INTO spread (id, doc) VALUES (?, ?)",
            (row_id, build_url(server, "/s/does-not-exist")))


def test_readonly_participant_skips_phase2(monkeypatch):
    """fs2 joins the transaction but writes nothing: it votes read-only,
    gets no decision row and no phase-2 Commit RPC."""
    system = _make()
    decision_rows = {}
    orig = HostSession._forget_decision

    def spy(self, txn_id, reuse=True):
        # Capture the durable decision rows the instant before phase 2
        # forgets them.
        decision_rows["rows"] = self.host.db.table_rows("dlk_indoubt")
        yield from orig(self, txn_id, reuse)

    monkeypatch.setattr(HostSession, "_forget_decision", spy)
    fs1, fs2 = system.dlfms["fs1"], system.dlfms["fs2"]
    rpcs_before = {}

    def go():
        session = system.session()
        yield from _link(session, 1, "fs1")
        yield from _touch_readonly(session, 2, "fs2")
        assert sorted(session.participants) == ["fs1", "fs2"]
        rpcs_before["fs1"] = fs1.metrics.rpcs
        rpcs_before["fs2"] = fs2.metrics.rpcs
        yield from session.commit()

    system.run(go())
    txn_id = decision_rows["rows"][0][0]
    assert decision_rows["rows"] == [(txn_id, "fs1")]  # no fs2 row
    # fs1 saw Prepare + Commit; fs2 saw ONLY Prepare.
    assert fs1.metrics.rpcs - rpcs_before["fs1"] == 2
    assert fs2.metrics.rpcs - rpcs_before["fs2"] == 1
    assert fs1.metrics.readonly_votes == 0
    assert fs2.metrics.readonly_votes == 1
    assert system.host.metrics.readonly_votes == 1
    assert fs2.db.table_rows("dfm_txn") == []  # never went in doubt
    assert fs1.linked_count() == 1
    assert system.host.db.table_rows("dlk_indoubt") == []


def test_all_readonly_transaction_has_no_phase2_at_all():
    system = _make(servers=("fs1", "fs2"))
    fs1, fs2 = system.dlfms["fs1"], system.dlfms["fs2"]
    commits_before = system.host.metrics.commits

    def go():
        session = system.session()
        yield from _touch_readonly(session, 1, "fs1")
        yield from _touch_readonly(session, 2, "fs2")
        yield from session.commit()

    system.run(go())
    assert system.host.metrics.readonly_votes == 2
    assert fs1.metrics.readonly_votes == 1
    assert fs2.metrics.readonly_votes == 1
    assert system.host.db.table_rows("dlk_indoubt") == []
    assert fs1.db.table_rows("dfm_txn") == []
    assert fs2.db.table_rows("dfm_txn") == []
    assert system.host.metrics.commits - commits_before == 1


def test_no_vote_aborts_already_prepared_participants():
    """Three participants fan out in parallel; fs3 is dead, so its
    prepare fails while fs1/fs2 may already have prepared — everyone
    must abort (§3.3)."""
    system = _make()

    def go():
        session = system.session()
        yield from _link(session, 1, "fs1")
        yield from _link(session, 2, "fs2")
        yield from _link(session, 3, "fs3")
        system.dlfms["fs3"].crash()
        system.dlfms["fs3"].restart()
        with pytest.raises(TransactionAborted) as err:
            yield from session.commit()
        assert err.value.reason == "prepare"

    system.run(go())
    for name in ("fs1", "fs2", "fs3"):
        assert system.dlfms[name].linked_count() == 0
        assert system.dlfms[name].db.table_rows("dfm_txn") == []
    assert system.host.db.table_rows("dlk_indoubt") == []
    assert system.host.metrics.prepare_failures == 1


def test_host_crash_between_parallel_prepares_leaves_only_indoubt():
    """The coordinator dies inside the scatter→gather window of phase 1:
    the in-flight prepares finish server-side, so every participant ends
    in doubt (a dfm_txn row, no open local transaction) and presumed
    abort mops up after restart."""
    plan = FaultPlan([FaultRule("twopc.fanout:prepare", "crash",
                                prob=1.0, max_fires=1)], name="t")
    system = _make(servers=("fs1", "fs2"),
                   injector=FaultInjector(plan))

    def go():
        session = system.session()
        yield from _link(session, 1, "fs1")
        yield from _link(session, 2, "fs2")
        with pytest.raises(TransactionAborted) as err:
            yield from session.commit()
        assert err.value.reason == "prepare"

    system.run(go())
    assert system.host.db.crashed
    system.sim.run(until=system.sim.now + 60.0)  # drain detached prepares
    assert system.sim.consume_failures() == []
    for name in ("fs1", "fs2"):
        dlfm = system.dlfms[name]
        # In doubt, never dangling: prepared (dfm_txn row) with no open
        # local transaction left behind.
        assert len(dlfm.db.table_rows("dfm_txn")) == 1
        assert dlfm.db.txns.active == []
    # Restart runs distributed recovery: no decision rows survived, so
    # presumed abort resolves both in-doubt participants.
    resolved = system.run(system.host.restart(), "host-restart")
    assert resolved == {"committed": 0, "aborted": 2}
    for name in ("fs1", "fs2"):
        assert system.dlfms[name].db.table_rows("dfm_txn") == []
        assert system.dlfms[name].linked_count() == 0


def test_indoubt_resolution_with_mixed_readonly_and_write_set():
    """Host dies in the phase-2 fan-out window: the write participant's
    decision row re-drives Commit after restart; the read-only voter was
    already released and needs nothing."""
    plan = FaultPlan([FaultRule("twopc.fanout:phase2", "crash",
                                prob=1.0, max_fires=1)], name="t")
    system = _make(servers=("fs1", "fs2"),
                   injector=FaultInjector(plan))

    def go():
        session = system.session()
        yield from _link(session, 1, "fs1")
        yield from _touch_readonly(session, 2, "fs2")
        # The decision is already durable when the crash hits phase 2,
        # so the failure surfaces as the crash itself, not an abort.
        with pytest.raises(CrashedError):
            yield from session.commit()

    system.run(go())
    assert system.host.db.crashed
    system.sim.run(until=system.sim.now + 60.0)
    system.sim.consume_failures()
    resolved = system.run(system.host.restart(), "host-restart")
    assert resolved["aborted"] == 0
    assert resolved["committed"] == 1  # fs1's decision row re-driven
    assert system.dlfms["fs1"].linked_count() == 1  # decision survived
    assert system.dlfms["fs2"].linked_count() == 0
    assert system.dlfms["fs2"].db.table_rows("dfm_txn") == []
    assert system.host.db.table_rows("dlk_indoubt") == []


def test_serial_and_scatter_coordinators_agree():
    """Same workload, both coordinator modes: identical durable state."""
    outcomes = {}
    for scatter in (False, True):
        system = _make(scatter_gather=scatter)

        def go():
            session = system.session()
            yield from _link(session, 1, "fs1")
            yield from _link(session, 2, "fs2")
            yield from _link(session, 3, "fs3")
            yield from session.commit()
            yield from _link(session, 4, "fs1", path="/s/f1")
            yield from session.rollback()

        system.run(go())
        outcomes[scatter] = (
            tuple(sorted((name, system.dlfms[name].linked_count())
                         for name in system.dlfms)),
            system.host.metrics.commits,
            system.host.metrics.rollbacks,
            system.host.db.table_rows("dlk_indoubt"),
        )
    assert outcomes[False] == outcomes[True]
    assert outcomes[True][0] == (("fs1", 1), ("fs2", 1), ("fs3", 1))


def test_decision_session_is_reused_across_sync_commits():
    """Synchronous phase 2 forgets decision rows through one cached
    session instead of opening a fresh one per transaction."""
    system = _make(servers=("fs1",))

    def go():
        session = system.session()
        yield from _link(session, 1, "fs1")
        yield from session.commit()
        first = session._decision_session
        assert first is not None
        yield from _link(session, 2, "fs1", path="/s/f1")
        yield from session.commit()
        assert session._decision_session is first
        return True

    assert system.run(go()) is True
    assert system.host.db.table_rows("dlk_indoubt") == []

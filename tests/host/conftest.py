"""Reuse the DLFM system fixtures."""

from tests.dlfm.conftest import media, system  # noqa: F401

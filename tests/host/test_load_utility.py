"""The LOAD utility: batched pieces, in-flight entries, crash resume (§4)."""

import pytest

from repro.dlff.filter import DLFM_ADMIN
from repro.dlfm import schema
from repro.host import DatalinkSpec, build_url
from repro.host.load import LoadUtility
from repro.system import System


@pytest.fixture
def loader_system():
    system = System(seed=31)

    def setup():
        yield from system.host.create_datalink_table(
            "assets", [("id", "INT"), ("name", "TEXT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=False)})
        for i in range(250):
            system.create_user_file("fs1", f"/load/f{i:04d}", owner="ops")

    system.run(setup())
    return system


def entries(n, start=0):
    return [({"id": i, "name": f"asset {i}"},
             build_url("fs1", f"/load/f{i:04d}"))
            for i in range(start, start + n)]


def host_rows(system):
    def go():
        session = system.host.db.session()
        result = yield from session.execute("SELECT COUNT(*) FROM assets")
        yield from session.commit()
        return result.scalar()
    return system.run(go())


def test_load_links_everything_in_pieces(loader_system):
    system = loader_system
    load = LoadUtility(system.host, "assets", "doc", entries(250),
                       piece_size=50)
    stats = system.run(load.run())
    assert stats.linked == 250
    assert stats.pieces == 5
    assert stats.rows_inserted == 250
    assert system.dlfms["fs1"].linked_count() == 250
    assert host_rows(system) == 250
    # after final commit: no in-flight entry left
    assert system.dlfms["fs1"].db.table_rows("dfm_txn") == []
    # files were taken over by the commit's phase 2
    node = system.servers["fs1"].fs.stat("/load/f0000")
    assert node.owner == DLFM_ADMIN


def test_inflight_entry_visible_between_pieces(loader_system):
    system = loader_system
    load = LoadUtility(system.host, "assets", "doc", entries(100),
                       piece_size=40)

    def partial():
        yield from load._load_piece()
        yield from load._load_piece()

    system.run(partial())
    rows = system.dlfms["fs1"].db.table_rows("dfm_txn")
    assert len(rows) == 1
    assert rows[0][2] == schema.TXN_INFLIGHT
    # pieces are durable at the DLFM even though the load has not finished
    assert system.dlfms["fs1"].linked_count() == 80
    # finish normally
    def finish():
        yield from load._load_piece()
        yield from load._finish()
    system.run(finish())
    assert system.dlfms["fs1"].db.table_rows("dfm_txn") == []


def test_bounded_log_with_pieces(loader_system):
    """A big load with a small DLFM log works because of the pieces."""
    system = loader_system
    system.dlfms["fs1"].db.wal.capacity = 300
    load = LoadUtility(system.host, "assets", "doc", entries(250),
                       piece_size=25)
    stats = system.run(load.run())
    assert stats.linked == 250
    assert system.dlfms["fs1"].db.wal.metrics.log_fulls == 0


def test_crash_mid_load_then_resume(loader_system):
    system = loader_system
    dlfm = system.dlfms["fs1"]
    load = LoadUtility(system.host, "assets", "doc", entries(200),
                       piece_size=50)

    def first_half():
        yield from load._load_piece()
        yield from load._load_piece()

    system.run(first_half())
    assert dlfm.linked_count() == 100
    dlfm.crash()
    dlfm.restart()
    # completed pieces survived the crash (they were locally committed)
    assert dlfm.linked_count() == 100
    rows = dlfm.db.table_rows("dfm_txn")
    assert rows and rows[0][2] == schema.TXN_INFLIGHT

    stats = system.run(load.resume())
    assert stats.resumed is True
    assert dlfm.linked_count() == 200
    assert host_rows(system) == 200
    assert dlfm.db.table_rows("dfm_txn") == []


def test_resume_skips_already_linked(loader_system):
    """Re-running a whole load over partially ingested data just skips."""
    system = loader_system
    first = LoadUtility(system.host, "assets", "doc", entries(60),
                        piece_size=30)
    system.run(first.run())
    again = LoadUtility(system.host, "assets", "doc", entries(120),
                        piece_size=30)
    stats = system.run(again.run())
    assert stats.skipped == 60
    assert stats.linked == 60
    assert system.dlfms["fs1"].linked_count() == 120
    assert host_rows(system) == 120


def test_abort_of_inflight_keeps_pieces(loader_system):
    """Phase-2 abort for an in-flight utility does NOT undo pieces."""
    from repro.dlfm import api
    from repro.kernel import rpc
    system = loader_system
    dlfm = system.dlfms["fs1"]
    load = LoadUtility(system.host, "assets", "doc", entries(50),
                       piece_size=25)

    def partial_then_abort():
        yield from load._load_piece()
        chan = dlfm.connect()
        result = yield from rpc.call(
            system.sim, chan,
            api.Abort(system.host.dbid, load._utility_txn.id))
        chan.close()
        return result

    result = system.run(partial_then_abort())
    assert result["outcome"] == "in-flight-kept"
    assert dlfm.linked_count() == 25


def test_non_datalink_column_rejected(loader_system):
    from repro.errors import DataLinkError
    with pytest.raises(DataLinkError):
        LoadUtility(loader_system.host, "assets", "name", entries(1))


# -- batched pieces (HostConfig.batch_datalinks) ------------------------------

@pytest.fixture
def batched_system():
    from repro.host import HostConfig
    system = System(seed=31,
                    host_config=HostConfig(batch_datalinks=True))

    def setup():
        yield from system.host.create_datalink_table(
            "assets", [("id", "INT"), ("name", "TEXT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=False)})
        for i in range(250):
            system.create_user_file("fs1", f"/load/f{i:04d}", owner="ops")

    system.run(setup())
    return system


def test_batched_load_links_everything(batched_system, loader_system):
    """The batched load reaches the same state as the serial one with
    one Batch envelope per (piece, server) instead of one per file."""
    batched, serial = batched_system, loader_system
    stats, rpcs = {}, {}
    for system in (batched, serial):
        before = system.dlfms["fs1"].metrics.rpcs
        load = LoadUtility(system.host, "assets", "doc", entries(250),
                           piece_size=50)
        stats[system] = system.run(load.run())
        rpcs[system] = system.dlfms["fs1"].metrics.rpcs - before
    assert stats[batched].linked == stats[serial].linked == 250
    assert stats[batched].batches == 5
    assert stats[serial].batches == 0
    assert (batched.dlfms["fs1"].linked_count()
            == serial.dlfms["fs1"].linked_count() == 250)
    assert host_rows(batched) == host_rows(serial) == 250
    assert batched.dlfms["fs1"].db.table_rows("dfm_txn") == []
    # 5x(Batch + CommitPiece) + Prepare + Commit = 12 envelopes, vs
    # BeginTxn + 250 links + 5 CommitPiece + Prepare + Commit = 258.
    assert rpcs[batched] == 12
    assert rpcs[serial] == 258


def test_batched_resume_falls_back_to_per_file_skips(batched_system):
    """A batch holding an already-linked file fails whole; the loader
    retries that server's piece file-by-file so skips are counted
    exactly like the slow path."""
    system = batched_system
    first = LoadUtility(system.host, "assets", "doc", entries(60),
                        piece_size=30)
    system.run(first.run())
    again = LoadUtility(system.host, "assets", "doc", entries(120),
                        piece_size=30)
    stats = system.run(again.run())
    assert stats.skipped == 60
    assert stats.linked == 60
    assert stats.batches == 2      # the two all-fresh pieces
    assert system.dlfms["fs1"].linked_count() == 120
    assert host_rows(system) == 120


def test_batched_crash_mid_load_then_resume(batched_system):
    system = batched_system
    dlfm = system.dlfms["fs1"]
    load = LoadUtility(system.host, "assets", "doc", entries(200),
                       piece_size=50)

    def first_half():
        yield from load._load_piece()
        yield from load._load_piece()

    system.run(first_half())
    assert dlfm.linked_count() == 100
    dlfm.crash()
    dlfm.restart()
    assert dlfm.linked_count() == 100

    stats = system.run(load.resume())
    assert stats.resumed is True
    assert stats.linked == 200
    assert dlfm.linked_count() == 200
    assert host_rows(system) == 200
    assert dlfm.db.table_rows("dfm_txn") == []


# -- bulk index maintenance (HostConfig.bulk_load_indexes / bulk=) ------------

def index_setup(system):
    """Index the target table and give it stats so SELECTs bind to it."""
    def go():
        session = system.host.db.session()
        yield from session.execute(
            "CREATE INDEX assets_id ON assets (id)")
        yield from session.execute(
            "CREATE INDEX assets_doc ON assets (doc)")
        yield from session.commit()
    system.run(go())
    system.host.db.set_table_stats(
        "assets", card=1_000_000,
        colcard={"id": 1_000_000, "doc": 1_000_000})


def select_by_id(system, row_id):
    def go():
        session = system.host.db.session()
        result = yield from session.execute(
            "SELECT id, name FROM assets WHERE id = ?", (row_id,))
        yield from session.commit()
        return result.rows
    return system.run(go())


def test_bulk_load_equals_per_row_load(loader_system):
    """bulk=True must land the exact same durable state as the per-row
    path — rows, links, and (after the build) index contents."""
    system = loader_system
    index_setup(system)
    host = system.host
    load = LoadUtility(host, "assets", "doc", entries(200),
                       piece_size=50, bulk=True)
    stats = system.run(load.run())
    assert stats.linked == 200
    assert stats.rows_inserted == 200
    assert stats.bulk_merged == 400        # 200 rows × 2 indexes
    assert len(host.db.btrees["assets_id"]) == 200
    assert len(host.db.btrees["assets_doc"]) == 200
    assert not host.db.in_bulk_load("assets")
    assert host_rows(system) == 200
    assert select_by_id(system, 123) == [(123, "asset 123")]


def test_bulk_defers_entries_between_pieces(loader_system):
    system = loader_system
    index_setup(system)
    host = system.host
    load = LoadUtility(host, "assets", "doc", entries(100),
                       piece_size=40, bulk=True)

    def partial():
        host.db.begin_bulk_load("assets")    # what run() does up front
        yield from load._load_piece()
        yield from load._load_piece()

    system.run(partial())
    # 80 rows are committed in the heap but no index entry exists yet.
    assert host_rows(system) == 80
    assert len(host.db.btrees["assets_id"]) == 0
    assert host.db.in_bulk_load("assets")

    def finish():
        yield from load._load_piece()
        load.stats.bulk_merged = yield from host.db.end_bulk_load("assets")
        yield from load._finish()

    system.run(finish())
    assert load.stats.bulk_merged == 200
    assert len(host.db.btrees["assets_id"]) == 100
    assert select_by_id(system, 99) == [(99, "asset 99")]


def test_bulk_flag_defaults_from_host_config():
    from repro.host import HostConfig
    system = System(seed=31,
                    host_config=HostConfig(bulk_load_indexes=True))

    def setup():
        yield from system.host.create_datalink_table(
            "assets", [("id", "INT"), ("name", "TEXT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=False)})
        for i in range(40):
            system.create_user_file("fs1", f"/load/f{i:04d}", owner="ops")

    system.run(setup())
    index_setup(system)
    load = LoadUtility(system.host, "assets", "doc", entries(40),
                       piece_size=20)
    assert load.bulk is True
    stats = system.run(load.run())
    assert stats.bulk_merged == 80
    assert len(system.host.db.btrees["assets_id"]) == 40


def test_bulk_load_failed_piece_still_merges_committed_rows(loader_system):
    """A piece that dies mid-load must not leave the earlier committed
    pieces index-invisible: the finally-path merge folds them in, and
    the failed piece's own rows were undone (deferred entries dropped)."""
    system = loader_system
    index_setup(system)
    host = system.host
    bad = entries(80)
    # Poison one row of the third piece with an unknown server.
    bad[65] = (bad[65][0], "dlfs://nowhere/load/f0065")
    load = LoadUtility(host, "assets", "doc", bad, piece_size=30,
                       bulk=True)
    with pytest.raises(Exception):
        system.run(load.run())
    # Pieces 1+2 (60 rows) are committed AND visible through the index.
    assert host_rows(system) == 60
    assert len(host.db.btrees["assets_id"]) == 60
    assert not host.db.in_bulk_load("assets")
    assert select_by_id(system, 42) == [(42, "asset 42")]
    assert select_by_id(system, 65) == []


def test_bulk_crash_mid_load_rebuilds_and_resumes(loader_system):
    """Host crash mid-bulk-load: the volatile deferral dies with it,
    restart rebuilds indexes from durable state (committed pieces show),
    and resume() re-enters bulk mode and finishes the job."""
    system = loader_system
    index_setup(system)
    host = system.host
    load = LoadUtility(host, "assets", "doc", entries(100),
                       piece_size=25, bulk=True)

    def first_half():
        host.db.begin_bulk_load("assets")    # what run() does up front
        yield from load._load_piece()
        yield from load._load_piece()

    system.run(first_half())
    assert len(host.db.btrees["assets_id"]) == 0
    host.db.crash()
    host.db.restart()
    # The 50 committed rows came back index-visible via restart rebuild.
    assert not host.db.in_bulk_load("assets")
    assert len(host.db.btrees["assets_id"]) == 50

    stats = system.run(load.resume())
    assert stats.resumed is True
    assert host_rows(system) == 100
    assert len(host.db.btrees["assets_id"]) == 100
    assert select_by_id(system, 77) == [(77, "asset 77")]

"""Coordinated backup / point-in-time restore / reconcile (§3.4, E10)."""


from repro.dlff.filter import DLFM_ADMIN

from tests.dlfm.conftest import insert_clip


def count_clips(media):
    def go():
        session = media.session()
        result = yield from session.execute("SELECT COUNT(*) FROM clips")
        yield from session.commit()
        return result.scalar()
    return media.run(go())


def test_backup_waits_for_pending_archives(media):
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from insert_clip(session, 1)
        yield from session.commit()
        # backup immediately: copies are still pending — the utility must
        # drive them with priority before declaring success (§3.4)
        backup_id = yield from media.backup()
        return backup_id

    backup_id = media.run(go())
    assert media.archive.copy_count() == 2
    assert media.host.backups[backup_id]["archived"]["fs1"] == 2
    # backup cycle recorded at the DLFM
    assert len(media.dlfms["fs1"].db.table_rows("dfm_backup")) == 1


def test_restore_resurrects_unlinked_file(media):
    """Linked at backup, unlinked + deleted afterwards → restore brings
    the database row AND the file back (from the archive server)."""
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
        backup_id = yield from media.backup()
        # after the backup: remove the row, unlink the file, delete it
        yield from session.execute("DELETE FROM clips WHERE id = 0")
        yield from session.commit()
        yield from media.filtered_fs("fs1").delete("/v/clip0.mpg", "alice")
        assert not media.servers["fs1"].fs.exists("/v/clip0.mpg")
        result = yield from media.restore(backup_id)
        return result

    result = media.run(go())
    assert result["fs1"]["restored"] == 1
    assert count_clips(media) == 1
    node = media.servers["fs1"].fs.stat("/v/clip0.mpg")
    assert node.owner == DLFM_ADMIN
    assert node.content.startswith("VIDEO-0")
    assert media.dlfms["fs1"].linked_count() == 1


def test_restore_releases_files_linked_after_backup(media):
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
        backup_id = yield from media.backup()
        yield from insert_clip(session, 1)  # linked after the backup
        yield from session.commit()
        result = yield from media.restore(backup_id)
        return result

    result = media.run(go())
    assert result["fs1"]["released"] == 1
    assert count_clips(media) == 1
    # clip1 is free again
    assert media.servers["fs1"].fs.stat("/v/clip1.mpg").owner == "alice"
    assert media.dlfms["fs1"].linked_count() == 1


def test_restore_is_point_in_time_for_plain_data_too(media):
    def go():
        session = media.session()
        yield from session.execute(
            "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
            (1, "before", None))
        yield from session.commit()
        backup_id = yield from media.backup()
        yield from session.execute(
            "UPDATE clips SET title = 'after' WHERE id = 1")
        yield from session.commit()
        yield from media.restore(backup_id)
        row = yield from session.session.query_one(
            "SELECT title FROM clips WHERE id = 1")
        yield from session.session.commit()
        return row

    assert media.run(go()) == ("before",)


def test_same_filename_different_content_versions(media):
    """The recovery-id point (§3): the same name linked twice with
    different content restores to the RIGHT version."""
    def go():
        fs = media.servers["fs1"].fs
        session = media.session()
        yield from insert_clip(session, 0)  # content VIDEO-0...
        yield from session.commit()
        backup1 = yield from media.backup()  # version 1 archived
        # unlink, replace content, relink
        yield from session.execute("DELETE FROM clips WHERE id = 0")
        yield from session.commit()
        yield from media.filtered_fs("fs1").delete("/v/clip0.mpg", "alice")
        media.create_user_file("fs1", "/v/clip0.mpg", owner="alice",
                               content="SECOND-VERSION")
        yield from insert_clip(session, 0)
        yield from session.commit()
        yield from media.backup()
        # destroy and restore to backup1 → must get version 1 content
        yield from session.execute("DELETE FROM clips WHERE id = 0")
        yield from session.commit()
        yield from media.filtered_fs("fs1").delete("/v/clip0.mpg", "alice")
        yield from media.restore(backup1)
        return fs.stat("/v/clip0.mpg").content

    content = media.run(go())
    assert content.startswith("VIDEO-0")


def test_reconcile_fixes_orphaned_dlfm_entry(media):
    """Host restored to before a link → DLFM thinks linked, host doesn't.
    (Covered by restore itself, so here we manufacture the skew directly.)"""
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
        # manufacture skew: host forgets the row without unlinking
        plain = media.host.db.session()
        yield from plain.execute("DELETE FROM clips WHERE id = 0")
        yield from plain.commit()
        result = yield from media.reconcile()
        return result

    result = media.run(go())
    assert result["fs1"]["removed"] == 1
    assert media.dlfms["fs1"].linked_count() == 0
    assert media.servers["fs1"].fs.stat("/v/clip0.mpg").owner == "alice"


def test_reconcile_fixes_missing_dlfm_entry(media):
    """Host references a file the DLFM has no linked entry for."""
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
        # manufacture skew: wipe the DLFM entry behind everyone's back
        dlfm_session = media.dlfms["fs1"].db.session()
        yield from dlfm_session.execute(
            "DELETE FROM dfm_file WHERE filename = ?", ("/v/clip0.mpg",))
        yield from dlfm_session.commit()
        result = yield from media.reconcile()
        return result

    result = media.run(go())
    assert result["fs1"]["relinked"] == 1
    assert media.dlfms["fs1"].linked_count() == 1


def test_reconcile_nulls_dangling_host_reference(media):
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
        # file disappears (e.g. disk damage) and DLFM metadata wiped
        media.servers["fs1"].fs.delete("/v/clip0.mpg", "root")
        dlfm_session = media.dlfms["fs1"].db.session()
        yield from dlfm_session.execute(
            "DELETE FROM dfm_file WHERE filename = ?", ("/v/clip0.mpg",))
        yield from dlfm_session.commit()
        result = yield from media.reconcile()
        session2 = media.session()
        row = yield from session2.session.query_one(
            "SELECT video FROM clips WHERE id = 0")
        yield from session2.session.commit()
        return result, row

    result, row = media.run(go())
    assert result["fs1"]["nulled"] == 1
    assert row == (None,)


def test_reconcile_clean_system_is_noop(media):
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
        return (yield from media.reconcile())

    result = media.run(go())
    assert result["fs1"] == {"relinked": 0, "removed": 0, "dangling": [],
                             "conflicts": [], "nulled": 0}

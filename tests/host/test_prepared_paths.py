"""Hot host/DLFM code paths run as parameterized, cache-hitting SQL.

The PR's conversion work: datalink INSERT/UPDATE rewriting, the LOAD
upsert trio, reconcile fixups and daemon sweeps must produce SQL whose
text depends only on statement SHAPE (markers, never values), so the
second execution of the same shape is a plan-cache hit.
"""

from tests.dlfm.conftest import insert_clip, url


def test_datalink_insert_shape_is_cached(media):
    """Two INSERTs through the datalink rewriter: the rebuilt text is
    identical (the recovery id travels as a parameter, not a literal),
    so the second one binds nothing new on the host database."""
    host_db = media.host.db

    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
        binds_before = host_db.metrics.plan_binds
        hits_before = host_db.metrics.plan_hits
        yield from insert_clip(session, 1)
        yield from session.commit()
        return (host_db.metrics.plan_binds - binds_before,
                host_db.metrics.plan_hits - hits_before)

    new_binds, new_hits = media.run(go())
    assert new_binds == 0
    assert new_hits >= 1


def test_datalink_update_shape_is_cached(media):
    host_db = media.host.db

    def go():
        session = media.session()
        for i in range(3):
            yield from insert_clip(session, i)
        yield from session.commit()
        yield from session.execute(
            "UPDATE clips SET video = ? WHERE id = ?", (url(3), 0))
        yield from session.commit()
        binds_before = host_db.metrics.plan_binds
        yield from session.execute(
            "UPDATE clips SET video = ? WHERE id = ?", (url(4), 1))
        yield from session.commit()
        return host_db.metrics.plan_binds - binds_before

    assert media.run(go()) == 0


def test_dlfm_forward_path_hits_plan_cache(media):
    """The DLFM-side link path (dfm_file probes/inserts) is fully
    parameterized: a second link transaction binds no new plans on the
    DLFM local database either."""
    dlfm_db = media.dlfms["fs1"].db

    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
        binds_before = dlfm_db.metrics.plan_binds
        yield from insert_clip(session, 1)
        yield from session.commit()
        return dlfm_db.metrics.plan_binds - binds_before

    assert media.run(go()) == 0

"""Unit tests for the host's small helpers: ids, urls, render, tokens."""

import pytest

from repro.dlff.filter import AccessToken
from repro.errors import DataLinkError
from repro.host.datalink import (DatalinkSpec, build_url, parse_url,
                                 shadow_column)
from repro.host.ids import RecoveryIdGenerator
from repro.host.render import count_params, render_expr, render_literal
from repro.kernel import Simulator
from repro.sql.parser import parse


# -- recovery ids -------------------------------------------------------------

def test_recovery_ids_monotonic_within_time():
    sim = Simulator()
    gen = RecoveryIdGenerator(sim, "db1")
    ids = [gen.next() for _ in range(100)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 100


def test_recovery_ids_monotonic_across_time():
    sim = Simulator()
    gen = RecoveryIdGenerator(sim, "db1")
    early = gen.next()
    sim.after(1000.0, lambda: None)
    sim.run()
    late = gen.next()
    assert early < late


def test_recovery_ids_carry_dbid():
    sim = Simulator()
    assert RecoveryIdGenerator(sim, "main").next().startswith("main-")


# -- URLs ----------------------------------------------------------------------

def test_url_round_trip():
    url = build_url("fs1", "/a/b/c.mpg")
    assert url == "dlfs://fs1/a/b/c.mpg"
    assert parse_url(url) == ("fs1", "/a/b/c.mpg")


def test_url_requires_absolute_path():
    with pytest.raises(DataLinkError):
        build_url("fs1", "relative.mpg")


def test_parse_rejects_other_schemes():
    with pytest.raises(DataLinkError):
        parse_url("http://fs1/a")


def test_parse_rejects_missing_path():
    with pytest.raises(DataLinkError):
        parse_url("dlfs://serveronly")


def test_shadow_column_name():
    assert shadow_column("video") == "video__recid"


def test_datalink_spec_validation():
    with pytest.raises(DataLinkError):
        DatalinkSpec(access_control="sideways")
    assert DatalinkSpec(recovery=True).recovery_flag == "yes"
    assert DatalinkSpec(recovery=False).recovery_flag == "no"


# -- SQL rendering ---------------------------------------------------------------

def roundtrip_where(sql_where):
    stmt = parse(f"SELECT * FROM t WHERE {sql_where}")
    return render_expr(stmt.where)


def test_render_comparison():
    assert roundtrip_where("a = 5") == "(a = 5)"


def test_render_preserves_params():
    rendered = roundtrip_where("a = ? AND b < ?")
    assert rendered.count("?") == 2


def test_render_complex_expression_reparses():
    original = ("a = 1 AND (b > 2 OR c IS NULL) AND d IN (1, 2) "
                "AND e BETWEEN 0 AND 9 AND NOT f <> 'x''y'")
    rendered = roundtrip_where(original)
    stmt = parse(f"SELECT * FROM t WHERE {rendered}")
    assert render_expr(stmt.where) == roundtrip_where(rendered)


def test_render_literals():
    assert render_literal(None) == "NULL"
    assert render_literal(True) == "TRUE"
    assert render_literal(False) == "FALSE"
    assert render_literal("o'brien") == "'o''brien'"
    assert render_literal(7) == "7"


def test_count_params():
    stmt = parse("SELECT * FROM t WHERE a = ? AND b BETWEEN ? AND ? "
                 "AND c IN (?, 5)")
    assert count_params(stmt.where) == 4


# -- access tokens ------------------------------------------------------------------

def test_token_sign_and_verify():
    token = AccessToken.sign("secret", "/a", 100.0)
    assert token.valid_for("secret", "/a", now=50.0)
    assert not token.valid_for("secret", "/a", now=150.0)   # expired
    assert not token.valid_for("other", "/a", now=50.0)     # wrong secret
    assert not token.valid_for("secret", "/b", now=50.0)    # wrong path


def test_token_signature_is_deterministic():
    a = AccessToken.sign("s", "/a", 10.0)
    b = AccessToken.sign("s", "/a", 10.0)
    assert a == b


def test_tampered_expiry_invalidates_signature():
    token = AccessToken.sign("s", "/a", 10.0)
    forged = AccessToken("/a", 10_000.0, token.signature)
    assert not forged.valid_for("s", "/a", now=50.0)

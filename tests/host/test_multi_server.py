"""Transactions spanning multiple DLFMs (multiple file servers).

The paper: "when multiple DLFM's are involved in a transaction, if one
of the DLFMs fails to prepare the transaction, the host database sends
Abort request to all the remaining DLFMs, even though they may have
prepared successfully."
"""

import pytest

from repro.dlff.filter import DLFM_ADMIN
from repro.errors import LinkError, TransactionAborted
from repro.host import DatalinkSpec, build_url
from repro.system import System


@pytest.fixture
def twin():
    system = System(seed=41, servers=("fs1", "fs2"))

    def setup():
        yield from system.host.create_datalink_table(
            "spread", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=True)})
        for server in ("fs1", "fs2"):
            for i in range(4):
                system.create_user_file(server, f"/s/f{i}", owner="u")

    system.run(setup())
    return system


def test_one_transaction_two_servers(twin):
    def go():
        session = twin.session()
        yield from session.execute(
            "INSERT INTO spread (id, doc) VALUES (?, ?)",
            (1, build_url("fs1", "/s/f0")))
        yield from session.execute(
            "INSERT INTO spread (id, doc) VALUES (?, ?)",
            (2, build_url("fs2", "/s/f0")))
        assert sorted(session.participants) == ["fs1", "fs2"]
        yield from session.commit()

    twin.run(go())
    assert twin.dlfms["fs1"].linked_count() == 1
    assert twin.dlfms["fs2"].linked_count() == 1
    for server in ("fs1", "fs2"):
        assert twin.servers[server].fs.stat("/s/f0").owner == DLFM_ADMIN


def test_rollback_spans_both_servers(twin):
    def go():
        session = twin.session()
        yield from session.execute(
            "INSERT INTO spread (id, doc) VALUES (?, ?)",
            (1, build_url("fs1", "/s/f1")))
        yield from session.execute(
            "INSERT INTO spread (id, doc) VALUES (?, ?)",
            (2, build_url("fs2", "/s/f1")))
        yield from session.rollback()

    twin.run(go())
    assert twin.dlfms["fs1"].linked_count() == 0
    assert twin.dlfms["fs2"].linked_count() == 0


def test_prepare_failure_aborts_everyone(twin):
    """fs2 dies before commit: fs1 prepared successfully but must abort."""
    def go():
        session = twin.session()
        yield from session.execute(
            "INSERT INTO spread (id, doc) VALUES (?, ?)",
            (1, build_url("fs1", "/s/f2")))
        yield from session.execute(
            "INSERT INTO spread (id, doc) VALUES (?, ?)",
            (2, build_url("fs2", "/s/f2")))
        twin.dlfms["fs2"].crash()
        twin.dlfms["fs2"].restart()
        with pytest.raises(TransactionAborted) as err:
            yield from session.commit()
        assert err.value.reason == "prepare"

    twin.run(go())
    assert twin.dlfms["fs1"].linked_count() == 0
    assert twin.dlfms["fs2"].linked_count() == 0
    # nothing indoubt anywhere
    assert twin.dlfms["fs1"].db.table_rows("dfm_txn") == []
    assert twin.host.db.table_rows("dlk_indoubt") == []


def test_statement_error_on_second_server_backs_out_first(twin):
    def go():
        yield from twin.host.create_datalink_table(
            "pairs", [("id", "INT"), ("a", "TEXT"), ("b", "TEXT")],
            {"a": DatalinkSpec(), "b": DatalinkSpec()})
        session = twin.session()
        with pytest.raises(LinkError):
            yield from session.execute(
                "INSERT INTO pairs (id, a, b) VALUES (?, ?, ?)",
                (1, build_url("fs1", "/s/f3"),
                 build_url("fs2", "/s/missing")))
        yield from session.commit()

    twin.run(go())
    assert twin.dlfms["fs1"].linked_count() == 0
    assert twin.dlfms["fs2"].linked_count() == 0


def test_backup_and_restore_cover_all_servers(twin):
    def go():
        session = twin.session()
        yield from session.execute(
            "INSERT INTO spread (id, doc) VALUES (?, ?)",
            (1, build_url("fs1", "/s/f3")))
        yield from session.execute(
            "INSERT INTO spread (id, doc) VALUES (?, ?)",
            (2, build_url("fs2", "/s/f3")))
        yield from session.commit()
        backup_id = yield from twin.backup()
        # damage both servers' state
        yield from session.execute("DELETE FROM spread WHERE id = 1")
        yield from session.execute("DELETE FROM spread WHERE id = 2")
        yield from session.commit()
        result = yield from twin.restore(backup_id)
        return result

    result = twin.run(go())
    assert result["fs1"]["restored"] == 1
    assert result["fs2"]["restored"] == 1
    assert twin.dlfms["fs1"].linked_count() == 1
    assert twin.dlfms["fs2"].linked_count() == 1


def test_reconcile_covers_all_servers(twin):
    def go():
        session = twin.session()
        yield from session.execute(
            "INSERT INTO spread (id, doc) VALUES (?, ?)",
            (1, build_url("fs2", "/s/f1")))
        yield from session.commit()
        # wipe fs2's metadata behind everyone's back
        dlfm_session = twin.dlfms["fs2"].db.session()
        yield from dlfm_session.execute("DELETE FROM dfm_file")
        yield from dlfm_session.commit()
        return (yield from twin.reconcile())

    result = twin.run(go())
    assert result["fs2"]["relinked"] == 1
    assert result["fs1"] == {"relinked": 0, "removed": 0, "dangling": [],
                             "conflicts": [], "nulled": 0}

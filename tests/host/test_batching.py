"""RPC batching with prepare piggyback (``HostConfig.batch_datalinks``).

The fast path buffers a statement's datalink ops per server and ships
them at commit as ONE ``api.Batch`` with Prepare piggybacked, so an
N-link transaction costs 2 envelopes (Batch + Commit) instead of N+3
(BeginTxn + N links + Prepare + Commit). The flag is off by default;
these tests pin the exact envelope counts and the failure semantics.
"""

import pytest

from repro.dlfm import api
from repro.errors import DuplicateKeyError, LinkError, TransactionAborted
from repro.host import DatalinkSpec, HostConfig, build_url
from repro.kernel import rpc
from repro.system import System


def build(batch: bool) -> System:
    system = System(seed=7,
                    host_config=HostConfig(batch_datalinks=batch))

    def setup():
        for i in range(8):
            system.create_user_file("fs1", f"/v/clip{i}.mpg",
                                    owner="alice", content=f"V{i}" * 20)
        yield from system.host.create_datalink_table(
            "clips", [("id", "INT"), ("title", "TEXT"), ("video", "TEXT")],
            {"video": DatalinkSpec(access_control="full", recovery=True)})

    system.run(setup())
    return system


def url(i: int) -> str:
    return build_url("fs1", f"/v/clip{i}.mpg")


def link_n(system: System, n: int, first_id: int = 0):
    """Generator: one transaction linking clips first_id..first_id+n-1."""
    session = system.session()
    for i in range(first_id, first_id + n):
        yield from session.execute(
            "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
            (i, f"clip {i}", url(i)))
    yield from session.commit()


# -- exact envelope counts ----------------------------------------------------

def test_envelope_count_without_batching():
    """Classic path: BeginTxn + 5 links + Prepare + Commit = 8."""
    system = build(batch=False)
    dlfm = system.dlfms["fs1"]
    before = dlfm.metrics.rpcs
    system.run(link_n(system, 5))
    assert dlfm.metrics.rpcs - before == 8
    assert dlfm.metrics.batches == 0
    assert dlfm.linked_count() == 5


def test_envelope_count_with_batching():
    """Fast path: Batch(5 ops, prepare piggyback) + Commit = 2."""
    system = build(batch=True)
    dlfm = system.dlfms["fs1"]
    before = dlfm.metrics.rpcs
    system.run(link_n(system, 5))
    assert dlfm.metrics.rpcs - before == 2
    assert dlfm.metrics.batches == 1
    assert dlfm.metrics.batched_ops == 5
    assert dlfm.linked_count() == 5
    # Same host-side accounting as the slow path.
    assert system.host.metrics.links_sent == 5
    assert system.host.metrics.batches_sent == 1


def test_batched_and_unbatched_reach_identical_state():
    fast, slow = build(batch=True), build(batch=False)
    for system in (fast, slow):
        system.run(link_n(system, 4))
    assert (fast.dlfms["fs1"].db.table_rows("dfm_file")
            == slow.dlfms["fs1"].db.table_rows("dfm_file"))
    assert fast.host.db.table_rows("clips") == slow.host.db.table_rows(
        "clips")


# -- failure semantics --------------------------------------------------------

def test_commit_time_batch_failure_aborts_transaction():
    """A bad link surfaces at COMMIT (flush), not at the statement; the
    whole transaction aborts and nothing is linked anywhere."""
    system = build(batch=True)
    dlfm = system.dlfms["fs1"]

    def go():
        session = system.session()
        yield from session.execute(
            "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
            (1, "good", url(0)))
        # The statement succeeds — the missing file is only discovered
        # when the buffered Batch reaches the DLFM at commit.
        yield from session.execute(
            "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
            (2, "bad", build_url("fs1", "/v/missing.mpg")))
        with pytest.raises(TransactionAborted) as err:
            yield from session.commit()
        assert err.value.reason == "prepare"

    system.run(go())
    assert dlfm.linked_count() == 0
    assert system.host.db.table_rows("clips") == []
    assert dlfm.db.table_rows("dfm_txn") == []
    # The session is reusable: the next transaction goes through.
    system.run(link_n(system, 1))
    assert dlfm.linked_count() == 1


def test_statement_failure_sends_nothing():
    """A failing host statement buffers nothing; rollback of earlier
    buffered ops costs zero DLFM envelopes — they never left the host."""
    system = build(batch=True)
    dlfm = system.dlfms["fs1"]
    before = dlfm.metrics.rpcs

    def go():
        plain = system.host.db.session()
        yield from plain.execute(
            "CREATE UNIQUE INDEX clips_id ON clips (id)")
        yield from plain.commit()
        session = system.session()
        yield from session.execute(
            "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
            (1, "first", url(0)))
        with pytest.raises(DuplicateKeyError):
            yield from session.execute(
                "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
                (1, "dup", url(1)))
        yield from session.rollback()

    system.run(go())
    assert dlfm.metrics.rpcs == before   # not a single envelope
    assert dlfm.linked_count() == 0
    assert system.host.db.table_rows("clips") == []


def test_unlink_relink_order_preserved_in_batch():
    """UPDATE a→b then b→a inside one transaction: the batch carries
    [unlink a, link b, unlink b, link a] in order and lands on a."""
    system = build(batch=True)
    dlfm = system.dlfms["fs1"]
    system.run(link_n(system, 1))

    def go():
        session = system.session()
        yield from session.execute(
            "UPDATE clips SET video = ? WHERE id = ?", (url(1), 0))
        yield from session.execute(
            "UPDATE clips SET video = ? WHERE id = ?", (url(0), 0))
        yield from session.commit()

    system.run(go())
    assert dlfm.linked_count() == 1
    state_at = dlfm.db.catalog.tables["dfm_file"].position("state")
    name_at = dlfm.db.catalog.tables["dfm_file"].position("filename")
    linked = [row[name_at] for row in dlfm.db.table_rows("dfm_file")
              if row[state_at] == "linked"]
    assert linked == ["/v/clip0.mpg"]


# -- the agent's in-batch compensation ---------------------------------------

def test_batch_compensates_completed_ops_on_failure():
    """Direct protocol: a Batch of [good, bad] leaves the local
    transaction exactly as before; a following [good] Batch succeeds in
    the same transaction."""
    system = build(batch=True)
    dlfm = system.dlfms["fs1"]
    dbid = system.host.dbid
    grp_id = system.host.group_ids[("clips", "video")]

    def go():
        chan = dlfm.connect()
        good = api.LinkFile(dbid, 777, "/v/clip0.mpg", grp_id, "r-001")
        bad = api.LinkFile(dbid, 777, "/v/missing.mpg", grp_id, "r-002")
        with pytest.raises(LinkError):
            yield from rpc.call(system.sim, chan,
                                api.Batch(dbid, 777, (good, bad)))
        # good was compensated: nothing is linked mid-transaction.
        yield from rpc.call(system.sim, chan,
                            api.Batch(dbid, 777, (good,), prepare=True))
        yield from rpc.call(system.sim, chan, api.Commit(dbid, 777))
        chan.close()

    system.run(go())
    assert dlfm.linked_count() == 1
    assert dlfm.db.table_rows("dfm_txn") == []

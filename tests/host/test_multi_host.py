"""Two host databases sharing one DLFM (the paper: DLFM "work[s]
cooperatively with host database server(s)").

Transaction ids and group ids are only unique per host, so every piece
of DLFM metadata must be scoped by dbid — these tests collide them on
purpose.
"""

import pytest

from repro.errors import LinkError
from repro.host import DatalinkSpec, HostDB, build_url
from repro.system import System


@pytest.fixture
def shared():
    """One System plus a SECOND host database attached to the same DLFM."""
    system = System(seed=83)
    other = HostDB(system.sim, "otherdb", system.dlfms)

    def setup():
        for host in (system.host, other):
            yield from host.create_datalink_table(
                "t", [("id", "INT"), ("doc", "TEXT")],
                {"doc": DatalinkSpec(recovery=False)})
        for i in range(6):
            system.create_user_file("fs1", f"/mh/f{i}", owner="u")

    system.run(setup())
    return system, other


def test_group_ids_collide_but_are_scoped_by_dbid(shared):
    system, other = shared
    # both hosts allocated grp_id=1 for t.doc — the unique index is
    # (dbid, grp_id), so registration succeeded for both
    groups = system.dlfms["fs1"].db.table_rows("dfm_group")
    assert sorted((g[1], g[0]) for g in groups) == [
        ("hostdb", 1), ("otherdb", 1)]


def test_both_hosts_link_files_concurrently(shared):
    system, other = shared

    def client(host, path):
        session = host.session()
        yield from session.execute(
            "INSERT INTO t (id, doc) VALUES (?, ?)",
            (1, build_url("fs1", path)))
        yield from session.commit()

    def go():
        pa = system.sim.spawn(client(system.host, "/mh/f0"))
        pb = system.sim.spawn(client(other, "/mh/f1"))
        yield from pa.join()
        yield from pb.join()

    system.run(go())
    entries = system.dlfms["fs1"].file_entries()
    dbids = sorted(row[1] for row in entries)
    assert dbids == ["hostdb", "otherdb"]
    assert system.dlfms["fs1"].linked_count() == 2


def test_colliding_txn_ids_stay_separate(shared):
    """Host A's txn N and host B's txn N must not see each other's work —
    commit processing selects by (txn id, dbid)."""
    system, other = shared

    def client(host, path, commit):
        session = host.session()
        yield from session.execute(
            "INSERT INTO t (id, doc) VALUES (?, ?)",
            (1, build_url("fs1", path)))
        # both hosts hand the DLFM the SAME local txn id here
        if commit:
            yield from session.commit()
        else:
            yield from session.rollback()

    def go():
        pa = system.sim.spawn(client(system.host, "/mh/f2", True))
        pb = system.sim.spawn(client(other, "/mh/f3", False))
        yield from pa.join()
        yield from pb.join()

    system.run(go())
    entries = system.dlfms["fs1"].file_entries()
    assert len(entries) == 1
    assert entries[0][1] == "hostdb"
    assert entries[0][0] == "/mh/f2"


def test_one_host_cannot_unlink_anothers_file(shared):
    system, other = shared

    def go():
        session_a = system.host.session()
        yield from session_a.execute(
            "INSERT INTO t (id, doc) VALUES (?, ?)",
            (1, build_url("fs1", "/mh/f4")))
        yield from session_a.commit()
        # host B tries to link the same file: the check-flag unique index
        # is global by filename — a file belongs to ONE database at a time
        session_b = other.session()
        with pytest.raises(LinkError):
            yield from session_b.execute(
                "INSERT INTO t (id, doc) VALUES (?, ?)",
                (1, build_url("fs1", "/mh/f4")))
        yield from session_b.rollback()

    system.run(go())
    assert system.dlfms["fs1"].linked_count() == 1


def test_indoubt_resolution_is_per_host(shared):
    from repro.dlfm import api
    from repro.host.indoubt import resolve_indoubts
    system, other = shared

    def phase1(host, path):
        session = host.session()
        yield from session.execute(
            "INSERT INTO t (id, doc) VALUES (?, ?)",
            (9, build_url("fs1", path)))
        txn_id = session.txn_id
        yield from session._send_control(
            "fs1", api.Prepare(host.dbid, txn_id))
        yield from session.session.commit()
        return txn_id

    # host A prepares WITH a decision row; host B prepares WITHOUT one
    def go():
        txn_a = yield from phase1_gen_a
        plain = system.host.db.session()
        yield from plain.execute(
            "INSERT INTO dlk_indoubt (txn_id, server) VALUES (?, ?)",
            (txn_a, "fs1"))
        yield from plain.commit()
        yield from phase1_gen_b
        result_a = yield from resolve_indoubts(system.host)
        result_b = yield from resolve_indoubts(other)
        return result_a, result_b

    phase1_gen_a = phase1(system.host, "/mh/f4")
    phase1_gen_b = phase1(other, "/mh/f5")
    result_a, result_b = system.run(go())
    assert result_a == {"committed": 1, "aborted": 0}
    assert result_b == {"committed": 0, "aborted": 1}
    entries = system.dlfms["fs1"].file_entries()
    assert [(e[0], e[1]) for e in entries] == [("/mh/f4", "hostdb")]


def test_per_host_backup_retention(shared):
    system, other = shared

    def go():
        # three backups for host A, one for host B
        for _ in range(3):
            yield from system.backup()
        from repro.host.backup import backup_database
        yield from backup_database(other)
        result = yield from system.dlfms["fs1"].gc.collect()
        return result

    result = system.run(go())
    assert result["backups"] == 1  # only host A exceeded keep_backups=2
    remaining = system.dlfms["fs1"].db.table_rows("dfm_backup")
    assert sorted(r[1] for r in remaining) == ["hostdb", "hostdb",
                                               "otherdb"]

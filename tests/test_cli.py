"""CLI smoke tests (`python -m repro`)."""

import pytest

from repro.__main__ import main


def test_experiments_lists_all(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("E1", "E5", "E10"):
        assert exp_id in out
    assert "bench_e6_sync_commit" in out


def test_paper_summary(capsys):
    assert main(["paper"]) == 0
    out = capsys.readouterr().out
    assert "SIGMOD 2000" in out
    assert "DataLinks" in out


def test_systemtest_runs_small(capsys):
    assert main(["systemtest", "--clients", "3", "--minutes", "1",
                 "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "inserts_per_min" in out
    assert "tuned" in out


def test_systemtest_untuned_flag(capsys):
    assert main(["systemtest", "--clients", "3", "--minutes", "1",
                 "--untuned"]) == 0
    assert "untuned" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_trace_commit_retry_scenario(capsys, tmp_path):
    out_path = tmp_path / "trace.json"
    assert main(["trace", "commit-retry", "--json", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "commit_retries" in out
    assert "Phase-2 retry breakdown" in out
    assert "Top lock hotspots" in out
    assert "span.dlfm.phase2" in out
    data = out_path.read_text()
    assert data.startswith('{"events":[') or data.startswith('{"meta"')
    assert '"dlfm.phase2"' in data


def test_trace_is_byte_deterministic(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    assert main(["trace", "commit-retry", "--seed", "11",
                 "--json", str(a)]) == 0
    assert main(["trace", "commit-retry", "--seed", "11",
                 "--json", str(b)]) == 0
    capsys.readouterr()
    assert a.read_bytes() == b.read_bytes()


def test_trace_unknown_scenario_fails(capsys):
    assert main(["trace", "no-such-scenario"]) == 2
    assert "unknown scenario" in capsys.readouterr().err

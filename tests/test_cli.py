"""CLI smoke tests (`python -m repro`)."""

import pytest

from repro.__main__ import main


def test_experiments_lists_all(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("E1", "E5", "E10"):
        assert exp_id in out
    assert "bench_e6_sync_commit" in out


def test_paper_summary(capsys):
    assert main(["paper"]) == 0
    out = capsys.readouterr().out
    assert "SIGMOD 2000" in out
    assert "DataLinks" in out


def test_systemtest_runs_small(capsys):
    assert main(["systemtest", "--clients", "3", "--minutes", "1",
                 "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "inserts_per_min" in out
    assert "tuned" in out


def test_systemtest_untuned_flag(capsys):
    assert main(["systemtest", "--clients", "3", "--minutes", "1",
                 "--untuned"]) == 0
    assert "untuned" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])

"""DLFF enforcement: referential integrity and access tokens (§2, F2)."""

import pytest

from repro.dlff.filter import AccessToken
from repro.errors import AccessTokenError, LinkedFileError
from repro.kernel import Timeout

from tests.dlfm.conftest import insert_clip, url


@pytest.fixture
def linked(media):
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
    media.run(go())
    return media


def test_delete_of_linked_file_rejected(linked):
    def go():
        with pytest.raises(LinkedFileError):
            yield from linked.filtered_fs("fs1").delete("/v/clip0.mpg",
                                                        "alice")
        return True
    assert linked.run(go()) is True
    assert linked.dlfms["fs1"].filter.rejections >= 1


def test_rename_of_linked_file_rejected(linked):
    def go():
        with pytest.raises(LinkedFileError):
            yield from linked.filtered_fs("fs1").rename(
                "/v/clip0.mpg", "/v/moved.mpg", "alice")
        return True
    assert linked.run(go()) is True


def test_write_of_full_control_file_rejected(linked):
    def go():
        with pytest.raises(LinkedFileError):
            yield from linked.filtered_fs("fs1").write(
                "/v/clip0.mpg", "alice", "overwrite")
        return True
    assert linked.run(go()) is True


def test_unlinked_files_are_free(linked):
    def go():
        fsf = linked.filtered_fs("fs1")
        yield from fsf.rename("/v/clip1.mpg", "/v/moved.mpg", "alice")
        yield from fsf.delete("/v/moved.mpg", "alice")
        return True
    assert linked.run(go()) is True


def test_read_without_token_rejected_full_control(linked):
    with pytest.raises(AccessTokenError):
        linked.filtered_fs("fs1").read("/v/clip0.mpg", "bob")


def test_read_with_valid_token_succeeds(linked):
    token = linked.host.issue_token(url(0))
    content = linked.filtered_fs("fs1").read("/v/clip0.mpg", "bob",
                                             token=token)
    assert content.startswith("VIDEO-0")


def test_owner_also_needs_token_after_takeover(linked):
    with pytest.raises(AccessTokenError):
        linked.filtered_fs("fs1").read("/v/clip0.mpg", "alice")


def test_expired_token_rejected(linked):
    token = linked.host.issue_token(url(0))

    def go():
        yield Timeout(linked.host.config.token_expiry + 1)
        with pytest.raises(AccessTokenError):
            linked.filtered_fs("fs1").read("/v/clip0.mpg", "bob",
                                           token=token)
        return True

    assert linked.run(go()) is True


def test_forged_token_rejected(linked):
    forged = AccessToken.sign("wrong-secret", "/v/clip0.mpg", 10_000.0)
    with pytest.raises(AccessTokenError):
        linked.filtered_fs("fs1").read("/v/clip0.mpg", "bob", token=forged)


def test_token_bound_to_path(linked):
    def go():
        session = linked.session()
        yield from insert_clip(session, 1)
        yield from session.commit()
    linked.run(go())
    token = linked.host.issue_token(url(0))
    # clip1 is also DB-controlled now; clip0's token must not open it
    with pytest.raises(AccessTokenError):
        linked.filtered_fs("fs1").read("/v/clip1.mpg", "bob", token=token)
    # an unlinked file needs no token at all
    assert linked.filtered_fs("fs1").read("/v/clip2.mpg", "bob")


def test_after_unlink_file_is_ordinary_again(linked):
    def go():
        session = linked.session()
        yield from session.execute("DELETE FROM clips WHERE id = 0")
        yield from session.commit()
        fsf = linked.filtered_fs("fs1")
        assert fsf.read("/v/clip0.mpg", "bob").startswith("VIDEO-0")
        yield from fsf.delete("/v/clip0.mpg", "alice")
        return True

    assert linked.run(go()) is True

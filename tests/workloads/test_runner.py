"""Workload machinery: metrics math and a small end-to-end run."""


from repro.workloads import SystemTestConfig, run_system_test
from repro.workloads.metrics import WorkloadReport


# -- metrics ---------------------------------------------------------------

def test_rates_per_minute():
    report = WorkloadReport(clients=10, virtual_seconds=120.0,
                            inserts=20, updates=10)
    assert report.inserts_per_minute == 10.0
    assert report.updates_per_minute == 5.0


def test_abort_bookkeeping():
    report = WorkloadReport(clients=1, virtual_seconds=60)
    report.note_abort("deadlock")
    report.note_abort("deadlock")
    report.note_abort("timeout")
    assert report.aborts == {"deadlock": 2, "timeout": 1}
    assert report.total_aborts == 3


def test_latency_percentiles():
    # Nearest-rank over 0..99: the 50th-ranked sample is 49.0 (one-based
    # rank ceil(0.5*100)=50 → index 49), not 50.0 as the old truncating
    # index claimed.
    report = WorkloadReport(clients=1, virtual_seconds=60,
                            latencies=[float(i) for i in range(100)])
    assert report.latency_percentile(50) == 49.0
    assert report.latency_percentile(95) == 94.0
    assert report.latency_percentile(100) == 99.0
    assert WorkloadReport(clients=1, virtual_seconds=60).latency_percentile(
        95) is None


def test_latency_percentile_boundaries():
    # n=1: every percentile is the single sample.
    one = WorkloadReport(clients=1, virtual_seconds=60, latencies=[3.5])
    assert one.latency_percentile(1) == 3.5
    assert one.latency_percentile(50) == 3.5
    assert one.latency_percentile(99) == 3.5
    # n=10: nearest-rank p95 = rank ceil(9.5)=10 → the maximum, which
    # the truncating version only returned by accident of min().
    ten = WorkloadReport(clients=1, virtual_seconds=60,
                         latencies=[float(i) for i in range(1, 11)])
    assert ten.latency_percentile(95) == 10.0
    assert ten.latency_percentile(90) == 9.0
    assert ten.latency_percentile(50) == 5.0
    assert ten.latency_percentile(10) == 1.0
    # n=4: small lists must not under-report (old code: p50 → index 2).
    four = WorkloadReport(clients=1, virtual_seconds=60,
                          latencies=[1.0, 2.0, 3.0, 4.0])
    assert four.latency_percentile(50) == 2.0
    assert four.latency_percentile(75) == 3.0
    assert four.latency_percentile(76) == 4.0


def test_summary_fields():
    report = WorkloadReport(clients=3, virtual_seconds=600, inserts=30)
    summary = report.summary()
    assert summary["clients"] == 3
    assert summary["virtual_minutes"] == 10.0
    assert summary["inserts_per_min"] == 3.0


# -- end-to-end smoke (small but real) -----------------------------------------

def test_small_system_test_run():
    report = run_system_test(SystemTestConfig(
        clients=5, duration=120.0, think_time=5.0, seed=77))
    assert report.inserts > 0
    assert report.updates >= 0
    assert report.deadlocks == 0
    assert report.lock_timeouts == 0
    # every successful insert linked exactly one file
    assert report.system.dlfms["fs1"].metrics.links >= report.inserts
    # and the host row count matches inserts
    def count():
        session = report.system.host.db.session()
        result = yield from session.execute("SELECT COUNT(*) FROM media")
        yield from session.commit()
        return result.scalar()
    assert report.system.run(count()) == report.inserts


def test_untimed_run_finishes_instantly_in_virtual_time():
    report = run_system_test(SystemTestConfig(
        clients=3, duration=60.0, think_time=5.0, timed=False, seed=9))
    assert report.inserts > 0


def test_deterministic_given_seed():
    a = run_system_test(SystemTestConfig(clients=4, duration=90.0,
                                         seed=123))
    b = run_system_test(SystemTestConfig(clients=4, duration=90.0,
                                         seed=123))
    assert a.inserts == b.inserts
    assert a.updates == b.updates
    assert a.latencies == b.latencies


def test_different_seeds_differ():
    a = run_system_test(SystemTestConfig(clients=4, duration=90.0, seed=1))
    b = run_system_test(SystemTestConfig(clients=4, duration=90.0, seed=2))
    assert (a.inserts, a.updates, tuple(a.latencies)) != (
        b.inserts, b.updates, tuple(b.latencies))

"""MetaCat workload: prepared-vs-interpolated and auto-vs-cold stats.

Small configurations of the million-file catalog arm — enough rows to
trip auto-RUNSTATS and show the compile-tax gap, small enough for the
unit-test budget.
"""

from repro.workloads.metacat import (MetaCatConfig, cold_stats_probe,
                                     run_metacat)

SMALL = MetaCatConfig(files=4_000, datasets=40, namespaces=8,
                      queries=200, piece=500)


def test_prepared_beats_interpolated_and_stats_flip():
    doc = run_metacat(SMALL)
    # Same seeded mix both phases: equal statement counts.
    assert doc["interpolated"]["statements"] == 200
    assert doc["prepared"]["statements"] == 200
    # Prepared: 4 binds (one per shape), everything else cache hits.
    assert doc["prepared"]["plan_binds"] == 4
    assert doc["prepared"]["plan_hits"] == 200
    # Interpolated: literal splicing re-binds for (nearly) every value.
    assert doc["interpolated"]["plan_binds"] > 100
    # The compile tax dominates: well past the bench's 5x gate even at
    # this small scale.
    assert doc["prepared_speedup"] >= 5
    # Stats proof: the point query runs on the index WITHOUT set_stats.
    assert doc["auto_probe_plan"] == "index_scan"
    assert not doc["auto_stats"]["manual"]
    assert doc["auto_stats"]["card"] > 0
    assert doc["ingest"]["auto_runstats_runs"] >= 1


def test_cold_statistics_control_stays_on_scans():
    cold = cold_stats_probe(SMALL, files=2_000)
    assert cold["probe_plan"] == "table_scan"
    assert cold["card_seen"] == 0
    assert cold["auto_runstats_runs"] == 0


def test_deterministic_across_runs():
    assert run_metacat(SMALL) == run_metacat(SMALL)


def test_seed_changes_the_mix_but_not_the_proof():
    doc = run_metacat(SMALL.with_changes(seed=99))
    assert doc["prepared_speedup"] >= 5
    assert doc["auto_probe_plan"] == "index_scan"

"""Whole-system integration: the paper's Figures 1–3 as one scenario.

A host database, two file servers with DLFM/DLFF, an archive server;
full- and partial-control columns; SQL search → tokens → file API;
referential integrity from both control modes; coordinated backup.
"""

import pytest

from repro.dlff.filter import DLFM_ADMIN
from repro.errors import AccessTokenError, LinkedFileError
from repro.host import DatalinkSpec, build_url
from repro.kernel import Timeout
from repro.system import System


@pytest.fixture
def world():
    return System(seed=71, servers=("media-fs", "mail-fs"))


def test_figure_1_to_3_full_scenario(world):
    host = world.host

    def scenario():
        # -- Figure 1: tables with datalink columns over two servers -----
        yield from host.create_datalink_table(
            "clips", [("id", "INT"), ("title", "TEXT"), ("video", "TEXT")],
            {"video": DatalinkSpec(access_control="full", recovery=True)})
        yield from host.create_datalink_table(
            "mails", [("id", "INT"), ("subject", "TEXT"), ("att", "TEXT")],
            {"att": DatalinkSpec(access_control="partial", recovery=False)})

        world.create_user_file("media-fs", "/v/dunk.mpg", owner="editor",
                               content="MPEG" * 100)
        world.create_user_file("mail-fs", "/m/profile.pdf", owner="mailer",
                               content="PDF-DATA")

        session = world.session()
        yield from session.execute(
            "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
            (1, "Dunk contest", build_url("media-fs", "/v/dunk.mpg")))
        yield from session.execute(
            "INSERT INTO mails (id, subject, att) VALUES (?, ?, ?)",
            (1, "customer profile",
             build_url("mail-fs", "/m/profile.pdf")))
        yield from session.commit()

        # -- control-mode differences -------------------------------------
        video = world.servers["media-fs"].fs.stat("/v/dunk.mpg")
        attachment = world.servers["mail-fs"].fs.stat("/m/profile.pdf")
        assert video.owner == DLFM_ADMIN            # full: taken over
        assert attachment.owner == "mailer"         # partial: kept

        # -- Figure 3: search, tokens, standard file API -------------------
        rows, tokens = yield from session.fetch_with_tokens(
            "SELECT title, video FROM clips WHERE id = 1")
        video_url = rows[0][1]
        content = world.filtered_fs("media-fs").read(
            "/v/dunk.mpg", "viewer", token=tokens[video_url])
        assert content.startswith("MPEG")
        with pytest.raises(AccessTokenError):
            world.filtered_fs("media-fs").read("/v/dunk.mpg", "viewer")
        # partial control: normal reads keep working, no token needed
        assert world.filtered_fs("mail-fs").read(
            "/m/profile.pdf", "anyone") == "PDF-DATA"

        # -- referential integrity in both modes ----------------------------
        with pytest.raises(LinkedFileError):
            yield from world.filtered_fs("media-fs").delete(
                "/v/dunk.mpg", "editor")
        with pytest.raises(LinkedFileError):
            yield from world.filtered_fs("mail-fs").rename(
                "/m/profile.pdf", "/m/elsewhere.pdf", "mailer")
        # partial control still allows in-place writes via fs permissions
        yield from world.filtered_fs("mail-fs").write(
            "/m/profile.pdf", "mailer", "PDF-DATA-v2")

        # -- coordinated backup touches only recoverable columns --------------
        yield Timeout(20)  # copy daemon
        backup_id = yield from world.backup()
        assert world.archive.copy_count() == 1  # only the clip (recovery)

        # -- unlink restores normal life ------------------------------------
        yield from session.execute("DELETE FROM clips WHERE id = 1")
        yield from session.execute("DELETE FROM mails WHERE id = 1")
        yield from session.commit()
        assert world.servers["media-fs"].fs.stat(
            "/v/dunk.mpg").owner == "editor"
        yield from world.filtered_fs("mail-fs").delete(
            "/m/profile.pdf", "mailer")
        return backup_id

    backup_id = world.run(scenario())
    assert backup_id == 1
    assert world.dlfms["media-fs"].linked_count() == 0
    assert world.dlfms["mail-fs"].linked_count() == 0


def test_session_misuse_is_caught(world):
    from repro.errors import DatabaseError

    def go():
        plain = world.host.db.session()
        yield from plain.execute("CREATE TABLE t (a INT)")
        yield from plain.execute("INSERT INTO t (a) VALUES (1)")
        yield from plain.execute("INSERT INTO t (a) VALUES (2)")
        with pytest.raises(DatabaseError):
            yield from plain.query_one("SELECT a FROM t")  # two rows
        with pytest.raises(DatabaseError):
            plain.rollback_to_savepoint("never-created")
        with pytest.raises(DatabaseError):
            yield from plain.query_one("INSERT INTO t (a) VALUES (3)")
        yield from plain.rollback()
        return True

    assert world.run(go()) is True

"""The sharded fleet: shard-map routing, rebalancing, recovery.

A :class:`~repro.shard.ShardedSystem` runs one shared file server and N
DLFM shards partitioning the metadata by file group. These tests cover
the router (ops land on the owning shard only, stale routes retry),
``move_group`` (online 2PC rebalancing), and crash recovery (shard-map
persistence, in-doubt moves resolving to the new owner, piggybacked
decisions re-driven).
"""

import pytest

from repro.chaos import FaultInjector, FaultPlan, FaultRule
from repro.dlff.filter import DLFM_ADMIN
from repro.dlfm import schema
from repro.errors import (CrashedError, DataLinkError, LinkedFileError,
                          LinkError)
from repro.host import DatalinkSpec, build_url
from repro.host.indoubt import resolve_indoubts
from repro.shard import ShardedSystem, move_group


def _group_rows(dlfm, grp_id):
    return [row for row in dlfm.db.table_rows("dfm_group")
            if row[0] == grp_id]


@pytest.fixture
def fleet():
    system = ShardedSystem(seed=7, shards=2)

    def setup():
        yield from system.host.create_datalink_table(
            "docs", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=True)})
        for i in range(6):
            system.create_user_file("fs1", f"/x/f{i}", owner="u")

    system.run(setup())
    return system


def _link(system, table, rid, path):
    """Generator: link one file in its own transaction."""
    session = system.session()
    yield from session.execute(
        f"INSERT INTO {table} (id, doc) VALUES (?, ?)",
        (rid, build_url("fs1", path)))
    yield from session.commit()


def test_registration_lands_on_assigned_shard(fleet):
    grp_id = fleet.host.group_ids[("docs", "doc")]
    owner = fleet.shard_of(grp_id)
    other = next(n for n in fleet.dlfms if n != owner)
    assert owner == fleet.host.shard_map.assign(grp_id)
    assert [row[:2] for row in fleet.host.db.table_rows("dlk_shardmap")] \
        == [(grp_id, owner)]
    assert _group_rows(fleet.dlfms[owner], grp_id) != []
    assert _group_rows(fleet.dlfms[other], grp_id) == []
    # Sharded groups register fenced at epoch 1.
    assert _group_rows(fleet.dlfms[owner], grp_id)[0][8] == 1


def test_links_route_to_owning_shard_only(fleet):
    grp_id = fleet.host.group_ids[("docs", "doc")]
    owner = fleet.shard_of(grp_id)
    other = next(n for n in fleet.dlfms if n != owner)

    def go():
        yield from _link(fleet, "docs", 1, "/x/f0")
        yield from _link(fleet, "docs", 2, "/x/f1")

    fleet.run(go())
    assert fleet.dlfms[owner].linked_count() == 2
    assert fleet.dlfms[other].linked_count() == 0
    assert fleet.servers["fs1"].fs.stat("/x/f0").owner == DLFM_ADMIN


def test_fleet_upcall_protects_linked_files(fleet):
    """The shared filter's upcall must find the owner among N shards."""
    def go():
        yield from _link(fleet, "docs", 1, "/x/f0")
        with pytest.raises(LinkedFileError):
            yield from fleet.filtered_fs().delete("/x/f0", user="u")

    fleet.run(go())


def test_stale_route_reloads_and_retries(fleet):
    """A poisoned cache entry self-heals: the wrong shard answers
    StaleRouteError, the router reloads the catalog and retries."""
    grp_id = fleet.host.group_ids[("docs", "doc")]
    owner = fleet.shard_of(grp_id)
    other = next(n for n in fleet.dlfms if n != owner)
    fleet.host.shard_map._cache[grp_id] = (other, 99)
    before = fleet.host.shard_map.reloads

    fleet.run(_link(fleet, "docs", 1, "/x/f0"))
    assert fleet.host.shard_map.reloads > before
    assert fleet.dlfms[owner].linked_count() == 1
    assert fleet.dlfms[other].linked_count() == 0


def test_wide_transaction_spans_shards_through_the_pool(fleet):
    """Two tables land on different shards (hash assignment); one
    transaction touching both commits through the bounded fan-out."""
    def go():
        yield from fleet.host.create_datalink_table(
            "pics", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec()})
        session = fleet.session()
        yield from session.execute(
            "INSERT INTO docs (id, doc) VALUES (?, ?)",
            (1, build_url("fs1", "/x/f0")))
        yield from session.execute(
            "INSERT INTO pics (id, doc) VALUES (?, ?)",
            (1, build_url("fs1", "/x/f1")))
        yield from session.commit()

    fleet.run(go())
    docs_shard = fleet.shard_of(fleet.host.group_ids[("docs", "doc")])
    pics_shard = fleet.shard_of(fleet.host.group_ids[("pics", "doc")])
    assert docs_shard != pics_shard
    assert fleet.dlfms[docs_shard].linked_count() == 1
    assert fleet.dlfms[pics_shard].linked_count() == 1
    assert fleet.host.config.fanout_workers > 0
    # Phase 2 fully acked: no decision left anywhere.
    assert fleet.host.decision_rows() == []


def test_move_group_end_to_end(fleet):
    grp_id = fleet.host.group_ids[("docs", "doc")]
    src = fleet.shard_of(grp_id)
    dst = next(n for n in fleet.dlfms if n != src)

    def go():
        yield from _link(fleet, "docs", 1, "/x/f0")
        yield from _link(fleet, "docs", 2, "/x/f1")
        result = yield from move_group(fleet.host, grp_id, dst)
        assert result == {"moved": True, "src": src, "dst": dst,
                          "epoch": 2, "files": 2}

    fleet.run(go())
    assert fleet.dlfms[src].linked_count() == 0
    assert fleet.dlfms[dst].linked_count() == 2
    assert _group_rows(fleet.dlfms[src], grp_id) == []
    [group] = _group_rows(fleet.dlfms[dst], grp_id)
    assert group[4] == schema.GRP_ACTIVE and group[8] == 2
    assert [tuple(r) for r in fleet.host.db.table_rows("dlk_shardmap")] \
        == [(grp_id, dst, 2)]

    def after():
        # The fleet upcall now finds the file on the new owner...
        with pytest.raises(LinkedFileError):
            yield from fleet.filtered_fs().delete("/x/f0", user="u")
        # ...and both link and unlink route there.
        yield from _link(fleet, "docs", 3, "/x/f2")
        session = fleet.session()
        yield from session.execute("DELETE FROM docs WHERE id = ?", (1,))
        yield from session.commit()

    fleet.run(after())
    assert fleet.dlfms[dst].linked_count() == 2
    assert fleet.servers["fs1"].fs.stat("/x/f0").owner == "u"


def test_move_group_rejects_bad_targets(fleet):
    grp_id = fleet.host.group_ids[("docs", "doc")]
    src = fleet.shard_of(grp_id)

    def go():
        result = yield from move_group(fleet.host, grp_id, src)
        assert result == {"moved": False, "src": src, "dst": src}
        with pytest.raises(DataLinkError):
            yield from move_group(fleet.host, grp_id, "shard99")

    fleet.run(go())


def test_shard_map_survives_host_restart(fleet):
    grp_id = fleet.host.group_ids[("docs", "doc")]
    dst = next(n for n in fleet.dlfms if n != fleet.shard_of(grp_id))

    def go():
        yield from _link(fleet, "docs", 1, "/x/f0")
        yield from move_group(fleet.host, grp_id, dst)

    fleet.run(go())
    fleet.host.crash()
    assert fleet.host.shard_map.entries() != {}  # cache only — now stale?

    def recover():
        # The move completed before the crash but its FORGET record is
        # unforced and died with the host: restart re-drives the move's
        # two idempotent phase-2 Commits.
        result = yield from fleet.host.restart()
        assert result == {"committed": 2, "aborted": 0}
        # Routing rebuilt from the durable catalog, not the old cache.
        assert fleet.host.shard_map.resolve(grp_id) == (dst, 2)
        yield from _link(fleet, "docs", 2, "/x/f1")

    fleet.run(recover())
    assert fleet.dlfms[dst].linked_count() == 2


def _crashing_fleet(point="twopc.fanout:phase2"):
    plan = FaultPlan([FaultRule(point=point, kind="crash")], name="t")
    system = ShardedSystem(seed=11, shards=2, injector=FaultInjector(plan))
    system.injector.enabled = False

    def setup():
        yield from system.host.create_datalink_table(
            "docs", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(recovery=True)})
        for i in range(4):
            system.create_user_file("fs1", f"/x/f{i}", owner="u")

    system.run(setup())
    return system


def test_indoubt_move_resolves_to_new_owner():
    """Host crashes mid phase 2 of a move: the decision and the catalog
    flip are both durable, so recovery finishes the move — the group is
    active on the destination only and every route lands there."""
    system = _crashing_fleet()
    grp_id = system.host.group_ids[("docs", "doc")]
    src = system.shard_of(grp_id)
    dst = next(n for n in system.dlfms if n != src)
    system.run(_link(system, "docs", 1, "/x/f0"))

    def crash_mid_move():
        system.injector.enabled = True
        with pytest.raises(CrashedError):
            yield from move_group(system.host, grp_id, dst)

    system.run(crash_mid_move())
    system.injector.enabled = False
    assert len(system.injector.crashes) == 1

    def recover():
        result = yield from system.host.restart()
        # Both participants of the move re-acked the re-driven Commit.
        assert result == {"committed": 2, "aborted": 0}
        assert system.host.shard_map.resolve(grp_id) == (dst, 2)
        yield from _link(system, "docs", 2, "/x/f1")

    system.run(recover())
    assert _group_rows(system.dlfms[src], grp_id) == []
    [group] = _group_rows(system.dlfms[dst], grp_id)
    assert group[4] == schema.GRP_ACTIVE
    assert system.dlfms[src].linked_count() == 0
    assert system.dlfms[dst].linked_count() == 2
    assert system.host.decision_rows() == []


def test_piggybacked_decision_redriven_after_crash():
    """With decision piggybacking the commit decision never touches
    ``dlk_indoubt`` — it is rescanned from the WAL and re-driven."""
    system = _crashing_fleet()
    grp_id = system.host.group_ids[("docs", "doc")]
    owner = system.shard_of(grp_id)

    def crash_mid_commit():
        system.injector.enabled = True
        with pytest.raises(CrashedError):
            yield from _link(system, "docs", 1, "/x/f0")

    system.run(crash_mid_commit())
    system.injector.enabled = False

    def recover():
        result = yield from system.host.restart()
        assert result == {"committed": 1, "aborted": 0}

    system.run(recover())
    assert system.dlfms[owner].linked_count() == 1
    assert system.servers["fs1"].fs.stat("/x/f0").owner == DLFM_ADMIN
    assert system.host.pending_decisions() == {}
    assert system.host.db.table_rows("dlk_indoubt") == []


def test_export_refuses_group_with_unresolved_transaction():
    """An in-doubt link pins its group to the source shard: a move
    adopts rows verbatim, so phase-2 verbs for the old transaction would
    miss moved rows. The resolver runs first, then the move goes."""
    system = _crashing_fleet()
    grp_id = system.host.group_ids[("docs", "doc")]
    src = system.shard_of(grp_id)
    dst = next(n for n in system.dlfms if n != src)

    def crash_mid_commit():
        system.injector.enabled = True
        with pytest.raises(CrashedError):
            yield from _link(system, "docs", 1, "/x/f0")

    system.run(crash_mid_commit())
    system.injector.enabled = False
    # Bring the host db back WITHOUT resolving, as a poller would see it:
    # the link's prepared transaction is still in doubt on the shard.
    system.host.db.restart()
    system.host._indoubt_session = None
    system.host._rescan_decisions()
    system.host.shard_map.reload()

    def go():
        # The refusal names the unresolved transaction — or its pending
        # archive work, when the crashed commit's stray in-flight Commit
        # already landed on the shard. Either way the move bounces with
        # "retry" until the resolver has run.
        with pytest.raises(LinkError, match="retry"):
            yield from move_group(system.host, grp_id, dst)
        result = yield from resolve_indoubts(system.host)
        assert result["committed"] == 1
        moved = yield from move_group(system.host, grp_id, dst)
        assert moved["moved"] and moved["files"] == 1

    system.run(go())
    assert system.dlfms[dst].linked_count() == 1
    assert system.shard_of(grp_id) == dst


def test_drop_table_cleans_catalog_row(fleet):
    grp_id = fleet.host.group_ids[("docs", "doc")]

    def go():
        session = fleet.session()
        yield from session.drop_table("docs")
        yield from session.commit()

    fleet.run(go())
    assert fleet.host.db.table_rows("dlk_shardmap") == []
    with pytest.raises(DataLinkError):
        fleet.host.shard_map.resolve(grp_id)

"""BENCH_PERF.json history accumulation: the trajectory must grow."""

from repro.bench.harness import HISTORY_LABEL, update_history


PR2_ROW = {"label": "pr2-batched-rpcs-group-commit", "headline": "old"}


def test_new_label_appends_after_prior_rows():
    entry = {"label": HISTORY_LABEL, "headline": "new"}
    history = update_history([PR2_ROW], entry)
    assert [row["label"] for row in history] == [PR2_ROW["label"],
                                                HISTORY_LABEL]


def test_rerun_replaces_own_row_in_place():
    first = {"label": HISTORY_LABEL, "headline": "run-1"}
    second = {"label": HISTORY_LABEL, "headline": "run-2"}
    history = update_history([PR2_ROW], first)
    history = update_history(history, second)
    assert [row["label"] for row in history] == [PR2_ROW["label"],
                                                HISTORY_LABEL]
    assert history[-1]["headline"] == "run-2"


def test_empty_and_none_history_start_one_row():
    entry = {"label": HISTORY_LABEL}
    assert update_history(None, entry) == [entry]
    assert update_history([], entry) == [entry]


def test_foreign_rows_are_never_dropped():
    rows = [{"label": f"pr{i}"} for i in range(5)]
    history = update_history(list(rows), {"label": HISTORY_LABEL})
    assert history[:5] == rows

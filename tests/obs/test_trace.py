"""Tracer mechanics: null-tracer cost model, span nesting, determinism."""

from repro.kernel.sim import Simulator, Timeout
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer
from repro.obs.report import render_report
from repro.obs.trace import _NULL_SPAN


def test_simulator_defaults_to_the_null_tracer():
    sim = Simulator(seed=1)
    assert sim.tracer is NULL_TRACER
    assert sim.tracer.enabled is False
    # span() allocates nothing: the same shared instance every time
    span = sim.tracer.span("x", a=1)
    assert span is _NULL_SPAN
    with span as s:
        s.set(b=2)  # all no-ops
    sim.tracer.event("y", c=3)


def test_spans_nest_per_process_with_virtual_timestamps():
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    sim = Simulator(seed=1, tracer=tracer)

    def worker():
        with tracer.span("outer", k="v") as outer:
            yield Timeout(2.0)
            with tracer.span("inner"):
                yield Timeout(1.0)
            outer.set(rows=3)

    sim.run_process(worker(), "worker")
    spans = {s["name"]: s for s in tracer.completed_spans()}
    assert spans["inner"]["parent"] == spans["outer"]["span"]
    assert spans["outer"]["parent"] is None
    assert spans["outer"]["process"] == "worker"
    assert spans["outer"]["start"] == 0.0
    assert spans["outer"]["duration"] == 3.0
    assert spans["inner"]["start"] == 2.0
    assert spans["inner"]["duration"] == 1.0
    assert spans["outer"]["attrs"] == {"k": "v", "rows": 3}
    # durations landed in the registry histograms
    assert registry.histogram("span.outer").count == 1
    assert registry.histogram("span.inner").count == 1


def test_sibling_processes_do_not_nest_into_each_other():
    tracer = Tracer()
    sim = Simulator(seed=1, tracer=tracer)

    def one():
        with tracer.span("a"):
            yield Timeout(5.0)

    def two():
        yield Timeout(1.0)
        with tracer.span("b"):
            yield Timeout(1.0)

    def root():
        pa = sim.spawn(one(), "p-one")
        pb = sim.spawn(two(), "p-two")
        yield from pa.join()
        yield from pb.join()

    sim.run_process(root(), "root")
    spans = {s["name"]: s for s in tracer.completed_spans()}
    # "b" runs entirely inside "a"'s lifetime but in a different process,
    # so it must NOT be parented under "a"
    assert spans["b"]["parent"] is None
    assert spans["b"]["process"] == "p-two"


def test_exception_unwinding_records_the_error():
    tracer = Tracer()
    sim = Simulator(seed=1, tracer=tracer)

    def worker():
        try:
            with tracer.span("fails"):
                yield Timeout(1.0)
                raise ValueError("boom")
        except ValueError:
            pass

    sim.run_process(worker(), "worker")
    (span,) = tracer.completed_spans()
    assert span["attrs"]["error"] == "ValueError"


def test_same_run_produces_byte_identical_json():
    def run():
        tracer = Tracer()
        sim = Simulator(seed=5, tracer=tracer)

        def worker():
            with tracer.span("op", n=1):
                yield Timeout(sim.stream("t").random())
            tracer.event("tick", at=sim.now)

        sim.run_process(worker(), "worker")
        return tracer.to_json(scenario="unit", seed=5)

    assert run() == run()


def test_render_report_lists_spans_and_histograms():
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    sim = Simulator(seed=1, tracer=tracer)

    def worker():
        for _ in range(3):
            with tracer.span("lock.wait", resource="('row', 't', 1)",
                             mode="X") as span:
                yield Timeout(2.0)
                span.set(outcome="granted")
        with tracer.span("lock.wait", resource="('row', 't', 1)",
                         mode="S") as span:
            yield Timeout(4.0)
            span.set(outcome="granted")
        with tracer.span("dlfm.phase2", verb="commit", attempt=1) as span:
            yield Timeout(1.0)
            span.set(outcome="ok")

    sim.run_process(worker(), "worker")
    registry.counter("dlfm.fs1.commits").value = 1
    text = render_report(tracer, registry)
    assert "lock.wait" in text
    assert "('row', 't', 1)" in text
    assert "dlfm.phase2" in text
    assert "span.lock.wait" in text
    # The hotspot row splits its waits reader-vs-writer by lock mode.
    from repro.obs.report import lock_hotspots
    [row] = lock_hotspots(tracer.completed_spans())
    assert row["reader_waits"] == 1 and row["writer_waits"] == 3
    assert row["reader_wait"] == 4.0 and row["writer_wait"] == 6.0
    assert "rd_wait" in text and "wr_wait" in text


def test_sharded_scenario_exports_per_shard_counter_groups():
    from repro.obs.scenarios import sharded

    tracer, registry, meta = sharded(seed=11, shards=3)
    assert meta["moved_group"]["moved"] is True
    snapshot = registry.snapshot()
    for name in ("shard1", "shard2", "shard3"):
        assert f"dlfm.{name}.rpcs" in snapshot
        assert f"locks.{name}.acquires" in snapshot
        assert f"wal.{name}.forces" in snapshot
    assert "shardmap.entries" in snapshot
    # Per-shard attribution survives into the rendered report.
    text = render_report(tracer, registry)
    assert "dlfm.shard2.rpcs" in text

"""Histogram / registry math used by the observability layer."""

from repro.obs import Counter, Histogram, MetricsRegistry


def test_empty_histogram_summary():
    hist = Histogram()
    assert hist.count == 0
    assert hist.mean == 0.0
    assert hist.percentile(50) == 0.0
    assert hist.summary() == {"count": 0, "mean": 0.0, "p50": 0.0,
                              "p95": 0.0, "p99": 0.0, "max": 0.0}


def test_single_value_every_percentile_is_that_value():
    hist = Histogram()
    hist.record(0.125)
    for pct in (1, 50, 95, 99, 100):
        assert hist.percentile(pct) == 0.125


def test_percentiles_are_clamped_to_observed_max():
    hist = Histogram()
    hist.extend([3.0] * 10)  # lands in the (2.097152, 4.194304] bucket
    # the bucket bound over-estimates; the clamp brings it back to 3.0
    assert hist.percentile(50) == 3.0
    assert hist.percentile(99) == 3.0
    assert hist.max_value == 3.0


def test_percentiles_are_ordered_and_bucketed():
    hist = Histogram()
    hist.extend(float(i) for i in range(1, 101))
    summary = hist.summary()
    assert summary["count"] == 100
    assert summary["p50"] <= summary["p95"] <= summary["p99"] <= \
        summary["max"] == 100.0
    # log-scale buckets: p50 is the bound of the bucket holding sample 50,
    # which over-estimates by at most the growth factor (2x)
    assert 50.0 <= summary["p50"] <= 100.0
    assert abs(summary["mean"] - 50.5) < 1e-9


def test_values_outside_the_bounds_still_count():
    hist = Histogram(min_bound=1.0, max_bound=8.0)
    hist.record(0.001)   # below min_bound → first bucket (bound 1.0)
    hist.record(9999.0)  # above max_bound → overflow bucket (bound = max)
    assert hist.count == 2
    assert hist.percentile(1) == 1.0
    assert hist.percentile(100) == 9999.0


def test_counter_and_registry():
    registry = MetricsRegistry()
    counter = registry.counter("x")
    assert isinstance(counter, Counter)
    counter.inc()
    counter.inc(4)
    assert registry.counter("x").value == 5          # same object
    assert registry.counter("x") is counter
    hist = registry.histogram("lat")
    hist.record(2.0)
    assert registry.histogram("lat") is hist
    registry.register_counters("dlfm", {"commits": 7, "links": 3})
    snap = registry.snapshot()
    assert snap["dlfm.commits"] == 7
    assert snap["dlfm.links"] == 3
    assert snap["x"] == 5
    assert snap["lat"]["count"] == 1
    # counters come sorted first, then histograms sorted
    assert list(snap) == ["dlfm.commits", "dlfm.links", "x", "lat"]

"""Chaos: crash injected INSIDE an auto-RUNSTATS refresh.

The ``runstats.refresh:<db>`` crash point fires at commit time, after
the transaction is durable but before the statistics refresh runs. The
invariants: committed data survives, the half-triggered refresh leaves
no torn statistics (the old version stays wholly in force), and after
restart the plan cache re-binds consistently — first back to the stale
scan plan, then to the index plan once auto-RUNSTATS actually completes.
"""

import pytest

from repro.chaos.faults import FaultInjector, FaultPlan, FaultRule
from repro.errors import CrashedError
from repro.kernel import Simulator
from repro.minidb import Database, DBConfig

SQL = "SELECT v FROM t WHERE k = ?"


def build(seed=5):
    plan = FaultPlan(name="runstats-crash", rules=[
        FaultRule("runstats.refresh:autostats", "crash", max_fires=1),
    ])
    injector = FaultInjector(plan)
    sim = Simulator(seed=seed, injector=injector)
    db = Database(sim, "autostats", DBConfig(
        auto_runstats=True, auto_runstats_threshold=50,
        auto_runstats_fraction=0.0))
    injector.register_crash("autostats", db.crash)

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (k INT, v TEXT)")
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        yield from session.commit()

    injector.enabled = False
    sim.run_process(setup())
    injector.enabled = True
    return sim, db, injector


def grow(db, start, count):
    def go():
        session = db.session()
        for i in range(start, start + count):
            yield from session.execute(
                "INSERT INTO t (k, v) VALUES (?, ?)", (i, f"v{i}"))
        yield from session.commit()

    db.sim.run_process(go())


def test_crash_inside_refresh_rebinds_consistently(seed=5):
    sim, db, injector = build(seed)
    assert db.explain(SQL)["access"] == "table_scan"   # newborn stats

    with pytest.raises(CrashedError):
        grow(db, 0, 60)            # trips the threshold → injected crash
    assert injector.crashes and (
        injector.crashes[0]["point"] == "runstats.refresh:autostats")
    # The refresh never ran: no torn stats, no half-bumped version.
    assert db.metrics.auto_runstats_runs == 0

    injector.enabled = False       # recovery runs clean
    db.restart()
    version_after_restart = db.catalog.stats_version("t")

    def query(k):
        def go():
            session = db.session()
            result = yield from session.execute(SQL, (k,))
            yield from session.commit()
            return result.rows
        return sim.run_process(go())

    # Committed data survived; the re-bound plan is the STALE scan plan
    # (statistics were untouched by the aborted refresh).
    assert query(59) == [("v59",)]
    assert db.explain(SQL)["access"] == "table_scan"
    assert db.catalog.stats_for("t").card == 0
    assert db.catalog.stats_version("t") == version_after_restart

    # Counters were volatile: growth after restart starts from zero and
    # the NEXT threshold crossing completes the refresh, re-binding the
    # cached plan to the index.
    grow(db, 60, 49)
    assert db.metrics.auto_runstats_runs == 0          # 49 < 50
    grow(db, 109, 1)
    assert db.metrics.auto_runstats_runs == 1
    assert db.catalog.stats_for("t").card == 110
    assert db.explain(SQL)["access"] == "index_scan"
    assert query(109) == [("v109",)]


def test_crash_schedule_is_deterministic():
    def run(seed):
        sim, db, injector = build(seed)
        with pytest.raises(CrashedError):
            grow(db, 0, 60)
        return [(f["t"], f["point"], f["kind"]) for f in injector.fired]

    assert run(11) == run(11)

"""FaultPlan serialization, rule discipline, injector determinism."""

import pytest

from repro.chaos.faults import (FaultInjector, FaultPlan, FaultPlanError,
                                FaultRule, NULL_INJECTOR, default_plan)
from repro.errors import TransientIOError
from repro.kernel import Simulator


# ------------------------------------------------------------------ plan JSON

def test_plan_round_trips_through_json():
    plan = default_plan(seed=3)
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.name == plan.name
    assert clone.rules == plan.rules
    # and the round trip is a fixed point at the byte level
    assert clone.to_json() == plan.to_json()


def test_plan_round_trip_preserves_every_field():
    plan = FaultPlan(name="x", rules=[
        FaultRule("fs.read:fs1", "io_error", prob=0.25, max_fires=None,
                  skip=3, rule_id="custom"),
        FaultRule("channel.send:*", "delay", delay=1.5, max_fires=7),
    ])
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.rules[0].max_fires is None
    assert clone.rules[0].skip == 3
    assert clone.rules[0].rule_id == "custom"
    assert clone.rules[1].delay == 1.5
    assert clone.rules[1].max_fires == 7


@pytest.mark.parametrize("bad", [
    dict(point="fs.read:fs1", kind="meteor"),
    dict(point="", kind="drop"),
    dict(point="fs.read:fs1", kind="io_error", prob=1.5),
    dict(point="fs.read:fs1", kind="io_error", skip=-1),
    dict(point="fs.read:fs1", kind="delay", delay=-0.1),
    dict(point="fs.read:fs1", kind="io_error", max_fires=-2),
])
def test_rule_validation_rejects(bad):
    with pytest.raises(FaultPlanError):
        FaultRule(**bad)


def test_from_json_rejects_garbage():
    with pytest.raises(FaultPlanError):
        FaultPlan.from_json("not json at all {")
    with pytest.raises(FaultPlanError):
        FaultPlan.from_json("[1, 2, 3]")


def test_with_ids_is_stable_under_rule_removal():
    plan = FaultPlan(rules=[
        FaultRule("a:*", "drop"),
        FaultRule("b:*", "crash"),
        FaultRule("a:*", "drop"),   # same shape: gets a #2 ordinal
    ]).with_ids()
    ids = [r.rule_id for r in plan.rules]
    assert ids == ["drop@a:*", "crash@b:*", "drop@a:*#2"]
    # Dropping the middle rule must not rename the survivors — that is
    # what keeps the shrinker's RNG streams aligned.
    smaller = FaultPlan(rules=[plan.rules[0], plan.rules[2]]).with_ids()
    assert [r.rule_id for r in smaller.rules] == ["drop@a:*", "drop@a:*#2"]


def test_with_ids_rejects_duplicates():
    with pytest.raises(FaultPlanError):
        FaultPlan(rules=[
            FaultRule("a:*", "drop", rule_id="same"),
            FaultRule("b:*", "drop", rule_id="same"),
        ]).with_ids()


# ------------------------------------------------------------------ discipline

def fire_sequence(seed, plan, points, kinds=("drop", "delay", "io_error")):
    sim = Simulator(seed=seed)
    injector = FaultInjector(plan)
    injector.bind(sim)
    for point in points:
        injector.fire(point, kinds)
    return injector.fired


def test_skip_then_bounded_fires():
    plan = FaultPlan(rules=[FaultRule("p", "drop", skip=2, max_fires=1)])
    fired = fire_sequence(0, plan, ["p"] * 6)
    assert len(fired) == 1  # arrivals 1-2 skipped, 3 fires, rest capped


def test_first_matching_rule_wins_and_globs_match():
    plan = FaultPlan(rules=[
        FaultRule("fs.read:fs1", "io_error", max_fires=None),
        FaultRule("fs.read:*", "io_error", max_fires=None),
    ])
    fired = fire_sequence(0, plan, ["fs.read:fs1", "fs.read:fs2"],
                          kinds=("io_error",))
    assert [f["rule"] for f in fired] == ["io_error@fs.read:fs1",
                                         "io_error@fs.read:*"]


def test_kind_filter_keeps_wrong_kinds_silent():
    plan = FaultPlan(rules=[FaultRule("p", "crash")])
    assert fire_sequence(0, plan, ["p"] * 3) == []


def test_injector_is_deterministic_across_runs():
    plan = FaultPlan(rules=[
        FaultRule("fs.read:*", "io_error", prob=0.3, max_fires=None),
        FaultRule("channel.send:x", "drop", prob=0.5, max_fires=None),
    ])
    points = (["fs.read:fs1", "channel.send:x", "fs.read:fs2"] * 40)
    first = fire_sequence(11, plan, points)
    second = fire_sequence(11, plan, points)
    assert first == second
    assert first  # probabilistic rules actually fired
    # a different seed draws a different schedule
    assert fire_sequence(12, plan, points) != first


def test_per_rule_streams_survive_unrelated_removal():
    """Removing one probabilistic rule leaves the other's draws intact."""
    keep = FaultRule("fs.read:*", "io_error", prob=0.3, max_fires=None)
    drop = FaultRule("channel.send:x", "drop", prob=0.5, max_fires=None)
    points = ["fs.read:fs1", "channel.send:x"] * 60
    both = fire_sequence(7, FaultPlan(rules=[keep, drop]), points)
    alone = fire_sequence(7, FaultPlan(rules=[keep]), points)
    assert ([f for f in both if f["rule"] == "io_error@fs.read:*"]
            == alone)


def test_null_injector_is_inert():
    assert NULL_INJECTOR.enabled is False
    assert NULL_INJECTOR.fire("anything", ("drop",)) is None
    NULL_INJECTOR.fs_check("fs.read:fs1")   # must not raise
    NULL_INJECTOR.maybe_crash("wal.force.before:db", "db")


def test_partition_is_a_valid_reply_kind():
    from repro.chaos.faults import KINDS, REPLY_KINDS
    assert "partition" in KINDS
    assert REPLY_KINDS == ("partition",)
    FaultRule("rpc.reply:dlfm-x", "partition")  # validates


def test_default_plan_includes_a_partition_rule():
    rules = [r for r in default_plan(seed=0).rules
             if r.kind == "partition"]
    assert rules, "default chaos plan must exercise partition/heal"
    assert all(r.point.startswith("rpc.reply:") for r in rules)


def test_fs_check_raises_transient_io_error():
    sim = Simulator(seed=0)
    injector = FaultInjector(FaultPlan(rules=[
        FaultRule("fs.read:fs1", "io_error")]))
    injector.bind(sim)
    with pytest.raises(TransientIOError):
        injector.fs_check("fs.read:fs1", "/data/x")
    injector.fs_check("fs.read:fs1", "/data/x")  # max_fires=1 exhausted

"""Campaign determinism, seeded corruptions, replay, and shrinking."""

import pytest

from repro.chaos.campaign import (CORRUPTIONS, CampaignConfig, replay,
                                  run_campaign)
from repro.chaos.faults import FaultPlan, FaultRule
from repro.chaos.shrink import shrink_config, shrink_doc

#: A quiet plan: no faults, so small campaigns stay fast and clean.
EMPTY_PLAN = FaultPlan(name="none", rules=[])


def quiet_config(**kw):
    kw.setdefault("seed", 0)
    kw.setdefault("ops", 12)
    kw.setdefault("round_ops", 12)
    kw.setdefault("plan", EMPTY_PLAN)
    return CampaignConfig(**kw)


def codes(result):
    return {v.code for v in result.violations}


# ------------------------------------------------------------------ clean runs

def test_fault_free_campaign_is_clean():
    result = run_campaign(quiet_config())
    assert result.ok, [v.detail for v in result.violations]
    assert len(result.op_trace) == 12
    assert result.fired == []


def test_campaign_is_deterministic():
    config = CampaignConfig(seed=5, ops=30, round_ops=15)
    first = run_campaign(config)
    second = run_campaign(config)
    assert first.to_json() == second.to_json()


# ------------------------------------------------------------- sharded fleets

def test_sharded_campaign_with_rebalance_is_clean_and_deterministic():
    # Default plan: crash/delay/dup faults plus the shard.move crash
    # points, hammering a 3-shard fleet with rebalances mixed in.
    config = CampaignConfig(seed=1, ops=80, shards=3)
    first = run_campaign(config)
    assert first.ok, [v.detail for v in first.violations]
    assert any(op["kind"] == "move_group" for op in first.op_trace)
    second = run_campaign(config)
    assert first.to_json() == second.to_json()


def test_sharded_repro_doc_replays():
    result = run_campaign(quiet_config(ops=16, round_ops=16, shards=2))
    assert result.ok, [v.detail for v in result.violations]
    doc = result.repro_doc()
    assert doc["shards"] == 2
    assert replay(doc).to_json() == result.to_json()


# ------------------------------------------------------- corruptions are caught

def test_checker_catches_dangling_link_row():
    result = run_campaign(quiet_config(
        corruptions=("dangling-link-row",)))
    assert "dangling-host-ref" in codes(result)


def test_checker_catches_leaked_lock():
    result = run_campaign(quiet_config(corruptions=("leaked-lock",)))
    assert "leaked-locks" in codes(result)


def test_checker_catches_deleted_group_marker():
    result = run_campaign(quiet_config(
        corruptions=("deleted-group-marker",)))
    assert "unresolved-deleted-group" in codes(result)


def test_every_registered_corruption_applies():
    """The registry stays honest: each corruption finds a target and the
    checker flags it (no silent 'corruption-inapplicable')."""
    for name in sorted(CORRUPTIONS):
        result = run_campaign(quiet_config(corruptions=(name,)))
        assert not result.ok, name
        assert "corruption-inapplicable" not in codes(result), name


# ------------------------------------------------------------------ replay

def test_corruption_repro_doc_replays_to_same_violation():
    result = run_campaign(quiet_config(corruptions=("leaked-lock",)))
    assert not result.ok
    doc = result.repro_doc()
    again = replay(doc)
    assert [v.to_doc() for v in again.violations] == doc["violations"]
    assert again.to_json() == result.to_json()


# ------------------------------------------------------------------ shrinking

def test_shrinker_produces_smaller_still_failing_config():
    # Noise rules around a deterministic failure: the shrinker must keep
    # failing while never growing the campaign.
    plan = FaultPlan(name="noisy", rules=[
        FaultRule("channel.send:dlfm-agent", "delay", prob=0.05,
                  max_fires=None, delay=0.25),
        FaultRule("fs.stat:*", "io_error", prob=0.01, max_fires=None),
        FaultRule("rpc.dup:Commit", "dup", prob=0.05, max_fires=None),
    ])
    config = quiet_config(ops=24, round_ops=12, plan=plan,
                          corruptions=("leaked-lock",))
    target = {"leaked-locks"}
    smaller, trials = shrink_config(config, target, max_trials=8)
    assert trials <= 8
    assert smaller.ops <= config.ops
    assert len(smaller.plan.rules) <= len(plan.rules)
    final = run_campaign(smaller)
    assert codes(final) & target


def test_shrink_doc_records_provenance():
    result = run_campaign(quiet_config(
        ops=24, round_ops=12, corruptions=("leaked-lock",)))
    assert not result.ok
    out = shrink_doc(result.repro_doc(), max_trials=6)
    assert out["shrunk_from"] == {"ops": 24, "rules": 0}
    assert out["ops"] <= 24
    assert {v["code"] for v in out["violations"]} & {"leaked-locks"}
    # the shrunken document still replays to the failure
    assert not replay(out).ok


def test_shrink_doc_passes_clean_docs_through():
    result = run_campaign(quiet_config())
    doc = result.repro_doc()
    assert shrink_doc(doc) is doc

"""Prepared statements: parse once, bind once, execute many.

The contract under test (DESIGN.md §14): a
:class:`~repro.minidb.session.PreparedStatement` holds a stable cache
key, NOT a plan object — every execution routes through the shared
bound-plan cache, so the handle survives DDL eviction, stats-version
invalidation and even a crash (it silently re-binds, paying
``compile_cpu`` once, exactly like a DB2 package rebind).
"""

import pytest

from repro.errors import DatabaseError
from repro.minidb import Database, DBConfig
from repro.minidb.config import TimingModel

COMPILE = 0.004


def make_db(sim, **cfg):
    db = Database(sim, "prep", DBConfig(**cfg))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (k INT, v TEXT)")
        for i in range(50):
            yield from session.execute(
                "INSERT INTO t (k, v) VALUES (?, ?)", (i, f"v{i}"))
        yield from session.commit()

    sim.run_process(setup())
    return db


def compile_only_timing():
    """Bill ONLY compile time, so sim-clock deltas isolate it."""
    return TimingModel(enabled=True, cpu_per_statement=0.0, page_io=0.0,
                       lock_op=0.0, rpc=0.0, log_force=0.0,
                       compile_cpu=COMPILE)


def test_prepare_once_execute_many_hits_cache(sim):
    db = make_db(sim)
    hits0, binds0 = db.metrics.plan_hits, db.metrics.plan_binds

    def go():
        session = db.session()
        stmt = yield from session.prepare("SELECT v FROM t WHERE k = ?")
        rows = []
        for k in range(10):
            result = yield from stmt.execute((k,))
            rows.append(result.rows[0])
        yield from session.commit()
        return stmt, rows

    stmt, rows = sim.run_process(go())
    assert rows == [(f"v{k}",) for k in range(10)]
    assert stmt.executions == 10
    assert db.metrics.plan_binds == binds0 + 1   # bound at prepare()
    assert db.metrics.plan_hits == hits0 + 10    # every execution hit


def test_compile_cpu_billed_only_on_miss(sim):
    db = make_db(sim, timing=compile_only_timing())

    def go():
        session = db.session()
        started = sim.now
        stmt = yield from session.prepare("SELECT v FROM t WHERE k = ?")
        prepare_cost = sim.now - started
        started = sim.now
        for k in range(10):
            yield from stmt.execute((k,))
        execute_cost = sim.now - started
        yield from session.commit()
        return prepare_cost, execute_cost

    prepare_cost, execute_cost = sim.run_process(go())
    assert prepare_cost == pytest.approx(COMPILE)
    assert execute_cost == 0.0


def test_interpolated_sql_pays_compile_every_time(sim):
    """The tax the API exists to remove: literal-splicing SQL gets a
    distinct cache key per value and re-compiles on every execution."""
    db = make_db(sim, timing=compile_only_timing())

    def go():
        session = db.session()
        started = sim.now
        for k in range(10):
            yield from session.execute(f"SELECT v FROM t WHERE k = {k}")
        yield from session.commit()
        return sim.now - started

    assert sim.run_process(go()) == pytest.approx(10 * COMPILE)


def test_prepare_rejects_ddl_and_explain(sim):
    db = make_db(sim)

    def go(sql):
        session = db.session()
        yield from session.prepare(sql)

    for sql in ("CREATE TABLE x (a INT)", "DROP TABLE t",
                "CREATE INDEX t_k ON t (k)",
                "EXPLAIN SELECT * FROM t WHERE k = 1"):
        with pytest.raises(DatabaseError):
            sim.run_process(go(sql))


def test_ddl_eviction_rebinds_held_statement(sim):
    """CREATE INDEX evicts the bound scan plan; the HELD handle picks up
    the index plan on its next execution — no re-prepare needed."""
    db = make_db(sim)
    db.set_table_stats("t", card=1_000_000, npages=40_000,
                       colcard={"k": 1_000_000})

    def go():
        session = db.session()
        stmt = yield from session.prepare("SELECT v FROM t WHERE k = ?")
        yield from stmt.execute((1,))
        yield from session.commit()
        scan_kind = stmt.plan.access.kind
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        yield from session.commit()
        assert stmt.plan is None            # evicted by the DDL
        result = yield from stmt.execute((2,))
        yield from session.commit()
        return scan_kind, stmt.plan.access.kind, result.rows

    scan_kind, rebound_kind, rows = sim.run_process(go())
    assert scan_kind == "table_scan"
    assert rebound_kind == "index_scan"
    assert rows == [("v2",)]


def test_stats_bump_rebinds_mid_use(sim):
    """A stats-version bump between executions re-binds the held handle
    mid-use and pays compile_cpu exactly once more."""
    db = make_db(sim, timing=compile_only_timing())

    def setup_index():
        session = db.session()
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        yield from session.commit()

    sim.run_process(setup_index())

    def go():
        session = db.session()
        stmt = yield from session.prepare("SELECT v FROM t WHERE k = ?")
        yield from stmt.execute((1,))
        before_kind = stmt.plan.access.kind
        # stats surgery: huge card makes the index plan the clear winner
        db.set_table_stats("t", card=1_000_000, npages=40_000,
                           colcard={"k": 1_000_000})
        invalidations = db.metrics.plan_invalidations
        started = sim.now
        yield from stmt.execute((2,))       # re-binds against new stats
        rebind_cost = sim.now - started
        started = sim.now
        yield from stmt.execute((3,))       # back to cache hits
        hit_cost = sim.now - started
        yield from session.commit()
        return (before_kind, stmt.plan.access.kind,
                db.metrics.plan_invalidations - invalidations,
                rebind_cost, hit_cost)

    before, after, invalidated, rebind_cost, hit_cost = sim.run_process(go())
    assert before == "table_scan"           # 50 rows: scan is cheaper
    assert after == "index_scan"            # million-row stats flip it
    assert invalidated == 1
    assert rebind_cost == pytest.approx(COMPILE)
    assert hit_cost == 0.0


def test_crash_clears_prepared_state_then_rebinds(sim):
    db = make_db(sim, timing=compile_only_timing())

    def prepare():
        session = db.session()
        stmt = yield from session.prepare("SELECT v FROM t WHERE k = ?")
        yield from stmt.execute((1,))
        yield from session.commit()
        return stmt

    stmt = sim.run_process(prepare())
    assert stmt.plan is not None
    db.crash()
    db.restart()
    assert stmt.plan is None                # cache gone with the crash

    def reexecute():
        session = db.session()
        started = sim.now
        result = yield from session.execute(stmt.sql, (1,))
        cost = sim.now - started
        yield from session.commit()
        return result.rows, cost

    rows, cost = sim.run_process(reexecute())
    assert rows == [("v1",)]
    assert cost == pytest.approx(COMPILE)   # implicit re-prepare, once


def test_si_snapshot_reads_through_prepared_plan(sim):
    """A prepared SELECT executed under SI resolves against the session
    snapshot: a concurrent committed UPDATE stays invisible."""
    db = make_db(sim, isolation="CS")

    def go():
        reader = db.session("SI")
        stmt = yield from reader.prepare("SELECT v FROM t WHERE k = ?")
        first = yield from stmt.execute((1,))
        writer = db.session()
        yield from writer.execute(
            "UPDATE t SET v = ? WHERE k = ?", ("changed", 1))
        yield from writer.commit()
        again = yield from stmt.execute((1,))     # same snapshot
        yield from reader.commit()
        fresh = db.session("SI")
        final = yield from fresh.execute(stmt.sql, (1,))
        yield from fresh.commit()
        return first.rows, again.rows, final.rows

    first, again, final = sim.run_process(go())
    assert first == [("v1",)]
    assert again == [("v1",)]               # snapshot-stable through handle
    assert final == [("changed",)]          # new snapshot sees the commit

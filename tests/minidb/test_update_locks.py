"""U (update) locks: DB2's remedy for conversion deadlocks.

The classic pathology: two transactions read the same row under RR
(shared locks held) and then both try to update it — each waits for the
other's S lock to clear before converting to X: a conversion deadlock.
With ``update_locks=True``, update cursors (SELECT ... FOR UPDATE) take
U instead: the second reader-for-update blocks immediately, writers
serialize, and plain readers are still admitted alongside the U holder.
"""


from repro.errors import TransactionAborted
from repro.kernel import Simulator, Timeout
from repro.minidb import Database, DBConfig
from repro.minidb.locks import LockMode, compatible, supremum


def make_db(sim, **cfg):
    cfg.setdefault("next_key_locking", False)
    db = Database(sim, "u", DBConfig(**cfg))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (k INT, v INT)")
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        yield from session.execute("INSERT INTO t (k, v) VALUES (1, 0)")
        yield from session.commit()
        db.set_table_stats("t", card=1_000_000, colcard={"k": 1_000_000})

    sim.run_process(setup())
    return db


# -- mode algebra ---------------------------------------------------------------

def test_u_compatibility():
    assert compatible(LockMode.U, LockMode.S)
    assert compatible(LockMode.U, LockMode.IS)
    assert not compatible(LockMode.U, LockMode.U)
    assert not compatible(LockMode.U, LockMode.X)
    assert not compatible(LockMode.U, LockMode.IX)


def test_u_supremum():
    assert supremum(LockMode.S, LockMode.U) == LockMode.U
    assert supremum(LockMode.U, LockMode.X) == LockMode.X
    assert supremum(LockMode.IS, LockMode.U) == LockMode.U


def test_full_matrix_covers_u():
    for mode in LockMode:
        assert compatible(mode, LockMode.U) == compatible(LockMode.U, mode)
        supremum(mode, LockMode.U)  # must be defined


# -- behavioural contrast ------------------------------------------------------------

def _read_then_update(select_sql: str, update_locks: bool):
    """Two txns: read row 1 (holding locks), pause, then update it."""
    sim = Simulator()
    db = make_db(sim, update_locks=update_locks,
                 deadlock_check_interval=0.5, isolation="RR")
    outcomes = []

    def txn(value):
        session = db.session()
        try:
            yield from session.execute(select_sql, ())
            yield Timeout(1.0)
            yield from session.execute(
                "UPDATE t SET v = ? WHERE k = 1", (value,))
            yield from session.commit()
            outcomes.append("ok")
        except TransactionAborted as error:
            outcomes.append(error.reason)
            yield from session.rollback()

    sim.spawn(txn(1))
    sim.spawn(txn(2))
    sim.run()
    return sorted(outcomes), db


def test_plain_read_then_update_conversion_deadlock():
    """Without update cursors: both hold S, both convert → deadlock."""
    outcomes, db = _read_then_update(
        "SELECT v FROM t WHERE k = 1", update_locks=False)
    assert outcomes == ["deadlock", "ok"]
    assert db.locks.metrics.deadlocks == 1


def test_for_update_with_u_locks_serializes_cleanly():
    """With U cursors the second FOR UPDATE blocks up front: no deadlock,
    both transactions succeed one after the other."""
    outcomes, db = _read_then_update(
        "SELECT v FROM t WHERE k = 1 FOR UPDATE", update_locks=True)
    assert outcomes == ["ok", "ok"]
    assert db.locks.metrics.deadlocks == 0


def test_for_update_with_x_also_avoids_deadlock_but_blocks_readers():
    """X-mode FOR UPDATE (the default) also serializes writers..."""
    outcomes, db = _read_then_update(
        "SELECT v FROM t WHERE k = 1 FOR UPDATE", update_locks=False)
    assert outcomes == ["ok", "ok"]


def test_u_cursor_admits_plain_readers_x_cursor_does_not():
    """...but unlike X, a U cursor lets plain readers through."""
    def reader_latency(update_locks: bool) -> float:
        sim = Simulator()
        db = make_db(sim, update_locks=update_locks, isolation="CS")
        done = {}

        def cursor_holder():
            session = db.session()
            yield from session.execute(
                "SELECT v FROM t WHERE k = 1 FOR UPDATE", ())
            yield Timeout(10.0)   # think before deciding to update
            yield from session.commit()

        def reader():
            session = db.session()
            yield Timeout(1.0)
            yield from session.execute("SELECT v FROM t WHERE k = 1", ())
            yield from session.commit()
            done["at"] = sim.now

        sim.spawn(cursor_holder())
        sim.spawn(reader())
        sim.run()
        return done["at"]

    assert reader_latency(update_locks=True) == 1.0    # U admits S
    assert reader_latency(update_locks=False) == 10.0  # X blocks S


def test_update_locks_off_by_default():
    assert DBConfig().update_locks is False

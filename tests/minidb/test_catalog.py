"""Catalog unit tests: DDL bookkeeping and statistics versioning."""

import pytest

from repro.errors import CatalogError
from repro.minidb.catalog import Catalog, ColumnDef


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.create_table("t", [ColumnDef("a", "INT"), ColumnDef("b", "TEXT")])
    return cat


def test_create_table_registers_columns(catalog):
    table = catalog.require_table("t")
    assert table.column_names == ["a", "b"]
    assert table.position("b") == 1


def test_duplicate_table_rejected(catalog):
    with pytest.raises(CatalogError):
        catalog.create_table("t", [ColumnDef("x", "INT")])


def test_duplicate_column_rejected():
    cat = Catalog()
    with pytest.raises(CatalogError):
        cat.create_table("bad", [ColumnDef("a", "INT"),
                                 ColumnDef("a", "TEXT")])


def test_unknown_table_and_column(catalog):
    with pytest.raises(CatalogError):
        catalog.require_table("nope")
    with pytest.raises(CatalogError):
        catalog.require_table("t").position("nope")


def test_create_index_validates_columns(catalog):
    catalog.create_index("t_a", "t", ("a",), unique=True)
    assert catalog.require_index("t_a").unique
    with pytest.raises(CatalogError):
        catalog.create_index("t_bad", "t", ("missing",), unique=False)
    with pytest.raises(CatalogError):
        catalog.create_index("t_a", "t", ("b",), unique=False)  # dup name


def test_drop_table_removes_indexes(catalog):
    catalog.create_index("t_a", "t", ("a",), unique=False)
    catalog.drop_table("t")
    with pytest.raises(CatalogError):
        catalog.require_table("t")
    with pytest.raises(CatalogError):
        catalog.require_index("t_a")


def test_fresh_table_stats_are_empty(catalog):
    stats = catalog.stats_for("t")
    assert stats.card == 0
    assert stats.manual is False


def test_runstats_updates_and_clears_manual(catalog):
    catalog.set_stats("t", card=10)
    assert catalog.stats_for("t").manual is True
    catalog.runstats("t", card=55, npages=3, colcard={"a": 50})
    stats = catalog.stats_for("t")
    assert stats.card == 55
    assert stats.manual is False
    assert stats.distinct("a") == 50


def test_every_stats_change_bumps_version(catalog):
    v0 = catalog.stats_version("t")
    catalog.set_stats("t", card=10)
    v1 = catalog.stats_version("t")
    catalog.runstats("t", card=1, npages=1, colcard={})
    v2 = catalog.stats_version("t")
    assert v0 < v1 < v2


def test_set_stats_rejects_negative_card(catalog):
    with pytest.raises(CatalogError):
        catalog.set_stats("t", card=-1)


def test_distinct_default_heuristic(catalog):
    catalog.set_stats("t", card=1000)  # no colcard given
    assert catalog.stats_for("t").distinct("a") >= 1


def test_set_stats_derives_npages(catalog):
    catalog.set_stats("t", card=3200)
    assert catalog.stats_for("t").npages == 3200 // 32 + 1

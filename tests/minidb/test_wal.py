"""Direct unit tests for the log manager and engine configuration."""

import pytest

from repro.errors import LogFullError
from repro.minidb import DBConfig
from repro.minidb.config import TimingModel
from repro.minidb.txn import Transaction
from repro.minidb.wal import (ABORT, CLR, COMMIT, INSERT, LogManager,
                              PREPARE)


def txn(txn_id=1):
    return Transaction(txn_id, "RR", 0.0)


def test_lsns_start_at_one_and_increase():
    wal = LogManager(capacity=100)
    t = txn()
    first = wal.append(INSERT, t, table="t", rid=(0, 0), after=(1,))
    second = wal.append(INSERT, t, table="t", rid=(0, 1), after=(2,))
    assert (first.lsn, second.lsn) == (1, 2)
    assert second.prev_lsn == 1
    assert t.first_lsn == 1
    assert t.last_lsn == 2


def test_force_is_monotone_and_reports_work():
    wal = LogManager(capacity=100)
    t = txn()
    wal.append(INSERT, t, table="t", rid=(0, 0), after=(1,))
    assert wal.force() is True
    assert wal.force() is False  # nothing new
    assert wal.flushed_upto == 1


def test_crash_discards_unforced_tail():
    wal = LogManager(capacity=100)
    t = txn()
    wal.append(INSERT, t, table="t", rid=(0, 0), after=(1,))
    wal.force()
    wal.append(INSERT, t, table="t", rid=(0, 1), after=(2,))
    wal.crash()
    assert wal.tail_lsn == 1
    assert [r.lsn for r in wal.durable_records()] == [1]


def test_capacity_enforced_for_data_records():
    wal = LogManager(capacity=3)
    t = txn()
    for i in range(3):
        wal.append(INSERT, t, table="t", rid=(0, i), after=(i,))
    with pytest.raises(LogFullError):
        wal.append(INSERT, t, table="t", rid=(0, 9), after=(9,))
    assert wal.metrics.log_fulls == 1
    assert t.rollback_only and t.abort_reason == "logfull"


def test_ending_records_allowed_even_when_full():
    wal = LogManager(capacity=2)
    t = txn()
    wal.append(INSERT, t, table="t", rid=(0, 0), after=(1,))
    wal.append(INSERT, t, table="t", rid=(0, 1), after=(2,))
    # CLRs / ABORT / COMMIT / PREPARE must still fit so the pinning
    # transaction can finish.
    wal.append(CLR, t, table="t", rid=(0, 1), after=None, undo_next=1)
    wal.append(ABORT, t)
    wal.append(PREPARE, txn(2))
    wal.append(COMMIT, txn(3))


def test_window_shrinks_after_checkpoint():
    wal = LogManager(capacity=10)
    t = txn()
    for i in range(5):
        wal.append(INSERT, t, table="t", rid=(0, i), after=(i,))
    wal.append(COMMIT, t)
    assert wal.window(active_floor=None) == 6
    wal.note_checkpoint(6)
    assert wal.window(active_floor=None) == 0


def test_active_floor_pins_window():
    wal = LogManager(capacity=100)
    old = txn(1)
    wal.append(INSERT, old, table="t", rid=(0, 0), after=(1,))
    for i in range(5):
        t = txn(10 + i)
        wal.append(INSERT, t, table="t", rid=(1, i), after=(i,))
        wal.append(COMMIT, t)
    wal.note_checkpoint(wal.tail_lsn)
    # the old transaction's first LSN still pins the window
    assert wal.window(active_floor=old.first_lsn) == wal.tail_lsn


# -- configuration -----------------------------------------------------------------

def test_config_validation():
    DBConfig().validate()
    with pytest.raises(ValueError):
        DBConfig(lock_timeout=0).validate()
    with pytest.raises(ValueError):
        DBConfig(maxlocks_fraction=0).validate()
    with pytest.raises(ValueError):
        DBConfig(isolation="SNAPSHOT").validate()
    with pytest.raises(ValueError):
        DBConfig(btree_order=2).validate()


def test_config_with_changes_is_functional():
    base = DBConfig()
    derived = base.with_changes(lock_timeout=5.0)
    assert derived.lock_timeout == 5.0
    assert base.lock_timeout == 60.0


def test_timing_model_zero_charges_nothing():
    timing = TimingModel.zero()
    assert timing.statement_cost() == 0.0
    assert timing.io_cost(10) == 0.0
    assert timing.log_force_cost() == 0.0
    assert timing.rpc_cost() == 0.0


def test_timing_model_calibrated_charges():
    timing = TimingModel.calibrated()
    assert timing.statement_cost() > 0
    assert timing.io_cost(2) == 2 * timing.page_io
    assert timing.log_force_cost() > 0
    assert timing.rpc_cost() > 0

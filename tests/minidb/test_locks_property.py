"""Property-based lock manager testing.

Random concurrent lock workloads must preserve:

P1  mutual exclusion — at no instant do two transactions hold
    incompatible modes on one resource;
P2  liveness — every process eventually finishes (granted, deadlock
    victim, or timeout: nothing hangs);
P3  accounting — after all transactions end, the lock table is empty.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TransactionAborted
from repro.kernel import Simulator, Timeout
from repro.minidb.config import DBConfig
from repro.minidb.locks import LockManager, LockMode, compatible
from repro.minidb.txn import TransactionTable

# Each process: list of (resource index, mode, hold time)
step = st.tuples(st.integers(0, 3),
                 st.sampled_from([LockMode.S, LockMode.X]),
                 st.floats(0.0, 2.0))
process_plan = st.lists(step, min_size=1, max_size=4)


@settings(max_examples=40, deadline=None)
@given(st.lists(process_plan, min_size=2, max_size=5))
def test_random_workloads_hold_invariants(plans):
    sim = Simulator(seed=3)
    config = DBConfig(lock_timeout=30.0, deadlock_check_interval=0.5)
    locks = LockManager(sim, config)
    txns = TransactionTable()
    violations = []
    finished = []

    def audit():
        """P1: check every lock head for incompatible co-holders."""
        for head in locks.heads.values():
            holders = list(head.holders.items())
            for i, (txn_a, mode_a) in enumerate(holders):
                for txn_b, mode_b in holders[i + 1:]:
                    if not compatible(mode_a, mode_b):
                        violations.append(
                            (head.resource, txn_a, mode_a, txn_b, mode_b))

    def proc(plan, index):
        txn = txns.begin("RR", sim.now)
        try:
            for resource_index, mode, hold in plan:
                resource = ("row", "t", (0, resource_index))
                yield from locks.acquire(txn, resource, mode)
                audit()
                if hold:
                    yield Timeout(hold)
                audit()
        except TransactionAborted:
            pass
        finally:
            locks.release_all(txn)
            txns.end(txn, __import__(
                "repro.minidb.txn", fromlist=["TxnState"]).TxnState.ABORTED)
            finished.append(index)

    for i, plan in enumerate(plans):
        sim.spawn(proc(plan, i), f"p{i}")
    sim.run(until=500.0)

    assert violations == []                  # P1
    assert sorted(finished) == list(range(len(plans)))  # P2
    assert locks.total_locks == 0            # P3
    assert locks.heads == {}
    assert locks.waiting_txns() == []


@settings(max_examples=30, deadline=None)
@given(st.lists(st.lists(st.integers(0, 3), min_size=2, max_size=4,
                         unique=True),
                min_size=2, max_size=4))
def test_opposite_order_x_locks_always_resolve(orders):
    """All-X workloads in arbitrary orders: pure deadlock bait. Everyone
    must terminate via grant or victim selection."""
    sim = Simulator(seed=11)
    config = DBConfig(lock_timeout=60.0, deadlock_check_interval=0.5)
    locks = LockManager(sim, config)
    txns = TransactionTable()
    outcomes = []

    def proc(order):
        txn = txns.begin("RR", sim.now)
        try:
            for resource_index in order:
                yield from locks.acquire(
                    txn, ("row", "t", (0, resource_index)), LockMode.X)
                yield Timeout(0.3)
            outcomes.append("done")
        except TransactionAborted as error:
            outcomes.append(error.reason)
        finally:
            locks.release_all(txn)

    for order in orders:
        sim.spawn(proc(order))
    sim.run(until=1000.0)
    assert len(outcomes) == len(orders)
    assert locks.total_locks == 0
    # at least one transaction always completes (no total livelock)
    assert "done" in outcomes

"""Lock manager tests: modes, queuing, deadlock, timeout, escalation."""

import pytest

from repro.errors import DeadlockError, LockTimeoutError, TransactionAborted
from repro.kernel import Simulator, Timeout
from repro.minidb.config import DBConfig
from repro.minidb.locks import LockManager, LockMode, compatible, supremum
from repro.minidb.txn import TransactionTable


def make(sim=None, **cfg):
    sim = sim or Simulator()
    config = DBConfig(**cfg) if cfg else DBConfig()
    return sim, LockManager(sim, config), TransactionTable()


ROW = ("row", "t", (0, 0))
ROW2 = ("row", "t", (0, 1))
TABLE = ("table", "t")


# -- mode algebra -----------------------------------------------------------

def test_compatibility_matrix_symmetry():
    for a in LockMode:
        for b in LockMode:
            assert compatible(a, b) == compatible(b, a)


def test_compatibility_spot_checks():
    assert compatible(LockMode.IS, LockMode.IX)
    assert compatible(LockMode.IX, LockMode.IX)
    assert not compatible(LockMode.IX, LockMode.S)
    assert compatible(LockMode.S, LockMode.S)
    assert not compatible(LockMode.X, LockMode.IS)
    assert compatible(LockMode.SIX, LockMode.IS)
    assert not compatible(LockMode.SIX, LockMode.IX)


def test_supremum_lattice():
    assert supremum(LockMode.IS, LockMode.IX) == LockMode.IX
    assert supremum(LockMode.S, LockMode.IX) == LockMode.SIX
    assert supremum(LockMode.S, LockMode.X) == LockMode.X
    assert supremum(LockMode.S, LockMode.S) == LockMode.S


# -- basic acquisition --------------------------------------------------------

def test_compatible_locks_granted_immediately():
    sim, locks, txns = make()

    def main():
        t1 = txns.begin("RR", 0)
        t2 = txns.begin("RR", 0)
        assert (yield from locks.acquire(t1, ROW, LockMode.S)) is True
        assert (yield from locks.acquire(t2, ROW, LockMode.S)) is True
        return locks.total_locks

    # two row S locks + one IS intent lock per transaction
    assert sim.run_process(main()) == 4


def test_reacquire_same_lock_is_noop():
    sim, locks, txns = make()

    def main():
        t1 = txns.begin("RR", 0)
        assert (yield from locks.acquire(t1, ROW, LockMode.S)) is True
        assert (yield from locks.acquire(t1, ROW, LockMode.S)) is False
        return locks.total_locks

    # the row S lock + the implicit IS intent lock on its table
    assert sim.run_process(main()) == 2


def test_incompatible_lock_waits_until_release():
    sim, locks, txns = make()
    trace = []

    def holder():
        t1 = txns.begin("RR", 0)
        yield from locks.acquire(t1, ROW, LockMode.X)
        yield Timeout(10.0)
        locks.release_all(t1)
        trace.append(("released", sim.now))

    def waiter():
        t2 = txns.begin("RR", 0)
        yield Timeout(1.0)
        yield from locks.acquire(t2, ROW, LockMode.S)
        trace.append(("granted", sim.now))

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    assert trace == [("released", 10.0), ("granted", 10.0)]
    assert locks.metrics.waits == 1


def test_conversion_s_to_x_when_sole_holder():
    sim, locks, txns = make()

    def main():
        t1 = txns.begin("RR", 0)
        yield from locks.acquire(t1, ROW, LockMode.S)
        yield from locks.acquire(t1, ROW, LockMode.X)
        assert locks.holders_of(ROW)[t1.id] == LockMode.X
        # intent on the table upgraded IS → IX alongside the conversion
        assert locks.holders_of(TABLE)[t1.id] == LockMode.IX
        assert locks.total_locks == 2

    sim.run_process(main())


def test_conversion_jumps_ahead_of_queued_fresh_requests():
    sim, locks, txns = make()
    order = []

    def holder_converting():
        t1 = txns.begin("RR", 0)
        yield from locks.acquire(t1, ROW, LockMode.S)
        yield Timeout(2.0)
        yield from locks.acquire(t1, ROW, LockMode.X)  # waits for t2's S
        order.append(("t1-X", sim.now))
        locks.release_all(t1)

    def co_holder():
        t2 = txns.begin("RR", 0)
        yield from locks.acquire(t2, ROW, LockMode.S)
        yield Timeout(5.0)
        locks.release_all(t2)

    def fresh_x():
        t3 = txns.begin("RR", 0)
        yield Timeout(1.0)
        yield from locks.acquire(t3, ROW, LockMode.X)
        order.append(("t3-X", sim.now))
        locks.release_all(t3)

    sim.spawn(holder_converting())
    sim.spawn(co_holder())
    sim.spawn(fresh_x())
    sim.run()
    assert order == [("t1-X", 5.0), ("t3-X", 5.0)]


def test_fifo_fairness_no_starvation_of_x_by_s_stream():
    sim, locks, txns = make()
    grants = []

    def s_holder():
        t = txns.begin("RR", 0)
        yield from locks.acquire(t, ROW, LockMode.S)
        yield Timeout(3.0)
        locks.release_all(t)

    def x_waiter():
        t = txns.begin("RR", 0)
        yield Timeout(1.0)
        yield from locks.acquire(t, ROW, LockMode.X)
        grants.append(("X", sim.now))
        locks.release_all(t)

    def late_s():
        t = txns.begin("RR", 0)
        yield Timeout(2.0)
        yield from locks.acquire(t, ROW, LockMode.S)  # must queue behind X
        grants.append(("S", sim.now))
        locks.release_all(t)

    sim.spawn(s_holder())
    sim.spawn(x_waiter())
    sim.spawn(late_s())
    sim.run()
    assert grants == [("X", 3.0), ("S", 3.0)]


# -- timeouts -----------------------------------------------------------------

def test_lock_timeout_raises_and_marks_rollback_only():
    sim, locks, txns = make(lock_timeout=5.0)

    def holder():
        t1 = txns.begin("RR", 0)
        yield from locks.acquire(t1, ROW, LockMode.X)
        yield Timeout(100.0)
        locks.release_all(t1)

    def victim():
        t2 = txns.begin("RR", 0)
        with pytest.raises(LockTimeoutError):
            yield from locks.acquire(t2, ROW, LockMode.S)
        assert t2.rollback_only
        assert t2.abort_reason == "timeout"
        return sim.now

    sim.spawn(holder())
    proc = sim.spawn(victim())
    sim.run()
    assert proc.result == 5.0
    assert locks.metrics.timeouts == 1


def test_per_request_timeout_overrides_config():
    sim, locks, txns = make(lock_timeout=60.0)

    def holder():
        t1 = txns.begin("RR", 0)
        yield from locks.acquire(t1, ROW, LockMode.X)
        yield Timeout(100.0)
        locks.release_all(t1)

    def victim():
        t2 = txns.begin("RR", 0)
        with pytest.raises(LockTimeoutError):
            yield from locks.acquire(t2, ROW, LockMode.S, timeout=2.0)
        return sim.now

    sim.spawn(holder())
    proc = sim.spawn(victim())
    sim.run()
    assert proc.result == 2.0


# -- deadlock detection ------------------------------------------------------------

def test_two_txn_deadlock_detected_youngest_dies():
    sim, locks, txns = make(deadlock_check_interval=1.0)
    outcome = {}

    def t1_proc():
        t1 = txns.begin("RR", 0)
        yield from locks.acquire(t1, ROW, LockMode.X)
        yield Timeout(0.5)
        try:
            yield from locks.acquire(t1, ROW2, LockMode.X)
            outcome["t1"] = "granted"
            locks.release_all(t1)
        except DeadlockError:
            outcome["t1"] = "deadlock"
            locks.release_all(t1)

    def t2_proc():
        t2 = txns.begin("RR", 0)
        yield from locks.acquire(t2, ROW2, LockMode.X)
        yield Timeout(0.5)
        try:
            yield from locks.acquire(t2, ROW, LockMode.X)
            outcome["t2"] = "granted"
            locks.release_all(t2)
        except DeadlockError:
            outcome["t2"] = "deadlock"
            locks.release_all(t2)

    sim.spawn(t1_proc())
    sim.spawn(t2_proc())
    sim.run()
    # t2 is younger (higher id) → chosen as victim; t1 then proceeds.
    assert outcome == {"t1": "granted", "t2": "deadlock"}
    assert locks.metrics.deadlocks == 1


def test_three_txn_cycle_detected():
    sim, locks, txns = make(deadlock_check_interval=1.0)
    deadlocked = []

    def proc(mine, wanted):
        t = txns.begin("RR", 0)
        yield from locks.acquire(t, mine, LockMode.X)
        yield Timeout(0.5)
        try:
            yield from locks.acquire(t, wanted, LockMode.X)
        except DeadlockError:
            deadlocked.append(t.id)
        locks.release_all(t)

    r = [("row", "t", (0, i)) for i in range(3)]
    sim.spawn(proc(r[0], r[1]))
    sim.spawn(proc(r[1], r[2]))
    sim.spawn(proc(r[2], r[0]))
    sim.run()
    assert len(deadlocked) == 1
    assert locks.metrics.deadlocks == 1


def test_no_false_deadlock_for_plain_waiting():
    sim, locks, txns = make(deadlock_check_interval=0.5)

    def holder():
        t = txns.begin("RR", 0)
        yield from locks.acquire(t, ROW, LockMode.X)
        yield Timeout(10.0)
        locks.release_all(t)

    def waiter():
        t = txns.begin("RR", 0)
        yield from locks.acquire(t, ROW, LockMode.X)
        locks.release_all(t)
        return "granted"

    sim.spawn(holder())
    proc = sim.spawn(waiter())
    sim.run()
    assert proc.result == "granted"
    assert locks.metrics.deadlocks == 0


def test_conversion_deadlock_two_s_holders_both_want_x():
    sim, locks, txns = make(deadlock_check_interval=1.0)
    results = []

    def proc(delay):
        t = txns.begin("RR", 0)
        yield from locks.acquire(t, ROW, LockMode.S)
        yield Timeout(delay)
        try:
            yield from locks.acquire(t, ROW, LockMode.X)
            results.append("granted")
        except DeadlockError:
            results.append("deadlock")
        locks.release_all(t)

    sim.spawn(proc(0.1))
    sim.spawn(proc(0.2))
    sim.run()
    assert sorted(results) == ["deadlock", "granted"]


# -- escalation ---------------------------------------------------------------------

def test_row_locks_escalate_to_table_lock():
    sim, locks, txns = make(locklist_size=100, maxlocks_fraction=0.1)

    def main():
        t = txns.begin("RR", 0)
        for i in range(12):  # threshold = 10
            yield from locks.acquire(t, ("row", "t", (0, i)), LockMode.X)
        assert locks.metrics.escalations == 1
        assert locks.holders_of(TABLE)[t.id] == LockMode.X
        # Row locks were traded in: total should be just the table lock.
        assert locks.total_locks == 1
        locks.release_all(t)

    sim.run_process(main())


def test_escalation_to_s_for_read_only_txn():
    sim, locks, txns = make(locklist_size=100, maxlocks_fraction=0.1)

    def main():
        t = txns.begin("RR", 0)
        for i in range(12):
            yield from locks.acquire(t, ("row", "t", (0, i)), LockMode.S)
        assert locks.holders_of(TABLE)[t.id] == LockMode.S
        locks.release_all(t)

    sim.run_process(main())


def test_escalated_table_lock_covers_future_row_requests():
    sim, locks, txns = make(locklist_size=100, maxlocks_fraction=0.1)

    def main():
        t = txns.begin("RR", 0)
        for i in range(20):
            yield from locks.acquire(t, ("row", "t", (0, i)), LockMode.X)
        assert locks.metrics.escalations == 1  # only once
        assert locks.total_locks == 1
        locks.release_all(t)

    sim.run_process(main())


def test_escalation_blocks_other_transactions_entirely():
    sim, locks, txns = make(locklist_size=100, maxlocks_fraction=0.1,
                            lock_timeout=5.0)
    timeline = []

    def big():
        t = txns.begin("RR", 0)
        for i in range(12):
            yield from locks.acquire(t, ("row", "t", (0, i)), LockMode.X)
        yield Timeout(10.0)
        locks.release_all(t)
        timeline.append(("big-done", sim.now))

    def small():
        t = txns.begin("RR", 0)
        yield Timeout(1.0)
        try:
            # A row the big txn never touched — blocked anyway (table X).
            yield from locks.acquire(t, ("row", "t", (9, 9)), LockMode.X)
            timeline.append(("small-granted", sim.now))
        except LockTimeoutError:
            timeline.append(("small-timeout", sim.now))
        locks.release_all(t)

    sim.spawn(big())
    sim.spawn(small())
    sim.run()
    assert ("small-timeout", 6.0) in timeline


def test_locklist_exhaustion_without_escalation_aborts():
    sim, locks, txns = make(locklist_size=5, maxlocks_fraction=1.0,
                            lock_escalation=False)

    def main():
        t = txns.begin("RR", 0)
        with pytest.raises(TransactionAborted) as err:
            for i in range(10):
                yield from locks.acquire(t, ("row", "t", (0, i)), LockMode.X)
        assert err.value.reason == "locklist"
        locks.release_all(t)

    sim.run_process(main())


def test_release_all_wakes_compatible_queue_prefix():
    sim, locks, txns = make()
    granted = []

    def holder():
        t = txns.begin("RR", 0)
        yield from locks.acquire(t, ROW, LockMode.X)
        yield Timeout(2.0)
        locks.release_all(t)

    def reader(i):
        t = txns.begin("RR", 0)
        yield Timeout(1.0)
        yield from locks.acquire(t, ROW, LockMode.S)
        granted.append((i, sim.now))

    sim.spawn(holder())
    for i in range(3):
        sim.spawn(reader(i))
    sim.run()
    assert granted == [(0, 2.0), (1, 2.0), (2, 2.0)]  # all readers together


def test_early_release_single_lock():
    sim, locks, txns = make()

    def main():
        t1 = txns.begin("CS", 0)
        yield from locks.acquire(t1, ROW, LockMode.S)
        locks.release(t1, ROW)
        # The IS intent lock on the table remains; only the row is freed.
        assert locks.total_locks == 1
        assert locks.holders_of(TABLE)[t1.id] == LockMode.IS
        assert t1.row_lock_count("t") == 0

    sim.run_process(main())


def test_acquire_after_abort_is_rejected():
    sim, locks, txns = make()

    def main():
        t = txns.begin("RR", 0)
        t.mark_rollback_only("test")
        with pytest.raises(TransactionAborted):
            yield from locks.acquire(t, ROW, LockMode.S)

    sim.run_process(main())

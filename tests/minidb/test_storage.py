"""Tests for disk, buffer pool and heap files."""

import pytest

from repro.errors import DatabaseError
from repro.minidb.storage import BufferPool, Disk, Heap


def make_heap(capacity=100, rows_per_page=4):
    disk = Disk()
    pool = BufferPool(disk, capacity, rows_per_page)
    return Heap("t", pool), pool, disk


def test_insert_returns_rids_and_fetch():
    heap, _, _ = make_heap()
    rid = heap.insert(("a", 1))
    assert heap.fetch(rid) == ("a", 1)
    assert heap.nrows == 1


def test_rows_fill_page_then_spill():
    heap, _, _ = make_heap(rows_per_page=2)
    rids = [heap.insert((i,)) for i in range(5)]
    assert {rid[0] for rid in rids} == {0, 1, 2}
    assert heap.npages == 3


def test_delete_frees_slot_for_reuse():
    heap, _, _ = make_heap(rows_per_page=2)
    rid = heap.insert(("a",))
    heap.insert(("b",))
    heap.delete(rid)
    assert heap.fetch(rid) is None
    new_rid = heap.insert(("c",))
    assert new_rid == rid  # lowest free slot reused
    assert heap.nrows == 2


def test_candidate_rid_predicts_insert_position():
    heap, _, _ = make_heap(rows_per_page=2)
    assert heap.candidate_rid() == (0, 0)
    rid = heap.insert(("a",))
    assert heap.candidate_rid() == (0, 1)
    heap.delete(rid)
    assert heap.candidate_rid() == (0, 0)


def test_is_free():
    heap, _, _ = make_heap()
    rid = heap.insert(("a",))
    assert not heap.is_free(rid)
    assert heap.is_free((5, 0))


def test_update_in_place():
    heap, _, _ = make_heap()
    rid = heap.insert(("a", 1))
    old = heap.update(rid, ("a", 2))
    assert old == ("a", 1)
    assert heap.fetch(rid) == ("a", 2)


def test_delete_empty_slot_is_error():
    heap, _, _ = make_heap()
    heap.insert(("a",))
    with pytest.raises(DatabaseError):
        heap.delete((0, 1))


def test_scan_yields_all_live_rows_in_rid_order():
    heap, _, _ = make_heap(rows_per_page=2)
    rids = [heap.insert((i,)) for i in range(6)]
    heap.delete(rids[2])
    scanned = list(heap.scan())
    assert [row for _, row in scanned] == [(0,), (1,), (3,), (4,), (5,)]


def test_insert_at_forced_rid_for_redo():
    heap, _, _ = make_heap(rows_per_page=4)
    heap.insert(("x",), rid=(3, 2))
    assert heap.fetch((3, 2)) == ("x",)
    assert heap.npages == 4


def test_insert_at_occupied_forced_rid_is_error():
    heap, _, _ = make_heap()
    heap.insert(("a",), rid=(0, 0))
    with pytest.raises(DatabaseError):
        heap.insert(("b",), rid=(0, 0))


def test_buffer_pool_eviction_writes_dirty_pages():
    heap, pool, disk = make_heap(capacity=2, rows_per_page=1)
    for i in range(5):
        heap.insert((i,))
    # With capacity 2, at least 3 pages must have been written back.
    assert pool.metrics.page_writes >= 3
    assert len(disk.page_numbers("t")) >= 3


def test_buffer_pool_reload_after_eviction_preserves_rows():
    heap, pool, disk = make_heap(capacity=2, rows_per_page=1)
    rids = [heap.insert((i,)) for i in range(10)]
    for rid, expected in zip(rids, range(10)):
        assert heap.fetch(rid) == (expected,)


def test_flush_all_then_crash_preserves_rows():
    heap, pool, disk = make_heap(rows_per_page=2)
    rids = [heap.insert((i,)) for i in range(4)]
    pool.flush_all()
    pool.clear()  # crash: volatile cache gone
    recovered = Heap.recover("t", pool)
    assert recovered.nrows == 4
    for rid, expected in zip(rids, range(4)):
        assert recovered.fetch(rid) == (expected,)


def test_unflushed_pages_lost_on_clear():
    heap, pool, disk = make_heap(rows_per_page=2)
    heap.insert((1,))
    pool.clear()
    recovered = Heap.recover("t", pool)
    assert recovered.nrows == 0


def test_disk_snapshots_are_isolated_from_later_mutation():
    heap, pool, disk = make_heap(rows_per_page=2)
    rid = heap.insert(("original",))
    pool.flush_all()
    heap.update(rid, ("mutated",))
    stored = disk.read_page("t", 0, 2)
    assert stored.slots[0] == ("original",)


def test_page_lsn_round_trip_through_disk():
    heap, pool, disk = make_heap()
    rid = heap.insert(("a",))
    heap.set_page_lsn(rid[0], 42)
    pool.flush_all()
    pool.clear()
    recovered = Heap.recover("t", pool)
    assert recovered.page_lsn(rid[0]) == 42


def test_drop_table_removes_pages():
    heap, pool, disk = make_heap()
    heap.insert(("a",))
    pool.flush_all()
    pool.drop_table("t")
    assert disk.page_numbers("t") == []


def test_unbilled_io_counts_misses_and_writes():
    heap, pool, _ = make_heap(capacity=1, rows_per_page=1)
    for i in range(4):
        heap.insert((i,))
    assert pool.metrics.drain_unbilled() > 0
    assert pool.metrics.drain_unbilled() == 0  # drained


# -- free-space hint (lazy min-heap over _free_pages) -------------------------

def test_free_hint_always_picks_lowest_page_with_space():
    heap, _, _ = make_heap(rows_per_page=2)
    rids = [heap.insert((i,)) for i in range(8)]   # pages 0..3 full
    heap.delete(rids[6])                           # page 3 has a hole
    heap.delete(rids[2])                           # page 1 has a hole
    assert heap.candidate_rid() == rids[2]         # lowest wins
    assert heap.insert(("x",)) == rids[2]
    assert heap.candidate_rid() == rids[6]
    assert heap.insert(("y",)) == rids[6]
    # everything full again: next insert extends the heap
    assert heap.candidate_rid() == (4, 0)


def test_free_hint_skips_stale_entries():
    """Pages that filled back up (or duplicate notes) pop lazily without
    being offered as candidates."""
    heap, _, _ = make_heap(rows_per_page=2)
    rids = [heap.insert((i,)) for i in range(4)]
    # Free and refill page 0 repeatedly: the hint heap accumulates
    # notes; only live free space may surface.
    for _ in range(3):
        heap.delete(rids[0])
        assert heap.insert(("again",)) == rids[0]
    assert heap.candidate_rid() == (2, 0)
    assert heap.insert(("tail",)) == (2, 0)


def test_free_hint_survives_recover():
    heap, pool, _ = make_heap(rows_per_page=2)
    rids = [heap.insert((i,)) for i in range(6)]
    heap.delete(rids[1])
    pool.flush_all()
    pool.clear()
    recovered = Heap.recover("t", pool)
    assert recovered.candidate_rid() == rids[1]
    assert recovered.insert(("back",)) == rids[1]
    assert recovered.candidate_rid() == (3, 0)


def test_free_hint_matches_linear_scan_reference():
    """Differential check: the hinted candidate always equals what the
    seed's linear scan over all pages would have chosen."""
    import random

    rng = random.Random(11)
    heap, _, _ = make_heap(rows_per_page=3)
    live = []
    for step in range(300):
        if live and rng.random() < 0.4:
            rid = live.pop(rng.randrange(len(live)))
            heap.delete(rid)
        else:
            live.append(heap.insert((step,)))
        # reference: lowest (page, slot) with a free slot, else new page
        expected = None
        for page_no in range(heap.npages):
            page = heap._page_for(page_no)
            slot = page.first_free()
            if slot is not None:
                expected = (page_no, slot)
                break
        if expected is None:
            expected = (heap.npages, 0)
        assert heap.candidate_rid() == expected
